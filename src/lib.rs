//! Umbrella package for the BSML reproduction: integration tests and
//! examples live here. The library part provides shared test
//! support.

pub mod loadgen;
pub mod testgen;
