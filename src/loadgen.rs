//! A seeded load generator for the `bsml-serve` session server:
//! mixed accept / reject / divergent traffic with exact accounting
//! and latency percentiles.
//!
//! The generator is deterministic in its seed: the same
//! [`LoadPlan`] against the same server configuration produces the
//! same sequence of (tenant, source) offers, which is what makes the
//! soak tests' accounting assertions meaningful.

use bsml_serve::{Outcome, Server, ServerStats, Ticket};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::testgen::{self, Adversarial};

/// Traffic mix, in percent of offered requests. Whatever the four
/// adversarial shares leave over is well-typed traffic.
#[derive(Clone, Copy, Debug)]
pub struct LoadMix {
    /// Divergent phrases (toplevel or single-component spins).
    pub divergent: u32,
    /// Dynamically failing phrases (division by zero).
    pub failing: u32,
    /// Statically rejected phrases (type or parse errors).
    pub ill_typed: u32,
    /// Heavy-but-terminating phrases (preemption pressure).
    pub heavy: u32,
}

impl LoadMix {
    /// A mix that exercises every server path: 10% divergent, 10%
    /// failing, 10% ill-typed, 20% heavy, 50% well-typed.
    #[must_use]
    pub fn stress() -> LoadMix {
        LoadMix {
            divergent: 10,
            failing: 10,
            ill_typed: 10,
            heavy: 20,
        }
    }

    /// Only well-typed traffic.
    #[must_use]
    pub fn clean() -> LoadMix {
        LoadMix {
            divergent: 0,
            failing: 0,
            ill_typed: 0,
            heavy: 0,
        }
    }
}

/// One load run: `tenants × per_tenant` offers, round-robin across
/// tenants, drawn from `mix` with the given seed.
#[derive(Clone, Copy, Debug)]
pub struct LoadPlan {
    /// How many tenants offer traffic.
    pub tenants: usize,
    /// Offers per tenant.
    pub per_tenant: usize,
    /// RNG seed; same seed ⇒ same offer sequence.
    pub seed: u64,
    /// Traffic composition.
    pub mix: LoadMix,
}

/// What one load run observed.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Server accounting at the end of the run (drained).
    pub stats: ServerStats,
    /// Latencies of all completions, microseconds, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Latencies of successful ([`Outcome::Done`]) completions only,
    /// microseconds, sorted ascending.
    pub done_latencies_us: Vec<u64>,
}

impl LoadReport {
    /// The `p`-th percentile (0–100) of all completion latencies.
    #[must_use]
    pub fn latency_percentile_us(&self, p: u32) -> u64 {
        percentile(&self.latencies_us, p)
    }

    /// The `p`-th percentile of successful-completion latencies.
    #[must_use]
    pub fn done_percentile_us(&self, p: u32) -> u64 {
        percentile(&self.done_latencies_us, p)
    }

    /// Fraction of offers shed at admission (typed rejections).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.stats.offered == 0 {
            0.0
        } else {
            self.stats.rejected() as f64 / self.stats.offered as f64
        }
    }

    /// One GitHub-markdown table row:
    /// `| label | offered | admitted | rejected | done | p50 | p99 | shed |`.
    #[must_use]
    pub fn markdown_row(&self, label: &str) -> String {
        format!(
            "| {} | {} | {} | {} | {} | {:.1} | {:.1} | {:.1}% |",
            label,
            self.stats.offered,
            self.stats.admitted,
            self.stats.rejected(),
            self.stats.done,
            self.latency_percentile_us(50) as f64 / 1000.0,
            self.latency_percentile_us(99) as f64 / 1000.0,
            self.shed_rate() * 100.0,
        )
    }
}

fn percentile(sorted_us: &[u64], p: u32) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (sorted_us.len() - 1) * p.min(100) as usize / 100;
    sorted_us[rank]
}

/// Draws one phrase source according to the mix.
fn draw_source(rng: &mut StdRng, mix: &LoadMix) -> String {
    let roll: u32 = rng.gen_range(0..100);
    let seed = rng.gen_range(0..u64::MAX / 2);
    let d = mix.divergent;
    let f = d + mix.failing;
    let i = f + mix.ill_typed;
    let h = i + mix.heavy;
    if roll < d {
        let family = if seed % 2 == 0 {
            Adversarial::Divergent
        } else {
            Adversarial::DivergentLocal
        };
        testgen::adversarial(seed, family)
    } else if roll < f {
        testgen::adversarial(seed, Adversarial::DivisionByZero)
    } else if roll < i {
        let family = match seed % 4 {
            0 => Adversarial::NestingBreach,
            1 => Adversarial::LocalityBreach,
            2 => Adversarial::ParseError,
            _ => Adversarial::IllTyped,
        };
        testgen::adversarial(seed, family)
    } else if roll < h {
        testgen::adversarial(seed, Adversarial::Heavy)
    } else {
        // Bind the result so the phrase leaves observable state in the
        // session: durable-recovery tests diff `render_bindings`
        // against a never-crashed oracle, which is only meaningful if
        // the traffic actually binds names.
        format!(
            "let v{} = {}",
            seed % 97,
            testgen::well_typed_source(seed, 2)
        )
    }
}

/// The plan's deterministic offer sequence, without a server: exactly
/// the `(tenant, source)` pairs [`run`] would submit, in order. This
/// is what makes a never-crashed oracle reconstructible — replaying a
/// plan's offers into a fresh session must produce the same state a
/// server that admitted them all reached.
#[must_use]
pub fn offers(plan: &LoadPlan) -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut out = Vec::with_capacity(plan.tenants * plan.per_tenant);
    for _round in 0..plan.per_tenant {
        for t in 0..plan.tenants {
            let tenant = format!("tenant{t:03}");
            let source = draw_source(&mut rng, &plan.mix);
            out.push((tenant, source));
        }
    }
    out
}

/// Runs the plan against a live server: offers everything, waits for
/// every admitted completion, drains, and reports. The server is left
/// running (call [`Server::shutdown`] yourself for final accounting).
#[must_use]
pub fn run(server: &Server, plan: &LoadPlan) -> LoadReport {
    let mut tickets: Vec<Ticket> = Vec::new();
    for (tenant, source) in offers(plan) {
        if let Ok(ticket) = server.submit(&tenant, &source) {
            tickets.push(ticket);
        }
    }
    let mut latencies_us = Vec::with_capacity(tickets.len());
    let mut done_latencies_us = Vec::new();
    for ticket in tickets {
        let completion = ticket.wait();
        let us = u64::try_from(completion.latency.as_micros()).unwrap_or(u64::MAX);
        latencies_us.push(us);
        if matches!(completion.outcome, Outcome::Done { .. }) {
            done_latencies_us.push(us);
        }
    }
    server.drain();
    latencies_us.sort_unstable();
    done_latencies_us.sort_unstable();
    LoadReport {
        stats: server.stats(),
        latencies_us,
        done_latencies_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_ranks() {
        let xs = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&xs, 0), 10);
        assert_eq!(percentile(&xs, 50), 50);
        assert_eq!(percentile(&xs, 100), 100);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn draw_source_is_deterministic_per_seed() {
        let mix = LoadMix::stress();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(draw_source(&mut a, &mix), draw_source(&mut b, &mix));
        }
    }

    #[test]
    fn offers_are_deterministic_and_round_robin() {
        let plan = LoadPlan {
            tenants: 3,
            per_tenant: 2,
            seed: 11,
            mix: LoadMix::clean(),
        };
        let a = offers(&plan);
        let b = offers(&plan);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let tenants: Vec<&str> = a.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(
            tenants,
            vec![
                "tenant000",
                "tenant001",
                "tenant002",
                "tenant000",
                "tenant001",
                "tenant002"
            ]
        );
    }

    #[test]
    fn clean_mix_only_draws_well_typed() {
        let mix = LoadMix::clean();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let src = draw_source(&mut rng, &mix);
            // Well-typed sources are `let`-binding phrases over the
            // typed generator's expressions and must parse as module
            // input (what `Session::load` feeds them to).
            assert!(src.starts_with("let v"), "not a binding: {src}");
            assert!(bsml_syntax::parse_module(&src).is_ok(), "unparsable: {src}");
        }
    }
}
