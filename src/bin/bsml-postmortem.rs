//! `bsml-postmortem`: load one or more crash-time postmortem bundles
//! (written by a `Supervisor` with a postmortem directory, or any
//! `DistMachine` with the flight recorder enabled), verify their
//! causal consistency, reconstruct the superstep timeline, and
//! localize the failure.
//!
//! ```text
//! bsml-postmortem [--g <gap>] [--l <latency>] <bundle.bsmlpm>...
//! ```
//!
//! With `--g`/`--l` each superstep is additionally priced by the BSP
//! cost expression `w + h·g + l` next to its observed figures.
//!
//! Exit status: 0 = every bundle loaded and is causally consistent;
//! 1 = usage or load error; 2 = at least one causal violation (a
//! runtime bug, not a user error — worth a loud CI failure).

use std::path::Path;
use std::process::ExitCode;

use bsml_bsp::{BspParams, PostmortemBundle};

fn usage() -> ExitCode {
    eprintln!("usage: bsml-postmortem [--g <gap>] [--l <latency>] <bundle.bsmlpm>...");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut g: Option<u64> = None;
    let mut l: Option<u64> = None;
    let mut bundles: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--g" | "--l" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                if arg == "--g" {
                    g = Some(v);
                } else {
                    l = Some(v);
                }
            }
            "--help" | "-h" => return usage(),
            _ => bundles.push(arg),
        }
    }
    if bundles.is_empty() {
        return usage();
    }

    let mut worst = ExitCode::SUCCESS;
    for (i, path) in bundles.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let bundle = match PostmortemBundle::load(Path::new(path)) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(1);
            }
        };
        println!("{path}:");
        println!(
            "  p={} attempt={} error={}",
            bundle.p,
            bundle.attempt,
            if bundle.error.is_empty() {
                "(none)"
            } else {
                &bundle.error
            }
        );
        for rank in &bundle.ranks {
            println!(
                "  rank {}: {} event(s), {} evicted, last lamport {}",
                rank.rank,
                rank.events.len(),
                rank.dropped,
                rank.last_lamport()
            );
        }
        let analysis = bundle.analyze();
        // The cost profile prices the timeline only when both knobs
        // are given — a lone --g would silently assume l and mislead.
        let params = match (g, l) {
            (Some(g), Some(l)) => Some(BspParams::new(bundle.p.max(1), g, l)),
            _ => None,
        };
        print!("{}", analysis.render(params.as_ref()));
        if !analysis.is_causally_consistent() {
            worst = ExitCode::from(2);
        }
    }
    worst
}
