//! One BSP rank as one OS process: the worker half of
//! [`bsml_bsp::Execution::Processes`].
//!
//! Not meant to be started by hand — the launcher spawns `p` copies,
//! passing the coordination socket, rank id, machine width and program
//! fingerprint through `BSML_RANK_*` environment variables, then
//! drives the handshake described in `DESIGN.md` §13. `--connect
//! <endpoint>` overrides the socket from the command line (a Unix
//! path, or `tcp://host:port` for a TCP coordinator — DESIGN.md §16).
//! Exit codes: `0` = rank finished and reported `Done`, `1` = rank
//! failed and reported `Fatal`, `2` = could not even reach the
//! handshake.

fn main() {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(endpoint) => std::env::set_var(bsml_bsp::RANK_SOCKET_ENV, endpoint),
                None => {
                    eprintln!(
                        "bsml-rank: --connect requires an endpoint (path or tcp://host:port)"
                    );
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("bsml-rank: unknown argument {other:?} (only --connect <endpoint>)");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(bsml_bsp::process::rank_main())
}
