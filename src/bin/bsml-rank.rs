//! One BSP rank as one OS process: the worker half of
//! [`bsml_bsp::Execution::Processes`].
//!
//! Not meant to be started by hand — the launcher spawns `p` copies,
//! passing the coordination socket, rank id, machine width and program
//! fingerprint through `BSML_RANK_*` environment variables, then
//! drives the handshake described in `DESIGN.md` §13. Exit codes:
//! `0` = rank finished and reported `Done`, `1` = rank failed and
//! reported `Fatal`, `2` = could not even reach the handshake.

fn main() {
    std::process::exit(bsml_bsp::process::rank_main())
}
