//! `bsml-serve`: run the multi-tenant session server under a seeded
//! synthetic load and print its overload behavior.
//!
//! ```text
//! bsml-serve [--tenants N] [--requests N] [--workers N] [--seed S]
//!            [--deadline-ms MS] [--queue-depth N] [--clean]
//! ```
//!
//! Offers `tenants × requests` phrases round-robin across tenants —
//! by default a stress mix (divergent, failing, ill-typed, heavy and
//! well-typed traffic) — waits for every admitted completion, then
//! prints exact accounting, latency percentiles, and the shed rate.
//!
//! Exit status: 0 = accounting exact (`offered == admitted +
//! rejected` and `admitted == completed`); 1 = usage error;
//! 2 = accounting mismatch (a server bug, worth a loud CI failure).

use std::process::ExitCode;
use std::time::Duration;

use bsml_bsp::BspParams;
use bsml_obs::Telemetry;
use bsml_repro::loadgen::{self, LoadMix, LoadPlan};
use bsml_serve::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bsml-serve [--tenants N] [--requests N] [--workers N] [--seed S] \
         [--deadline-ms MS] [--queue-depth N] [--clean]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let mut tenants: usize = 8;
    let mut requests: usize = 8;
    let mut workers: usize = 4;
    let mut seed: u64 = 42;
    let mut deadline_ms: u64 = 2_000;
    let mut queue_depth: usize = 256;
    let mut mix = LoadMix::stress();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tenants" | "--requests" | "--workers" | "--seed" | "--deadline-ms"
            | "--queue-depth" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match arg.as_str() {
                    "--tenants" => tenants = v as usize,
                    "--requests" => requests = v as usize,
                    "--workers" => workers = v as usize,
                    "--seed" => seed = v,
                    "--deadline-ms" => deadline_ms = v,
                    _ => queue_depth = v as usize,
                }
            }
            "--clean" => mix = LoadMix::clean(),
            _ => return usage(),
        }
    }

    let telemetry = Telemetry::enabled();
    let config = ServerConfig::from_env(BspParams::new(4, 2, 10), &telemetry)
        .with_workers(workers)
        .with_queue_depth(queue_depth)
        .with_deadline(if deadline_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(deadline_ms))
        });
    let server = Server::start(config, telemetry.clone());
    let plan = LoadPlan {
        tenants,
        per_tenant: requests,
        seed,
        mix,
    };
    let report = loadgen::run(&server, &plan);
    let stats = server.shutdown();

    println!(
        "offered {} = admitted {} + rejected {} (queue_full {}, tenant_quota {}, quarantined {})",
        stats.offered,
        stats.admitted,
        stats.rejected(),
        stats.rejected_queue_full,
        stats.rejected_tenant_quota,
        stats.rejected_quarantined,
    );
    println!(
        "completed {}: done {}, static {}, failed {}, deadline {}, budget {}, \
         panics {}, abandoned {}, shed {}",
        stats.completed,
        stats.done,
        stats.static_errors,
        stats.failed,
        stats.deadline_exceeded,
        stats.budget_exhausted,
        stats.panics_contained,
        stats.abandoned,
        stats.shed,
    );
    println!(
        "preemptions {}, quarantines {}",
        stats.preemptions, stats.quarantines
    );
    println!(
        "latency p50 {:.1} ms, p99 {:.1} ms (done-only p50 {:.1} ms), shed rate {:.1}%",
        report.latency_percentile_us(50) as f64 / 1000.0,
        report.latency_percentile_us(99) as f64 / 1000.0,
        report.done_percentile_us(50) as f64 / 1000.0,
        report.shed_rate() * 100.0,
    );

    let exact =
        stats.offered == stats.admitted + stats.rejected() && stats.admitted == stats.completed;
    if exact {
        ExitCode::SUCCESS
    } else {
        eprintln!("ACCOUNTING MISMATCH");
        ExitCode::from(2)
    }
}
