//! `bsml-serve`: run the multi-tenant session server under a seeded
//! synthetic load and print its overload behavior.
//!
//! ```text
//! bsml-serve [--tenants N] [--requests N] [--workers N] [--seed S]
//!            [--deadline-ms MS] [--queue-depth N] [--clean]
//!            [--durable-dir PATH] [--snapshot-every N]
//!            [--inject OP:KIND:NTH[:AT]] [--dump-state]
//! ```
//!
//! Offers `tenants × requests` phrases round-robin across tenants —
//! by default a stress mix (divergent, failing, ill-typed, heavy and
//! well-typed traffic) — waits for every admitted completion, then
//! prints exact accounting, latency percentiles, and the shed rate.
//!
//! With `--durable-dir` every committed phrase is fsynced to a
//! per-tenant write-ahead log before its completion is reported, and
//! a restart recovers every tenant to its last committed phrase.
//! `--dump-state` skips the load entirely: it recovers the durable
//! directory, rebuilds each tenant session by deterministic replay,
//! and prints its bindings — the ground truth a durability test can
//! diff against a never-crashed oracle. `--inject` arms deterministic
//! disk faults (see below); `abort` kinds kill the process mid-write,
//! which is how the kill-restart tests place their crashes.
//!
//! SIGTERM triggers a graceful drain: admission stops (typed
//! `ShuttingDown` rejections), in-flight requests finish, and each
//! durable tenant flushes a final compaction snapshot so the next
//! start replays zero phrases.
//!
//! Fault syntax: `OP:KIND:NTH[:AT]` where OP ∈ `atomic|append|read`,
//! KIND ∈ `enospc|torn|syncfail|flip|abort`, NTH is the 0-based
//! occurrence of OP that faults, and AT is the byte offset for
//! `torn`/`flip`/`abort`.
//!
//! Exit status: 0 = accounting exact (`offered == admitted +
//! rejected` and `admitted == completed`); 1 = usage error;
//! 2 = accounting mismatch (a server bug, worth a loud CI failure).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bsml_bsp::{BspParams, Disk, StorageFault, StorageFaultKind, StorageOp, StoragePlan};
use bsml_core::{Session, SessionSnapshot};
use bsml_obs::Telemetry;
use bsml_repro::loadgen::{self, LoadMix, LoadPlan};
use bsml_serve::{DurableLog, Server, ServerConfig};

/// The machine every tenant session runs on. `--dump-state` rebuilds
/// sessions on the same parameters, so its output is comparable
/// across runs.
fn machine() -> BspParams {
    BspParams::new(4, 2, 10)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bsml-serve [--tenants N] [--requests N] [--workers N] [--seed S] \
         [--deadline-ms MS] [--queue-depth N] [--clean] \
         [--durable-dir PATH] [--snapshot-every N] \
         [--inject OP:KIND:NTH[:AT]] [--dump-state]"
    );
    ExitCode::from(1)
}

/// Parses one `--inject` spec: `OP:KIND:NTH[:AT]`.
fn parse_inject(spec: &str) -> Option<StorageFault> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 3 || parts.len() > 4 {
        return None;
    }
    let op = match parts[0] {
        "atomic" => StorageOp::AtomicWrite,
        "append" => StorageOp::Append,
        "read" => StorageOp::Read,
        _ => return None,
    };
    let nth: u64 = parts[2].parse().ok()?;
    let at = || -> Option<usize> { parts.get(3)?.parse().ok() };
    let kind = match parts[1] {
        "enospc" => StorageFaultKind::Enospc,
        "syncfail" => StorageFaultKind::SyncFailure,
        "torn" => StorageFaultKind::TornWrite { at: at()? },
        "flip" => StorageFaultKind::BitFlip { at: at()? },
        "abort" => StorageFaultKind::CrashAfter { at: at()? },
        _ => return None,
    };
    Some(StorageFault { op, nth, kind })
}

/// `--dump-state`: recover the durable directory and print every
/// tenant's rebuilt session, deterministically ordered.
fn dump_state(dir: &Path, disk: Arc<Disk>) -> ExitCode {
    let telemetry = Telemetry::enabled_logical();
    let log = match DurableLog::open(dir, disk, 8, telemetry.clone()) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("cannot open durable dir {}: {e}", dir.display());
            return ExitCode::from(1);
        }
    };
    let recovered = log.recover(&|bytes| SessionSnapshot::from_bytes(bytes).is_ok());
    for r in &recovered {
        println!(
            "== {} seq={} replayed={} truncated={} fell_back={}",
            r.name,
            r.last_seq,
            r.commits.len(),
            r.truncated,
            r.fell_back
        );
        let mut session = Session::new(machine());
        if let Some(snap) = r
            .base
            .as_ref()
            .and_then(|(_, bytes)| SessionSnapshot::from_bytes(bytes).ok())
        {
            session.restore(&snap);
        }
        for source in &r.commits {
            let _ = session.load(source);
        }
        print!("{}", session.render_bindings());
    }
    println!(
        "recovered {} tenants, truncated_tails={}",
        recovered.len(),
        telemetry.counter_value("server.wal_truncated_tails"),
    );
    ExitCode::SUCCESS
}

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn main() -> ExitCode {
    let mut tenants: usize = 8;
    let mut requests: usize = 8;
    let mut workers: usize = 4;
    let mut seed: u64 = 42;
    let mut deadline_ms: u64 = 2_000;
    let mut queue_depth: usize = 256;
    let mut mix = LoadMix::stress();
    let mut durable_dir: Option<PathBuf> = None;
    let mut snapshot_every: u64 = 8;
    let mut plan = StoragePlan::new();
    let mut dump = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tenants" | "--requests" | "--workers" | "--seed" | "--deadline-ms"
            | "--queue-depth" | "--snapshot-every" => {
                let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage();
                };
                match arg.as_str() {
                    "--tenants" => tenants = v as usize,
                    "--requests" => requests = v as usize,
                    "--workers" => workers = v as usize,
                    "--seed" => seed = v,
                    "--deadline-ms" => deadline_ms = v,
                    "--snapshot-every" => snapshot_every = v,
                    _ => queue_depth = v as usize,
                }
            }
            "--durable-dir" => {
                let Some(v) = args.next() else {
                    return usage();
                };
                durable_dir = Some(PathBuf::from(v));
            }
            "--inject" => {
                let Some(fault) = args.next().as_deref().and_then(parse_inject) else {
                    return usage();
                };
                plan = plan.fault(fault);
            }
            "--dump-state" => dump = true,
            "--clean" => mix = LoadMix::clean(),
            _ => return usage(),
        }
    }

    let disk = Arc::new(Disk::with_plan(plan));
    if dump {
        let Some(dir) = durable_dir else {
            eprintln!("--dump-state requires --durable-dir");
            return usage();
        };
        return dump_state(&dir, disk);
    }

    install_sigterm_handler();
    let telemetry = Telemetry::enabled();
    let mut config = ServerConfig::from_env(machine(), &telemetry)
        .with_workers(workers)
        .with_queue_depth(queue_depth)
        .with_snapshot_every(snapshot_every)
        .with_storage(disk)
        .with_deadline(if deadline_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(deadline_ms))
        });
    if let Some(dir) = durable_dir {
        config = config.with_durable_dir(dir);
    }
    let server = Server::start(config, telemetry.clone());
    if server.durable() {
        println!(
            "durable: recovered {} tenants, replayed {} phrases, truncated {} tails",
            server.tenants().len(),
            telemetry.counter_value("server.replayed_phrases"),
            telemetry.counter_value("server.wal_truncated_tails"),
        );
    }
    let plan = LoadPlan {
        tenants,
        per_tenant: requests,
        seed,
        mix,
    };
    // Drive the load with a SIGTERM watcher alongside: on TERM the
    // server stops admitting (typed ShuttingDown) and drains what it
    // already accepted.
    let done = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        scope.spawn(|| {
            while !done.load(Ordering::SeqCst) {
                if TERM.load(Ordering::SeqCst) {
                    server.initiate_shutdown();
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        let report = loadgen::run(&server, &plan);
        done.store(true, Ordering::SeqCst);
        report
    });
    let stats = server.shutdown();

    println!(
        "offered {} = admitted {} + rejected {} (queue_full {}, tenant_quota {}, \
         quarantined {}, shutdown {})",
        stats.offered,
        stats.admitted,
        stats.rejected(),
        stats.rejected_queue_full,
        stats.rejected_tenant_quota,
        stats.rejected_quarantined,
        stats.rejected_shutdown,
    );
    println!(
        "completed {}: done {}, static {}, failed {}, deadline {}, budget {}, \
         panics {}, abandoned {}, durability_lost {}, shed {}",
        stats.completed,
        stats.done,
        stats.static_errors,
        stats.failed,
        stats.deadline_exceeded,
        stats.budget_exhausted,
        stats.panics_contained,
        stats.abandoned,
        stats.durability_lost,
        stats.shed,
    );
    println!(
        "preemptions {}, quarantines {}",
        stats.preemptions, stats.quarantines
    );
    println!(
        "latency p50 {:.1} ms, p99 {:.1} ms (done-only p50 {:.1} ms), shed rate {:.1}%",
        report.latency_percentile_us(50) as f64 / 1000.0,
        report.latency_percentile_us(99) as f64 / 1000.0,
        report.done_percentile_us(50) as f64 / 1000.0,
        report.shed_rate() * 100.0,
    );

    let exact =
        stats.offered == stats.admitted + stats.rejected() && stats.admitted == stats.completed;
    if exact {
        ExitCode::SUCCESS
    } else {
        eprintln!("ACCOUNTING MISMATCH");
        ExitCode::from(2)
    }
}
