//! A generator of *well-typed-by-construction* closed mini-BSML
//! programs, used by the Theorem 1 fuzz suite and the
//! lockstep-vs-distributed cross-validation.

use bsml_ast::build as b;
use bsml_ast::{Expr, Ident};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The machine size the generated pids stay within.
pub const P: usize = 3;

/// Target type for generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GenTy {
    Int,
    Bool,
    IntPar,
    BoolPar,
}

struct Gen {
    rng: StdRng,
    counter: u64,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> Ident {
        self.counter += 1;
        Ident::new(format!("{prefix}{}", self.counter))
    }

    fn gen(&mut self, ty: GenTy, depth: u32, ctx: &[(Ident, GenTy)]) -> Expr {
        let leafy = depth == 0 || self.rng.gen_range(0..100) < 20;
        match ty {
            GenTy::Int => {
                if leafy {
                    self.int_leaf(ctx)
                } else {
                    match self.rng.gen_range(0..8) {
                        0 => b::add(
                            self.gen(GenTy::Int, depth - 1, ctx),
                            self.gen(GenTy::Int, depth - 1, ctx),
                        ),
                        1 => b::sub(
                            self.gen(GenTy::Int, depth - 1, ctx),
                            self.gen(GenTy::Int, depth - 1, ctx),
                        ),
                        2 => b::mul(
                            self.gen(GenTy::Int, depth - 1, ctx),
                            self.gen(GenTy::Int, depth - 1, ctx),
                        ),
                        3 => b::if_(
                            self.gen(GenTy::Bool, depth - 1, ctx),
                            self.gen(GenTy::Int, depth - 1, ctx),
                            self.gen(GenTy::Int, depth - 1, ctx),
                        ),
                        4 => {
                            // let x : int = … in …
                            let x = self.fresh("x");
                            let bound = self.gen(GenTy::Int, depth - 1, ctx);
                            let mut ctx2 = ctx.to_vec();
                            ctx2.push((x.clone(), GenTy::Int));
                            b::let_(x.as_str(), bound, self.gen(GenTy::Int, depth - 1, &ctx2))
                        }
                        5 => {
                            // (fun x -> int-body) int-arg
                            let x = self.fresh("a");
                            let mut ctx2 = ctx.to_vec();
                            ctx2.push((x.clone(), GenTy::Int));
                            b::app(
                                b::fun_(x.as_str(), self.gen(GenTy::Int, depth - 1, &ctx2)),
                                self.gen(GenTy::Int, depth - 1, ctx),
                            )
                        }
                        6 => b::app(
                            b::op(bsml_ast::Op::Fst),
                            b::pair(
                                self.gen(GenTy::Int, depth - 1, ctx),
                                self.gen(GenTy::Int, depth - 1, ctx),
                            ),
                        ),
                        _ => {
                            // An imperative cell used coherently in
                            // one mode:
                            // let r = ref e1 in (r := e2; !r + e3)
                            let r = self.fresh("r");
                            let init = self.gen(GenTy::Int, depth - 1, ctx);
                            let update = self.gen(GenTy::Int, depth - 1, ctx);
                            let extra = self.gen(GenTy::Int, depth - 1, ctx);
                            let rv = || b::var(r.as_str());
                            b::let_(
                                r.as_str(),
                                b::app(b::op(bsml_ast::Op::Ref), init),
                                b::let_(
                                    "_",
                                    b::binop(bsml_ast::Op::Assign, rv(), update),
                                    b::add(b::app(b::op(bsml_ast::Op::Deref), rv()), extra),
                                ),
                            )
                        }
                    }
                }
            }
            GenTy::Bool => {
                if leafy {
                    self.bool_leaf(ctx)
                } else {
                    match self.rng.gen_range(0..4) {
                        0 => b::lt(
                            self.gen(GenTy::Int, depth - 1, ctx),
                            self.gen(GenTy::Int, depth - 1, ctx),
                        ),
                        1 => b::eq(
                            self.gen(GenTy::Int, depth - 1, ctx),
                            self.gen(GenTy::Int, depth - 1, ctx),
                        ),
                        2 => b::binop(
                            bsml_ast::Op::And,
                            self.gen(GenTy::Bool, depth - 1, ctx),
                            self.gen(GenTy::Bool, depth - 1, ctx),
                        ),
                        _ => b::app(
                            b::op(bsml_ast::Op::Not),
                            self.gen(GenTy::Bool, depth - 1, ctx),
                        ),
                    }
                }
            }
            GenTy::IntPar => {
                // Only *local* variables may flow into vector
                // components; filter the context.
                let local: Vec<(Ident, GenTy)> = ctx
                    .iter()
                    .filter(|(_, t)| matches!(t, GenTy::Int | GenTy::Bool))
                    .cloned()
                    .collect();
                if leafy {
                    self.mkpar_int(depth, &local, ctx)
                } else {
                    match self.rng.gen_range(0..5) {
                        0 => self.mkpar_int(depth, &local, ctx),
                        1 => {
                            // apply (mkpar (fun i -> fun x -> …), vec)
                            let i = self.fresh("i");
                            let x = self.fresh("v");
                            let mut inner = local.clone();
                            inner.push((i.clone(), GenTy::Int));
                            inner.push((x.clone(), GenTy::Int));
                            let body = self.gen(GenTy::Int, depth.saturating_sub(1), &inner);
                            b::apply(
                                b::mkpar(b::fun_(i.as_str(), b::fun_(x.as_str(), body))),
                                self.gen(GenTy::IntPar, depth - 1, ctx),
                            )
                        }
                        2 => {
                            // put exchange, then probe a fixed sender.
                            let j = self.fresh("j");
                            let d = self.fresh("d");
                            let mut inner = local.clone();
                            inner.push((j.clone(), GenTy::Int));
                            inner.push((d.clone(), GenTy::Int));
                            let msg = self.gen(GenTy::Int, depth.saturating_sub(1), &inner);
                            let sender = self.rng.gen_range(0..P as i64);
                            b::apply(
                                b::put(b::mkpar(b::fun_(j.as_str(), b::fun_(d.as_str(), msg)))),
                                b::mkpar(b::fun_("who", b::int(sender))),
                            )
                        }
                        3 => {
                            // if vec at n then … else … (global type).
                            let at = self.rng.gen_range(0..P as i64);
                            b::ifat(
                                self.gen(GenTy::BoolPar, depth - 1, ctx),
                                b::int(at),
                                self.gen(GenTy::IntPar, depth - 1, ctx),
                                self.gen(GenTy::IntPar, depth - 1, ctx),
                            )
                        }
                        _ => {
                            // let v = vec in …v…
                            let v = self.fresh("vec");
                            let bound = self.gen(GenTy::IntPar, depth - 1, ctx);
                            let mut ctx2 = ctx.to_vec();
                            ctx2.push((v.clone(), GenTy::IntPar));
                            b::let_(v.as_str(), bound, self.gen(GenTy::IntPar, depth - 1, &ctx2))
                        }
                    }
                }
            }
            GenTy::BoolPar => {
                let local: Vec<(Ident, GenTy)> = ctx
                    .iter()
                    .filter(|(_, t)| matches!(t, GenTy::Int | GenTy::Bool))
                    .cloned()
                    .collect();
                let i = self.fresh("i");
                let mut inner = local;
                inner.push((i.clone(), GenTy::Int));
                let body = self.gen(GenTy::Bool, depth.saturating_sub(1), &inner);
                b::mkpar(b::fun_(i.as_str(), body))
            }
        }
    }

    fn int_leaf(&mut self, ctx: &[(Ident, GenTy)]) -> Expr {
        let vars: Vec<&Ident> = ctx
            .iter()
            .filter(|(_, t)| *t == GenTy::Int)
            .map(|(x, _)| x)
            .collect();
        if !vars.is_empty() && self.rng.gen_bool(0.5) {
            let v = vars[self.rng.gen_range(0..vars.len())];
            b::var(v.as_str())
        } else {
            b::int(self.rng.gen_range(-50..50))
        }
    }

    fn bool_leaf(&mut self, ctx: &[(Ident, GenTy)]) -> Expr {
        let vars: Vec<&Ident> = ctx
            .iter()
            .filter(|(_, t)| *t == GenTy::Bool)
            .map(|(x, _)| x)
            .collect();
        if !vars.is_empty() && self.rng.gen_bool(0.4) {
            let v = vars[self.rng.gen_range(0..vars.len())];
            b::var(v.as_str())
        } else {
            b::bool_(self.rng.gen_bool(0.5))
        }
    }

    fn mkpar_int(
        &mut self,
        depth: u32,
        local: &[(Ident, GenTy)],
        par_ctx: &[(Ident, GenTy)],
    ) -> Expr {
        let par_vars: Vec<&Ident> = par_ctx
            .iter()
            .filter(|(_, t)| *t == GenTy::IntPar)
            .map(|(x, _)| x)
            .collect();
        if !par_vars.is_empty() && self.rng.gen_bool(0.3) {
            let v = par_vars[self.rng.gen_range(0..par_vars.len())];
            return b::var(v.as_str());
        }
        let i = self.fresh("i");
        let mut inner = local.to_vec();
        inner.push((i.clone(), GenTy::Int));
        let body = self.gen(GenTy::Int, depth.saturating_sub(1), &inner);
        b::mkpar(b::fun_(i.as_str(), body))
    }
}

/// Generates a closed, well-typed program of the given type.
#[must_use]
pub fn generate(seed: u64, ty: GenTy, depth: u32) -> Expr {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        counter: 0,
    };
    g.gen(ty, depth, &[])
}

/// A family of *adversarial* phrases: programs a hostile or buggy
/// tenant might throw at the session server. Unlike [`generate`],
/// these are rendered to concrete source (the server's wire format).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adversarial {
    /// Dynamic nesting, the very thing the type system rejects: a
    /// parallel primitive inside a vector component. Statically
    /// rejected, so the server answers with a type error.
    NestingBreach,
    /// A locality violation: a parallel vector referenced from inside
    /// another vector's component (paper §2.1's locality discipline).
    LocalityBreach,
    /// A plain type error (`int` meets `bool`).
    IllTyped,
    /// Concrete syntax that does not parse.
    ParseError,
    /// A well-typed phrase that diverges at the toplevel — the
    /// deadline/fuel-budget stressor.
    Divergent,
    /// A well-typed phrase that diverges *inside* one vector
    /// component, so only one simulated processor spins.
    DivergentLocal,
    /// A well-typed phrase that fails dynamically (division by zero)
    /// — exercises transactional rollback without divergence.
    DivisionByZero,
    /// A heavy but terminating loop — burns many fuel slices and
    /// exercises preemption without tripping the deadline.
    Heavy,
}

/// All adversarial families, for sweep-style tests.
pub const ADVERSARIAL_FAMILIES: [Adversarial; 8] = [
    Adversarial::NestingBreach,
    Adversarial::LocalityBreach,
    Adversarial::IllTyped,
    Adversarial::ParseError,
    Adversarial::Divergent,
    Adversarial::DivergentLocal,
    Adversarial::DivisionByZero,
    Adversarial::Heavy,
];

/// Renders a seeded phrase of the given adversarial family. The seed
/// varies names and constants so a server sees distinct sources, but
/// every seed of a family has the family's defining behavior.
#[must_use]
pub fn adversarial(seed: u64, family: Adversarial) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: i64 = rng.gen_range(1..100);
    let m: i64 = rng.gen_range(2..50);
    let x = format!("x{}", rng.gen_range(0..1000));
    match family {
        Adversarial::NestingBreach => {
            format!("let {x} = mkpar (fun i -> let inner = mkpar (fun j -> j + {n}) in i)")
        }
        Adversarial::LocalityBreach => {
            format!("let outer = mkpar (fun i -> i * {n})\nlet {x} = mkpar (fun i -> outer)")
        }
        Adversarial::IllTyped => format!("let {x} = {n} + (1 < {m})"),
        Adversarial::ParseError => format!("let {x} = {n} + in *"),
        Adversarial::Divergent => format!("let rec spin{n} k = spin{n} (k + {m}) in spin{n} 0"),
        Adversarial::DivergentLocal => format!(
            "let {x} = mkpar (fun i -> if i = 0 then \
             (let rec w k = w (k + 1) in w {n}) else i)"
        ),
        Adversarial::DivisionByZero => format!("let {x} = {n} / ({m} - {m})"),
        Adversarial::Heavy => format!(
            "let rec burn k = if k = 0 then {n} else burn (k - 1) in burn {}",
            50_000 + rng.gen_range(0..50_000)
        ),
    }
}

/// Renders a seeded *well-typed* phrase as source, for mixing with
/// the adversarial families in load generators.
#[must_use]
pub fn well_typed_source(seed: u64, depth: u32) -> String {
    let ty = match seed % 3 {
        0 => GenTy::Int,
        1 => GenTy::Bool,
        _ => GenTy::IntPar,
    };
    bsml_ast::pretty::to_source(&generate(seed, ty, depth))
}
