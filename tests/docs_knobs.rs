//! The README's consolidated `BSML_*` knob table is generated from
//! `bsml_core::knobs::registry_markdown()`; this test diffs the two
//! so docs cannot drift from the registry.

use bsml_core::knobs;

#[test]
fn readme_knob_table_matches_the_registry() {
    let readme = include_str!("../README.md");
    let begin = readme
        .find("<!-- knob-table:begin -->")
        .expect("README has the knob-table begin marker");
    let end = readme
        .find("<!-- knob-table:end -->")
        .expect("README has the knob-table end marker");
    let in_readme = readme[begin..end]
        .lines()
        .skip(1) // the begin marker line itself
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(
        in_readme.trim(),
        knobs::registry_markdown().trim(),
        "README knob table drifted from bsml_core::knobs::registry(); \
         regenerate it with registry_markdown()"
    );
}

#[test]
fn every_knob_in_the_registry_names_a_real_env_var() {
    // The registry is the single source of truth; each entry must at
    // least look like one of ours and carry a non-empty doc line.
    for knob in knobs::registry() {
        assert!(
            knob.name.starts_with("BSML_"),
            "{} is not a BSML_* variable",
            knob.name
        );
        assert!(!knob.doc.is_empty(), "{} has no doc line", knob.name);
    }
}
