//! Integration tests for `bsml-serve`: admission control, fairness,
//! deadlines, crash containment, and exact accounting.

use std::time::Duration;

use bsml_bsp::BspParams;
use bsml_obs::Telemetry;
use bsml_serve::{Outcome, Rejected, Server, ServerConfig};

fn config() -> ServerConfig {
    ServerConfig::new(BspParams::new(2, 1, 10))
}

#[test]
fn happy_path_runs_and_accounts() {
    let server = Server::start(config(), Telemetry::disabled());
    let t1 = server.submit("alice", "let x = 40 + 2").unwrap();
    let t2 = server
        .submit("bob", "let v = mkpar (fun i -> i * 10)")
        .unwrap();
    assert!(matches!(t1.wait().outcome, Outcome::Done { .. }));
    assert!(matches!(t2.wait().outcome, Outcome::Done { .. }));
    let stats = server.shutdown();
    assert_eq!(stats.offered, 2);
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.done, 2);
}

#[test]
fn divergent_phrase_hits_deadline_not_watchdog() {
    let server = Server::start(
        config()
            .with_workers(1)
            .with_deadline(Some(Duration::from_millis(300)))
            .with_fuel_budget(u64::MAX),
        Telemetry::disabled(),
    );
    let t = server
        .submit("spin", "let rec spin k = spin (k + 1) in spin 0")
        .unwrap();
    let done = t.wait();
    assert!(
        matches!(done.outcome, Outcome::DeadlineExceeded),
        "expected DeadlineExceeded, got {:?}",
        done.outcome
    );
    let stats = server.shutdown();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.abandoned, 0, "cancellation, not the watchdog");
}

#[test]
fn divergent_phrase_exhausts_fuel_budget() {
    let server = Server::start(
        config()
            .with_workers(1)
            .with_deadline(None)
            .with_fuel_budget(50_000),
        Telemetry::disabled(),
    );
    let t = server
        .submit("spin", "let rec spin k = spin (k + 1) in spin 0")
        .unwrap();
    assert!(matches!(t.wait().outcome, Outcome::BudgetExhausted));
    let stats = server.shutdown();
    assert_eq!(stats.budget_exhausted, 1);
    assert_eq!(stats.abandoned, 0);
}

#[test]
fn queue_overflow_rejects_typed() {
    let server = Server::start(
        config()
            .with_workers(1)
            .with_queue_depth(1)
            .with_tenant_quota(64),
        Telemetry::disabled(),
    );
    // Fill the only queue slot with a slow phrase, then overflow.
    let slow = server
        .submit("a", "let rec spin k = spin (k + 1) in spin 0")
        .unwrap();
    let mut saw_queue_full = false;
    for i in 0..50 {
        match server.submit("b", &format!("let x{i} = {i}")) {
            Ok(t) => drop(t),
            Err(Rejected::QueueFull) => {
                saw_queue_full = true;
                break;
            }
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
    }
    assert!(saw_queue_full);
    drop(slow);
    let stats = server.shutdown();
    assert!(stats.rejected_queue_full >= 1);
    assert_eq!(stats.offered, stats.admitted + stats.rejected());
}

#[test]
fn tenant_quota_rejects_typed() {
    let server = Server::start(
        config()
            .with_workers(1)
            .with_queue_depth(512)
            .with_tenant_quota(2),
        Telemetry::disabled(),
    );
    let _slow = server
        .submit("hog", "let rec spin k = spin (k + 1) in spin 0")
        .unwrap();
    let _q = server.submit("hog", "let a = 1").unwrap();
    match server.submit("hog", "let b = 2") {
        Err(Rejected::TenantQuota) => {}
        other => panic!("expected TenantQuota, got {other:?}"),
    }
    // Another tenant is unaffected by hog's quota.
    let ok = server.submit("light", "let c = 3").unwrap();
    assert!(matches!(ok.wait().outcome, Outcome::Done { .. }));
    let stats = server.shutdown();
    assert_eq!(stats.rejected_tenant_quota, 1);
}

#[test]
fn panic_is_contained_and_session_restored() {
    // Division by zero raises an EvalError (not a panic) in this
    // evaluator, so dynamic failure is the panic-adjacent path users
    // actually hit; both roll the session back identically.
    let server = Server::start(config(), Telemetry::disabled());
    let ok = server.submit("t", "let base = 10").unwrap();
    assert!(matches!(ok.wait().outcome, Outcome::Done { .. }));
    let bad = server.submit("t", "let boom = base / 0").unwrap();
    assert!(matches!(bad.wait().outcome, Outcome::Failed { .. }));
    // The session still has `base` and nothing else.
    let after = server.submit("t", "base").unwrap();
    match after.wait().outcome {
        Outcome::Done { rendered } => assert_eq!(rendered, vec!["- : int = 10"]),
        other => panic!("expected Done, got {other:?}"),
    }
    let _ = server.shutdown();
}

#[test]
fn repeated_failures_quarantine_then_recover() {
    let server = Server::start(
        config()
            .with_workers(1)
            .with_quarantine(2, Duration::from_millis(200)),
        Telemetry::disabled(),
    );
    // Two consecutive dynamic failures → quarantine.
    for _ in 0..2 {
        let t = server.submit("flaky", "let x = 1 / 0").unwrap();
        assert!(matches!(t.wait().outcome, Outcome::Failed { .. }));
    }
    match server.submit("flaky", "let y = 1") {
        Err(Rejected::Quarantined) => {}
        other => panic!("expected Quarantined, got {other:?}"),
    }
    // Neighbors unaffected.
    let ok = server.submit("steady", "let z = 5").unwrap();
    assert!(matches!(ok.wait().outcome, Outcome::Done { .. }));
    // After the cooldown the tenant is admitted again.
    std::thread::sleep(Duration::from_millis(250));
    let back = server.submit("flaky", "let y = 1").unwrap();
    assert!(matches!(back.wait().outcome, Outcome::Done { .. }));
    let stats = server.shutdown();
    assert!(stats.quarantines >= 1);
    assert_eq!(stats.rejected_quarantined, 1);
}

#[test]
fn static_errors_never_strike() {
    let server = Server::start(
        config().with_quarantine(2, Duration::from_secs(5)),
        Telemetry::disabled(),
    );
    for i in 0..6 {
        let t = server
            .submit(
                "typos",
                &format!("let x{i} = mkpar (fun i -> mkpar (fun j -> j))"),
            )
            .unwrap();
        assert!(matches!(t.wait().outcome, Outcome::Static { .. }));
    }
    // Still admitted: ill-typed input is the user's problem, not a
    // server-health signal.
    let ok = server.submit("typos", "let fine = 1").unwrap();
    assert!(matches!(ok.wait().outcome, Outcome::Done { .. }));
    let stats = server.shutdown();
    assert_eq!(stats.quarantines, 0);
}

#[test]
fn shutdown_rejects_new_work_but_drains_queued() {
    let server = Server::start(config(), Telemetry::disabled());
    let t = server.submit("a", "let x = 2 + 2").unwrap();
    assert!(matches!(t.wait().outcome, Outcome::Done { .. }));
    let stats = server.shutdown();
    assert_eq!(stats.admitted, stats.completed);
}

#[test]
fn fairness_light_tenant_is_not_starved_by_heavy_neighbors() {
    // One worker, two heavy spinners plus one light tenant: DRR must
    // preempt the spinners so the light phrase completes long before
    // the spinners' deadlines resolve them.
    let server = Server::start(
        config()
            .with_workers(1)
            .with_deadline(Some(Duration::from_secs(4)))
            .with_fuel_budget(u64::MAX)
            .with_fuel_slice(5_000, 20_000),
        Telemetry::disabled(),
    );
    let h1 = server
        .submit("heavy1", "let rec spin k = spin (k + 1) in spin 0")
        .unwrap();
    let h2 = server
        .submit("heavy2", "let rec spin k = spin (k + 1) in spin 0")
        .unwrap();
    let light = server.submit("light", "let x = 1 + 1").unwrap();
    let start = std::time::Instant::now();
    let done = light.wait();
    let waited = start.elapsed();
    assert!(matches!(done.outcome, Outcome::Done { .. }));
    assert!(
        waited < Duration::from_secs(2),
        "light tenant starved: waited {waited:?}"
    );
    assert!(matches!(h1.wait().outcome, Outcome::DeadlineExceeded));
    assert!(matches!(h2.wait().outcome, Outcome::DeadlineExceeded));
    let stats = server.shutdown();
    assert!(stats.preemptions > 0, "spinners were never preempted");
    assert_eq!(stats.offered, stats.admitted + stats.rejected());
}
