//! The paper's §4 grammar invariant, checked end-to-end: every type
//! the checker *accepts* belongs to the L/V/G partition — in
//! particular it never contains a nested `par`, and never maps global
//! arguments to usual results.

use bsml_infer::infer;
use bsml_std::{algorithms, paper_corpus, workloads, Verdict};
use bsml_types::{classify::classify, Type};

fn assert_well_formed(ty: &Type, what: &str) {
    assert!(
        !ty.has_nested_par(),
        "{what}: accepted type {ty} has nested par"
    );
    assert!(
        classify(ty).is_well_formed(),
        "{what}: accepted type {ty} is outside the L/V/G grammars"
    );
}

#[test]
fn corpus_accepts_have_well_formed_types() {
    for entry in paper_corpus() {
        if entry.verdict == Verdict::Accept {
            let inf = infer(&entry.ast()).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert_well_formed(&inf.ty, entry.name);
        }
    }
}

#[test]
fn workloads_have_well_formed_types() {
    for w in workloads::all_basic() {
        let inf = infer(&w.ast()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_well_formed(&inf.ty, &w.name);
    }
    for w in [algorithms::psrs_sort(4), algorithms::matvec(1, 1)] {
        let inf = infer(&w.ast()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_well_formed(&inf.ty, &w.name);
    }
}

#[test]
fn every_figure6_scheme_is_well_formed() {
    use bsml_infer::env::op_scheme;
    for op in bsml_ast::Op::ALL {
        let s = op_scheme(op);
        assert_well_formed(s.ty(), op.name());
    }
}

#[test]
fn subexpression_types_are_well_formed_along_derivations() {
    use bsml_infer::{initial_env, Inferencer};
    // Every judgment in a recorded derivation carries a well-formed
    // type (after the final substitution refines it).
    for src in [
        "fst (mkpar (fun i -> i), 1)",
        "put (mkpar (fun j -> fun d -> (j, true)))",
        "if mkpar (fun i -> i = 0) at 0 then mkpar (fun i -> [i]) else mkpar (fun i -> [])",
    ] {
        let e = bsml_syntax::parse(src).unwrap();
        let inf = Inferencer::new()
            .with_derivation(true)
            .run(&initial_env(), &e)
            .unwrap_or_else(|err| panic!("`{src}`: {err}"));
        let d = inf.derivation.unwrap();
        let mut stack = vec![&d];
        while let Some(node) = stack.pop() {
            assert!(
                !node.ty.has_nested_par(),
                "`{src}`: judgment {} has nested par",
                node.judgment()
            );
            stack.extend(node.premises.iter());
        }
    }
}
