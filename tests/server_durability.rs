//! Durability integration tests (DESIGN.md §15): commit-before-report
//! over the write-ahead log, crash-safe restart, graceful drain, and
//! a seeded kill-restart grid driving the real `bsml-serve` binary
//! with deterministic mid-append aborts.
//!
//! The oracle discipline: clean-mix load-generator traffic is a
//! deterministic sequence of `let`-binding phrases
//! ([`loadgen::offers`]), and BSML evaluation is deterministic, so a
//! tenant recovered to committed sequence number `k` must render
//! *bit-identical* bindings to a fresh session that replayed that
//! tenant's first `k` offers and never crashed. Any divergence —
//! lost commits, duplicated commits, torn state — shows up as a diff.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use bsml_bsp::{BspParams, Disk, StorageFault, StorageFaultKind, StorageOp, StoragePlan};
use bsml_core::{Session, SessionSnapshot};
use bsml_obs::Telemetry;
use bsml_repro::loadgen::{self, LoadMix, LoadPlan};
use bsml_serve::{DurableLog, Outcome, Server, ServerConfig};

/// Must match `machine()` in `src/bin/bsml-serve.rs` — the oracle
/// replays on the same machine the server runs.
fn machine() -> BspParams {
    BspParams::new(4, 2, 10)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsml-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn validate(bytes: &[u8]) -> bool {
    SessionSnapshot::from_bytes(bytes).is_ok()
}

/// Renders the durable state of one tenant exactly like
/// `bsml-serve --dump-state`: restore the base, replay the suffix.
fn render_recovered(dir: &Path) -> Vec<(String, u64, usize, String)> {
    let log = DurableLog::open(dir, Arc::new(Disk::new()), 8, Telemetry::disabled()).unwrap();
    log.recover(&|b| validate(b))
        .into_iter()
        .map(|r| {
            let mut session = Session::new(machine());
            if let Some((_, state)) = &r.base {
                session.restore(&SessionSnapshot::from_bytes(state).unwrap());
            }
            for p in &r.commits {
                let _ = session.load(p);
            }
            (
                r.name,
                r.last_seq,
                r.commits.len(),
                session.render_bindings(),
            )
        })
        .collect()
}

/// The never-crashed oracle: replay the first `upto` clean-mix offers
/// of one tenant into a fresh session.
fn oracle_bindings(plan: &LoadPlan, tenant: &str, upto: u64) -> String {
    let mut session = Session::new(machine());
    let mut replayed = 0u64;
    for (t, source) in loadgen::offers(plan) {
        if t == tenant && replayed < upto {
            session.load(&source).unwrap();
            replayed += 1;
        }
    }
    assert_eq!(replayed, upto, "oracle ran out of offers for {tenant}");
    session.render_bindings()
}

#[test]
fn restart_recovers_committed_phrases_and_continues() {
    let dir = temp_dir("restart");
    let config = || {
        ServerConfig::new(machine())
            .with_durable_dir(&dir)
            .with_snapshot_every(2)
    };
    {
        let server = Server::start(config(), Telemetry::disabled());
        assert!(server.durable());
        for (tenant, source) in [
            ("alice", "let x = 40 + 2"),
            ("alice", "let y = x * 10"),
            ("alice", "let z = y - x"),
            ("bob", "let v = mkpar (fun i -> i * 10)"),
        ] {
            let t = server.submit(tenant, source).unwrap();
            assert!(matches!(t.wait().outcome, Outcome::Done { .. }));
        }
        // SIGKILL stand-in for the recovery path: drop without the
        // graceful shutdown, so the WAL tail is all there is.
        server.drain();
        std::mem::forget(server);
    }
    let telemetry = Telemetry::enabled_logical();
    let server = Server::start(config(), telemetry.clone());
    assert_eq!(server.tenants(), vec!["alice", "bob"]);
    assert_eq!(telemetry.counter_value("server.recoveries"), 2);
    // The recovered environment is live: a phrase depending on every
    // earlier binding still evaluates.
    let t = server.submit("alice", "let w = x + y + z").unwrap();
    assert!(matches!(t.wait().outcome, Outcome::Done { .. }));
    let stats = server.shutdown();
    assert_eq!(stats.offered, 1);
    assert_eq!(stats.done, 1);
    // And the continuation is itself durable, sequenced after the
    // recovered history.
    let rendered = render_recovered(&dir);
    let alice = rendered.iter().find(|(n, ..)| n == "alice").unwrap();
    assert_eq!(alice.1, 4, "3 recovered commits + 1 continuation");
    assert!(alice.3.contains("w : int"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_append_fault_reports_durability_lost_and_rolls_back() {
    let dir = temp_dir("lost");
    // A live server arms fresh tenants via `rearm` (one atomic
    // write), so the first *append* is the first commit.
    let disk = Arc::new(Disk::with_plan(StoragePlan::new().fault(StorageFault {
        op: StorageOp::Append,
        nth: 0,
        kind: StorageFaultKind::Enospc,
    })));
    let server = Server::start(
        ServerConfig::new(machine())
            .with_durable_dir(&dir)
            .with_storage(disk),
        Telemetry::disabled(),
    );
    let t = server.submit("carol", "let a = 1").unwrap();
    let done = t.wait();
    assert!(
        matches!(done.outcome, Outcome::DurabilityLost { .. }),
        "expected DurabilityLost, got {:?}",
        done.outcome
    );
    // The phrase was rolled back, not half-applied: retrying it (the
    // fault fires once) commits, and the dependent phrase sees it.
    let t = server.submit("carol", "let a = 1").unwrap();
    assert!(matches!(t.wait().outcome, Outcome::Done { .. }));
    let t = server.submit("carol", "let b = a + 1").unwrap();
    assert!(matches!(t.wait().outcome, Outcome::Done { .. }));
    let stats = server.shutdown();
    assert_eq!(stats.durability_lost, 1);
    assert_eq!(stats.done, 2);
    assert_eq!(stats.offered, stats.admitted + stats.rejected());
    assert_eq!(stats.admitted, stats.completed);
    // Durable state holds exactly the two committed phrases.
    let rendered = render_recovered(&dir);
    assert_eq!(rendered.len(), 1);
    assert_eq!(rendered[0].1, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_flushes_a_final_snapshot() {
    let dir = temp_dir("drain");
    let server = Server::start(
        ServerConfig::new(machine())
            .with_durable_dir(&dir)
            .with_snapshot_every(100),
        Telemetry::disabled(),
    );
    for i in 0..3 {
        let t = server.submit("dave", &format!("let d{i} = {i}")).unwrap();
        assert!(matches!(t.wait().outcome, Outcome::Done { .. }));
    }
    let _ = server.shutdown();
    // The drain compacted: recovery replays zero phrases.
    for (name, last_seq, replayed, _) in render_recovered(&dir) {
        assert_eq!(name, "dave");
        assert_eq!(last_seq, 3);
        assert_eq!(replayed, 0, "graceful drain must leave no replay debt");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Kill-restart grid against the real binary
// ---------------------------------------------------------------------------

struct DumpTenant {
    seq: u64,
    replayed: u64,
    bindings: String,
}

/// Parses `bsml-serve --dump-state` output into per-tenant blocks.
fn parse_dump(out: &str) -> Vec<(String, DumpTenant)> {
    let mut tenants: Vec<(String, DumpTenant)> = Vec::new();
    for line in out.lines() {
        if let Some(rest) = line.strip_prefix("== ") {
            let mut fields = rest.split_whitespace();
            let name = fields.next().unwrap().to_string();
            let mut get = |key: &str| {
                let kv = fields.next().unwrap();
                kv.strip_prefix(key)
                    .and_then(|v| v.strip_prefix('='))
                    .unwrap_or_else(|| panic!("expected {key}=… in {line:?}"))
                    .to_string()
            };
            let seq: u64 = get("seq").parse().unwrap();
            let replayed: u64 = get("replayed").parse().unwrap();
            tenants.push((
                name,
                DumpTenant {
                    seq,
                    replayed,
                    bindings: String::new(),
                },
            ));
        } else if line.starts_with("recovered ") {
            break;
        } else if let Some((_, t)) = tenants.last_mut() {
            t.bindings.push_str(line);
            t.bindings.push('\n');
        }
    }
    tenants
}

fn serve(dir: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bsml-serve"))
        .arg("--durable-dir")
        .arg(dir)
        .args(args)
        .output()
        .expect("spawn bsml-serve")
}

/// One grid cell: run clean-mix load with a deterministic mid-append
/// abort (SIGKILL stand-in), restart, and check the recovered state
/// against the never-crashed oracle at the committed prefix.
fn kill_restart_cell(seed: u64, snapshot_every: u64, crash_nth: u64) {
    let dir = temp_dir(&format!("kill-{seed}-{snapshot_every}-{crash_nth}"));
    let plan = LoadPlan {
        tenants: 3,
        per_tenant: 4,
        seed,
        mix: LoadMix::clean(),
    };
    let every = snapshot_every.to_string();
    let seed_s = seed.to_string();
    let common = [
        "--tenants",
        "3",
        "--requests",
        "4",
        "--seed",
        &seed_s,
        "--deadline-ms",
        "0",
        "--clean",
        "--snapshot-every",
        &every,
    ];
    let crash = format!("append:abort:{crash_nth}:5");
    let mut args: Vec<&str> = common.to_vec();
    args.extend_from_slice(&["--inject", &crash]);
    let crashed = serve(&dir, &args);
    assert!(
        !crashed.status.success(),
        "the injected abort must kill the run: {}",
        String::from_utf8_lossy(&crashed.stdout)
    );

    // Restart with a healthy disk: recovery must succeed, admit no
    // new work, and account exactly (the binary exits 2 otherwise).
    let restarted = serve(&dir, &["--requests", "0", "--deadline-ms", "0"]);
    let stdout = String::from_utf8_lossy(&restarted.stdout);
    assert!(
        restarted.status.success(),
        "restart failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&restarted.stderr)
    );
    assert!(
        stdout.contains("durable: recovered"),
        "restart did not report recovery:\n{stdout}"
    );

    // The recovered environment must be bit-identical to the oracle
    // replaying each tenant's committed prefix.
    let dump = serve(&dir, &["--dump-state"]);
    assert!(dump.status.success());
    let tenants = parse_dump(&String::from_utf8_lossy(&dump.stdout));
    assert!(!tenants.is_empty(), "no tenants survived the crash");
    for (name, t) in &tenants {
        assert!(t.seq <= plan.per_tenant as u64);
        assert_eq!(
            t.bindings,
            oracle_bindings(&plan, name, t.seq),
            "tenant {name} diverged from the never-crashed oracle at seq {}",
            t.seq
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The seeded grid: crash points early (mid-header territory), in the
/// middle of the commit stream, and near its end, under both eager
/// and lazy compaction.
#[test]
fn kill_restart_grid_recovers_bit_identical_state() {
    for (seed, snapshot_every, crash_nth) in
        [(11, 1, 2), (11, 3, 7), (42, 1, 11), (42, 3, 4), (77, 2, 9)]
    {
        kill_restart_cell(seed, snapshot_every, crash_nth);
    }
}

/// Control cell: the same plan with no fault commits everything, and
/// the dump matches the full oracle for every tenant.
#[test]
fn no_crash_control_matches_full_oracle() {
    let dir = temp_dir("control");
    let plan = LoadPlan {
        tenants: 3,
        per_tenant: 4,
        seed: 11,
        mix: LoadMix::clean(),
    };
    let run = serve(
        &dir,
        &[
            "--tenants",
            "3",
            "--requests",
            "4",
            "--seed",
            "11",
            "--deadline-ms",
            "0",
            "--clean",
        ],
    );
    assert!(run.status.success());
    let dump = serve(&dir, &["--dump-state"]);
    assert!(dump.status.success());
    let tenants = parse_dump(&String::from_utf8_lossy(&dump.stdout));
    assert_eq!(tenants.len(), 3);
    for (name, t) in &tenants {
        assert_eq!(t.seq, 4, "tenant {name} lost commits without a crash");
        assert_eq!(t.replayed, 0, "graceful exit must leave no replay debt");
        assert_eq!(t.bindings, oracle_bindings(&plan, name, 4));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM mid-load drains gracefully: exact accounting (exit 0, with
/// shutdown rejections counted), and every tenant's final snapshot is
/// flushed so the next start replays zero phrases.
#[cfg(unix)]
#[test]
fn sigterm_drains_and_flushes() {
    let dir = temp_dir("sigterm");
    let child = Command::new(env!("CARGO_BIN_EXE_bsml-serve"))
        .args([
            "--durable-dir",
            dir.to_str().unwrap(),
            "--tenants",
            "4",
            "--requests",
            "200",
            "--seed",
            "5",
            "--deadline-ms",
            "0",
            "--clean",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn bsml-serve");
    std::thread::sleep(Duration::from_millis(300));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let out = child.wait_with_output().expect("wait for drain");
    assert!(
        out.status.success(),
        "drain must keep accounting exact:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let dump = serve(&dir, &["--dump-state"]);
    assert!(dump.status.success());
    for (name, t) in parse_dump(&String::from_utf8_lossy(&dump.stdout)) {
        assert_eq!(
            t.replayed, 0,
            "tenant {name} was not flushed by the SIGTERM drain"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
