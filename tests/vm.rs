//! Bytecode VM vs tree-walking evaluator: same values, same error
//! classes, on the whole standard library, the BSP applications, and
//! fuzzed programs. With the small-step machine this makes *three*
//! independent executions of the dynamic semantics that must agree.

use bsml_eval::{eval_closed, EvalError};
use bsml_repro::testgen::{generate, GenTy, P};
use bsml_std::{algorithms, paper_corpus, workloads, Verdict};
use bsml_vm::{compile, Vm};
use proptest::prelude::*;

fn cross_check(name: &str, src: &str, p: usize) {
    let e = bsml_syntax::parse(src).unwrap_or_else(|err| panic!("{name}: {}", err.render(src)));
    cross_check_expr(name, &e, p);
}

fn cross_check_expr(name: &str, e: &bsml_ast::Expr, p: usize) {
    let program = compile(e).unwrap_or_else(|err| panic!("{name}: compile: {err}"));
    let vm = Vm::new(p).run(&program);
    let tree = eval_closed(e, p);
    match (vm, tree) {
        (Ok(a), Ok(b)) => {
            let (a, b) = (a.to_string(), b.to_string());
            // Bytecode erases names: a closure displays `<fun>`
            // rather than `<fun x>`. Both are functions — agree.
            if a.starts_with("<fun") && b.starts_with("<fun") {
                return;
            }
            assert_eq!(a, b, "{name}: values differ at p={p}");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{name}: errors differ at p={p}"),
        (vm, tree) => panic!("{name}: outcome mismatch at p={p}: vm={vm:?} tree={tree:?}"),
    }
}

#[test]
fn vm_agrees_on_every_workload() {
    for w in workloads::all_basic() {
        for p in [1, 2, 4] {
            cross_check(&w.name, &w.source, p);
        }
    }
}

#[test]
fn vm_agrees_on_the_applications() {
    cross_check("psrs", &algorithms::psrs_sort(6).source, 4);
    cross_check("matvec", &algorithms::matvec(2, 2).source, 3);
}

#[test]
fn vm_agrees_on_the_corpus() {
    // Every *accepted* corpus program runs identically; the rejected
    // ones exercise identical *dynamic* behaviour when compiled
    // directly (the VM is as unchecked as the raw evaluator).
    for entry in paper_corpus() {
        if entry.verdict == Verdict::Accept {
            cross_check(entry.name, &entry.source, 3);
        }
    }
    cross_check(
        "example2-dynamic",
        "mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)",
        3,
    );
}

#[test]
fn vm_agrees_on_imperative_programs() {
    for src in [
        "let c = ref 0 in (for k = 1 to 20 do c := !c + k done); !c",
        "let i = ref 0 in while !i < 5 do i := !i + 1 done; !i",
        "mkpar (fun i -> let a = ref i in a := !a * 3; !a)",
        "let c = ref 0 in let bad = mkpar (fun i -> c := i) in !c",
    ] {
        cross_check(src, src, 3);
    }
}

#[test]
fn vm_error_classes_match() {
    for (src, expected) in [
        ("1 / 0", EvalError::DivisionByZero),
        (
            "mkpar (fun pid -> if mkpar (fun i -> true) at 0 then 1 else 2)",
            EvalError::NestedParallelism,
        ),
        (
            "if mkpar (fun i -> true) at 9 then 1 else 2",
            EvalError::PidOutOfRange(9, 4),
        ),
    ] {
        let e = bsml_syntax::parse(src).unwrap();
        let program = compile(&e).unwrap();
        assert_eq!(Vm::new(4).run(&program).unwrap_err(), expected, "{src}");
        assert_eq!(eval_closed(&e, 4).unwrap_err(), expected, "{src}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn vm_agrees_on_generated_parallel_programs(seed in any::<u64>()) {
        cross_check_expr("gen-par", &generate(seed, GenTy::IntPar, 4), P);
    }

    #[test]
    fn vm_agrees_on_generated_local_programs(seed in any::<u64>()) {
        cross_check_expr("gen-local", &generate(seed, GenTy::Int, 5), P);
    }
}

#[test]
fn bytecode_metrics_are_sane() {
    // Compiled code is compact: a couple of instructions per AST
    // node, and block counts bounded by the branching structure.
    for w in workloads::all_basic() {
        let ast = w.ast();
        let program = compile(&ast).unwrap();
        let nodes = ast.size();
        let instrs = program.instruction_count();
        assert!(
            instrs <= 3 * nodes,
            "{}: {instrs} instructions for {nodes} nodes",
            w.name
        );
    }
}
