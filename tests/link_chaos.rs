//! Link-partition chaos suite (DESIGN.md §16): the coordinator↔rank
//! control sockets are deliberately severed — half-open drops, hard
//! resets, silent freezes, and reconnect flaps — at exact
//! (rank, superstep) coordinates, over both the Unix-domain and TCP
//! transports, while the rank *processes* stay alive.
//!
//! The property under test is the cheapest rung of the supervision
//! ladder: a transient link fault must heal by *rejoin* — the rank
//! reconnects within the grace window and both sides replay their
//! bounded egress buffers — with **zero** fleet respawns and **zero**
//! supersteps replayed from checkpoint, and the accounting must be
//! exact: one rejoin, one replayed frame (the barrier release that
//! landed on the dead socket). Faults that exhaust the rejoin budget
//! (flap storms) or race a SIGKILL must demote cleanly to the next
//! rung, respawn-from-checkpoint, never hang.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bsml_bsp::checkpoint::{CheckpointPolicy, MemoryStore};
use bsml_bsp::distributed::DistMachine;
use bsml_bsp::faults::{LinkFault, LinkFaultKind};
use bsml_bsp::supervisor::Supervisor;
use bsml_bsp::{Bind, BspMachine, BspParams, Execution, KillSpec, ProcessConfig};
use bsml_eval::EvalError;
use bsml_obs::Telemetry;
use bsml_syntax::parse;

/// `CHAOS_SEED_BASE` (the CI matrix axis) perturbs the exchanged data:
/// every seed is a different program, but the lockstep oracle runs the
/// same program, so every assertion stays exact.
fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Two supersteps of total exchange (see `tests/chaos.rs` for why
/// drops cannot hide from the re-exchanged sums).
fn exchange_2() -> String {
    let off = 1 + seed_base();
    format!(
        "
    let r1 = put (mkpar (fun j -> fun i -> j + i + {off})) in
    let v1 = apply (mkpar (fun i -> fun t ->
               let acc = ref 0 in
               (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
               !acc),
             r1) in
    let r2 = put (apply (mkpar (fun j -> fun v -> fun i -> v + j + {off}), v1)) in
    apply (mkpar (fun i -> fun t ->
             let acc = ref 0 in
             (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
             !acc),
           r2)"
    )
}

/// Five supersteps: chained total exchanges, long enough to put a
/// committed checkpoint *behind* the fault coordinate.
fn exchange_5() -> String {
    let off = 1 + seed_base();
    format!(
        "
    let sum = mkpar (fun i -> fun t ->
        let acc = ref 0 in
        (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
        !acc) in
    let next = fun v -> put (apply (mkpar (fun j -> fun v -> fun i -> v + j + {off}), v)) in
    let v1 = apply (sum, put (mkpar (fun j -> fun i -> j + i + {off}))) in
    let v2 = apply (sum, next v1) in
    let v3 = apply (sum, next v2) in
    let v4 = apply (sum, next v3) in
    apply (sum, next v4)"
    )
}

/// The fault kinds of the heal grid. `Flap(2)` is the bounded flap: the
/// first rejoin is accepted then severed, the second heals.
const KINDS: &[LinkFaultKind] = &[
    LinkFaultKind::Drop,
    LinkFaultKind::Freeze,
    LinkFaultKind::Reset,
    LinkFaultKind::Flap(2),
];

fn kinds() -> Vec<LinkFaultKind> {
    match std::env::var("CHAOS_LINK_KIND").ok().as_deref() {
        Some("drop") => vec![LinkFaultKind::Drop],
        Some("freeze") => vec![LinkFaultKind::Freeze],
        Some("reset") => vec![LinkFaultKind::Reset],
        Some("flap") => vec![LinkFaultKind::Flap(2)],
        _ => KINDS.to_vec(),
    }
}

/// Both coordinator transports. `None` = the default Unix-domain
/// socket; `Some` = TCP loopback on an OS-assigned port.
fn binds() -> Vec<Option<Bind>> {
    match std::env::var("CHAOS_TRANSPORT").ok().as_deref() {
        Some("unix") => vec![None],
        Some("tcp") => vec![Some(Bind::Tcp("127.0.0.1:0".into()))],
        _ => vec![None, Some(Bind::Tcp("127.0.0.1:0".into()))],
    }
}

fn oracle(e: &bsml_ast::Expr, p: usize) -> (String, u64) {
    let report = BspMachine::new(BspParams::new(p, 1, 1)).run(e).unwrap();
    (report.value.to_string(), report.cost.supersteps)
}

fn rank_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_bsml-rank"))
}

/// A supervised-link config: fast heartbeats so silence (the `Freeze`
/// fault) is noticed in test time, a grace window comfortably wider
/// than a reconnect.
fn link_config(bind: Option<Bind>) -> ProcessConfig {
    ProcessConfig {
        rank_binary: Some(rank_binary()),
        bind,
        heartbeat: Some(Duration::from_millis(50)),
        link_grace: Some(Duration::from_millis(1000)),
        ..ProcessConfig::default()
    }
}

// --- baseline: TCP must change nothing about a clean run --------------

#[test]
fn tcp_runs_match_the_lockstep_oracle_and_the_thread_backend() {
    let e = parse(&exchange_2()).unwrap();
    for p in [2usize, 4] {
        let (expected_value, expected_supersteps) = oracle(&e, p);
        let threads = DistMachine::new(p).run(&e).unwrap();
        let cfg = link_config(Some(Bind::Tcp("127.0.0.1:0".into())));
        let procs = DistMachine::new(p)
            .with_execution(Execution::Processes(cfg))
            .run(&e)
            .unwrap_or_else(|err| panic!("p={p}: {err}"));
        assert_eq!(procs.value.to_string(), expected_value, "p={p}");
        assert_eq!(procs.supersteps, expected_supersteps, "p={p}");
        assert_eq!(procs.total_words_sent, threads.total_words_sent, "p={p}");
        assert_eq!(procs.work, threads.work, "p={p}");
    }
}

// --- the heal grid: one transient fault, zero respawns ----------------

/// One cell: sever rank `rank`'s link as it enters superstep `s`, and
/// demand the cheapest rung of the ladder with *exact* accounting —
/// the supervisor sees no failure at all (one attempt, nothing
/// recovered, nothing resumed), the link healed by exactly one rejoin,
/// and exactly one frame (the barrier release that landed on the dead
/// socket) came back out of the egress buffer.
fn heal_cell(bind: Option<Bind>, kind: LinkFaultKind, rank: usize, s: u64) {
    let ctx = format!("bind={bind:?} kind={kind:?} fault=({rank},{s})");
    let e = parse(&exchange_2()).unwrap();
    let p = 2;
    let (expected_value, expected_supersteps) = oracle(&e, p);
    let tel = Telemetry::enabled_logical();
    let mut cfg = link_config(bind);
    cfg.link_faults.push(LinkFault {
        rank,
        superstep: s,
        kind,
        attempt: 0,
    });
    let machine = DistMachine::new(p)
        .with_execution(Execution::Processes(cfg))
        .with_barrier_timeout(Duration::from_secs(10));
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_telemetry(tel.clone())
        .run(&e)
        .unwrap_or_else(|err| panic!("{ctx}: {err}"));

    assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
    assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");
    // Zero fleet respawns, zero checkpoint resumes: the fault never
    // reached the supervisor.
    assert_eq!(
        out.attempts, 1,
        "{ctx}: a link fault must heal in-run (recovered: {:?})",
        out.recovered
    );
    assert!(out.recovered.is_empty(), "{ctx}");
    assert_eq!(out.outcome.resumed_from, None, "{ctx}");
    assert_eq!(tel.counter_value("bsp.supersteps_replayed"), 0, "{ctx}");
    assert_eq!(tel.counter_value("bsp.retries"), 0, "{ctx}");
    // Exactly one rejoin healed the link, and exactly one frame — the
    // withheld barrier release — was replayed from the egress buffer
    // (heartbeats bypass the buffer; peers were held at the barrier,
    // so no deliveries could race into the replay window).
    assert_eq!(tel.counter_value("net.rejoins"), 1, "{ctx}");
    assert_eq!(tel.counter_value("net.egress_replayed"), 1, "{ctx}");
    assert!(
        tel.counter_value("net.link_state") >= 2,
        "{ctx}: the link must have left and re-entered Healthy"
    );
}

#[test]
fn a_single_transient_link_fault_heals_by_rejoin_with_exact_accounting() {
    for bind in binds() {
        for kind in kinds() {
            for rank in 0..2 {
                heal_cell(bind.clone(), kind, rank, 1);
            }
        }
    }
}

#[test]
fn a_link_severed_before_the_first_superstep_still_heals() {
    // Superstep 0: the sever lands right after the handshake, so the
    // egress buffer may be empty at rejoin time — the rejoin count is
    // still exact, the replay count merely bounded.
    for bind in binds() {
        let ctx = format!("bind={bind:?}");
        let e = parse(&exchange_2()).unwrap();
        let (expected_value, _) = oracle(&e, 2);
        let tel = Telemetry::enabled_logical();
        let mut cfg = link_config(bind);
        cfg.link_faults.push(LinkFault {
            rank: 0,
            superstep: 0,
            kind: LinkFaultKind::Reset,
            attempt: 0,
        });
        let machine = DistMachine::new(2)
            .with_execution(Execution::Processes(cfg))
            .with_barrier_timeout(Duration::from_secs(10));
        let out = Supervisor::new(machine)
            .with_backoff(Duration::ZERO)
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap_or_else(|err| panic!("{ctx}: {err}"));
        assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
        assert_eq!(out.attempts, 1, "{ctx}");
        assert_eq!(tel.counter_value("net.rejoins"), 1, "{ctx}");
        assert_eq!(tel.counter_value("bsp.supersteps_replayed"), 0, "{ctx}");
    }
}

// --- demotion: the ladder's next rung when rejoin cannot win ----------

#[test]
fn a_flap_storm_exhausts_the_rejoin_budget_and_demotes_to_checkpoint_respawn() {
    // A flap storm far wider than the budget: every accepted rejoin is
    // severed again, the parent runs out of patience, rejects, and the
    // rank dies — which must surface as the *second* rung (respawn
    // from the newest committed checkpoint), not a hang and not a
    // from-scratch restart.
    for bind in binds() {
        let ctx = format!("bind={bind:?}");
        let e = parse(&exchange_5()).unwrap();
        let (expected_value, expected_supersteps) = oracle(&e, 2);
        let store = Arc::new(MemoryStore::new());
        let tel = Telemetry::enabled_logical();
        let mut cfg = link_config(bind);
        cfg.rejoin_budget = Some(2);
        cfg.link_faults.push(LinkFault {
            rank: 1,
            superstep: 3,
            kind: LinkFaultKind::Flap(100),
            attempt: 0,
        });
        let machine = DistMachine::new(2)
            .with_execution(Execution::Processes(cfg))
            .with_barrier_timeout(Duration::from_secs(10))
            .with_checkpoints(CheckpointPolicy::every(2), store);
        let out = Supervisor::new(machine)
            .with_backoff(Duration::ZERO)
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap_or_else(|err| panic!("{ctx}: {err}"));

        assert_eq!(out.attempts, 2, "{ctx}: the storm must cost one respawn");
        assert!(
            matches!(
                out.recovered[0],
                EvalError::TransportFailure { rank: 1, .. }
            ),
            "{ctx}: expected rank 1's death, got {:?}",
            out.recovered[0]
        );
        assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
        assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");
        // Rung two, precisely: resume from the checkpoint at 2, replay
        // the one superstep between it and the fault coordinate.
        assert_eq!(out.outcome.resumed_from, Some(2), "{ctx}");
        assert_eq!(tel.counter_value("bsp.supersteps_replayed"), 1, "{ctx}");
        // No rejoin ever *completed* — every accepted reconnect was
        // part of the storm.
        assert_eq!(tel.counter_value("net.rejoins"), 0, "{ctx}");
    }
}

#[test]
fn a_kill_racing_the_rejoin_still_converges_via_respawn() {
    // The sever and the SIGKILL land on the same coordinate: the rank
    // is killed *while* the parent would be waiting for its rejoin.
    // The reader must notice the death (not wait out the full grace
    // twice), escalate, and the supervisor must finish the job from
    // the checkpoint.
    for bind in binds() {
        let ctx = format!("bind={bind:?}");
        let e = parse(&exchange_5()).unwrap();
        let (expected_value, _) = oracle(&e, 2);
        let store = Arc::new(MemoryStore::new());
        let tel = Telemetry::enabled_logical();
        let mut cfg = link_config(bind);
        cfg.link_faults.push(LinkFault {
            rank: 1,
            superstep: 2,
            kind: LinkFaultKind::Reset,
            attempt: 0,
        });
        cfg.kills.push(KillSpec {
            rank: 1,
            superstep: 2,
            attempt: 0,
        });
        let machine = DistMachine::new(2)
            .with_execution(Execution::Processes(cfg))
            .with_barrier_timeout(Duration::from_secs(10))
            .with_checkpoints(CheckpointPolicy::every(2), store);
        let out = Supervisor::new(machine)
            .with_backoff(Duration::ZERO)
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap_or_else(|err| panic!("{ctx}: {err}"));

        assert_eq!(out.attempts, 2, "{ctx}");
        assert!(
            matches!(
                out.recovered[0],
                EvalError::TransportFailure { rank: 1, .. }
            ),
            "{ctx}: expected rank 1's death, got {:?}",
            out.recovered[0]
        );
        assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
        assert_eq!(out.outcome.resumed_from, Some(2), "{ctx}");
        assert_eq!(tel.counter_value("net.rejoins"), 0, "{ctx}");
    }
}

// --- the existing kill grid, unchanged, over TCP ----------------------

#[test]
fn sigkilled_ranks_resume_from_checkpoints_over_tcp_too() {
    // A diagonal of the process-chaos kill grid, re-run with the
    // coordinator on TCP loopback: the transport must not change one
    // number of the recovery accounting.
    let e = parse(&exchange_5()).unwrap();
    let (expected_value, expected_supersteps) = oracle(&e, 2);
    let k = 2u64;
    for s in 0..5u64 {
        let ctx = format!("tcp kill=(1,{s}) k={k}");
        let store = Arc::new(MemoryStore::new());
        let tel = Telemetry::enabled_logical();
        let mut cfg = link_config(Some(Bind::Tcp("127.0.0.1:0".into())));
        cfg.kills.push(KillSpec {
            rank: 1,
            superstep: s,
            attempt: 0,
        });
        let machine = DistMachine::new(2)
            .with_execution(Execution::Processes(cfg))
            .with_barrier_timeout(Duration::from_secs(10))
            .with_checkpoints(CheckpointPolicy::every(k), store);
        let out = Supervisor::new(machine)
            .with_backoff(Duration::ZERO)
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap_or_else(|err| panic!("{ctx}: {err}"));
        assert_eq!(out.attempts, 2, "{ctx}");
        assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
        assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");
        let committed = (s / k) * k;
        assert_eq!(
            out.outcome.resumed_from,
            (committed > 0).then_some(committed),
            "{ctx}"
        );
        assert_eq!(
            tel.counter_value("bsp.supersteps_replayed"),
            s - committed,
            "{ctx}"
        );
    }
}

// --- stale-socket startup ---------------------------------------------

#[test]
fn a_stale_coordinator_socket_is_reclaimed_but_a_live_one_is_a_typed_error() {
    use std::os::unix::net::UnixListener;

    let dir = std::env::temp_dir().join(format!(
        "bsml-link-stale-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("coord.sock");

    // A stale socket file (its listener is gone): binding there must
    // quietly reclaim it.
    drop(UnixListener::bind(&path).unwrap());
    assert!(path.exists(), "the stale file survives its listener");
    let e = parse(&exchange_2()).unwrap();
    let (expected_value, _) = oracle(&e, 2);
    let cfg = ProcessConfig {
        rank_binary: Some(rank_binary()),
        bind: Some(Bind::Unix(path.clone())),
        ..ProcessConfig::default()
    };
    let out = DistMachine::new(2)
        .with_execution(Execution::Processes(cfg))
        .run(&e)
        .expect("a stale socket must be reclaimed");
    assert_eq!(out.value.to_string(), expected_value);

    // A *live* listener on the same path: a typed refusal, not a hang
    // and not an unlink of someone else's socket.
    let live = UnixListener::bind(&path).unwrap();
    let cfg = ProcessConfig {
        rank_binary: Some(rank_binary()),
        bind: Some(Bind::Unix(path.clone())),
        ..ProcessConfig::default()
    };
    let err = DistMachine::new(2)
        .with_execution(Execution::Processes(cfg))
        .run(&e)
        .expect_err("a live socket must be refused");
    let msg = err.to_string();
    assert!(msg.contains("in use"), "unexpected refusal: {msg}");
    drop(live);
    let _ = std::fs::remove_dir_all(&dir);
}
