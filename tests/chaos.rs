//! Chaos suite: seeded fault plans against the supervised distributed
//! backend. Every cell of the (program, p, seed) grid injects exactly
//! one fault ([`FaultPlan::chaos`] guarantees it is in range), runs
//! under the [`Supervisor`] watchdog, and must
//!
//! * converge to the lockstep [`BspMachine`] oracle (value, superstep
//!   count, communication volume),
//! * account for the fault in telemetry (`bsp.faults_injected == 1`),
//! * keep the retry bookkeeping consistent (`attempts − 1` failures
//!   recorded, `bsp.retries == attempts − 1`).
//!
//! Seeds can be shifted with `CHAOS_SEED_BASE=<n>` (the CI chaos job
//! runs several bases) without touching the source.

use std::sync::Arc;
use std::time::Duration;

use bsml_bsp::checkpoint::{CheckpointPolicy, MemoryStore};
use bsml_bsp::distributed::DistMachine;
use bsml_bsp::faults::{FaultKind, FaultPlan};
use bsml_bsp::supervisor::Supervisor;
use bsml_bsp::{BspMachine, BspParams, LossyConfig, NetTuning, TransportConfig};
use bsml_obs::Telemetry;
use bsml_syntax::parse;

/// One superstep: total exchange, each rank sums all p incoming
/// messages. Every message is ≥ 1, so dropping any one strictly
/// changes some rank's sum — no drop can hide from the oracle.
const EXCHANGE_1: &str = "
    let r = put (mkpar (fun j -> fun i -> j * 7 + i + 1)) in
    apply (mkpar (fun i -> fun t ->
             let acc = ref 0 in
             (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
             !acc),
           r)";

/// Two supersteps: the round-one sums are re-exchanged and re-summed.
const EXCHANGE_2: &str = "
    let r1 = put (mkpar (fun j -> fun i -> j + i + 1)) in
    let v1 = apply (mkpar (fun i -> fun t ->
               let acc = ref 0 in
               (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
               !acc),
             r1) in
    let r2 = put (apply (mkpar (fun j -> fun v -> fun i -> v + j + 1), v1)) in
    apply (mkpar (fun i -> fun t ->
             let acc = ref 0 in
             (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
             !acc),
           r2)";

/// (source, supersteps) — the superstep count parameterises
/// [`FaultPlan::chaos`] so every generated fault is reachable.
const PROGRAMS: &[(&str, u64)] = &[(EXCHANGE_1, 1), (EXCHANGE_2, 2)];

const SEEDS_PER_BASE: u64 = 8;

fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn oracle(e: &bsml_ast::Expr, p: usize) -> (String, u64) {
    let report = BspMachine::new(BspParams::new(p, 1, 1)).run(e).unwrap();
    (report.value.to_string(), report.cost.supersteps)
}

/// Runs one grid cell and checks convergence + fault accounting.
fn chaos_cell(source: &str, supersteps: u64, p: usize, seed: u64) {
    let e = parse(source).unwrap();
    let (expected_value, expected_supersteps) = oracle(&e, p);
    assert_eq!(expected_supersteps, supersteps, "grid metadata is stale");

    let plan = FaultPlan::chaos(seed, p, supersteps);
    let fault = plan.faults()[0].kind.clone();
    let tel = Telemetry::enabled_logical();
    let machine = DistMachine::new(p)
        .with_faults(plan)
        .with_barrier_timeout(Duration::from_secs(10));
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_telemetry(tel.clone())
        .run(&e)
        .unwrap_or_else(|err| panic!("p={p} seed={seed} fault={fault:?}: {err}"));

    let ctx = format!("p={p} seed={seed} fault={fault:?}");
    assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
    assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");
    // Exactly the one planned fault fired, and every failed attempt
    // is accounted for: one recorded error and one counted retry per
    // extra attempt. (A stall injects without failing: attempts == 1.)
    assert_eq!(tel.counter_value("bsp.faults_injected"), 1, "{ctx}");
    assert_eq!(tel.counter_value("bsp.barrier_timeouts"), 0, "{ctx}");
    assert_eq!(out.recovered.len() as u32, out.attempts - 1, "{ctx}");
    assert_eq!(
        tel.counter_value("bsp.retries"),
        u64::from(out.attempts - 1),
        "{ctx}"
    );
    // Even the lossless substrate acks every data frame, so the ack
    // round-trip histogram must be populated — it is the zero point
    // the lossy grid's latencies are read against.
    let acks = tel
        .metrics()
        .histograms
        .get("net.ack_latency_polls")
        .copied()
        .unwrap_or_default();
    assert!(
        acks.count > 0,
        "{ctx}: net.ack_latency_polls must be populated on a lossless run"
    );
    assert!(acks.max >= acks.min, "{ctx}");
    if matches!(fault, FaultKind::Stall { .. }) {
        assert_eq!(out.attempts, 1, "a 1–3 ms stall must not fail: {ctx}");
    }
}

#[test]
fn supervised_runs_converge_under_seeded_faults() {
    let base = seed_base() * SEEDS_PER_BASE;
    for &(source, supersteps) in PROGRAMS {
        for p in [2, 4] {
            for seed in base..base + SEEDS_PER_BASE {
                chaos_cell(source, supersteps, p, seed);
            }
        }
    }
}

#[test]
fn crashes_at_every_coordinate_never_deadlock() {
    // The acceptance bar: an injected crash at ANY (rank, superstep)
    // surfaces as an error and the supervised replay converges — no
    // hang, no poisoned leftover state.
    let e = parse(EXCHANGE_2).unwrap();
    let p = 4;
    let (expected_value, _) = oracle(&e, p);
    for rank in 0..p {
        for superstep in 0..2 {
            let machine = DistMachine::new(p)
                .with_faults(FaultPlan::new().crash(rank, superstep))
                .with_barrier_timeout(Duration::from_secs(10));
            let out = Supervisor::new(machine)
                .with_backoff(Duration::ZERO)
                .run(&e)
                .unwrap_or_else(|err| panic!("crash({rank}, {superstep}): {err}"));
            assert_eq!(out.attempts, 2, "crash({rank}, {superstep})");
            assert_eq!(out.outcome.value.to_string(), expected_value);
        }
    }
}

#[test]
fn watchdog_converts_stalls_into_timeouts_and_recovers() {
    // A stall much longer than the watchdog trips BarrierTimeout on
    // the first attempt; the retry runs clean. The counters must show
    // both the injected fault and the timeout.
    let e = parse(EXCHANGE_1).unwrap();
    let tel = Telemetry::enabled_logical();
    let machine = DistMachine::new(4)
        .with_faults(FaultPlan::new().stall(2, 0, Duration::from_millis(500)))
        .with_barrier_timeout(Duration::from_millis(60));
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_telemetry(tel.clone())
        .run(&e)
        .unwrap();
    assert_eq!(out.attempts, 2);
    assert!(
        out.recovered
            .iter()
            .any(|err| matches!(err, bsml_eval::EvalError::BarrierTimeout { .. })),
        "expected a BarrierTimeout, got {:?}",
        out.recovered
    );
    assert_eq!(tel.counter_value("bsp.faults_injected"), 1);
    assert!(tel.counter_value("bsp.barrier_timeouts") >= 1);
    assert_eq!(out.outcome.value.to_string(), oracle(&e, 4).0);
}

/// Five supersteps: chained total exchanges, each round re-exchanging
/// the previous round's per-rank sums. Long enough that every
/// checkpoint interval in the grid below has both exact-multiple and
/// mid-interval crash coordinates.
const EXCHANGE_5: &str = "
    let sum = mkpar (fun i -> fun t ->
        let acc = ref 0 in
        (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
        !acc) in
    let next = fun v -> put (apply (mkpar (fun j -> fun v -> fun i -> v + j + 1), v)) in
    let v1 = apply (sum, put (mkpar (fun j -> fun i -> j + i + 1))) in
    let v2 = apply (sum, next v1) in
    let v3 = apply (sum, next v2) in
    let v4 = apply (sum, next v3) in
    apply (sum, next v4)";

const EXCHANGE_5_SUPERSTEPS: u64 = 5;

/// Which checkpoint intervals to exercise. The CI chaos matrix runs
/// one interval per job via `CHAOS_CHECKPOINT_INTERVAL=<k>`; locally
/// (unset) the whole set runs.
fn checkpoint_intervals() -> Vec<u64> {
    match std::env::var("CHAOS_CHECKPOINT_INTERVAL")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(k) => vec![k],
        None => vec![1, 2, 4],
    }
}

/// One cell of the checkpoint grid: crash rank `rank` at superstep
/// `s` under interval `k`, and verify the *exact* recovery
/// accounting, not just convergence:
///
/// * the resume point is the last committed generation
///   `c = ⌊s/k⌋·k` (consistent-cut commits happen only at superstep
///   exit barriers that are multiples of `k`),
/// * the replay debt is exactly `s − c = s mod k` supersteps — within
///   the acceptance bound of `k + (s mod k)`,
/// * across both attempts exactly `⌊S/k⌋` generations are committed
///   (the resumed attempt re-commits nothing below the cut),
/// * the recovered value and superstep count are bit-identical to the
///   unfaulted lockstep oracle (the supervisor's oracle check stays
///   on; this re-asserts it from the outside).
fn checkpoint_cell(e: &bsml_ast::Expr, p: usize, rank: usize, s: u64, k: u64) {
    let ctx = format!("p={p} crash=({rank},{s}) k={k}");
    let (expected_value, expected_supersteps) = oracle(e, p);
    let store = Arc::new(MemoryStore::new());
    let tel = Telemetry::enabled_logical();
    let machine = DistMachine::new(p)
        .with_faults(FaultPlan::new().crash(rank, s))
        .with_barrier_timeout(Duration::from_secs(10))
        .with_checkpoints(CheckpointPolicy::every(k), store);
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_telemetry(tel.clone())
        .run(e)
        .unwrap_or_else(|err| panic!("{ctx}: {err}"));

    assert_eq!(out.attempts, 2, "{ctx}");
    assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
    assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");

    let committed = (s / k) * k;
    assert_eq!(
        out.outcome.resumed_from,
        (committed > 0).then_some(committed),
        "{ctx}"
    );
    assert_eq!(
        tel.counter_value("bsp.resumes"),
        u64::from(committed > 0),
        "{ctx}"
    );
    assert_eq!(
        tel.counter_value("bsp.supersteps_replayed"),
        s - committed,
        "{ctx}: replay debt must be exactly s mod k"
    );
    assert!(
        tel.counter_value("bsp.supersteps_replayed") <= k + s % k,
        "{ctx}: acceptance bound k + (s mod k) violated"
    );
    assert_eq!(
        tel.counter_value("bsp.checkpoints_written"),
        EXCHANGE_5_SUPERSTEPS / k,
        "{ctx}: both attempts together commit each generation once"
    );
    assert_eq!(tel.counter_value("bsp.checkpoints_corrupt"), 0, "{ctx}");
    assert!(tel.counter_value("bsp.checkpoint_bytes") > 0, "{ctx}");
}

#[test]
fn checkpointed_crashes_replay_exactly_s_mod_k_supersteps() {
    let p = 4;
    let e = parse(EXCHANGE_5).unwrap();
    for k in checkpoint_intervals() {
        for rank in 0..p {
            for s in 0..EXCHANGE_5_SUPERSTEPS {
                checkpoint_cell(&e, p, rank, s, k);
            }
        }
    }
}

// --- reliable delivery under a lossy transport (DESIGN.md §10) --------

/// The headline perturbation rate (permille) of the lossy grid. The
/// CI `transport-chaos` matrix sweeps it via `CHAOS_LOSS_PERMILLE`;
/// locally (unset) the grid runs at the acceptance bar of 20%.
fn loss_permille() -> u16 {
    std::env::var("CHAOS_LOSS_PERMILLE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// Runs one lossy-grid cell under the supervisor (its lockstep-oracle
/// cross-check stays on) with a deliberately short watchdog, asserts
/// the run converged on the **first** attempt — the reliable layer,
/// not the retry ladder, must absorb in-budget loss — and returns the
/// telemetry for accounting assertions.
fn lossy_cell(source: &str, p: usize, cfg: LossyConfig, ctx: &str) -> Telemetry {
    let e = parse(source).unwrap();
    let (expected_value, expected_supersteps) = oracle(&e, p);
    let tel = Telemetry::enabled_logical();
    let machine = DistMachine::new(p)
        .with_transport(TransportConfig::Lossy(cfg))
        .with_barrier_timeout(Duration::from_secs(5));
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_telemetry(tel.clone())
        .run(&e)
        .unwrap_or_else(|err| panic!("{ctx}: {err}"));
    assert_eq!(
        out.attempts, 1,
        "{ctx}: retransmission must absorb in-budget loss without a retry"
    );
    assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
    assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");
    tel
}

#[test]
fn lossy_transport_grid_converges_without_retries() {
    // The acceptance grid: program × p × seed, with every perturbation
    // (drop, reorder, duplicate, corrupt, delay) armed at once. Each
    // cell must terminate with the oracle's exact value and zero
    // supervisor retries.
    let rate = loss_permille();
    let base = seed_base() * SEEDS_PER_BASE;
    for &(source, _) in PROGRAMS {
        for p in [2usize, 4] {
            for seed in base..base + 4 {
                let cfg = LossyConfig::new(seed ^ 0xC4A0_5EED)
                    .drop(rate)
                    .reorder(rate)
                    .duplicate(rate)
                    .corrupt(rate)
                    .delay(rate);
                let ctx = format!("p={p} seed={seed} rate={rate}‰");
                lossy_cell(source, p, cfg, &ctx);
            }
        }
    }
}

#[test]
fn dropped_frames_are_retransmitted_and_accounted() {
    // Drop-only cells, exact accounting: a frame needing N
    // transmissions to get through was dropped N−1 times, and every
    // arrived data transmission is acked — so across the run,
    // injected drops never exceed retransmissions.
    let base = seed_base() * SEEDS_PER_BASE;
    for seed in base..base + 4 {
        let ctx = format!("drop-only seed={seed}");
        let tel = lossy_cell(
            EXCHANGE_2,
            4,
            LossyConfig::new(seed ^ 0xD809).drop(250),
            &ctx,
        );
        let lost = tel.counter_value("net.frames_lost");
        let retransmits = tel.counter_value("net.retransmits");
        assert!(
            retransmits >= lost,
            "{ctx}: {lost} frames lost but only {retransmits} retransmissions"
        );
        assert!(tel.counter_value("net.frames_sent") > 0, "{ctx}");
        assert_eq!(tel.counter_value("net.corrupt_frames"), 0, "{ctx}");
    }
}

#[test]
fn reordering_and_delay_alone_cause_no_duplicates() {
    // With nothing lost and a patient retransmission deadline, delayed
    // and reordered frames are simply awaited: no retransmissions, so
    // nothing to suppress as duplicate and nothing corrupt — the
    // suppression counters must be exactly zero.
    let e = parse(EXCHANGE_2).unwrap();
    let (expected_value, _) = oracle(&e, 4);
    let base = seed_base() * SEEDS_PER_BASE;
    for seed in base..base + 4 {
        let tel = Telemetry::enabled_logical();
        let machine = DistMachine::new(4)
            .with_transport(TransportConfig::Lossy(
                LossyConfig::new(seed ^ 0xF00D).reorder(400).delay(400),
            ))
            .with_net_tuning(NetTuning {
                // Patient: a delayed frame (it surfaces within a few
                // polls) never looks lost, keeping the assertion exact.
                retransmit_after: 10_000,
                ..NetTuning::default()
            })
            .with_barrier_timeout(Duration::from_secs(5))
            .with_telemetry(tel.clone());
        let out = machine
            .run(&e)
            .unwrap_or_else(|err| panic!("seed={seed}: {err}"));
        assert_eq!(out.value.to_string(), expected_value, "seed={seed}");
        assert_eq!(tel.counter_value("net.retransmits"), 0, "seed={seed}");
        assert_eq!(tel.counter_value("net.dups_dropped"), 0, "seed={seed}");
        assert_eq!(tel.counter_value("net.corrupt_frames"), 0, "seed={seed}");
        assert_eq!(tel.counter_value("net.frames_lost"), 0, "seed={seed}");
    }
}

#[test]
fn out_of_budget_loss_fails_loudly_and_supervisor_recovers() {
    // Total loss exhausts the retransmit budget: the attempt fails
    // with TransportFailure — never a hang, never a wrong answer. With
    // the chaos armed only for attempt 0, the supervised retry runs on
    // the clean fast path and converges.
    let e = parse(EXCHANGE_1).unwrap();
    let (expected_value, _) = oracle(&e, 4);
    let machine = DistMachine::new(4)
        .with_transport(TransportConfig::Lossy(
            LossyConfig::new(99).drop(1000).armed_attempts(1),
        ))
        .with_net_tuning(NetTuning {
            retransmit_after: 2,
            retransmit_budget: 5,
            poll_sleep: Duration::ZERO,
            ..NetTuning::default()
        })
        .with_barrier_timeout(Duration::from_secs(10));
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .run(&e)
        .unwrap();
    assert_eq!(out.attempts, 2);
    assert!(
        matches!(
            out.recovered[0],
            bsml_eval::EvalError::TransportFailure { .. }
        ),
        "expected a TransportFailure, got {:?}",
        out.recovered
    );
    assert_eq!(out.outcome.value.to_string(), expected_value);
}

#[test]
fn lossy_transport_composes_with_checkpoint_resume() {
    // A crash under a lossy transport: attempt 0 heals frame loss via
    // retransmission right up to the injected crash at superstep 3,
    // the retry resumes from the committed generation 2 (k = 2), and
    // the resumed attempt — chaos still armed, reseeded per attempt —
    // replays the cut and converges through the lossy network.
    let e = parse(EXCHANGE_5).unwrap();
    let p = 4;
    let (expected_value, expected_supersteps) = oracle(&e, p);
    let base = seed_base() * SEEDS_PER_BASE;
    for seed in base..base + 2 {
        let ctx = format!("seed={seed}");
        let tel = Telemetry::enabled_logical();
        let machine = DistMachine::new(p)
            .with_faults(FaultPlan::new().crash(2, 3))
            .with_transport(TransportConfig::Lossy(
                LossyConfig::new(seed ^ 0xBEEF)
                    .drop(150)
                    .duplicate(150)
                    .corrupt(150),
            ))
            .with_barrier_timeout(Duration::from_secs(10))
            .with_checkpoints(CheckpointPolicy::every(2), Arc::new(MemoryStore::new()));
        let out = Supervisor::new(machine)
            .with_backoff(Duration::ZERO)
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap_or_else(|err| panic!("{ctx}: {err}"));
        assert_eq!(out.attempts, 2, "{ctx}");
        assert_eq!(out.outcome.resumed_from, Some(2), "{ctx}");
        assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
        assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");
        assert_eq!(tel.counter_value("bsp.checkpoints_corrupt"), 0, "{ctx}");
    }
}

#[test]
fn checkpointing_composes_with_seeded_chaos() {
    // The original chaos property — converge under an arbitrary
    // seeded fault — must keep holding when checkpoint resume is on.
    let base = seed_base() * SEEDS_PER_BASE;
    let e = parse(EXCHANGE_2).unwrap();
    let (expected_value, _) = oracle(&e, 4);
    for k in checkpoint_intervals() {
        for seed in base..base + SEEDS_PER_BASE {
            let plan = FaultPlan::chaos(seed, 4, 2);
            let machine = DistMachine::new(4)
                .with_faults(plan)
                .with_barrier_timeout(Duration::from_secs(10))
                .with_checkpoints(CheckpointPolicy::every(k), Arc::new(MemoryStore::new()));
            let out = Supervisor::new(machine)
                .with_backoff(Duration::ZERO)
                .run(&e)
                .unwrap_or_else(|err| panic!("k={k} seed={seed}: {err}"));
            assert_eq!(
                out.outcome.value.to_string(),
                expected_value,
                "k={k} seed={seed}"
            );
        }
    }
}
