//! End-to-end postmortem pipeline (DESIGN.md §12): a supervised crash
//! leaves a checksummed flight-recorder bundle on disk, the bundle is
//! byte-for-byte reproducible under the same seed, and the analyzer
//! localizes the failure to the exact injected (rank, superstep) —
//! for a crash, for total message loss, and for a barrier timeout
//! whose `EvalError` carries no rank at all. On a clean run the
//! reconstructed timeline must match the lockstep oracle's cost
//! figures exactly.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use bsml_bsp::distributed::DistMachine;
use bsml_bsp::faults::FaultPlan;
use bsml_bsp::supervisor::Supervisor;
use bsml_bsp::{BspMachine, BspParams, LossyConfig, NetTuning, PostmortemBundle, TransportConfig};
use bsml_syntax::parse;

/// One superstep: total exchange, each rank sums all p incoming
/// messages (the chaos suite's `EXCHANGE_1`).
const EXCHANGE_1: &str = "
    let r = put (mkpar (fun j -> fun i -> j * 7 + i + 1)) in
    apply (mkpar (fun i -> fun t ->
             let acc = ref 0 in
             (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
             !acc),
           r)";

/// Two supersteps: the round-one sums are re-exchanged and re-summed.
const EXCHANGE_2: &str = "
    let r1 = put (mkpar (fun j -> fun i -> j + i + 1)) in
    let v1 = apply (mkpar (fun i -> fun t ->
               let acc = ref 0 in
               (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
               !acc),
             r1) in
    let r2 = put (apply (mkpar (fun j -> fun v -> fun i -> v + j + 1), v1)) in
    apply (mkpar (fun i -> fun t ->
             let acc = ref 0 in
             (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
             !acc),
           r2)";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bsml-postmortem-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs one supervised attempt grid against `machine`, expecting the
/// first attempt to fail and the retry to converge, and returns the
/// single postmortem bundle it left behind.
fn supervised_bundle(machine: DistMachine, dir: &PathBuf, e: &bsml_ast::Expr) -> PostmortemBundle {
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_postmortem(dir)
        .run(e)
        .expect("the supervised retry converges");
    assert_eq!(out.attempts, 2, "exactly the first attempt fails");
    assert_eq!(
        out.postmortems.len(),
        1,
        "one failed attempt, one black box"
    );
    PostmortemBundle::load(&out.postmortems[0]).expect("the bundle on disk loads and verifies")
}

#[test]
fn crashed_run_writes_a_byte_identical_golden_bundle() {
    // The flight recorder stamps events with *logical* clocks only,
    // so the same seeded crash must produce the same bundle, byte for
    // byte, on every run — the golden-file property that makes
    // postmortems diffable across CI runs.
    let e = parse(EXCHANGE_1).unwrap();
    let dirs = [temp_dir("golden-a"), temp_dir("golden-b")];
    let mut bytes = Vec::new();
    for dir in &dirs {
        let machine = DistMachine::new(2)
            .with_faults(FaultPlan::new().crash(1, 0))
            .with_barrier_timeout(Duration::from_secs(10))
            .with_flight_recorder(64);
        let bundle = supervised_bundle(machine, dir, &e);

        assert_eq!(bundle.p, 2);
        assert_eq!(bundle.attempt, 0);
        assert!(!bundle.error.is_empty());
        assert_eq!(bundle.error_rank, Some(1));
        assert_eq!(bundle.error_superstep, Some(0));

        // The analyzer pinpoints the injected coordinate from the
        // FaultFired event in rank 1's ring.
        let analysis = bundle.analyze();
        assert!(
            analysis.is_causally_consistent(),
            "violations: {:?}",
            analysis.violations
        );
        let failure = analysis.failure.as_ref().expect("failure localized");
        assert_eq!((failure.rank, failure.superstep), (1, 0));

        let entries: Vec<_> = fs::read_dir(dir).unwrap().collect();
        assert_eq!(entries.len(), 1, "exactly one bundle file written");
        bytes.push(fs::read(entries[0].as_ref().unwrap().path()).unwrap());
    }
    assert_eq!(
        bytes[0], bytes[1],
        "the same seeded crash must reproduce the bundle byte-for-byte"
    );
    for dir in &dirs {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn total_loss_writes_an_analyzable_bundle() {
    // 100% frame loss exhausts the retransmit budget: the attempt
    // fails with TransportFailure, whose (rank, superstep) coordinate
    // lands in the bundle header and in the analyzer's verdict.
    let e = parse(EXCHANGE_1).unwrap();
    let dir = temp_dir("total-loss");
    let machine = DistMachine::new(4)
        .with_transport(TransportConfig::Lossy(
            LossyConfig::new(99).drop(1000).armed_attempts(1),
        ))
        .with_net_tuning(NetTuning {
            retransmit_after: 2,
            retransmit_budget: 5,
            poll_sleep: Duration::ZERO,
            ..NetTuning::default()
        })
        .with_barrier_timeout(Duration::from_secs(10))
        .with_flight_recorder(4096);
    let bundle = supervised_bundle(machine, &dir, &e);

    assert!(bundle.error.contains("transport"), "{}", bundle.error);
    assert_eq!(bundle.error_superstep, Some(0));
    let analysis = bundle.analyze();
    // Frames were sent and retransmitted but never received; that is
    // starvation, not causal inconsistency.
    assert!(
        analysis.is_causally_consistent(),
        "violations: {:?}",
        analysis.violations
    );
    let failure = analysis.failure.as_ref().expect("failure localized");
    assert_eq!(Some(failure.rank as u64), bundle.error_rank);
    assert_eq!(failure.superstep, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn barrier_timeout_bundle_localizes_the_stalled_rank() {
    // A BarrierTimeout carries a superstep but *no rank* — the
    // analyzer must still pinpoint the stalled rank, because the
    // stall's FaultFired event is in that rank's ring. The machine
    // has no explicit flight recorder: configuring a postmortem
    // directory arms it automatically.
    let e = parse(EXCHANGE_1).unwrap();
    let dir = temp_dir("stall");
    let machine = DistMachine::new(4)
        .with_faults(FaultPlan::new().stall(2, 0, Duration::from_millis(500)))
        .with_barrier_timeout(Duration::from_millis(60));
    let bundle = supervised_bundle(machine, &dir, &e);

    assert_eq!(bundle.error_rank, None, "a timeout names no rank");
    assert_eq!(bundle.error_superstep, Some(0));
    let analysis = bundle.analyze();
    assert!(
        analysis.is_causally_consistent(),
        "violations: {:?}",
        analysis.violations
    );
    let failure = analysis.failure.as_ref().expect("failure localized");
    assert_eq!(
        (failure.rank, failure.superstep),
        (2, 0),
        "the stalled rank is recovered from its own FaultFired event"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn clean_run_timeline_matches_the_lockstep_cost_model() {
    // The acceptance bar for the analyzer's BSP parameter estimation:
    // on an unfaulted run the reconstructed per-superstep (w, h⁺, h⁻)
    // must equal the lockstep oracle's RunReport *exactly* — same
    // reduction-step counts, same words on the wire, per rank.
    for p in [2usize, 4] {
        let e = parse(EXCHANGE_2).unwrap();
        let report = BspMachine::new(BspParams::new(p, 1, 1)).run(&e).unwrap();
        let machine = DistMachine::new(p).with_flight_recorder(4096);
        let (result, log) = machine.run_recorded(&e, 0);
        let out = result.expect("clean run succeeds");
        assert_eq!(out.value.to_string(), report.value.to_string());

        let bundle =
            PostmortemBundle::new(p, 0, String::new(), None, None, log.expect("recorder on"));
        let analysis = bundle.analyze();
        assert!(analysis.failure.is_none(), "clean run localizes nothing");
        assert!(
            analysis.is_causally_consistent(),
            "p={p} violations: {:?}",
            analysis.violations
        );
        assert!(
            analysis.matches_report(&report),
            "p={p} diffs: {:#?}",
            analysis.diff_report(&report)
        );
        // And the human-readable rendering prices each superstep once
        // machine parameters are supplied.
        let rendered = analysis.render(Some(&report.params));
        assert!(rendered.contains("causal consistency: OK"), "{rendered}");
        assert!(rendered.contains("cost="), "{rendered}");
    }
}

#[test]
fn flight_recorder_eviction_is_reported_not_fatal() {
    // A tiny ring under a real exchange must evict (dropped > 0) yet
    // still drain, encode, and analyze without tripping spurious
    // causal violations: the analyzer treats a rank with evictions as
    // inconclusive rather than inventing MissingSend findings.
    let e = parse(EXCHANGE_2).unwrap();
    let machine = DistMachine::new(4).with_flight_recorder(2);
    let (result, log) = machine.run_recorded(&e, 0);
    result.expect("clean run succeeds");
    let log = log.expect("recorder on");
    assert!(
        log.ranks.iter().any(|r| r.dropped > 0),
        "capacity 2 must evict on a 2-superstep exchange"
    );
    for r in &log.ranks {
        assert!(r.events.len() <= 2);
    }
    let bundle = PostmortemBundle::new(4, 0, String::new(), None, None, log);
    let analysis = PostmortemBundle::decode(&bundle.encode())
        .unwrap()
        .analyze();
    assert!(
        analysis.is_causally_consistent(),
        "violations: {:?}",
        analysis.violations
    );
}
