//! The block-wise collectives (`scatter`, `gather`, `parfun`,
//! two-phase broadcast): correctness against references and —
//! the headline — the *measured* direct-vs-two-phase broadcast
//! crossover matching the cost model's prediction.

use bsml_bsp::{formulas, BspMachine, BspParams, CostSummary};
use bsml_eval::eval_closed;
use bsml_std::workloads;

fn run_value(src: &bsml_std::Program, p: usize) -> String {
    eval_closed(&src.ast(), p)
        .unwrap_or_else(|e| panic!("{} at p={p}: {e}", src.name))
        .to_string()
}

fn run_cost(p: usize, program: &bsml_std::Program) -> CostSummary {
    BspMachine::new(BspParams::new(p, 1, 1))
        .run(&program.ast())
        .unwrap_or_else(|e| panic!("{} at p={p}: {e}", program.name))
        .cost
}

#[test]
fn parfun_is_pointwise_map() {
    assert_eq!(run_value(&workloads::parfun_square(), 4), "<|1, 4, 9, 16|>");
}

#[test]
fn gather_collects_at_the_root_only() {
    assert_eq!(
        run_value(&workloads::gather(1), 4),
        "<|[], [0; 1; 4; 9], [], []|>"
    );
    // Gather is one (p−1)-relation.
    let cost = run_cost(4, &workloads::gather(1));
    assert_eq!(cost.supersteps, 1);
    assert_eq!(cost.h_relation, 3);
}

#[test]
fn scatter_splits_balanced_chunks() {
    // 9 elements over 3 procs: chunks of 3.
    assert_eq!(
        run_value(&workloads::scatter(0, 9), 3),
        "<|[0; 1; 2], [3; 4; 5], [6; 7; 8]|>"
    );
    // 5 elements over 3 procs: ⌈5/3⌉ = 2 ⇒ 2/2/1.
    let v = run_value(&workloads::scatter(0, 5), 3);
    assert_eq!(v, "<|[0; 1], [2; 3], [4]|>");
}

#[test]
fn two_phase_bcast_agrees_with_direct() {
    for p in [1, 2, 3, 4, 8] {
        let two = run_value(&workloads::bcast_two_phase_payload(0, 8), p);
        let direct = run_value(&workloads::bcast_direct_payload(0, 8), p);
        assert_eq!(two, direct, "p={p}");
    }
}

#[test]
fn two_phase_bcast_is_two_supersteps() {
    for p in [2, 4, 8] {
        let cost = run_cost(p, &workloads::bcast_two_phase_payload(0, 64));
        assert_eq!(cost.supersteps, 2, "p={p}");
    }
}

#[test]
fn two_phase_moves_fewer_words_for_large_payloads() {
    let p = 8;
    let s = 256;
    let direct = run_cost(p, &workloads::bcast_direct_payload(0, s));
    let two = run_cost(p, &workloads::bcast_two_phase_payload(0, s));
    // Direct: H = (p−1)·(s+1). Two-phase: ≈ 2·(p−1)·(s/p + 1).
    assert!(
        two.h_relation < direct.h_relation / 2,
        "two-phase H = {} vs direct H = {}",
        two.h_relation,
        direct.h_relation
    );
}

#[test]
fn measured_crossover_matches_the_cost_model() {
    // Price *measured* costs on a communication-bound machine
    // (g = 1000, l = 50 000, p = 8): the winner must flip from direct
    // (small payloads pay two-phase's extra barrier) to two-phase
    // (large payloads pay direct's (p−1)·s words). The machine must
    // be communication-dominant because measured W includes the list
    // surgery (take/drop/append) two-phase does — real work a real
    // implementation also pays.
    let p = 8;
    let params = BspParams::new(p, 1000, 50_000);
    let priced = |w: &bsml_std::Program| run_cost(p, w).as_cost().time(&params);

    let direct_small = priced(&workloads::bcast_direct_payload(0, 4));
    let two_small = priced(&workloads::bcast_two_phase_payload(0, 4));
    assert!(
        direct_small < two_small,
        "direct should win small payloads: {direct_small} vs {two_small}"
    );

    let direct_large = priced(&workloads::bcast_direct_payload(0, 512));
    let two_large = priced(&workloads::bcast_two_phase_payload(0, 512));
    assert!(
        two_large < direct_large,
        "two-phase should win large payloads: {two_large} vs {direct_large}"
    );

    // And the closed-form prediction agrees on the ordering at both
    // ends (absolute W differs — interpreter steps vs abstract ops).
    let predict = |s: u64| {
        (
            formulas::bcast_direct(p, s + 1).time_gl(1000, 50_000),
            formulas::bcast_two_phase(p, s + 1).time_gl(1000, 50_000),
        )
    };
    let (d4, t4) = predict(4);
    assert!(d4 < t4);
    let (d512, t512) = predict(512);
    assert!(t512 < d512);
}

#[test]
fn collectives_cross_machine_agreement() {
    use bsml_bsp::distributed::DistMachine;
    for w in [
        workloads::bcast_two_phase_payload(0, 8),
        workloads::gather(0),
        workloads::scatter(1, 7),
        workloads::parfun_square(),
    ] {
        for p in [2, 4] {
            let lockstep = BspMachine::new(BspParams::new(p, 1, 1))
                .run(&w.ast())
                .unwrap_or_else(|e| panic!("{} lockstep: {e}", w.name));
            let dist = DistMachine::new(p)
                .run(&w.ast())
                .unwrap_or_else(|e| panic!("{} distributed: {e}", w.name));
            assert_eq!(
                lockstep.value.to_string(),
                dist.value.to_string(),
                "{} p={p}",
                w.name
            );
            assert_eq!(lockstep.cost.supersteps, dist.supersteps);
        }
    }
}
