//! Toplevel-module coverage: parsing, folding to expressions,
//! typing and execution of multi-declaration programs.

use bsml_bsp::BspParams;
use bsml_core::session::Session;
use bsml_eval::eval_closed;
use bsml_infer::infer;
use bsml_syntax::parse_module;

#[test]
fn a_realistic_program_file() {
    let src = "
        (* A small BSP program file. *)
        let replicate x = mkpar (fun pid -> x) ;;

        let rec sum_to n = if n = 0 then 0 else n + sum_to (n - 1) ;;

        let exchange v =
          put (apply (mkpar (fun i -> fun x -> fun dst -> x), v)) ;;

        let totals =
          let local = mkpar (fun i -> sum_to (i + 3)) in
          let msgs = exchange local in
          apply (mkpar (fun i -> fun f ->
                   let acc = ref 0 in
                   (for j = 0 to bsp_p () - 1 do acc := !acc + f j done);
                   !acc),
                 msgs) ;;

        totals";
    let m = parse_module(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    assert_eq!(m.decls.len(), 4);
    let e = m.to_expr().expect("has a body");
    let inf = infer(&e).unwrap_or_else(|err| panic!("{}", err.render(src)));
    assert_eq!(inf.ty.to_string(), "int par");
    let v = eval_closed(&e, 4).unwrap();
    // sum_to(3..6) = 6+10+15+21 = 52 on every processor.
    assert_eq!(v.to_string(), "<|52, 52, 52, 52|>");
}

#[test]
fn the_same_file_loads_into_a_session() {
    let src = "
        let replicate x = mkpar (fun pid -> x) ;;
        let rec sum_to n = if n = 0 then 0 else n + sum_to (n - 1) ;;
        let exchange v =
          put (apply (mkpar (fun i -> fun x -> fun dst -> x), v)) ;;
        let totals =
          let local = mkpar (fun i -> sum_to (i + 3)) in
          let msgs = exchange local in
          apply (mkpar (fun i -> fun f ->
                   let acc = ref 0 in
                   (for j = 0 to bsp_p () - 1 do acc := !acc + f j done);
                   !acc),
                 msgs) ;;
        totals";
    let mut s = Session::new(BspParams::new(4, 10, 1000));
    let events = s.load(src).unwrap();
    assert_eq!(events.len(), 5);
    assert_eq!(events[4].value().unwrap().to_string(), "<|52, 52, 52, 52|>");
    // The exchange costs one superstep, evaluated twice (once for
    // the decl, once — no: the decl bound the already-computed
    // value, the body just references it).
    assert_eq!(s.total_cost().supersteps, 1);
    assert_eq!(
        s.scheme_of("exchange").unwrap().to_string(),
        "∀'a.['a par -> (int -> 'a) par / L('a)]"
    );
    assert_eq!(s.scheme_of("sum_to").unwrap().to_string(), "int -> int");
}

#[test]
fn decls_without_body_type_but_produce_no_result() {
    let m = parse_module("let a = 1 ;; let b = a + 1 ;;").unwrap();
    assert!(m.body.is_none());
    assert!(m.to_expr().is_none());
}

#[test]
fn module_rejection_points_into_the_file() {
    let src = "let ok = 1 ;;\nlet bad = fst (1, mkpar (fun i -> i)) ;;";
    let mut s = Session::new(BspParams::new(2, 1, 1));
    let err = s.load(src).unwrap_err();
    let rendered = err.render(src);
    assert!(rendered.contains("2:"), "{rendered}");
    assert!(rendered.contains("parallel nesting"), "{rendered}");
}

#[test]
fn comments_and_blank_lines_between_decls() {
    let src = "
        (* first *)
        let x = 1 ;;

        (* second, no ;; before let *)
        let y = x + 1

        ;;
        y";
    let m = parse_module(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    assert_eq!(m.decls.len(), 2);
    let v = eval_closed(&m.to_expr().unwrap(), 1).unwrap();
    assert_eq!(v.to_string(), "2");
}
