//! Telemetry integration: the Chrome-trace export's golden shape, the
//! exact correspondence between superstep span fields and the BSP cost
//! model, and agreement between the lockstep and distributed backends.

use bsml_bsp::distributed::DistMachine;
use bsml_bsp::{BspMachine, BspParams};
use bsml_core::session::Session;
use bsml_obs::{FieldValue, Telemetry};
use bsml_syntax::parse;

/// One put, one if‥at‥: two supersteps plus the program tail.
const PROGRAM: &str = "let a = put (mkpar (fun j -> fun i -> j)) in
     if mkpar (fun i -> true) at 0 then mkpar (fun i -> 1) else mkpar (fun i -> 2)";

#[test]
fn superstep_spans_match_run_report_exactly() {
    let tel = Telemetry::enabled_logical();
    let params = BspParams::new(3, 2, 5);
    let machine = BspMachine::new(params).with_telemetry(tel.clone());
    let report = machine.run(&parse(PROGRAM).unwrap()).unwrap();

    let tracks = tel.tracks();
    let spans: Vec<_> = tel
        .spans()
        .into_iter()
        .filter(|s| s.name == "superstep")
        .collect();
    // One span per processor per trace record.
    assert_eq!(spans.len(), report.trace.len() * params.p);

    for s in &spans {
        let step = usize::try_from(s.index.expect("indexed")).unwrap();
        let rec = &report.trace[step];
        let track_name = &tracks[s.track as usize];
        let i: usize = track_name[1..].parse().expect("track is p<i>");
        assert_eq!(s.field("w"), Some(&FieldValue::U64(rec.work[i])), "{s:?}");
        assert_eq!(s.field("h_plus"), Some(&FieldValue::U64(rec.sent[i])));
        assert_eq!(s.field("h_minus"), Some(&FieldValue::U64(rec.received[i])));
        let expected_barrier = match rec.barrier {
            bsml_bsp::Barrier::Put => "put",
            bsml_bsp::Barrier::IfAt => "ifat",
            bsml_bsp::Barrier::ProgramEnd => "end",
        };
        assert_eq!(
            s.field("barrier"),
            Some(&FieldValue::Str(expected_barrier.to_string()))
        );
        // The span duration is exactly the processor's local work.
        assert_eq!(s.duration_us(), rec.work[i]);
    }

    // Counters mirror the cost summary.
    assert_eq!(tel.counter_value("bsp.supersteps"), report.cost.supersteps);
    assert_eq!(tel.counter_value("bsp.puts"), 1);
    assert_eq!(tel.counter_value("bsp.ifats"), 1);
    let total_sent: u64 = report.trace.iter().flat_map(|r| r.sent.iter()).sum();
    assert_eq!(tel.counter_value("bsp.words_sent"), total_sent);
}

fn traced_session_output() -> (Telemetry, String) {
    let tel = Telemetry::enabled_logical();
    let mut s = Session::with_telemetry(BspParams::new(2, 1, 10), tel.clone());
    s.load("let v = put (mkpar (fun j -> fun i -> j)) ;; 1 + 2")
        .unwrap();
    let trace = tel.to_chrome_trace();
    (tel, trace)
}

#[test]
fn session_chrome_trace_has_golden_shape() {
    let (tel, trace) = traced_session_output();

    // Envelope.
    let lines: Vec<&str> = trace.lines().collect();
    assert_eq!(lines.first(), Some(&"{\"traceEvents\":["));
    assert_eq!(lines.last(), Some(&"]}"));

    // Thread-name metadata maps tracks to Perfetto threads: the main
    // pipeline track plus one per processor.
    for name in ["main", "p0", "p1"] {
        assert!(
            trace.contains(&format!(
                "\"thread_name\",\"tid\":{},\"args\":{{\"name\":\"{name}\"}}",
                tel.tracks().iter().position(|t| t == name).unwrap()
            )),
            "missing thread_name for {name}: {trace}"
        );
    }

    // The whole pipeline shows up as complete events.
    for span in [
        "\"load\"",
        "\"parse\"",
        "\"infer\"",
        "\"bsp.run\"",
        "\"superstep 0\"",
    ] {
        assert!(trace.contains(span), "missing {span} in {trace}");
    }

    // Counter events for the wired subsystems.
    for counter in ["infer.unifications", "bsp.supersteps"] {
        assert!(trace.contains(counter), "missing counter {counter}");
    }

    // Timestamps of complete events never regress (Perfetto requires
    // monotonic input within a stream; we sort globally).
    let mut last = 0u64;
    let mut complete_events = 0;
    for line in lines.iter().filter(|l| l.contains("\"ph\":\"X\"")) {
        let ts: u64 = line
            .split("\"ts\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.parse().ok())
            .expect("ts parses");
        assert!(ts >= last, "ts regressed: {line}");
        last = ts;
        complete_events += 1;
    }
    assert!(
        complete_events >= 8,
        "expected a rich trace, got {complete_events} events"
    );
}

#[test]
fn session_chrome_trace_is_deterministic() {
    // The logical clock makes the whole export reproducible: byte
    // identical across runs.
    let (_, first) = traced_session_output();
    let (_, second) = traced_session_output();
    assert_eq!(first, second);
}

#[test]
fn lockstep_and_distributed_telemetry_totals_agree() {
    let e = parse(PROGRAM).unwrap();
    let p = 4;

    let lockstep = Telemetry::enabled_logical();
    let report = BspMachine::new(BspParams::new(p, 1, 1))
        .with_telemetry(lockstep.clone())
        .run(&e)
        .unwrap();

    let distributed = Telemetry::enabled_logical();
    let out = DistMachine::new(p)
        .with_telemetry(distributed.clone())
        .run(&e)
        .unwrap();

    for counter in ["bsp.supersteps", "bsp.puts", "bsp.ifats", "bsp.words_sent"] {
        assert_eq!(
            lockstep.counter_value(counter),
            distributed.counter_value(counter),
            "backends disagree on {counter}"
        );
    }
    // And both agree with the structured outcomes.
    assert_eq!(
        lockstep.counter_value("bsp.supersteps"),
        report.cost.supersteps
    );
    assert_eq!(distributed.counter_value("bsp.supersteps"), out.supersteps);
    assert_eq!(
        distributed.counter_value("bsp.words_sent"),
        out.total_words_sent
    );

    // Every rank timed both barrier phases of both supersteps.
    let metrics = distributed.metrics();
    let waits = &metrics.histograms["bsp.barrier_wait_us"];
    assert_eq!(waits.count, (p as u64) * 2 * out.supersteps);
}

#[test]
fn disabled_session_records_nothing() {
    let mut s = Session::new(BspParams::new(2, 1, 10));
    s.load("put (mkpar (fun j -> fun i -> j))").unwrap();
    assert!(!s.telemetry().is_enabled());
    assert!(s.telemetry().spans().is_empty());
    assert_eq!(s.telemetry().to_jsonl(), "");
}

#[test]
fn session_events_carry_cumulative_metrics() {
    let tel = Telemetry::enabled_logical();
    let mut s = Session::with_telemetry(BspParams::new(2, 1, 10), tel);
    let first = &s.load("put (mkpar (fun j -> fun i -> j))").unwrap()[0];
    let first_puts = first.metrics().expect("telemetry on").counters["eval.puts"];
    assert_eq!(first_puts, 1);
    let second = &s.load("put (mkpar (fun j -> fun i -> j))").unwrap()[0];
    assert_eq!(second.metrics().unwrap().counters["eval.puts"], 2);

    // Sessions without telemetry expose no snapshot.
    let mut plain = Session::new(BspParams::new(2, 1, 10));
    let ev = &plain.load("1 + 1").unwrap()[0];
    assert!(ev.metrics().is_none());
}
