//! Theorem 1 (typing safety), fuzzed.
//!
//! A seeded generator produces *well-typed-by-construction* closed
//! programs mixing local computation with the four BSP primitives.
//! For every generated program we check the full chain the theorem
//! promises:
//!
//! 1. the type system accepts it,
//! 2. the big-step evaluator produces a value (never a dynamic
//!    nesting error, never a runtime type error),
//! 3. the literal small-step machine reaches a *value* normal form
//!    (never a stuck term),
//! 4. both evaluators agree on the result,
//! 5. the result's shape matches the inferred type.

use bsml_ast::Expr;
use bsml_eval::{eval_closed, smallstep, Value};
use bsml_infer::infer;
use bsml_repro::testgen::{generate, GenTy, P};
use bsml_types::Type;
use proptest::prelude::*;

fn value_matches_type(v: &Value, ty: &Type) -> bool {
    match (v, ty) {
        (Value::Int(_), Type::Int)
        | (Value::Bool(_), Type::Bool)
        | (Value::Unit, Type::Unit)
        // `nc ()` inhabits every type.
        | (Value::NoComm, _) => true,
        (Value::Vector(vs), Type::Par(inner)) => {
            vs.iter().all(|c| value_matches_type(c, inner))
        }
        (Value::Pair(a, b2), Type::Pair(ta, tb)) => {
            value_matches_type(a, ta) && value_matches_type(b2, tb)
        }
        _ => false,
    }
}

/// `true` if the program uses the §6 references extension — those
/// run on the big-step/VM semantics only (the paper's store-free
/// small-step machine covers the pure core).
fn mentions_refs(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |sub| {
        if let bsml_ast::ExprKind::Op(op) = sub.kind {
            if matches!(
                op,
                bsml_ast::Op::Ref | bsml_ast::Op::Deref | bsml_ast::Op::Assign
            ) {
                found = true;
            }
        }
    });
    found
}

fn check_theorem1(e: &Expr, expect_par: bool) {
    // 1. The type system accepts the generated program.
    let inf =
        infer(e).unwrap_or_else(|err| panic!("generated program rejected: {err}\n  program: {e}"));
    if expect_par {
        assert!(
            matches!(inf.ty, Type::Par(_)),
            "expected a par type, got {} for {e}",
            inf.ty
        );
    }

    // 2. Big-step evaluation succeeds.
    let big =
        eval_closed(e, P).unwrap_or_else(|err| panic!("big-step failed: {err}\n  program: {e}"));

    // 3./4. Small-step reaches a value and agrees — for the pure
    // fragment (the store-free machine has no rules for references;
    // ref-bearing programs are cross-checked against the bytecode VM
    // in tests/vm.rs instead).
    if !mentions_refs(e) {
        let small = smallstep::run(e, P, 5_000_000)
            .unwrap_or_else(|err| panic!("small-step failed: {err}\n  program: {e}"));
        assert!(
            bsml_ast::is_value(&small),
            "small-step normal form is not a value: {small}"
        );
        assert_eq!(
            big.to_string(),
            small.to_string(),
            "evaluator disagreement on {e}"
        );
    }

    // 5. The value inhabits the inferred type.
    assert!(
        value_matches_type(&big, &inf.ty),
        "value {big} does not match type {} for {e}",
        inf.ty
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn theorem1_for_local_programs(seed in any::<u64>()) {
        let e = generate(seed, GenTy::Int, 5);
        check_theorem1(&e, false);
    }

    #[test]
    fn theorem1_for_parallel_programs(seed in any::<u64>()) {
        let e = generate(seed, GenTy::IntPar, 4);
        check_theorem1(&e, true);
    }

    #[test]
    fn theorem1_round_trips_through_concrete_syntax(seed in any::<u64>()) {
        // Printing and re-parsing preserves typability and meaning.
        let e = generate(seed, GenTy::IntPar, 3);
        let printed = e.to_string();
        let reparsed = bsml_syntax::parse(&printed)
            .unwrap_or_else(|err| panic!("re-parse failed: {err}\n  {printed}"));
        prop_assert_eq!(&reparsed, &e);
        check_theorem1(&reparsed, true);
    }
}

#[test]
fn fixed_seeds_cover_all_constructs() {
    // A deterministic sweep so CI exercises the generator even if
    // proptest's RNG changes.
    for seed in 0..200 {
        check_theorem1(&generate(seed, GenTy::IntPar, 4), true);
        check_theorem1(&generate(seed, GenTy::Int, 5), false);
    }
}
