//! Property tests for the process-handshake control codec
//! (DESIGN.md §13), in the style of `tests/wire_props.rs`: every
//! control message round-trips the length-prefixed checksummed stream
//! format exactly, every truncation is rejected as an I/O error
//! (never a panic, never partial acceptance), `Hello` validation
//! accepts precisely the genuine article (magic + protocol version +
//! program fingerprint + rank + width all matching, rank not already
//! connected), and a stream chopped at *every* byte boundary across
//! `read` calls still reassembles into the same frame sequence — the
//! property that makes the parent/child routers immune to short
//! socket reads.

use std::io::{self, Read};

use bsml_bsp::process::validate_hello;
use bsml_bsp::validate_rejoin;
use bsml_bsp::wire::{
    read_ctl, write_ctl, CtlLedger, CtlMsg, CtlStats, CTL_MAGIC, PROTOCOL_VERSION,
};
use bsml_bsp::{Fault, FaultKind};
use bsml_eval::{EvalError, PortableValue};
use bsml_obs::{FlightEvent, TimedFlightEvent};
use proptest::collection::vec;
use proptest::prelude::*;

/// Printable-ASCII strings (program texts, error details, refusal
/// reasons — everything stringly in the protocol).
const TEXT: &str = "[ -~]{0,40}";

fn maybe_bytes() -> impl Strategy<Value = Option<Vec<u8>>> {
    prop_oneof![Just(None), vec(any::<u8>(), 0..48).prop_map(Some),]
}

fn portable_value() -> impl Strategy<Value = PortableValue> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(PortableValue::Int),
        any::<bool>().prop_map(PortableValue::Bool),
        Just(PortableValue::Unit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PortableValue::Pair(Box::new(a), Box::new(b))),
            vec(inner, 0..3).prop_map(PortableValue::Vector),
        ]
    })
}

fn eval_error() -> impl Strategy<Value = EvalError> {
    prop_oneof![
        Just(EvalError::PeerFailure),
        Just(EvalError::OutOfFuel),
        Just(EvalError::DivisionByZero),
        Just(EvalError::RecursionLimit),
        Just(EvalError::NestedParallelism),
        (any::<u64>(), 0usize..64)
            .prop_map(|(superstep, waiting)| EvalError::BarrierTimeout { superstep, waiting }),
        (0usize..64, any::<u64>())
            .prop_map(|(rank, superstep)| EvalError::InjectedFault { rank, superstep }),
        (0usize..64, any::<u64>(), TEXT).prop_map(|(rank, superstep, detail)| {
            EvalError::TransportFailure {
                rank,
                superstep,
                detail,
            }
        }),
        (0usize..64, any::<u64>(), TEXT).prop_map(|(rank, superstep, detail)| {
            EvalError::CheckpointDiverged {
                rank,
                superstep,
                detail,
            }
        }),
        TEXT.prop_map(EvalError::NotSerializable),
    ]
}

fn fault() -> impl Strategy<Value = Fault> {
    let kind = prop_oneof![
        (0usize..8, any::<u64>())
            .prop_map(|(rank, superstep)| FaultKind::Crash { rank, superstep }),
        (0usize..8, any::<u64>())
            .prop_map(|(rank, superstep)| FaultKind::Panic { rank, superstep }),
    ];
    (kind, 0u32..4).prop_map(|(kind, attempt)| Fault { kind, attempt })
}

fn ctl_stats() -> impl Strategy<Value = CtlStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(sent_words, received_words, supersteps, puts, ifats)| CtlStats {
                sent_words,
                received_words,
                supersteps,
                puts,
                ifats,
            },
        )
}

fn ctl_ledger() -> impl Strategy<Value = CtlLedger> {
    vec(any::<u64>(), 8..9).prop_map(|v| CtlLedger {
        faults_injected: v[0],
        barrier_timeouts: v[1],
        frames_sent: v[2],
        retransmits: v[3],
        dups_dropped: v[4],
        corrupt_frames: v[5],
        backpressure_waits: v[6],
        frames_lost: v[7],
    })
}

fn flight_events() -> impl Strategy<Value = Vec<TimedFlightEvent>> {
    let event = prop_oneof![
        any::<u64>().prop_map(|superstep| FlightEvent::BarrierEnter { superstep }),
        any::<u64>().prop_map(|superstep| FlightEvent::BarrierExit { superstep }),
        (any::<u64>(), any::<u64>()).prop_map(|(to, seq)| FlightEvent::AckSent { to, seq }),
    ];
    vec(
        (any::<u64>(), event).prop_map(|(lamport, event)| TimedFlightEvent { lamport, event }),
        0..4,
    )
}

fn welcome() -> impl Strategy<Value = CtlMsg> {
    (
        TEXT,
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        vec(any::<u64>(), 6..7),
        any::<u32>(),
        vec(fault(), 0..3),
        maybe_bytes(),
    )
        .prop_map(
            |(
                program,
                (fuel, barrier_timeout_ms, checkpoint_interval, flight_capacity),
                t,
                attempt,
                faults,
                resume_frame,
            )| {
                CtlMsg::Welcome {
                    program,
                    fuel,
                    barrier_timeout_ms,
                    mailbox_capacity: t[0],
                    retransmit_after: t[1],
                    retransmit_budget: t[2],
                    poll_sleep_us: t[3],
                    checkpoint_interval,
                    flight_capacity,
                    heartbeat_ms: t[4],
                    link_grace_ms: t[5],
                    attempt,
                    faults,
                    resume_frame,
                }
            },
        )
}

fn ctl_msg() -> impl Strategy<Value = CtlMsg> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            (0usize..64, 0usize..64)
        )
            .prop_map(|(magic, version, fingerprint, (rank, p))| CtlMsg::Hello {
                magic,
                version,
                fingerprint,
                rank,
                p,
            }),
        welcome(),
        TEXT.prop_map(|reason| CtlMsg::Reject { reason }),
        (0usize..64, vec(any::<u8>(), 0..64)).prop_map(|(dst, frame)| CtlMsg::Data { dst, frame }),
        vec(any::<u8>(), 0..64).prop_map(|frame| CtlMsg::Deliver { frame }),
        Just(CtlMsg::ExchangeDone),
        any::<u64>().prop_map(|total| CtlMsg::ExchangeTotal { total }),
        (any::<u64>(), maybe_bytes())
            .prop_map(|(superstep, staged)| CtlMsg::BarrierEnter { superstep, staged }),
        any::<u64>().prop_map(|superstep| CtlMsg::BarrierRelease { superstep }),
        Just(CtlMsg::Poison),
        any::<u64>().prop_map(|lamport| CtlMsg::Ping { lamport }),
        any::<u64>().prop_map(|lamport| CtlMsg::Pong { lamport }),
        (0usize..64, any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(rank, fingerprint, completed_superstep, resume_token)| CtlMsg::Rejoin {
                rank,
                fingerprint,
                completed_superstep,
                resume_token,
            }
        ),
        any::<u64>().prop_map(|resume_token| CtlMsg::RejoinOk { resume_token }),
        (eval_error(), ctl_ledger(), any::<u64>(), flight_events()).prop_map(
            |(error, ledger, flight_dropped, flight)| CtlMsg::Fatal {
                error,
                ledger,
                flight_dropped,
                flight,
            }
        ),
        (
            portable_value(),
            ctl_stats(),
            any::<u64>(),
            ctl_ledger(),
            any::<u64>(),
            flight_events()
        )
            .prop_map(|(value, stats, work, ledger, flight_dropped, flight)| {
                CtlMsg::Done {
                    value,
                    stats,
                    work,
                    ledger,
                    flight_dropped,
                    flight,
                }
            }),
    ]
}

/// A reader that hands out at most `chunk` bytes per `read` call —
/// the adversarial short-read socket.
struct Chopped<'a> {
    bytes: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for Chopped<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.bytes.len() - self.pos);
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ctl_messages_roundtrip(msg in ctl_msg()) {
        let mut bytes = Vec::new();
        write_ctl(&mut bytes, &msg).expect("vec write");
        let back = read_ctl(&mut bytes.as_slice()).expect("self-encoded ctl decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn every_ctl_truncation_is_rejected(msg in ctl_msg()) {
        // Cutting the stream anywhere — inside the length prefix or
        // inside the body — must surface as an I/O error the routers
        // treat as a dead peer. Never a panic, never a short parse.
        let mut bytes = Vec::new();
        write_ctl(&mut bytes, &msg).expect("vec write");
        for cut in 0..bytes.len() {
            prop_assert!(
                read_ctl(&mut &bytes[..cut]).is_err(),
                "accepted a control frame truncated to {cut} of {} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn ctl_bit_flips_never_panic(msg in ctl_msg(), flip in any::<usize>()) {
        // The control checksum rejects corruption; whatever the
        // decoder returns, it must *return*.
        let mut bytes = Vec::new();
        write_ctl(&mut bytes, &msg).expect("vec write");
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let _ = read_ctl(&mut bytes.as_slice());
    }

    #[test]
    fn hello_validation_accepts_exactly_the_matching_tuple(
        magic in prop_oneof![Just(CTL_MAGIC), any::<u64>()],
        version in prop_oneof![Just(PROTOCOL_VERSION), any::<u32>()],
        claimed in prop_oneof![Just(0xF00Du64), any::<u64>()],
        rank in 0usize..6,
        p in 1usize..5,
        taken in vec(any::<bool>(), 4..5),
    ) {
        let hello = CtlMsg::Hello { magic, version, fingerprint: claimed, rank, p };
        let expected_fingerprint = 0xF00Du64;
        let expected_p = 4usize;
        let genuine = magic == CTL_MAGIC
            && version == PROTOCOL_VERSION
            && claimed == expected_fingerprint
            && p == expected_p
            && rank < expected_p
            && !taken[rank.min(expected_p - 1)];
        let verdict = validate_hello(&hello, expected_fingerprint, expected_p, &taken);
        match verdict {
            Ok(got) => {
                prop_assert!(genuine, "accepted a mismatched Hello: {hello:?}");
                prop_assert_eq!(got, rank);
            }
            Err(reason) => {
                prop_assert!(!genuine, "rejected the genuine article: {reason}");
                prop_assert!(!reason.is_empty());
            }
        }
    }

    #[test]
    fn rejoin_validation_accepts_exactly_the_matching_claim(
        fingerprint in prop_oneof![Just(0xF00Du64), any::<u64>()],
        rank in 0usize..6,
        ahead in 0u64..3,
        behind in prop_oneof![Just(0u64), 1u64..4],
        completed in vec(0u64..16, 4..5),
        resume_token in any::<u64>(),
    ) {
        // The genuine claim is `completed[rank] + ahead` (a child may
        // be *ahead* of the parent's count when its BarrierEnter was
        // lost in flight); any claim *behind* the parent's count is a
        // stale process that must be rejected, as is a wrong
        // fingerprint or an out-of-range rank.
        let expected_fingerprint = 0xF00Du64;
        let p = completed.len();
        let claim = if behind == 0 {
            completed.get(rank).copied().unwrap_or(0) + ahead
        } else {
            completed.get(rank).copied().unwrap_or(0).saturating_sub(behind)
        };
        let genuine = fingerprint == expected_fingerprint
            && rank < p
            && claim >= completed[rank.min(p - 1)];
        let msg = CtlMsg::Rejoin {
            rank,
            fingerprint,
            completed_superstep: claim,
            resume_token,
        };
        match validate_rejoin(&msg, expected_fingerprint, p, &completed) {
            Ok(got) => {
                prop_assert!(genuine, "accepted a bogus rejoin: {msg:?}");
                prop_assert_eq!(got, rank);
            }
            Err(reason) => {
                prop_assert!(!genuine, "rejected the genuine claim: {reason}");
                prop_assert!(!reason.is_empty());
            }
        }
    }

    #[test]
    fn rejoin_validation_rejects_every_non_rejoin_first_message(msg in ctl_msg()) {
        // A reconnection whose first frame is anything but Rejoin is
        // a confused or malicious peer, never a panic.
        if !matches!(msg, CtlMsg::Rejoin { .. }) {
            prop_assert!(validate_rejoin(&msg, 0, 4, &[0, 0, 0, 0]).is_err());
        }
    }

    #[test]
    fn streams_reassemble_across_any_read_chunking(
        msgs in vec(ctl_msg(), 1..5),
        chunk in 1usize..9,
    ) {
        // One buffer, many frames, delivered `chunk` bytes at a time —
        // with chunk = 1 every byte boundary is a read boundary. The
        // routers must see exactly the original sequence.
        let mut bytes = Vec::new();
        for msg in &msgs {
            write_ctl(&mut bytes, msg).expect("vec write");
        }
        let mut stream = Chopped { bytes: &bytes, pos: 0, chunk };
        for (i, msg) in msgs.iter().enumerate() {
            let back = read_ctl(&mut stream)
                .unwrap_or_else(|e| panic!("frame {i} failed under chunk={chunk}: {e}"));
            prop_assert_eq!(&back, msg);
        }
        // And the stream is fully consumed: a further read is a clean
        // EOF error, not garbage.
        prop_assert!(read_ctl(&mut stream).is_err());
    }
}
