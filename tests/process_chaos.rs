//! Process chaos suite: the chaos and checkpoint grids of
//! `tests/chaos.rs`, re-run with every rank in its own OS process over
//! a Unix-domain socket ([`Execution::Processes`]) — plus the faults
//! only real processes can have: a rank SIGKILLed at an arbitrary
//! (rank, superstep) coordinate must be respawned and resumed from the
//! newest committed checkpoint with exactly `s mod k` supersteps
//! replayed, and a rank that never connects must surface as a
//! handshake timeout, never a hang.
//!
//! One in-process assertion is dropped here: the
//! `net.ack_latency_polls` histogram is per-rank telemetry, and rank
//! processes run with telemetry disabled (counters still reconcile —
//! they ship home in the `Done`/`Fatal` control frames).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bsml_bsp::checkpoint::{CheckpointPolicy, MemoryStore};
use bsml_bsp::distributed::DistMachine;
use bsml_bsp::faults::{FaultKind, FaultPlan};
use bsml_bsp::supervisor::Supervisor;
use bsml_bsp::{BspMachine, BspParams, Execution, KillSpec, PostmortemBundle, ProcessConfig};
use bsml_eval::EvalError;
use bsml_obs::{FlightEvent, Telemetry};
use bsml_syntax::parse;

/// One superstep: total exchange, each rank sums all p incoming
/// messages (see `tests/chaos.rs` for why drops cannot hide).
const EXCHANGE_1: &str = "
    let r = put (mkpar (fun j -> fun i -> j * 7 + i + 1)) in
    apply (mkpar (fun i -> fun t ->
             let acc = ref 0 in
             (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
             !acc),
           r)";

/// Two supersteps: the round-one sums are re-exchanged and re-summed.
const EXCHANGE_2: &str = "
    let r1 = put (mkpar (fun j -> fun i -> j + i + 1)) in
    let v1 = apply (mkpar (fun i -> fun t ->
               let acc = ref 0 in
               (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
               !acc),
             r1) in
    let r2 = put (apply (mkpar (fun j -> fun v -> fun i -> v + j + 1), v1)) in
    apply (mkpar (fun i -> fun t ->
             let acc = ref 0 in
             (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
             !acc),
           r2)";

/// Five supersteps: chained total exchanges (the checkpoint grid's
/// program — long enough for mid-interval and exact-multiple kills).
const EXCHANGE_5: &str = "
    let sum = mkpar (fun i -> fun t ->
        let acc = ref 0 in
        (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
        !acc) in
    let next = fun v -> put (apply (mkpar (fun j -> fun v -> fun i -> v + j + 1), v)) in
    let v1 = apply (sum, put (mkpar (fun j -> fun i -> j + i + 1))) in
    let v2 = apply (sum, next v1) in
    let v3 = apply (sum, next v2) in
    let v4 = apply (sum, next v3) in
    apply (sum, next v4)";

const EXCHANGE_5_SUPERSTEPS: u64 = 5;

const PROGRAMS: &[(&str, u64)] = &[(EXCHANGE_1, 1), (EXCHANGE_2, 2)];

const SEEDS_PER_BASE: u64 = 8;

fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn checkpoint_intervals() -> Vec<u64> {
    match std::env::var("CHAOS_CHECKPOINT_INTERVAL")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(k) => vec![k],
        None => vec![1, 2, 4],
    }
}

fn oracle(e: &bsml_ast::Expr, p: usize) -> (String, u64) {
    let report = BspMachine::new(BspParams::new(p, 1, 1)).run(e).unwrap();
    (report.value.to_string(), report.cost.supersteps)
}

/// The rank-runner Cargo built alongside this test binary.
fn rank_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_bsml-rank"))
}

fn process_config() -> ProcessConfig {
    ProcessConfig {
        rank_binary: Some(rank_binary()),
        ..ProcessConfig::default()
    }
}

fn process_machine(p: usize) -> DistMachine {
    DistMachine::new(p).with_execution(Execution::Processes(process_config()))
}

/// A fresh scratch directory (mirrors `tests/checkpoint.rs`).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bsml-process-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// --- baseline: sockets must change nothing about a clean run ----------

#[test]
fn socket_runs_match_the_lockstep_oracle_and_the_thread_backend() {
    for &(source, _) in PROGRAMS {
        let e = parse(source).unwrap();
        for p in [2usize, 4] {
            let (expected_value, expected_supersteps) = oracle(&e, p);
            let threads = DistMachine::new(p).run(&e).unwrap();
            let procs = process_machine(p)
                .run(&e)
                .unwrap_or_else(|err| panic!("p={p}: {err}"));
            assert_eq!(procs.value.to_string(), expected_value, "p={p}");
            assert_eq!(procs.supersteps, expected_supersteps, "p={p}");
            // The backends must agree on the *accounting*, not just
            // the answer — same exchanges, same volumes, same work.
            assert_eq!(procs.total_words_sent, threads.total_words_sent, "p={p}");
            assert_eq!(procs.supersteps, threads.supersteps, "p={p}");
            assert_eq!(procs.work, threads.work, "p={p}");
        }
    }
}

// --- the chaos grid, unchanged, over the socket transport -------------

/// One chaos-grid cell over sockets: identical to
/// `tests/chaos.rs::chaos_cell` except the ack-latency histogram
/// assertion (per-rank telemetry does not cross the process boundary).
fn chaos_cell(source: &str, supersteps: u64, p: usize, seed: u64) {
    let e = parse(source).unwrap();
    let (expected_value, expected_supersteps) = oracle(&e, p);
    assert_eq!(expected_supersteps, supersteps, "grid metadata is stale");

    let plan = FaultPlan::chaos(seed, p, supersteps);
    let fault = plan.faults()[0].kind.clone();
    let tel = Telemetry::enabled_logical();
    let machine = process_machine(p)
        .with_faults(plan)
        .with_barrier_timeout(Duration::from_secs(10));
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_telemetry(tel.clone())
        .run(&e)
        .unwrap_or_else(|err| panic!("p={p} seed={seed} fault={fault:?}: {err}"));

    let ctx = format!("p={p} seed={seed} fault={fault:?}");
    assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
    assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");
    assert_eq!(tel.counter_value("bsp.faults_injected"), 1, "{ctx}");
    assert_eq!(tel.counter_value("bsp.barrier_timeouts"), 0, "{ctx}");
    assert_eq!(out.recovered.len() as u32, out.attempts - 1, "{ctx}");
    assert_eq!(
        tel.counter_value("bsp.retries"),
        u64::from(out.attempts - 1),
        "{ctx}"
    );
    if matches!(fault, FaultKind::Stall { .. }) {
        assert_eq!(out.attempts, 1, "a 1–3 ms stall must not fail: {ctx}");
    }
}

#[test]
fn supervised_chaos_grid_converges_over_sockets() {
    let base = seed_base() * SEEDS_PER_BASE;
    for &(source, supersteps) in PROGRAMS {
        for p in [2, 4] {
            for seed in base..base + SEEDS_PER_BASE {
                chaos_cell(source, supersteps, p, seed);
            }
        }
    }
}

// --- the process-only fault: SIGKILL ----------------------------------

/// One cell of the kill grid: SIGKILL rank `rank` as it enters
/// superstep `s` under checkpoint interval `k`, and verify the exact
/// recovery accounting the in-process checkpoint grid verifies:
/// resume from `c = ⌊s/k⌋·k`, replay exactly `s mod k` supersteps,
/// commit each generation exactly once across both attempts, and land
/// on the lockstep oracle's exact value.
fn kill_cell(e: &bsml_ast::Expr, p: usize, rank: usize, s: u64, k: u64) {
    let ctx = format!("p={p} kill=({rank},{s}) k={k}");
    let (expected_value, expected_supersteps) = oracle(e, p);
    let store = Arc::new(MemoryStore::new());
    let tel = Telemetry::enabled_logical();
    let mut cfg = process_config();
    cfg.kills.push(KillSpec {
        rank,
        superstep: s,
        attempt: 0,
    });
    let machine = DistMachine::new(p)
        .with_execution(Execution::Processes(cfg))
        .with_barrier_timeout(Duration::from_secs(10))
        .with_checkpoints(CheckpointPolicy::every(k), store);
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_telemetry(tel.clone())
        .run(e)
        .unwrap_or_else(|err| panic!("{ctx}: {err}"));

    assert_eq!(out.attempts, 2, "{ctx}");
    assert_eq!(out.outcome.value.to_string(), expected_value, "{ctx}");
    assert_eq!(out.outcome.supersteps, expected_supersteps, "{ctx}");

    // The death was detected AT its coordinate: the killed rank had
    // completed exactly `s` supersteps.
    match &out.recovered[0] {
        EvalError::TransportFailure {
            rank: dead,
            superstep,
            detail,
        } => {
            assert_eq!(*dead, rank, "{ctx}");
            assert_eq!(*superstep, s, "{ctx}");
            assert!(
                detail.contains("signal: 9"),
                "{ctx}: death note must carry the reaped status, got {detail:?}"
            );
        }
        other => panic!("{ctx}: expected a TransportFailure, got {other:?}"),
    }

    let committed = (s / k) * k;
    assert_eq!(
        out.outcome.resumed_from,
        (committed > 0).then_some(committed),
        "{ctx}"
    );
    assert_eq!(
        tel.counter_value("bsp.supersteps_replayed"),
        s - committed,
        "{ctx}: replay debt must be exactly s mod k"
    );
    assert_eq!(
        tel.counter_value("bsp.checkpoints_written"),
        EXCHANGE_5_SUPERSTEPS / k,
        "{ctx}: both attempts together commit each generation once"
    );
}

#[test]
fn sigkilled_ranks_resume_from_the_newest_committed_checkpoint() {
    let e = parse(EXCHANGE_5).unwrap();
    // Full (rank, superstep) sweep at p = 2 for every interval…
    for k in checkpoint_intervals() {
        for rank in 0..2 {
            for s in 0..EXCHANGE_5_SUPERSTEPS {
                kill_cell(&e, 2, rank, s, k);
            }
        }
    }
    // …and a diagonal at p = 4 so wider fleets are exercised too.
    for s in 0..EXCHANGE_5_SUPERSTEPS {
        kill_cell(&e, 4, (s as usize) % 4, s, 2);
    }
}

#[test]
fn a_kill_without_checkpoints_restarts_from_scratch() {
    let e = parse(EXCHANGE_2).unwrap();
    let (expected_value, _) = oracle(&e, 2);
    let mut cfg = process_config();
    cfg.kills.push(KillSpec {
        rank: 1,
        superstep: 1,
        attempt: 0,
    });
    let machine = DistMachine::new(2)
        .with_execution(Execution::Processes(cfg))
        .with_barrier_timeout(Duration::from_secs(10));
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .run(&e)
        .unwrap();
    assert_eq!(out.attempts, 2);
    assert_eq!(out.outcome.resumed_from, None);
    assert_eq!(out.outcome.value.to_string(), expected_value);
}

// --- handshake robustness ---------------------------------------------

#[test]
fn a_never_connecting_rank_fails_with_a_timeout_not_a_hang() {
    // A "rank binary" that never dials home.
    let dir = temp_dir("noconnect");
    let script = dir.join("sleeper.sh");
    std::fs::write(&script, "#!/bin/sh\nsleep 30\n").unwrap();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();
    }

    let e = parse(EXCHANGE_1).unwrap();
    let cfg = ProcessConfig {
        rank_binary: Some(script),
        handshake_timeout: Some(Duration::from_millis(300)),
        ..ProcessConfig::default()
    };
    let machine = DistMachine::new(2).with_execution(Execution::Processes(cfg));
    let started = Instant::now();
    let err = machine.run(&e).expect_err("no rank ever connects");
    let elapsed = started.elapsed();
    match &err {
        EvalError::TransportFailure {
            superstep, detail, ..
        } => {
            assert_eq!(*superstep, 0);
            assert!(
                detail.contains("handshake timeout"),
                "unexpected detail: {detail:?}"
            );
        }
        other => panic!("expected a TransportFailure, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "timeout took {elapsed:?} — the deadline did not bind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_wrong_fingerprint_is_rejected_at_the_handshake() {
    // Point the launcher at the genuine rank binary but poison the
    // fingerprint the child will present by running a *different*
    // program than the child was told: simplest is a custom binary
    // env — instead, spawn the real binary against a program whose
    // fingerprint the child recomputes and rejects. The cheap,
    // deterministic route: a child whose BSML_RANK_FINGERPRINT
    // disagrees with the parent's program. The launcher always passes
    // its own fingerprint, so disagreement cannot be staged from the
    // public API — what CAN be staged is a stale rank binary speaking
    // for a different program via a wrapper that overrides the env.
    let dir = temp_dir("wrongfp");
    let wrapper = dir.join("stale-rank.sh");
    std::fs::write(
        &wrapper,
        format!(
            "#!/bin/sh\nBSML_RANK_FINGERPRINT=12345 exec {} \"$@\"\n",
            rank_binary().display()
        ),
    )
    .unwrap();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&wrapper, std::fs::Permissions::from_mode(0o755)).unwrap();
    }

    let e = parse(EXCHANGE_1).unwrap();
    let cfg = ProcessConfig {
        rank_binary: Some(wrapper),
        handshake_timeout: Some(Duration::from_secs(5)),
        ..ProcessConfig::default()
    };
    let machine = DistMachine::new(2).with_execution(Execution::Processes(cfg));
    let err = machine.run(&e).expect_err("fingerprint must not match");
    match &err {
        EvalError::TransportFailure { detail, .. } => assert!(
            detail.contains("fingerprint"),
            "unexpected detail: {detail:?}"
        ),
        other => panic!("expected a TransportFailure, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// --- postmortems survive the unsurvivable -----------------------------

#[test]
fn a_sigkilled_rank_still_leaves_an_analyzable_postmortem_bundle() {
    let pm_dir = temp_dir("killed-pm");
    let e = parse(EXCHANGE_5).unwrap();
    let (expected_value, _) = oracle(&e, 2);
    let mut cfg = process_config();
    cfg.postmortem_dir = Some(pm_dir.clone());
    // Entering superstep 1 is the hardest coordinate for the black
    // box: the rank never receives a single barrier release, so only
    // the pre-wait flush (taken just before it blocked on the barrier
    // the parent withholds) can put superstep 0 on disk.
    cfg.kills.push(KillSpec {
        rank: 1,
        superstep: 1,
        attempt: 0,
    });
    let store = Arc::new(MemoryStore::new());
    let machine = DistMachine::new(2)
        .with_execution(Execution::Processes(cfg))
        .with_flight_recorder(256)
        .with_barrier_timeout(Duration::from_secs(10))
        .with_checkpoints(CheckpointPolicy::every(2), store);
    let out = Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .run(&e)
        .unwrap();
    assert_eq!(out.attempts, 2);
    assert_eq!(out.outcome.value.to_string(), expected_value);

    // The killed rank's first-attempt bundle is on disk — written by
    // the rank process itself at each barrier, so the SIGKILL could
    // not take it down with the process.
    let bundle_path = std::fs::read_dir(&pm_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .find(|path| {
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            name.starts_with("pm-rank1-") && name.ends_with("-attempt0.bsmlpm")
        })
        .unwrap_or_else(|| panic!("no first-attempt bundle for rank 1 in {}", pm_dir.display()));
    let bundle = PostmortemBundle::load(&bundle_path).unwrap();
    let _analysis = bundle.analyze();
    assert_eq!(bundle.attempt, 0);
    assert_eq!(bundle.ranks.len(), 1);
    let rank_log = &bundle.ranks[0];
    assert_eq!(rank_log.rank, 1);
    assert!(
        !rank_log.events.is_empty(),
        "the rank ran a full superstep before dying — its black box must not be empty"
    );
    // The bundle ends exactly where the rank died: blocked in the
    // exit barrier of superstep 0, waiting for a release that never
    // came.
    assert!(
        matches!(
            rank_log.events.last().map(|t| &t.event),
            Some(FlightEvent::BarrierEnter { superstep: 0 })
        ),
        "last event must be the fatal barrier entry, got {:?}",
        rank_log.events.last()
    );
    let _ = std::fs::remove_dir_all(&pm_dir);
}
