//! Fuzzes the lockstep-vs-distributed agreement on generated
//! well-typed programs — stronger than the fixed-workload
//! cross-check: random compositions of all four primitives.

use bsml_bsp::distributed::DistMachine;
use bsml_bsp::{BspMachine, BspParams};
use bsml_repro::testgen::{generate, GenTy, P};
use proptest::prelude::*;

fn cross_check(e: &bsml_ast::Expr) {
    let lockstep = BspMachine::new(BspParams::new(P, 1, 1))
        .run(e)
        .unwrap_or_else(|err| panic!("lockstep: {err}\n  {e}"));
    let distributed = DistMachine::new(P)
        .run(e)
        .unwrap_or_else(|err| panic!("distributed: {err}\n  {e}"));
    assert_eq!(
        lockstep.value.to_string(),
        distributed.value.to_string(),
        "values differ on {e}"
    );
    assert_eq!(
        lockstep.cost.supersteps, distributed.supersteps,
        "superstep counts differ on {e}"
    );
    let lockstep_words: u64 = lockstep
        .trace
        .iter()
        .map(|r| r.sent.iter().sum::<u64>())
        .sum();
    assert_eq!(
        lockstep_words, distributed.total_words_sent,
        "communication volumes differ on {e}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn machines_agree_on_generated_parallel_programs(seed in any::<u64>()) {
        cross_check(&generate(seed, GenTy::IntPar, 4));
    }

    #[test]
    fn machines_agree_on_generated_local_programs(seed in any::<u64>()) {
        cross_check(&generate(seed, GenTy::Int, 5));
    }
}

#[test]
fn fixed_seed_sweep() {
    for seed in 0..100 {
        cross_check(&generate(seed, GenTy::IntPar, 4));
    }
}
