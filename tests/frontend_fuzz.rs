//! Frontend robustness fuzzing: arbitrary byte soup and random token
//! sequences must flow through lexer → parser → inferencer as
//! structured `Err`s, never as panics. The frontend is the part of
//! the pipeline exposed to raw user input, so "garbage in, error out"
//! is a hard robustness requirement — a panic in `tokenize`/`parse`
//! would take down an interactive session.
//!
//! The offline proptest stand-in is deterministic and keeps no
//! persistence files, so inputs that once misbehaved are pinned as
//! explicit regression tests at the bottom instead of in a
//! `proptest-regressions` file.

use bsml_ast::Expr;
use bsml_infer::{Inferencer, TypeEnv};
use bsml_syntax::{parse, parse_module, tokenize};
use proptest::collection::vec;
use proptest::prelude::*;

/// Runs one input through the whole frontend. Every stage may reject
/// (that is the point); none may panic. When a phrase survives to an
/// `Expr`, the inferencer must also return rather than unwind — type
/// errors on nonsense are expected, aborts are not.
fn frontend_must_not_panic(source: &str) {
    let _ = tokenize(source);
    if let Ok(e) = parse(source) {
        infer_must_not_panic(&e);
    }
    if let Ok(module) = parse_module(source) {
        for decl in &module.decls {
            infer_must_not_panic(&decl.expr);
        }
        if let Some(body) = &module.body {
            infer_must_not_panic(body);
        }
    }
}

fn infer_must_not_panic(e: &Expr) {
    let _ = Inferencer::new().run(&TypeEnv::new(), e);
}

/// Every terminal of the grammar plus near-miss junk: random
/// interleavings drive the parser into corners byte soup rarely
/// reaches (byte soup almost always dies in the lexer).
const VOCABULARY: &[&str] = &[
    "let", "rec", "in", "fun", "->", "if", "then", "else", "at", "case", "of", "|", "(", ")", ",",
    ";", ";;", "=", "<", "<=", "+", "-", "*", "/", "mod", "&&", "||", "not", "ref", ":=", "!",
    "for", "to", "do", "done", "mkpar", "apply", "put", "bsp_p", "fst", "snd", "inl", "inr", "x",
    "y", "f", "0", "1", "42", "true", "false", "()", "⟨", "⟩", "..", "_", "'a",
];

fn token_soup(picks: &[usize]) -> String {
    picks
        .iter()
        .map(|i| VOCABULARY[i % VOCABULARY.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn byte_soup_errors_never_panic(bytes in vec(any::<u8>(), 0..128)) {
        frontend_must_not_panic(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn token_soup_errors_never_panic(picks in vec(any::<usize>(), 0..96)) {
        frontend_must_not_panic(&token_soup(&picks));
    }

    #[test]
    fn almost_a_program_never_panics(
        picks in vec(any::<usize>(), 0..24),
        cut in any::<usize>(),
    ) {
        // Valid programs with a random suffix chopped off / glued on:
        // prefixes of well-formed input exercise the "unexpected EOF"
        // paths of every parser production.
        let program = "let rec f x = if x <= 0 then 0 else f (x - 1) in
                       let v = mkpar (fun i -> f i) in
                       put (apply (mkpar (fun i -> fun a -> fun d -> a), v))";
        let cut = cut % (program.len() + 1);
        let prefix = if program.is_char_boundary(cut) { &program[..cut] } else { program };
        frontend_must_not_panic(&format!("{prefix} {}", token_soup(&picks)));
    }
}

// --- Pinned regressions / deliberate corner cases -----------------

#[test]
fn unterminated_constructs_error_cleanly() {
    for src in [
        "let",
        "let x",
        "let x =",
        "let rec",
        "fun",
        "fun x",
        "fun x ->",
        "if",
        "if true",
        "if true then",
        "case",
        "case inl 1 of",
        "(",
        "(1",
        "(1,",
        "⟨",
        "!",
        "for",
        "for i = 0",
        "for i = 0 to 3 do",
        "1 +",
        "x :=",
        "let x = 1 ;;",
        "(* unclosed comment",
    ] {
        frontend_must_not_panic(src);
        assert!(parse(src).is_err(), "`{src}` should not parse");
    }
}

#[test]
fn pathological_but_bounded_nesting_errors_or_parses() {
    // Deep but bounded: enough to stress precedence climbing, not
    // enough to exhaust the stack (the fuzz soups above stay small
    // for the same reason).
    let depth = 64;
    let balanced = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
    frontend_must_not_panic(&balanced);
    assert!(parse(&balanced).is_ok());
    let unbalanced = "(".repeat(depth);
    frontend_must_not_panic(&unbalanced);
    assert!(parse(&unbalanced).is_err());
}

#[test]
fn non_ascii_and_control_bytes_error_cleanly() {
    for src in [
        "\u{0}",
        "\u{7f}",
        "let \u{0} = 1",
        "débuter",
        "🦀",
        "\"no strings in mini-bsml\"",
        "\t\r\n  \t",
        "⟨1, 2⟩ ⟨",
        "x ⟩",
        "1 .. 2",
    ] {
        frontend_must_not_panic(src);
    }
}

#[test]
fn keyword_collisions_error_cleanly() {
    for src in [
        "let let = 1 in let",
        "let in = in in in",
        "fun fun -> fun",
        "if if then then else else",
        "mkpar mkpar",
        "put put put",
        "let rec rec = rec in rec",
    ] {
        frontend_must_not_panic(src);
    }
}
