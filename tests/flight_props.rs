//! Property tests for the flight recorder (DESIGN.md §12) and the
//! postmortem bundle codec: the ring honours any capacity (including
//! the degenerate 0 and 1), wraparound keeps exactly the newest
//! events and counts every eviction, a drain returns the rank's
//! causal order whenever the stamps went in ordered, and bundles
//! survive an encode/decode round trip for every event shape.

use bsml_bsp::{PostmortemBundle, RankFlightLog};
use bsml_obs::{FlightEvent, FlightRecorder, TimedFlightEvent};
use proptest::collection::vec;
use proptest::prelude::*;

fn event() -> impl Strategy<Value = FlightEvent> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(to, seq, superstep, bytes)| FlightEvent::FrameSent {
                to,
                seq,
                superstep,
                bytes
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(from, seq, superstep, sent_lamport)| FlightEvent::FrameReceived {
                from,
                seq,
                superstep,
                sent_lamport
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(to, seq)| FlightEvent::AckSent { to, seq }),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(from, seq, polls)| FlightEvent::AckReceived { from, seq, polls }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(to, seq)| FlightEvent::FrameRetransmitted { to, seq }),
        Just(FlightEvent::CorruptRejected),
        any::<u64>().prop_map(|to| FlightEvent::BackpressureWait { to }),
        any::<u64>().prop_map(|superstep| FlightEvent::BarrierEnter { superstep }),
        any::<u64>().prop_map(|superstep| FlightEvent::BarrierExit { superstep }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(superstep, work, sent_words, received_words)| FlightEvent::SuperstepEnd {
                superstep,
                work,
                sent_words,
                received_words
            }
        ),
        any::<u64>().prop_map(|generation| FlightEvent::CheckpointStaged { generation }),
        any::<u64>().prop_map(|generation| FlightEvent::CheckpointCommitted { generation }),
        (any::<u64>(), 0u64..4)
            .prop_map(|(superstep, kind)| FlightEvent::FaultFired { superstep, kind }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(rank, superstep)| FlightEvent::LinkDown { rank, superstep }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(rank, superstep)| FlightEvent::LinkUp { rank, superstep }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn ring_keeps_exactly_the_newest_events(
        capacity in 0usize..16,
        events in vec(event(), 0..48),
    ) {
        let rec = FlightRecorder::new(capacity);
        // Strictly increasing stamps, as a real rank records them.
        for (i, ev) in events.iter().enumerate() {
            rec.record(i as u64 + 1, ev.clone());
        }
        let kept = rec.len();
        prop_assert_eq!(kept, events.len().min(capacity));
        prop_assert_eq!(rec.dropped() as usize, events.len() - kept);
        let drained = rec.drain();
        // Drain order IS causal order: the suffix of the input, with
        // its stamps still strictly increasing.
        let expect: Vec<TimedFlightEvent> = events
            .iter()
            .enumerate()
            .skip(events.len() - kept)
            .map(|(i, ev)| TimedFlightEvent { lamport: i as u64 + 1, event: ev.clone() })
            .collect();
        prop_assert_eq!(drained.clone(), expect);
        for pair in drained.windows(2) {
            prop_assert!(pair[0].lamport < pair[1].lamport);
        }
        // Drained, the ring is empty but remembers its evictions.
        prop_assert!(rec.is_empty());
        prop_assert_eq!(rec.dropped() as usize, events.len() - kept);
    }

    #[test]
    fn capacity_zero_drops_everything_and_counts(events in vec(event(), 0..16)) {
        let rec = FlightRecorder::new(0);
        for (i, ev) in events.iter().enumerate() {
            rec.record(i as u64, ev.clone());
        }
        prop_assert!(rec.is_empty());
        prop_assert!(rec.drain().is_empty());
        prop_assert_eq!(rec.dropped() as usize, events.len());
    }

    #[test]
    fn capacity_one_keeps_only_the_last(events in vec(event(), 1..16)) {
        let rec = FlightRecorder::new(1);
        for (i, ev) in events.iter().enumerate() {
            rec.record(i as u64, ev.clone());
        }
        let drained = rec.drain();
        prop_assert_eq!(drained.len(), 1);
        prop_assert_eq!(&drained[0].event, events.last().expect("non-empty"));
        prop_assert_eq!(rec.dropped() as usize, events.len() - 1);
    }

    #[test]
    fn bundles_roundtrip(
        p in 1usize..5,
        attempt in 0u32..4,
        error in "[ -~]{0,40}",
        dropped in any::<u64>(),
        events in vec((any::<u64>(), event()), 0..24),
    ) {
        let bundle = PostmortemBundle {
            p,
            attempt,
            error,
            error_rank: (attempt > 0).then_some(u64::from(attempt)),
            error_superstep: (attempt > 1).then_some(7),
            ranks: (0..p)
                .map(|rank| RankFlightLog {
                    rank,
                    dropped,
                    events: events
                        .iter()
                        .map(|(lamport, ev)| TimedFlightEvent {
                            lamport: *lamport,
                            event: ev.clone(),
                        })
                        .collect(),
                })
                .collect(),
        };
        let bytes = bundle.encode();
        let back = PostmortemBundle::decode(&bytes).expect("self-encoded bundle decodes");
        prop_assert_eq!(back, bundle);
    }

    #[test]
    fn truncated_bundles_are_rejected(events in vec((any::<u64>(), event()), 0..12)) {
        let bundle = PostmortemBundle {
            p: 1,
            attempt: 0,
            error: "boom".into(),
            error_rank: None,
            error_superstep: None,
            ranks: vec![RankFlightLog {
                rank: 0,
                dropped: 0,
                events: events
                    .into_iter()
                    .map(|(lamport, event)| TimedFlightEvent { lamport, event })
                    .collect(),
            }],
        };
        let bytes = bundle.encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                PostmortemBundle::decode(&bytes[..cut]).is_err(),
                "accepted a bundle truncated to {cut} of {} bytes",
                bytes.len()
            );
        }
    }
}
