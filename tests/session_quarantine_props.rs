//! Property: restoring a [`SessionSnapshot`] after an arbitrary
//! prefix of failed (or contained) phrases yields a session
//! *bit-identical* to one that never loaded them — including ref-cell
//! state, which the snapshot captures by deep copy rather than by
//! sharing the live `RefCell`.
//!
//! "Bit-identical" is checked structurally: the `Debug` rendering of
//! a fresh [`Session::snapshot`] covers the typing environment
//! (ordered `BTreeMap`), the deep-copied value environment (ordered
//! binding list), and the cumulative cost. The generated phrases are
//! acyclic (no Landin knots), so the rendering is total and
//! deterministic.

use bsml_bsp::BspParams;
use bsml_core::Session;
use bsml_repro::testgen::{adversarial, well_typed_source, Adversarial};
use proptest::collection::vec;
use proptest::prelude::*;

fn session() -> Session {
    Session::new(BspParams::new(3, 1, 10))
}

/// Structural fingerprint of everything a snapshot would save.
fn fingerprint(s: &Session) -> String {
    format!("{:?}", s.snapshot())
}

/// Failure families that are cheap to run (no divergence: plain
/// session fuel would burn the whole default budget per phrase).
const CHEAP_FAILURES: [Adversarial; 5] = [
    Adversarial::NestingBreach,
    Adversarial::LocalityBreach,
    Adversarial::IllTyped,
    Adversarial::ParseError,
    Adversarial::DivisionByZero,
];

/// Loads `source` the way a serving host does: transactionally.
/// On any failure the pre-load snapshot is restored.
fn load_transactionally(s: &mut Session, source: &str) {
    let before = s.snapshot();
    match s.load(source) {
        Ok(events) if events.iter().all(|e| e.error().is_none()) => {}
        _ => s.restore(&before),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn restore_after_failed_prefix_is_bit_identical(
        seed in any::<u64>(),
        picks in vec(any::<u64>(), 1..8),
    ) {
        let mut s = session();
        // A base session with plain values, a ref cell, and a vector.
        s.load(&format!("let r = ref {}", seed % 100)).unwrap();
        s.load("let base = !r * 2").unwrap();
        s.load(&well_typed_source(seed, 2)).unwrap();
        let clean = fingerprint(&s);

        for (i, pick) in picks.iter().enumerate() {
            let family = CHEAP_FAILURES[(*pick as usize) % CHEAP_FAILURES.len()];
            let src = adversarial(seed.wrapping_add(i as u64), family);
            load_transactionally(&mut s, &src);
        }

        prop_assert_eq!(fingerprint(&s), clean);
    }

    #[test]
    fn ref_cell_mutations_roll_back_on_restore(seed in any::<u64>()) {
        // The deep-copy part: the snapshot must capture the *contents*
        // of the cell, not share the live RefCell — otherwise the
        // in-place `r := …` below would retroactively rewrite the
        // snapshot and restore() could not undo it.
        let mut s = session();
        s.load(&format!("let r = ref {}", seed % 1000)).unwrap();
        let clean = fingerprint(&s);

        let snap = s.snapshot();
        s.load(&format!("r := {}", (seed % 1000) + 1)).unwrap();
        // The mutation must be visible pre-restore, or the property
        // below would pass vacuously.
        prop_assert_ne!(fingerprint(&s), clean.clone());
        s.restore(&snap);
        prop_assert_eq!(fingerprint(&s), clean);
    }

    #[test]
    fn failed_multiphrase_requests_leave_no_partial_commits(
        seed in any::<u64>(),
    ) {
        // A request whose FIRST phrase succeeds and second fails: the
        // transactional load must roll back both — the intermediate
        // `tmp` binding must not survive.
        let mut s = session();
        s.load("let keep = 7").unwrap();
        let clean = fingerprint(&s);
        let src = format!("let tmp = {}\nlet boom = tmp / 0", seed % 50 + 1);
        load_transactionally(&mut s, &src);
        prop_assert!(s.scheme_of("tmp").is_none());
        prop_assert_eq!(fingerprint(&s), clean);
    }
}

#[test]
fn aliasing_survives_snapshot_and_restore() {
    // Two names bound to one cell stay aliases of ONE (fresh) cell
    // after restore: assignment through one remains visible through
    // the other, and neither reaches the pre-restore cell.
    let mut s = session();
    s.load("let a = ref 1").unwrap();
    s.load("let b = a").unwrap();
    let snap = s.snapshot();
    s.load("a := 5").unwrap();
    s.restore(&snap);
    let events = s.load("(b := 9, !a)").unwrap();
    let rendered = events[0].value().unwrap().to_string();
    assert_eq!(rendered, "((), 9)", "aliases must stay aliases");
}

#[test]
fn restore_is_repeatable() {
    // A snapshot is immutable: restoring, mutating, and restoring
    // again lands on the same state both times.
    let mut s = session();
    s.load("let r = ref 10").unwrap();
    let snap = s.snapshot();
    let clean = fingerprint(&s);
    for bump in [11, 12, 13] {
        s.load(&format!("r := {bump}")).unwrap();
        s.restore(&snap);
        assert_eq!(fingerprint(&s), clean);
    }
}
