//! Let-polymorphism × locality constraints: the subtle interplay the
//! paper's scheme substitution (Definition 1) exists for. A
//! polymorphic binding may be used at local types and global types in
//! the same program; each *use* re-instantiates the constraint and is
//! judged independently.

use bsml_infer::infer;
use bsml_syntax::parse;

fn accepts(src: &str) -> String {
    infer(&parse(src).expect("parse"))
        .unwrap_or_else(|e| panic!("`{src}`:\n{}", e.render(src)))
        .ty
        .to_string()
}

fn rejects(src: &str) {
    let e = parse(src).expect("parse");
    assert!(infer(&e).is_err(), "`{src}` should be rejected");
}

#[test]
fn one_binding_local_and_global_uses() {
    // `dup` used at int and at int par in the same body.
    assert_eq!(
        accepts(
            "let dup = fun x -> (x, x) in
             (dup 1, dup (mkpar (fun i -> i)))"
        ),
        "(int * int) * (int par * int par)"
    );
}

#[test]
fn fst_used_both_ways() {
    assert_eq!(
        accepts(
            "let first = fun p -> fst p in
             (first (1, 2), first (mkpar (fun i -> i), 1))"
        ),
        "int * int par"
    );
    // The same binding instantiated at the Figure 10 shape fails at
    // that use only.
    rejects(
        "let first = fun p -> fst p in
         (first (1, 2), first (1, mkpar (fun i -> i)))",
    );
}

#[test]
fn parallel_identity_used_twice_globally() {
    assert_eq!(
        accepts(
            "let pid = fun x -> if mkpar (fun i -> true) at 0 then x else x in
             (pid (mkpar (fun i -> i)), pid (mkpar (fun i -> true)))"
        ),
        "int par * bool par"
    );
    // One global use and one local use: the local one is rejected.
    rejects(
        "let pid = fun x -> if mkpar (fun i -> true) at 0 then x else x in
         (pid (mkpar (fun i -> i)), pid 1)",
    );
}

#[test]
fn composition_preserves_constraints() {
    // compose id with the parallel identity: the composite inherits
    // L(α) ⇒ False through instantiation.
    rejects(
        "let pid = fun x -> if mkpar (fun i -> true) at 0 then x else x in
         let compose = fun f -> fun g -> fun x -> f (g x) in
         (compose pid (fun y -> y)) 1",
    );
    assert_eq!(
        accepts(
            "let pid = fun x -> if mkpar (fun i -> true) at 0 then x else x in
             let compose = fun f -> fun g -> fun x -> f (g x) in
             (compose pid (fun y -> y)) (mkpar (fun i -> i))"
        ),
        "int par"
    );
}

#[test]
fn higher_order_primitives_as_arguments() {
    // Passing mkpar itself around keeps its constraint.
    assert_eq!(
        accepts("let call = fun f -> f (fun i -> i * 2) in call mkpar"),
        "int par"
    );
    rejects("let call = fun f -> f (fun i -> mkpar (fun j -> j)) in call mkpar");
}

#[test]
fn polymorphic_lists_of_functions() {
    // A list of local functions applied under mkpar.
    assert_eq!(
        accepts(
            "let fs = [(fun x -> x + 1); (fun x -> x * 2)] in
             mkpar (fun i ->
               match fs with [] -> i | g :: rest -> g i)"
        ),
        "int par"
    );
    // A list of *vectors* can never exist.
    rejects("[mkpar (fun i -> i)]");
}

#[test]
fn put_result_reused_polymorphically() {
    // The delivered-message functions can be probed at several
    // destinations in one expression.
    assert_eq!(
        accepts(
            "let r = put (mkpar (fun j -> fun d -> j * 10 + d)) in
             (apply (r, mkpar (fun i -> 0)),
              apply (r, mkpar (fun i -> 1)))"
        ),
        "int par * int par"
    );
}

#[test]
fn generalization_does_not_leak_monomorphic_vars() {
    // A lambda-bound variable is monomorphic: using it at two types
    // must fail even though a let would succeed.
    rejects("(fun id -> (id 1, id true)) (fun x -> x)");
    assert_eq!(
        accepts("let id = fun x -> x in (id 1, id true)"),
        "int * bool"
    );
}

#[test]
fn nested_lets_accumulate_constraints() {
    assert_eq!(
        accepts(
            "let v = mkpar (fun i -> i) in
             let w = apply (mkpar (fun i -> fun x -> x + 1), v) in
             let x = apply (mkpar (fun i -> fun a -> a * 2), w) in
             x"
        ),
        "int par"
    );
    // Breaking the chain with a local result anywhere is rejected.
    rejects(
        "let v = mkpar (fun i -> i) in
         let w = apply (mkpar (fun i -> fun x -> x + 1), v) in
         let n = 5 in
         snd (w, n)",
    );
}
