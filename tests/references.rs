//! The §6 "imperative features" extension: references with local
//! contents, and the dynamic replica-coherence discipline the paper
//! describes ("references may contain additional information used
//! dynamically to insure that dereferencing … will give the same
//! value on all processes").

use bsml_bsp::BspParams;
use bsml_core::{Bsml, BsmlError};
use bsml_eval::{eval_closed, EvalError};
use bsml_infer::infer;
use bsml_syntax::parse;

fn bsml() -> Bsml {
    Bsml::new(BspParams::new(4, 10, 100))
}

fn ty_of(src: &str) -> String {
    infer(&parse(src).expect("parse"))
        .unwrap_or_else(|e| panic!("`{src}`: {}", e.render(src)))
        .ty
        .to_string()
}

#[test]
fn syntax_round_trips() {
    for src in [
        "ref 1",
        "!r",
        "r := 2",
        "!(f x)",
        "!!r",
        "let r = ref 0 in (r := 41, !r + 1)",
        "(:=)",
        "(!)",
    ] {
        let e = parse(src).unwrap_or_else(|err| panic!("{}", err.render(src)));
        let printed = e.to_string();
        let again = parse(&printed).unwrap_or_else(|err| panic!("re-parse `{printed}`: {err}"));
        assert_eq!(e, again, "`{src}` printed as `{printed}`");
    }
}

#[test]
fn typing_of_the_three_operators() {
    assert_eq!(ty_of("ref 1"), "int ref");
    assert_eq!(ty_of("let r = ref 1 in !r"), "int");
    assert_eq!(ty_of("let r = ref 1 in r := 2"), "unit");
    assert_eq!(ty_of("ref (ref true)"), "(bool ref) ref");
    assert_eq!(ty_of("fun r -> !r + 1"), "int ref -> int");
}

#[test]
fn references_to_vectors_are_rejected() {
    // A cell holding a parallel vector hides global data behind a
    // mutable local handle — L(α) on ref forbids it.
    for src in [
        "ref (mkpar (fun i -> i))",
        "let r = ref [] in r := [mkpar (fun i -> i)]",
        "fun r -> r := mkpar (fun i -> i)",
    ] {
        let e = parse(src).unwrap();
        assert!(infer(&e).is_err(), "`{src}` should be rejected");
    }
}

#[test]
fn sequential_imperative_programs_run() {
    // A while-style loop through recursion and a mutable accumulator.
    let v = eval_closed(
        &parse(
            "let acc = ref 0 in
             let rec loop i =
               if i = 0 then !acc
               else let ignore = acc := !acc + i in loop (i - 1) in
             loop 10",
        )
        .unwrap(),
        1,
    )
    .unwrap();
    assert_eq!(v.to_string(), "55");
}

#[test]
fn processor_local_references_work_inside_components() {
    // Each processor creates, updates and reads its own cell — all
    // within one component evaluation: coherent.
    let v = eval_closed(
        &parse(
            "mkpar (fun i ->
               let c = ref 0 in
               let ignore = c := i * 2 in
               !c + 1)",
        )
        .unwrap(),
        4,
    )
    .unwrap();
    assert_eq!(v.to_string(), "<|1, 3, 5, 7|>");
}

#[test]
fn global_cells_are_readable_everywhere() {
    // A replicated cell read inside components: coherent (every
    // replica holds the same value).
    let v = eval_closed(
        &parse(
            "let c = ref 21 in
             mkpar (fun i -> !c * 2 + i)",
        )
        .unwrap(),
        3,
    )
    .unwrap();
    assert_eq!(v.to_string(), "<|42, 43, 44|>");
}

#[test]
fn assigning_a_global_cell_locally_is_incoherent() {
    // THE §6 problem: one component assigning a replicated cell would
    // desynchronize the replicas. Dynamically rejected.
    let err = eval_closed(
        &parse(
            "let c = ref 0 in
             let v = mkpar (fun i -> c := i) in
             !c",
        )
        .unwrap(),
        4,
    )
    .unwrap_err();
    assert!(matches!(err, EvalError::IncoherentReplicas(_)), "got {err}");
}

#[test]
fn local_cells_leaking_across_processors_are_incoherent() {
    // A cell created on processor j, sent through put, then
    // dereferenced on processor i ≠ j: rejected at first use.
    let err = eval_closed(
        &parse(
            "let recv = put (mkpar (fun j -> fun d -> ref j)) in
             apply (mkpar (fun i -> fun f -> !(f ((i + 1) mod (bsp_p ())))),
                    recv)",
        )
        .unwrap(),
        3,
    )
    .unwrap_err();
    assert!(matches!(err, EvalError::IncoherentReplicas(_)), "got {err}");
}

#[test]
fn global_assignment_in_global_mode_is_coherent() {
    let v = eval_closed(
        &parse(
            "let c = ref 1 in
             let ignore = c := 2 in
             mkpar (fun i -> !c)",
        )
        .unwrap(),
        2,
    )
    .unwrap();
    assert_eq!(v.to_string(), "<|2, 2|>");
}

#[test]
fn reference_equality_compares_contents() {
    let v = eval_closed(&parse("ref 1 = ref 1").unwrap(), 1).unwrap();
    assert_eq!(v.to_string(), "true");
    let v = eval_closed(&parse("ref 1 = ref 2").unwrap(), 1).unwrap();
    assert_eq!(v.to_string(), "false");
}

#[test]
fn pipeline_integration() {
    // The full pipeline accepts a counting workload and rejects the
    // vector-in-ref program statically.
    let out = bsml()
        .run(
            "let counter = ref 0 in
             let ignore = counter := !counter + 1 in
             mkpar (fun i -> !counter + i)",
        )
        .unwrap();
    assert_eq!(out.report.value.to_string(), "<|1, 2, 3, 4|>");

    let err = bsml().run("ref (mkpar (fun i -> i))").unwrap_err();
    assert!(matches!(err, BsmlError::Type(_)));
}

#[test]
fn session_with_references() {
    use bsml_core::session::Session;
    let mut s = Session::new(BspParams::new(2, 1, 1));
    s.load("let c = ref 10").unwrap();
    assert_eq!(s.scheme_of("c").unwrap().to_string(), "int ref");
    s.load("c := !c + 32").unwrap();
    let events = s.load("!c").unwrap();
    assert_eq!(events[0].value().unwrap().to_string(), "42");
}

#[test]
fn figure6_style_schemes_for_ref_ops() {
    use bsml_ast::Op;
    use bsml_infer::env::op_scheme;
    assert_eq!(op_scheme(Op::Ref).to_string(), "∀'a.['a -> 'a ref / L('a)]");
    assert_eq!(
        op_scheme(Op::Deref).to_string(),
        "∀'a.['a ref -> 'a / L('a)]"
    );
    assert_eq!(
        op_scheme(Op::Assign).to_string(),
        "∀'a.['a ref * 'a -> unit / L('a)]"
    );
}
