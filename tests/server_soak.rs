//! Soak: ≥ 64 concurrent tenant sessions under deliberate overload
//! with mixed hostile traffic. Asserts the server's hard operational
//! invariants:
//!
//! * **Exact typed accounting** — `offered == admitted + rejected`,
//!   with every rejection accounted under exactly one typed reason,
//!   and every admission completing (`admitted == completed`).
//! * **No watchdog bailouts, no escaped panics** — divergent phrases
//!   die by cooperative cancellation (deadline / budget), never by
//!   thread abandonment; evaluator panics stay contained.
//! * **Bounded deadline overrun** — a deadline-exceeded request's
//!   latency stays within deadline + one watchdog leash + scheduling
//!   slack; the watchdog leash is the backstop, not the mechanism.
//! * **No starvation** — a light tenant's small phrases complete
//!   promptly while 63 neighbors spin, flood, and fail around it.
//!
//! The CI `server-soak` job runs this file in `--release` under a
//! hard timeout; in plain `cargo test` the scaled-down debug profile
//! still finishes in well under a minute.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use bsml_bsp::BspParams;
use bsml_obs::Telemetry;
use bsml_repro::testgen::{adversarial, well_typed_source, Adversarial};
use bsml_serve::{Outcome, Rejected, Server, ServerConfig, Ticket};

const TENANTS: usize = 64;
const PER_TENANT: usize = 3;
const DEADLINE: Duration = Duration::from_millis(600);
const LEASH: Duration = Duration::from_millis(500);

fn soak_config() -> ServerConfig {
    ServerConfig::new(BspParams::new(2, 1, 10))
        .with_workers(4)
        .with_deadline(Some(DEADLINE))
        .with_leash(LEASH)
        // Small quantum: scheduler rounds stay short, so expired
        // deadlines are noticed quickly even with 64 ready tenants.
        .with_fuel_slice(5_000, 10_000)
        .with_fuel_budget(2_000_000)
}

/// The per-tenant source mix: every fourth tenant is hostile.
fn source_for(tenant: usize, round: usize) -> String {
    let seed = (tenant * 131 + round) as u64;
    match tenant % 8 {
        0 => adversarial(seed, Adversarial::Divergent),
        2 => adversarial(seed, Adversarial::DivisionByZero),
        4 => adversarial(seed, Adversarial::IllTyped),
        6 => adversarial(seed, Adversarial::Heavy),
        _ => well_typed_source(seed, 2),
    }
}

#[test]
fn soak_overload_exact_typed_accounting() {
    // Deliberate overload: a queue much smaller than the offered load
    // plus a tight per-tenant quota, so all three live rejection
    // reasons fire.
    let server = Server::start(
        soak_config().with_queue_depth(24).with_tenant_quota(2),
        Telemetry::enabled(),
    );
    let telemetry = server.telemetry().clone();

    let mut offered = 0u64;
    let mut admitted: Vec<Ticket> = Vec::new();
    let mut rejected: HashMap<&'static str, u64> = HashMap::new();
    for round in 0..PER_TENANT {
        for tenant in 0..TENANTS {
            offered += 1;
            match server.submit(&format!("t{tenant:03}"), &source_for(tenant, round)) {
                Ok(ticket) => admitted.push(ticket),
                Err(Rejected::QueueFull) => *rejected.entry("queue_full").or_default() += 1,
                Err(Rejected::TenantQuota) => *rejected.entry("tenant_quota").or_default() += 1,
                Err(Rejected::Quarantined) => *rejected.entry("quarantined").or_default() += 1,
                Err(Rejected::ShuttingDown) => panic!("server is not shutting down"),
            }
        }
    }

    // Every admitted request completes with exactly one outcome.
    let mut deadline_latencies: Vec<Duration> = Vec::new();
    let admitted_count = admitted.len() as u64;
    for ticket in admitted {
        let c = ticket.wait();
        match &c.outcome {
            Outcome::DeadlineExceeded => deadline_latencies.push(c.latency),
            Outcome::Abandoned => panic!("watchdog abandoned a host during the soak"),
            _ => {}
        }
    }
    server.drain();
    let stats = server.shutdown();

    // Submit-side ledger and server-side stats must agree, reason by
    // reason — typed rejections are accounting, not best-effort hints.
    assert_eq!(stats.offered, offered);
    assert_eq!(stats.admitted, admitted_count);
    assert_eq!(
        stats.rejected_queue_full,
        rejected.get("queue_full").copied().unwrap_or(0)
    );
    assert_eq!(
        stats.rejected_tenant_quota,
        rejected.get("tenant_quota").copied().unwrap_or(0)
    );
    assert_eq!(
        stats.rejected_quarantined,
        rejected.get("quarantined").copied().unwrap_or(0)
    );
    assert_eq!(stats.offered, stats.admitted + stats.rejected());
    assert_eq!(stats.admitted, stats.completed, "every admission completes");
    assert!(
        stats.rejected() > 0,
        "the overload was supposed to shed load"
    );

    // Containment invariants.
    assert_eq!(stats.abandoned, 0, "cancellation must beat the watchdog");
    assert_eq!(stats.panics_contained, 0, "nothing in the mix panics");

    // Deadline overrun bound: cancellation fires at the next scheduler
    // visit after expiry and the host unwinds within a leash.
    let bound = DEADLINE + LEASH + Duration::from_secs(2);
    for latency in &deadline_latencies {
        assert!(
            *latency <= bound,
            "deadline overrun: latency {latency:?} exceeds {bound:?}"
        );
    }

    // The admission queue really was bounded: the queue-depth
    // histogram (sampled at every admission) never saw a sample
    // beyond the configured capacity.
    let metrics = telemetry.metrics();
    let depth = metrics
        .histograms
        .get("server.queue_depth")
        .expect("admissions record queue depth");
    assert!(
        depth.max <= 24,
        "queue depth {} escaped its bound of 24",
        depth.max
    );
}

#[test]
fn soak_light_tenant_never_starves() {
    // 63 hostile/heavy tenants plus one light tenant, everyone
    // admitted (big queue, roomy quota): the light tenant's phrases
    // must complete — and complete as successes, not deadline kills —
    // while the neighbors burn their budgets.
    let server = Server::start(
        soak_config()
            .with_workers(4)
            .with_deadline(Some(Duration::from_secs(3)))
            .with_queue_depth(4096)
            .with_tenant_quota(PER_TENANT + 1),
        Telemetry::disabled(),
    );

    let mut noise: Vec<Ticket> = Vec::new();
    let mut light: Vec<(Ticket, Instant)> = Vec::new();
    for round in 0..PER_TENANT {
        for tenant in 0..TENANTS - 1 {
            noise.push(
                server
                    .submit(&format!("noise{tenant:03}"), &source_for(tenant, round))
                    .expect("queue is big enough for everyone"),
            );
        }
        light.push((
            server
                .submit("light", &format!("let v{round} = {round} + 1"))
                .expect("light tenant admitted"),
            Instant::now(),
        ));
    }

    for (ticket, _) in light {
        let c = ticket.wait();
        assert!(
            matches!(c.outcome, Outcome::Done { .. }),
            "light tenant did not complete: {:?}",
            c.outcome
        );
        assert!(
            c.latency < Duration::from_secs(3),
            "light tenant starved: {:?}",
            c.latency
        );
    }
    for ticket in noise {
        let _ = ticket.wait();
    }
    let stats = server.shutdown();
    assert_eq!(stats.offered, stats.admitted + stats.rejected());
    assert_eq!(stats.admitted, stats.completed);
    assert_eq!(stats.abandoned, 0);
    assert!(stats.preemptions > 0, "heavy tenants were never preempted");
}
