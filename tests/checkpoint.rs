//! End-to-end recovery-ladder tests for the *file-backed* checkpoint
//! store: a supervised run persists consistent cuts to disk, a later
//! run resumes from them, and on-disk corruption demotes recovery one
//! rung at a time — to the previous generation, then to a full
//! restart — without ever producing a wrong answer.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bsml_bsp::checkpoint::{CheckpointPolicy, CheckpointStore, FileStore};
use bsml_bsp::distributed::DistMachine;
use bsml_bsp::faults::FaultPlan;
use bsml_bsp::supervisor::Supervisor;
use bsml_bsp::{BspMachine, BspParams};
use bsml_obs::Telemetry;
use bsml_syntax::parse;

/// Four supersteps of chained total exchanges (every message ≥ 1, so
/// any corruption of the recorded traffic would shift some sum).
const EXCHANGE_4: &str = "
    let sum = mkpar (fun i -> fun t ->
        let acc = ref 0 in
        (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
        !acc) in
    let next = fun v -> put (apply (mkpar (fun j -> fun v -> fun i -> v + j + 1), v)) in
    let v1 = apply (sum, put (mkpar (fun j -> fun i -> j + i + 1))) in
    let v2 = apply (sum, next v1) in
    let v3 = apply (sum, next v2) in
    apply (sum, next v3)";

const P: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bsml-ckpt-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn oracle_value(e: &bsml_ast::Expr) -> String {
    BspMachine::new(BspParams::new(P, 1, 1))
        .run(e)
        .unwrap()
        .value
        .to_string()
}

fn supervised(store: Arc<FileStore>, plan: FaultPlan, tel: &Telemetry) -> Supervisor {
    let machine = DistMachine::new(P)
        .with_faults(plan)
        .with_barrier_timeout(Duration::from_secs(10))
        .with_checkpoints(CheckpointPolicy::every(1), store);
    Supervisor::new(machine)
        .with_backoff(Duration::ZERO)
        .with_telemetry(tel.clone())
}

/// Populates `dir` with the generations of a clean checkpointed run
/// and returns their numbers (ascending).
fn populate(dir: &PathBuf, e: &bsml_ast::Expr) -> Vec<u64> {
    let store = Arc::new(FileStore::open(dir).unwrap());
    let out = supervised(Arc::clone(&store), FaultPlan::new(), &Telemetry::disabled())
        .run(e)
        .unwrap();
    assert_eq!(out.attempts, 1);
    let gens = store.generations();
    assert_eq!(gens, vec![1, 2, 3, 4], "k=1 over 4 supersteps");
    gens
}

fn corrupt(dir: &std::path::Path, generation: u64) {
    let path = dir.join(format!("gen-{generation:08}.ckpt"));
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();
}

#[test]
fn supervised_run_persists_checkpoints_to_disk() {
    let e = parse(EXCHANGE_4).unwrap();
    let dir = temp_dir("persist");
    let tel = Telemetry::enabled_logical();
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let out = supervised(Arc::clone(&store), FaultPlan::new().crash(2, 3), &tel)
        .run(&e)
        .unwrap();
    // Crash at superstep 3 with k=1: generations 1..3 were already on
    // disk, so the retry resumes from 3 and replays nothing.
    assert_eq!(out.attempts, 2);
    assert_eq!(out.outcome.resumed_from, Some(3));
    assert_eq!(tel.counter_value("bsp.resumes"), 1);
    assert_eq!(tel.counter_value("bsp.supersteps_replayed"), 0);
    assert_eq!(tel.counter_value("bsp.checkpoints_corrupt"), 0);
    assert_eq!(out.outcome.value.to_string(), oracle_value(&e));
    assert_eq!(store.generations(), vec![1, 2, 3, 4]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_latest_generation_falls_back_to_previous() {
    let e = parse(EXCHANGE_4).unwrap();
    let dir = temp_dir("fallback");
    populate(&dir, &e);
    // Flip a byte in the newest generation; the ladder must detect it
    // (checksums), count it, and resume from the one below.
    corrupt(&dir, 4);

    let tel = Telemetry::enabled_logical();
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let out = supervised(store, FaultPlan::new().crash(1, 0), &tel)
        .run(&e)
        .unwrap();
    assert_eq!(out.attempts, 2);
    assert_eq!(tel.counter_value("bsp.checkpoints_corrupt"), 1);
    assert_eq!(out.outcome.resumed_from, Some(3));
    assert_eq!(tel.counter_value("bsp.resumes"), 1);
    assert_eq!(out.outcome.value.to_string(), oracle_value(&e));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn all_generations_corrupt_forces_full_restart() {
    let e = parse(EXCHANGE_4).unwrap();
    let dir = temp_dir("restart");
    let gens = populate(&dir, &e);
    for g in &gens {
        corrupt(&dir, *g);
    }

    let tel = Telemetry::enabled_logical();
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let out = supervised(store, FaultPlan::new().crash(1, 0), &tel)
        .run(&e)
        .unwrap();
    // Every rung of the ladder is corrupt: all four are counted, no
    // resume happens, and the full restart still converges — a
    // corrupted checkpoint costs time, never correctness.
    assert_eq!(out.attempts, 2);
    assert_eq!(tel.counter_value("bsp.checkpoints_corrupt"), 4);
    assert_eq!(tel.counter_value("bsp.resumes"), 0);
    assert_eq!(out.outcome.resumed_from, None);
    assert_eq!(out.outcome.value.to_string(), oracle_value(&e));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_commit_marker_is_skipped_silently() {
    let e = parse(EXCHANGE_4).unwrap();
    let dir = temp_dir("marker");
    populate(&dir, &e);
    // Drop the newest generation's commit trailer: an interrupted
    // write, not corruption — skipped without counting.
    let path = dir.join(format!("gen-{:08}.ckpt", 4));
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();

    let tel = Telemetry::enabled_logical();
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let out = supervised(store, FaultPlan::new().crash(0, 1), &tel)
        .run(&e)
        .unwrap();
    assert_eq!(out.attempts, 2);
    assert_eq!(tel.counter_value("bsp.checkpoints_corrupt"), 0);
    assert_eq!(out.outcome.resumed_from, Some(3));
    assert_eq!(out.outcome.value.to_string(), oracle_value(&e));
    let _ = fs::remove_dir_all(&dir);
}
