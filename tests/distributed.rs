//! Lockstep simulator vs distributed (threaded SPMD) machine: same
//! programs, same values, same communication volumes, same superstep
//! counts. This validates the central claim behind the lockstep
//! model — BSML's global expressions evaluate identically on every
//! processor, so playing them on one evaluator is faithful to real
//! distributed execution (the paper's reference [5]).

use bsml_bsp::distributed::DistMachine;
use bsml_bsp::{BspMachine, BspParams};
use bsml_eval::EvalError;
use bsml_std::{algorithms, workloads};
use bsml_syntax::parse;

fn cross_check(name: &str, src: &str, p: usize) {
    let e = parse(src).unwrap_or_else(|err| panic!("{name}: {}", err.render(src)));
    let lockstep = BspMachine::new(BspParams::new(p, 1, 1))
        .run(&e)
        .unwrap_or_else(|err| panic!("{name} lockstep p={p}: {err}"));
    let distributed = DistMachine::new(p)
        .run(&e)
        .unwrap_or_else(|err| panic!("{name} distributed p={p}: {err}"));

    assert_eq!(
        lockstep.value.to_string(),
        distributed.value.to_string(),
        "{name}: values differ at p={p}"
    );
    assert_eq!(
        lockstep.cost.supersteps, distributed.supersteps,
        "{name}: superstep counts differ at p={p}"
    );
    // Total words sent across the machine: the lockstep records them
    // per-superstep per-proc; the distributed machine sums them live.
    let lockstep_words: u64 = lockstep
        .trace
        .iter()
        .map(|r| r.sent.iter().sum::<u64>())
        .sum();
    assert_eq!(
        lockstep_words, distributed.total_words_sent,
        "{name}: communication volumes differ at p={p}"
    );
}

#[test]
fn machines_agree_on_every_workload() {
    for w in workloads::all_basic() {
        for p in [1, 2, 4] {
            cross_check(&w.name, &w.source, p);
        }
    }
}

#[test]
fn machines_agree_on_the_applications() {
    cross_check("psrs", &algorithms::psrs_sort(6).source, 4);
    cross_check("matvec", &algorithms::matvec(2, 2).source, 3);
}

#[test]
fn machines_agree_on_replicated_scalars_and_ifat() {
    // A program whose result is a replicated local value — every rank
    // must compute the same thing.
    cross_check("replicated-scalar", "let x = 3 in x * x + 1", 4);
    cross_check(
        "ifat-branching",
        "if mkpar (fun i -> i = 2) at 2
         then mkpar (fun i -> i * 10)
         else mkpar (fun i -> 0 - 1)",
        4,
    );
    cross_check(
        "ifat-false-branch",
        "if mkpar (fun i -> i = 2) at 0
         then mkpar (fun i -> i * 10)
         else mkpar (fun i -> 0 - 1)",
        4,
    );
}

#[test]
fn distributed_work_is_per_processor() {
    // An asymmetric workload: processor 3 spins. The distributed
    // machine must charge the extra work to rank 3 only.
    let e = parse(
        "let rec spin n = if n = 0 then 0 else spin (n - 1) in
         apply (mkpar (fun i -> fun x -> if x = 3 then spin 2000 else 0),
                mkpar (fun i -> i))",
    )
    .unwrap();
    let out = DistMachine::new(4).run(&e).unwrap();
    assert!(
        out.work[3] > out.work[0] + 1500,
        "rank 3 should do the spinning: {:?}",
        out.work
    );
}

#[test]
fn distributed_errors_propagate_not_deadlock() {
    // Rank-dependent divergence of arithmetic: processor 2 divides by
    // zero inside its component; all threads must come home with an
    // error (no deadlock at the next barrier).
    let e = parse(
        "let v = mkpar (fun i -> if i = 2 then 1 / 0 else i) in
         put (apply (mkpar (fun i -> fun x -> fun d -> x), v))",
    )
    .unwrap();
    let err = DistMachine::new(4).run(&e).unwrap_err();
    assert_eq!(err, EvalError::DivisionByZero);
}

#[test]
fn unserializable_messages_are_rejected() {
    // Sending a closure through put: no portable form.
    let e = parse("put (mkpar (fun j -> fun d -> fun x -> x + j))").unwrap();
    let err = DistMachine::new(2).run(&e).unwrap_err();
    assert!(matches!(err, EvalError::NotSerializable(_)), "got {err}");
    // The lockstep machine, living in one address space, allows it —
    // a documented difference (OCaml marshalling has the same split).
    let lockstep = BspMachine::new(BspParams::new(2, 1, 1)).run(&e);
    assert!(lockstep.is_ok());
}

#[test]
fn references_are_per_rank_replicas() {
    // A replicated cell updated in global mode: every rank updates
    // its own replica identically; the result is coherent.
    cross_check(
        "replicated-ref",
        "let c = ref 1 in
         let upd = c := 2 in
         mkpar (fun i -> !c + i)",
        3,
    );
}

#[test]
fn distributed_matches_across_machine_sizes() {
    for p in [1, 2, 3, 5, 8] {
        cross_check("fold-plus", &workloads::fold_plus().source, p);
    }
}
