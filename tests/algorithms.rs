//! End-to-end checks of the full BSP applications: results are
//! compared against plain Rust reference implementations, and the
//! superstep structure against the algorithm's design.

use bsml_bsp::{BspMachine, BspParams};
use bsml_eval::{eval_closed, Value};
use bsml_infer::infer;
use bsml_std::algorithms;

/// Extracts `(int list) par` into per-processor Rust vectors.
fn vector_of_lists(v: &Value) -> Vec<Vec<i64>> {
    let Value::Vector(comps) = v else {
        panic!("expected a parallel vector, got {v}")
    };
    comps
        .iter()
        .map(|comp| {
            let mut out = Vec::new();
            let mut cur = comp.clone();
            loop {
                match cur {
                    Value::Cons(h, t) => {
                        let Value::Int(n) = *h else {
                            panic!("non-int in list: {h}")
                        };
                        out.push(n);
                        cur = (*t).clone();
                    }
                    Value::Nil => break,
                    other => panic!("improper list: {other}"),
                }
            }
            out
        })
        .collect()
}

/// The mini-BSML pseudo-random generator, reimplemented in Rust
/// (mini-BSML `mod` is truncated like Rust's `%`; the inputs here are
/// non-negative so the conventions agree).
fn gen(n: usize, mut seed: i64) -> Vec<i64> {
    // let rec gen j seed = … (seed*37 + j*71) mod 1000 :: gen (j-1) (seed+j)
    let mut out = Vec::new();
    let mut j = n as i64;
    while j > 0 {
        out.push((seed * 37 + j * 71) % 1000);
        seed += j;
        j -= 1;
    }
    out
}

#[test]
fn psrs_typechecks() {
    let w = algorithms::psrs_sort(6);
    let ast = w.ast();
    let inf = infer(&ast).unwrap_or_else(|e| panic!("{}", e.render(&w.source)));
    assert_eq!(inf.ty.to_string(), "(int list) par");
}

#[test]
fn psrs_sorts_globally() {
    for p in [1, 2, 3, 4] {
        let n = 8;
        let w = algorithms::psrs_sort(n);
        let v = eval_closed(&w.ast(), p).unwrap_or_else(|e| panic!("p={p}: {e}"));
        let blocks = vector_of_lists(&v);
        assert_eq!(blocks.len(), p);

        // Every block is sorted…
        for (k, block) in blocks.iter().enumerate() {
            assert!(
                block.windows(2).all(|w| w[0] <= w[1]),
                "block {k} not sorted at p={p}: {block:?}"
            );
        }
        // …blocks are globally ordered (max of block k ≤ min of k+1)…
        for k in 0..p.saturating_sub(1) {
            if let (Some(&hi), Some(&lo)) = (blocks[k].last(), blocks[k + 1].first()) {
                assert!(hi <= lo, "blocks {k}/{} overlap at p={p}", k + 1);
            }
        }
        // …and the multiset of values is exactly the input.
        let mut all: Vec<i64> = blocks.concat();
        all.sort_unstable();
        let mut expected: Vec<i64> = (0..p as i64).flat_map(|i| gen(n, i * 13 + 5)).collect();
        expected.sort_unstable();
        assert_eq!(all, expected, "value multiset differs at p={p}");
    }
}

#[test]
fn psrs_superstep_structure() {
    // One total exchange (medians) + one routing put = 2 supersteps.
    let report = BspMachine::new(BspParams::new(4, 1, 1))
        .run(&algorithms::psrs_sort(6).ast())
        .unwrap();
    assert_eq!(report.cost.supersteps, 2);
}

#[test]
fn matvec_matches_reference() {
    for p in [1, 2, 3] {
        let (r, c) = (2usize, 2usize);
        let w = algorithms::matvec(r, c);
        let v = eval_closed(&w.ast(), p).unwrap_or_else(|e| panic!("p={p}: {e}"));
        let blocks = vector_of_lists(&v);

        let rows = r * p;
        let cols = c * p;
        let x: Vec<i64> = (0..cols as i64).map(|j| j + 1).collect();
        for (proc, block) in blocks.iter().enumerate() {
            assert_eq!(block.len(), r, "p={p}");
            for (local_row, &y) in block.iter().enumerate() {
                let i = (proc * r + local_row) as i64;
                let expected: i64 = (0..cols as i64).map(|j| (i + 2 * j) * x[j as usize]).sum();
                assert_eq!(y, expected, "row {i} at p={p}");
            }
        }
        assert_eq!(blocks.len(), p);
        let _ = rows;
    }
}

#[test]
fn matvec_superstep_structure() {
    // One total exchange to assemble the vector = 1 superstep.
    let report = BspMachine::new(BspParams::new(3, 1, 1))
        .run(&algorithms::matvec(2, 2).ast())
        .unwrap();
    assert_eq!(report.cost.supersteps, 1);
    // Each processor ships its c-entry chunk (c + nil words) to the
    // p−1 others.
    assert_eq!(report.cost.h_relation, 2 * (2 + 1));
}

#[test]
fn algorithms_typecheck_and_are_global() {
    for w in [algorithms::psrs_sort(4), algorithms::matvec(1, 1)] {
        let inf = infer(&w.ast()).unwrap_or_else(|e| panic!("{}", e.render(&w.source)));
        assert!(
            inf.ty.to_string().ends_with("par"),
            "{}: {}",
            w.name,
            inf.ty
        );
    }
}
