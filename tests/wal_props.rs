//! Property tests for the durable-session layer (DESIGN.md §15): the
//! WAL record codec round-trips, recovery survives truncation at
//! *every* byte boundary and single-bit corruption at *every* offset,
//! compaction is observationally invisible (snapshot + suffix replay
//! renders the same bindings as full replay), and a seeded
//! storage-fault grid over both the WAL and the checkpoint
//! [`FileStore`] proves every injected disk fault degrades to a typed
//! error or an older consistent state — never a panic, never silently
//! wrong state.

use std::path::PathBuf;
use std::sync::Arc;

use bsml_bsp::checkpoint::{CheckpointStore, FileStore, RankFrame, SyncOutcome};
use bsml_bsp::{BspParams, Disk, StorageError, StoragePlan};
use bsml_core::{Session, SessionSnapshot};
use bsml_obs::Telemetry;
use bsml_repro::testgen;
use bsml_serve::{frame_record, scan_records, DurableLog, WalRecord};
use proptest::collection::vec;
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsml-walprops-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn machine() -> BspParams {
    BspParams::new(4, 2, 10)
}

/// Deterministic well-typed binding phrases, the same shape the load
/// generator submits.
fn phrases(seed: u64, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let s = seed.wrapping_mul(31).wrapping_add(i as u64);
            format!("let v{i} = {}", testgen::well_typed_source(s, 2))
        })
        .collect()
}

fn wal_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        ("[a-z0-9]{1,24}",).prop_map(|(tenant,)| WalRecord::Header { version: 1, tenant }),
        (any::<u64>(), vec(any::<u8>(), 0..64))
            .prop_map(|(seq, state)| WalRecord::Snapshot { seq, state }),
        (any::<u64>(), ".{0,64}").prop_map(|(seq, source)| WalRecord::Commit { seq, source }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every record body round-trips through encode/decode.
    #[test]
    fn record_bodies_roundtrip(rec in wal_record()) {
        prop_assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
    }

    /// Cutting a framed log at any byte boundary yields a clean
    /// prefix of the original records — the scan never panics, never
    /// invents a record, and flags exactly the cuts that cost bytes.
    #[test]
    fn truncation_at_every_boundary_yields_a_prefix(
        records in vec(wal_record(), 1..6),
    ) {
        let mut bytes = Vec::new();
        let mut frame_ends = Vec::new();
        for rec in &records {
            bytes.extend_from_slice(&frame_record(&rec.encode()));
            frame_ends.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let (scanned, good, torn) = scan_records(&bytes[..cut]);
            let whole = frame_ends.iter().filter(|e| **e <= cut).count();
            prop_assert_eq!(scanned.len(), whole, "cut at {}", cut);
            prop_assert_eq!(&scanned[..], &records[..whole]);
            let good_end = frame_ends.get(whole.wrapping_sub(1)).copied().unwrap_or(0);
            prop_assert_eq!(good, good_end);
            prop_assert_eq!(torn, cut != good_end);
        }
    }

    /// Flipping any single bit anywhere in a framed log is detected:
    /// the scan stops at the damaged frame and returns the intact
    /// prefix before it.
    #[test]
    fn single_bit_flips_never_pass_the_scan(
        records in vec(wal_record(), 1..5),
        byte_pick in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        let mut frame_ends = Vec::new();
        for rec in &records {
            bytes.extend_from_slice(&frame_record(&rec.encode()));
            frame_ends.push(bytes.len());
        }
        let byte = byte_pick as usize % bytes.len();
        bytes[byte] ^= 1 << bit;
        let (scanned, good, torn) = scan_records(&bytes);
        prop_assert!(torn, "flip at {byte}:{bit} went undetected");
        // The intact prefix is exactly the frames before the flip.
        let whole = frame_ends.iter().filter(|e| **e <= byte).count();
        prop_assert_eq!(scanned.len(), whole);
        prop_assert_eq!(&scanned[..], &records[..whole]);
        prop_assert_eq!(good, frame_ends.get(whole.wrapping_sub(1)).copied().unwrap_or(0));
    }

    /// A session snapshot's byte codec round-trips through the WAL's
    /// validator path.
    #[test]
    fn session_snapshots_roundtrip_through_bytes(seed in 0u64..1000) {
        let mut session = Session::new(machine());
        for p in phrases(seed, 3) {
            let _ = session.load(&p);
        }
        let snap = session.snapshot();
        let bytes = snap.to_bytes();
        let back = SessionSnapshot::from_bytes(&bytes).unwrap();
        let mut rebuilt = Session::new(machine());
        rebuilt.restore(&back);
        prop_assert_eq!(rebuilt.render_bindings(), session.render_bindings());
    }

    /// Compaction equivalence: recovering from a snapshot base plus
    /// the commit suffix renders exactly the bindings of replaying the
    /// full phrase list into a fresh session. Compaction must be
    /// observationally invisible.
    #[test]
    fn compaction_is_observationally_invisible(
        seed in 0u64..500,
        n in 3usize..8,
        snap_at in 1usize..7,
    ) {
        let snap_at = snap_at.min(n - 1);
        let dir = temp_dir(&format!("compact-{seed}-{n}-{snap_at}"));
        let log = DurableLog::open(&dir, Arc::new(Disk::new()), 64, Telemetry::disabled())
            .unwrap();
        let mut wal = log.tenant("alice", None).unwrap();
        let mut session = Session::new(machine());
        let all = phrases(seed, n);
        for (i, p) in all.iter().enumerate() {
            let _ = session.load(p);
            wal.append_commit(p).unwrap();
            if i + 1 == snap_at {
                wal.install_snapshot(&session.snapshot().to_bytes()).unwrap();
            }
        }
        let recovered = log.recover(&|b| SessionSnapshot::from_bytes(b).is_ok());
        prop_assert_eq!(recovered.len(), 1);
        let r = &recovered[0];
        prop_assert_eq!(r.last_seq, n as u64);
        prop_assert_eq!(r.commits.len(), n - snap_at);
        let mut rebuilt = Session::new(machine());
        if let Some((_, state)) = &r.base {
            rebuilt.restore(&SessionSnapshot::from_bytes(state).unwrap());
        }
        for p in &r.commits {
            let _ = rebuilt.load(p);
        }
        let mut oracle = Session::new(machine());
        for p in &all {
            let _ = oracle.load(p);
        }
        prop_assert_eq!(rebuilt.render_bindings(), oracle.render_bindings());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Seeded chaos over the WAL: one random storage fault per seed,
    /// armed under a write/compact/recover workload. Every outcome is
    /// a typed error or an older consistent state — recovered commits
    /// are always a prefix of what was offered, in order.
    #[test]
    fn wal_chaos_degrades_to_typed_error_or_older_state(seed in 0u64..256) {
        let dir = temp_dir(&format!("chaos-{seed}"));
        let disk = Arc::new(Disk::with_plan(StoragePlan::chaos(seed)));
        let log = DurableLog::open(&dir, disk, 3, Telemetry::disabled()).unwrap();
        let all = phrases(seed, 6);
        let mut durable: Vec<String> = Vec::new();
        if let Ok(mut wal) = log.tenant("chaos", None) {
            let mut session = Session::new(machine());
            for p in &all {
                // Mirror the server's commit-before-report rule: the
                // session only keeps a phrase whose append succeeded.
                let before = session.snapshot();
                let _ = session.load(p);
                match wal.append_commit(p) {
                    Ok(_) => durable.push(p.clone()),
                    Err(
                        StorageError::Enospc { .. }
                        | StorageError::TornWrite { .. }
                        | StorageError::SyncFailure { .. }
                        | StorageError::Io { .. },
                    ) => session.restore(&before),
                }
                if wal.should_snapshot() {
                    // Compaction failure is benign: the old generation
                    // stays authoritative.
                    let _ = wal.install_snapshot(&session.snapshot().to_bytes());
                }
            }
        }
        // Recovery on a clean disk (the fault has fired or never will)
        // sees a consistent prefix: sequence numbers index the
        // *durable* phrase list, and the recovered suffix matches it
        // exactly.
        let clean = DurableLog::open(&dir, Arc::new(Disk::new()), 3, Telemetry::disabled())
            .unwrap();
        for r in clean.recover(&|b| SessionSnapshot::from_bytes(b).is_ok()) {
            prop_assert!(r.last_seq <= durable.len() as u64);
            let last = r.last_seq as usize;
            let replay_from = last - r.commits.len();
            prop_assert_eq!(&r.commits[..], &durable[replay_from..last]);
            // Nothing the WAL acknowledged as durable may be lost,
            // unless recovery had to fall back past a damaged newer
            // generation (older consistent state, by design).
            if !r.fell_back && !r.truncated {
                prop_assert_eq!(r.last_seq, durable.len() as u64);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The same seeded chaos over the checkpoint [`FileStore`]: stage,
    /// commit, and load generations under an injected fault. Every
    /// failure is a typed [`CheckpointError`], and any generation that
    /// *does* load verifies bit-for-bit against what was committed.
    #[test]
    fn filestore_chaos_degrades_to_typed_error_or_older_state(seed in 0u64..256) {
        let dir = temp_dir(&format!("ckpt-{seed}"));
        let disk = Arc::new(Disk::with_plan(StoragePlan::chaos(seed)));
        let store = FileStore::open_with_disk(&dir, disk).unwrap();
        let p = 2usize;
        let fingerprint = 0xfeed_f00d_u64;
        let frame = |rank: usize, superstep: u64| RankFrame {
            fingerprint,
            rank,
            superstep,
            fuel_left: 100 - superstep,
            sent_words: superstep * 2,
            received_words: superstep * 2,
            puts: superstep,
            ifats: 0,
            outcomes: vec![SyncOutcome::IfAt { chosen: true }; superstep as usize],
        };
        let mut committed: Vec<u64> = Vec::new();
        for generation in 1..=4u64 {
            let staged = (0..p).all(|rank| store.stage(&frame(rank, generation)).is_ok());
            if staged && store.commit(generation, p).is_ok() {
                committed.push(generation);
            }
        }
        // Every committed generation either loads exactly what was
        // written or fails with a typed error (injected read faults
        // are typed, never a panic).
        for generation in committed {
            if let Ok(frames) = store.load(generation, p, fingerprint) {
                prop_assert_eq!(frames.len(), p);
                for (rank, f) in frames.iter().enumerate() {
                    prop_assert_eq!(f, &frame(rank, generation));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
