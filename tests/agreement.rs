//! The two dynamic semantics agree on the standard library.
//!
//! The small-step machine is the paper's definition; the big-step
//! evaluator is the engine. Running every stdlib workload through
//! both and comparing results validates the engine against the
//! definition (and exercises the Figure 2 δ-rules on real BSP
//! algorithms, `put`'s message-binding construction included).

use bsml_eval::{eval_closed, smallstep};
use bsml_std::workloads;

fn agree(program: &bsml_std::Program, p: usize) {
    let ast = program.ast();
    let big =
        eval_closed(&ast, p).unwrap_or_else(|e| panic!("{} big-step at p={p}: {e}", program.name));
    let small = smallstep::run(&ast, p, 50_000_000)
        .unwrap_or_else(|e| panic!("{} small-step at p={p}: {e}", program.name));
    assert!(
        bsml_ast::is_value(&small),
        "{}: small-step normal form is not a value",
        program.name
    );
    assert_eq!(
        big.to_string(),
        small.to_string(),
        "{} differs at p={p}",
        program.name
    );
}

#[test]
fn evaluators_agree_on_every_workload() {
    for w in workloads::all_basic() {
        for p in [1, 2, 3] {
            agree(&w, p);
        }
    }
}

#[test]
fn evaluators_agree_on_wider_machines_for_cheap_workloads() {
    for w in [
        workloads::bcast_direct(0),
        workloads::shift(),
        workloads::scan_plus_log(),
    ] {
        for p in [4, 5, 8] {
            agree(&w, p);
        }
    }
}

#[test]
fn small_step_trace_is_replayable() {
    // Each recorded step is exactly one application of the ⇀
    // relation (determinism of the machine).
    let e = workloads::shift().ast();
    let tr = smallstep::trace(&e, 2, 1_000_000).unwrap();
    assert!(tr.len() > 10);
    for w in tr.windows(2) {
        match smallstep::step(&w[0], 2) {
            smallstep::StepOutcome::Reduced(next) => assert_eq!(next, w[1]),
            other => panic!("non-deterministic or early stop: {other:?}"),
        }
    }
}
