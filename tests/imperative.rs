//! The imperative surface syntax: `;` sequencing, `while … do … done`
//! and `for … = … to … do … done`, desugared through `let _` and
//! `fix` — combined with the §6 references extension they make
//! mini-BSML a usable imperative language.

use bsml_bsp::BspParams;
use bsml_core::Bsml;
use bsml_eval::eval_closed;
use bsml_infer::infer;
use bsml_syntax::parse;

fn run(src: &str, p: usize) -> String {
    let e = parse(src).unwrap_or_else(|err| panic!("{}", err.render(src)));
    infer(&e).unwrap_or_else(|err| panic!("{}", err.render(src)));
    eval_closed(&e, p)
        .unwrap_or_else(|err| panic!("`{src}`: {err}"))
        .to_string()
}

#[test]
fn sequencing_desugars_to_let() {
    let e = parse("1; 2; 3").unwrap();
    assert_eq!(run("1; 2; 3", 1), "3");
    // Right associative nesting of `let _`.
    assert!(e.to_string().contains("let _ ="), "{e}");
}

#[test]
fn sequencing_with_references() {
    assert_eq!(run("let c = ref 0 in c := 5; c := !c * 2; !c + 1", 1), "11");
}

#[test]
fn list_literals_keep_their_semicolons() {
    assert_eq!(run("[1; 2; 3]", 1), "[1; 2; 3]");
    // A sequenced item needs parens — and gets them when printed.
    assert_eq!(run("[(1; 2); 3]", 1), "[2; 3]");
}

#[test]
fn while_loops() {
    assert_eq!(
        run(
            "let i = ref 0 in
             let sum = ref 0 in
             while !i < 10 do
               sum := !sum + !i;
               i := !i + 1
             done;
             !sum",
            1
        ),
        "45"
    );
}

#[test]
fn while_false_never_runs() {
    assert_eq!(
        run("let c = ref 1 in while false do c := 99 done; !c", 1),
        "1"
    );
}

#[test]
fn for_loops() {
    assert_eq!(
        run(
            "let acc = ref 0 in
             for k = 1 to 10 do acc := !acc + k done;
             !acc",
            1
        ),
        "55"
    );
    // Empty range: to < from.
    assert_eq!(
        run(
            "let acc = ref 7 in for k = 5 to 1 do acc := 0 done; !acc",
            1
        ),
        "7"
    );
}

#[test]
fn for_bound_evaluated_once() {
    // The upper bound reads a cell the body mutates: the loop uses
    // the value captured at entry (OCaml semantics).
    assert_eq!(
        run(
            "let n = ref 3 in
             let count = ref 0 in
             for k = 1 to !n do n := 100; count := !count + 1 done;
             !count",
            1
        ),
        "3"
    );
}

#[test]
fn loops_inside_vector_components() {
    // Per-processor imperative accumulation.
    assert_eq!(
        run(
            "mkpar (fun i ->
               let acc = ref 0 in
               (for k = 0 to i do acc := !acc + k done);
               !acc)",
            4
        ),
        "<|0, 1, 3, 6|>"
    );
}

#[test]
fn while_typechecks_as_unit() {
    let e = parse("let c = ref 0 in while !c < 3 do c := !c + 1 done").unwrap();
    let inf = infer(&e).unwrap();
    assert_eq!(inf.ty.to_string(), "unit");
}

#[test]
fn sequencing_respects_the_let_side_condition() {
    // Discarding a parallel vector via `;` hides a global evaluation
    // under a local type — rejected like the paper's (Let).
    let e = parse("mkpar (fun i -> i); 5").unwrap();
    assert!(infer(&e).is_err());
    // Keeping the global result is fine.
    let e = parse("let x = 1; 2 in mkpar (fun i -> x)").unwrap();
    assert!(infer(&e).is_ok());
}

#[test]
fn imperative_bsp_program_end_to_end() {
    // Each processor computes a local iterative factorial, then the
    // machine folds the results.
    let bsml = Bsml::new(BspParams::new(4, 10, 100));
    let out = bsml
        .run(
            "let fact = fun n ->
               let acc = ref 1 in
               (for k = 2 to n do acc := !acc * k done);
               !acc in
             let partials = mkpar (fun i -> fact (i + 1)) in
             let msgs = put (apply (mkpar (fun i -> fun v -> fun dst -> v),
                                    partials)) in
             apply (mkpar (fun i -> fun f ->
                      let total = ref 0 in
                      (for j = 0 to bsp_p () - 1 do total := !total + f j done);
                      !total),
                    msgs)",
        )
        .unwrap_or_else(|e| panic!("{e}"));
    // 1! + 2! + 3! + 4! = 33, replicated.
    assert_eq!(out.report.value.to_string(), "<|33, 33, 33, 33|>");
    assert_eq!(out.report.cost.supersteps, 1);
}

#[test]
fn pretty_printed_desugarings_reparse() {
    for src in [
        "1; 2",
        "let c = ref 0 in while !c < 2 do c := !c + 1 done; !c",
        "let a = ref 0 in for k = 1 to 3 do a := !a + k done; !a",
    ] {
        let e = parse(src).unwrap();
        let printed = e.to_string();
        let again = parse(&printed).unwrap_or_else(|err| panic!("`{printed}`: {err}"));
        assert_eq!(e, again, "on `{src}` → `{printed}`");
    }
}
