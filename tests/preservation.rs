//! Subject reduction, fuzzed: along every small-step reduction
//! sequence of a well-typed program, each intermediate extended
//! expression stays well-typed **at the same simple type**, and its
//! constraint never becomes absurd — the inductive heart of
//! Theorem 1 (the paper notes the constraint itself may weaken,
//! `C'` less constrained than `C`).

use std::collections::BTreeMap;

use bsml_ast::build as b;
use bsml_ast::Expr;
use bsml_eval::smallstep::{step, StepOutcome};
use bsml_infer::infer;
use bsml_types::{Solution, TyVar, Type};

const P: usize = 2;
const MAX_STEPS: usize = 400;

/// `true` if `specific` is an instance of `general` (a substitution
/// of `general`'s variables yields `specific`). Reduction may
/// *generalize* the principal type (e.g. a broadcast whose messages
/// all reduce to `nc ()` gets `α par` instead of `int par`), so
/// preservation is "the original type remains derivable".
fn instance_of(specific: &Type, general: &Type) -> bool {
    fn go(g: &Type, s: &Type, map: &mut BTreeMap<TyVar, Type>) -> bool {
        match (g, s) {
            (Type::Var(v), _) => match map.get(v) {
                Some(prev) => prev == s,
                None => {
                    map.insert(*v, s.clone());
                    true
                }
            },
            (Type::Int, Type::Int) | (Type::Bool, Type::Bool) | (Type::Unit, Type::Unit) => true,
            (Type::Arrow(a1, b1), Type::Arrow(a2, b2))
            | (Type::Pair(a1, b1), Type::Pair(a2, b2))
            | (Type::Sum(a1, b1), Type::Sum(a2, b2)) => go(a1, a2, map) && go(b1, b2, map),
            (Type::Par(x), Type::Par(y)) | (Type::List(x), Type::List(y)) => go(x, y, map),
            _ => false,
        }
    }
    go(general, specific, &mut BTreeMap::new())
}

fn check_preservation(e: &Expr) {
    let initial = infer(e).unwrap_or_else(|err| panic!("initial term ill-typed: {err}\n  {e}"));
    let mut cur = e.clone();
    for n in 0..MAX_STEPS {
        match step(&cur, P) {
            StepOutcome::Reduced(next) => {
                let inf = infer(&next).unwrap_or_else(|err| {
                    panic!(
                        "preservation broken after {n} steps: {err}\n  from {cur}\n  to   {next}"
                    )
                });
                assert!(
                    instance_of(&initial.ty, &inf.ty),
                    "type not preserved after {} steps: {} is no instance of {}\n  term: {}",
                    n + 1,
                    initial.ty,
                    inf.ty,
                    next
                );
                assert_ne!(
                    inf.solution,
                    Solution::False,
                    "constraint became absurd mid-reduction at {next}"
                );
                cur = next;
            }
            StepOutcome::Value => return,
            StepOutcome::Stuck(reason) => {
                panic!("well-typed term got stuck ({reason}): {cur}")
            }
        }
    }
    panic!("program did not terminate within {MAX_STEPS} steps: {e}");
}

#[test]
fn preservation_on_sequential_programs() {
    for src in [
        "1 + 2 * 3",
        "(fun x -> x + x) 21",
        "let x = 1 in let y = x + 1 in x * y",
        "if 1 < 2 then 10 else 20",
        "fst (snd ((1, 2), (3, 4)), 5)",
        "case inl 3 of inl a -> a + 1 | inr b -> b - 1",
        "match [1; 2; 3] with [] -> 0 | h :: t -> h * 10",
        "let rec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 6",
        "isnc (nc ())",
    ] {
        let e = bsml_syntax::parse(src).unwrap();
        check_preservation(&e);
    }
}

#[test]
fn preservation_on_parallel_programs() {
    for src in [
        "mkpar (fun i -> i * i)",
        "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i))",
        "put (mkpar (fun j -> fun d -> j * 10 + d))",
        "let r = put (mkpar (fun j -> fun d -> j)) in apply (r, mkpar (fun i -> 0))",
        "if mkpar (fun i -> i = 0) at 0 then mkpar (fun i -> 1) else mkpar (fun i -> 2)",
        "(fun x -> if mkpar (fun i -> true) at 0 then x else x) (mkpar (fun i -> i))",
        "fst (mkpar (fun i -> i), 1)",
        "snd (1, mkpar (fun i -> i))",
    ] {
        let e = bsml_syntax::parse(src).unwrap();
        check_preservation(&e);
    }
}

#[test]
fn preservation_on_the_accepted_corpus() {
    use bsml_std::{paper_corpus, Verdict};
    for entry in paper_corpus() {
        if entry.verdict == Verdict::Accept {
            // The parallel-identity abstraction alone is a value;
            // the applied versions reduce.
            check_preservation(&entry.ast());
        }
    }
}

#[test]
fn preservation_on_generated_programs() {
    // Reuse the builder DSL for a handful of structured cases
    // covering every congruence rule.
    let progs = vec![
        b::pair(b::add(b::int(1), b::int(2)), b::mul(b::int(3), b::int(4))),
        b::cons(b::add(b::int(1), b::int(1)), b::list(vec![b::int(2)])),
        b::inl(b::add(b::int(1), b::int(1))),
        b::ifat(
            b::mkpar(b::fun_("i", b::eq(b::var("i"), b::int(1)))),
            b::add(b::int(0), b::int(1)),
            b::mkpar(b::fun_("i", b::int(7))),
            b::mkpar(b::fun_("i", b::int(8))),
        ),
    ];
    for e in progs {
        check_preservation(&e);
    }
}
