//! Diagnostic quality: every error class renders with a location, a
//! source excerpt, a caret, and a message a user can act on.

use bsml_bsp::BspParams;
use bsml_core::{Bsml, BsmlError};

fn bsml() -> Bsml {
    Bsml::new(BspParams::new(4, 10, 100))
}

fn rendered_error(src: &str) -> String {
    match bsml().run(src) {
        Err(err) => err.render(src),
        Ok(out) => panic!("`{src}` should fail, got {}", out.report.value),
    }
}

#[test]
fn parse_error_anatomy() {
    let r = rendered_error("let x = in x");
    assert!(r.starts_with("parse error at 1:"), "{r}");
    assert!(r.contains("let x = in x"), "{r}");
    assert!(r.contains('^'), "{r}");
    assert!(r.contains("expected an expression"), "{r}");
}

#[test]
fn unbound_variable_anatomy() {
    let r = rendered_error("1 + nope");
    assert!(r.contains("unbound variable `nope`"), "{r}");
    assert!(r.contains('^'), "{r}");
}

#[test]
fn unification_error_anatomy() {
    let r = rendered_error("1 + true");
    assert!(r.contains("cannot unify"), "{r}");
    assert!(r.contains("int"), "{r}");
    assert!(r.contains("bool"), "{r}");
}

#[test]
fn locality_violation_anatomy() {
    let r = rendered_error("fst (1, mkpar (fun i -> i))");
    assert!(r.contains("parallel nesting rejected"), "{r}");
    // The constraint the paper shows for Figure 10.
    assert!(r.contains("L(int) ⇒ L(int par)"), "{r}");
    assert!(r.contains("rule (App)"), "{r}");
}

#[test]
fn let_violation_names_the_rule() {
    let r = rendered_error("let v = mkpar (fun i -> i) in 0");
    assert!(r.contains("rule (Let)"), "{r}");
    assert!(r.contains("⇒"), "{r}");
}

#[test]
fn ifat_violation_names_the_rule() {
    let r = rendered_error("if mkpar (fun i -> true) at 0 then 1 else 2");
    assert!(r.contains("rule (Ifat)"), "{r}");
    assert!(r.contains("False"), "{r}");
}

#[test]
fn runtime_errors_render() {
    let r = rendered_error("1 / 0");
    assert!(r.contains("division by zero"), "{r}");
    let r = match bsml().run_unchecked("mkpar (fun i -> mkpar (fun j -> j))") {
        Err(err) => err.render("…"),
        Ok(_) => panic!("nesting must fail"),
    };
    assert!(r.contains("nested parallelism"), "{r}");
}

#[test]
fn multiline_errors_point_at_the_right_line() {
    let src = "let a = 1 in\nlet b = 2 in\na + nope";
    let r = rendered_error(src);
    assert!(r.contains("3:"), "{r}");
    assert!(r.contains("a + nope"), "{r}");
    // The offending line is excerpted, not the whole program.
    assert!(!r.contains("let a = 1 in\nlet b"), "{r}");
}

#[test]
fn reserved_operator_binders_are_explained() {
    let r = rendered_error("fun mkpar -> mkpar");
    assert!(r.contains("reserved operator name"), "{r}");
}

#[test]
fn errors_via_display_are_single_line() {
    for src in ["let x = in x", "1 + nope", "1 + true", "1 / 0"] {
        let err = bsml().run(src).unwrap_err();
        let display = err.to_string();
        assert!(!display.contains('\n'), "`{src}`: {display}");
        assert!(!display.is_empty());
    }
}

#[test]
fn session_errors_name_the_failing_phrase() {
    let mut s = bsml().session();
    let err = s
        .load("let good = 1 ;; let bad = fst (1, mkpar (fun i -> i)) ;;")
        .unwrap_err();
    let r = match err {
        BsmlError::Type(e) => e.to_string(),
        other => panic!("expected a type error, got {other}"),
    };
    assert!(r.contains("parallel nesting"), "{r}");
}
