//! Property tests for the wire protocol (DESIGN.md §10): the
//! [`PortableValue`] codec round-trips every value the evaluator can
//! serialize, frames round-trip with their headers intact, and the
//! decoder *rejects* — never panics on, never silently accepts — every
//! truncation and every single-bit corruption. The last property is
//! what the reliable-delivery layer's correctness rests on: a frame
//! damaged in flight must look *lost* (so the sender retransmits), not
//! subtly different.

use bsml_bsp::wire::{decode_value, encode_value, Reader};
use bsml_bsp::{Frame, FramePayload};
use bsml_eval::PortableValue;
use proptest::collection::vec;
use proptest::prelude::*;

fn portable_value() -> impl Strategy<Value = PortableValue> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(PortableValue::Int),
        any::<bool>().prop_map(PortableValue::Bool),
        Just(PortableValue::Unit),
        Just(PortableValue::NoComm),
        Just(PortableValue::Nil),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PortableValue::Pair(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|v| PortableValue::Inl(Box::new(v))),
            inner.clone().prop_map(|v| PortableValue::Inr(Box::new(v))),
            (inner.clone(), inner.clone())
                .prop_map(|(h, t)| PortableValue::Cons(Box::new(h), Box::new(t))),
            vec(inner, 0..4).prop_map(PortableValue::Vector),
        ]
    })
}

fn frame() -> impl Strategy<Value = Frame> {
    let payload = prop_oneof![
        portable_value().prop_map(FramePayload::Put),
        any::<bool>().prop_map(FramePayload::IfAt),
        Just(FramePayload::Ack),
    ];
    (
        0usize..64,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        payload,
    )
        .prop_map(|(from, superstep, seq, lamport, payload)| Frame {
            from,
            superstep,
            seq,
            lamport,
            payload,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn values_roundtrip_and_consume_exactly(v in portable_value()) {
        let mut bytes = Vec::new();
        encode_value(&mut bytes, &v);
        let mut r = Reader::new(&bytes);
        let back = decode_value(&mut r).expect("self-encoded value decodes");
        prop_assert_eq!(back, v);
        prop_assert_eq!(r.remaining(), 0, "decoder left bytes behind");
    }

    #[test]
    fn frames_roundtrip(f in frame()) {
        let bytes = f.encode();
        let back = Frame::decode(&bytes).expect("self-encoded frame decodes");
        prop_assert_eq!(back, f);
    }

    #[test]
    fn every_truncation_is_rejected(f in frame()) {
        // A truncated frame must come back as a decode *error* — the
        // reliable layer then treats it as lost. No panic, no partial
        // acceptance, for any cut point including the empty slice.
        let bytes = f.encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                Frame::decode(&bytes[..cut]).is_err(),
                "accepted a frame truncated to {cut} of {} bytes",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected(f in frame(), flip in any::<usize>()) {
        // The FNV-1a trailer covers every preceding byte (length
        // prefix included), so any one-bit corruption — header,
        // payload, or the checksum itself — is caught.
        let bytes = f.encode();
        let bit = flip % (bytes.len() * 8);
        let mut damaged = bytes.clone();
        damaged[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            Frame::decode(&damaged).is_err(),
            "accepted a frame with bit {bit} flipped"
        );
    }

    #[test]
    fn corrupt_payloads_never_panic_the_decoder(junk in vec(any::<u8>(), 0..96)) {
        // Arbitrary bytes: decoding may fail (it almost always will),
        // but must return, not panic — the exchange loop runs it on
        // whatever the transport delivers.
        let _ = Frame::decode(&junk);
        let mut r = Reader::new(&junk);
        let _ = decode_value(&mut r);
    }
}
