//! Additional cross-crate properties: module round-trips, scheme
//! normalization laws, and cost-model compositionality over program
//! length.

use bsml_bsp::{BspMachine, BspParams};
use bsml_repro::testgen::{generate, GenTy};
use bsml_std::workloads;
use bsml_syntax::{parse_module, Module};
use bsml_types::{Constraint, Scheme, Type};
use proptest::prelude::*;

// ---------- module round trips ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn modules_of_generated_programs_round_trip(
        seed1 in any::<u64>(),
        seed2 in any::<u64>(),
    ) {
        let d1 = generate(seed1, GenTy::Int, 3);
        let d2 = generate(seed2, GenTy::IntPar, 3);
        let m = Module {
            decls: vec![
                bsml_syntax::Decl {
                    name: bsml_ast::Ident::new("a"),
                    expr: d1,
                    span: bsml_ast::Span::DUMMY,
                },
                bsml_syntax::Decl {
                    name: bsml_ast::Ident::new("b"),
                    expr: d2,
                    span: bsml_ast::Span::DUMMY,
                },
            ],
            body: Some(bsml_ast::build::var("a")),
        };
        let printed = m.to_string();
        let reparsed = parse_module(&printed)
            .unwrap_or_else(|e| panic!("{}\n{printed}", e.render(&printed)));
        prop_assert_eq!(reparsed, m);
    }

    #[test]
    fn module_to_expr_equals_nested_lets(seed in any::<u64>()) {
        let body = generate(seed, GenTy::Int, 3);
        let src = format!("let q = 1 ;; let r = q + 1 ;; {body}");
        let m = parse_module(&src).unwrap();
        let folded = m.to_expr().expect("has body");
        // The folded expression types and runs like the module parts.
        let inf = bsml_infer::infer(&folded);
        prop_assert!(inf.is_ok());
    }
}

// ---------- scheme normalization ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn normalize_is_idempotent(
        a in 0u32..40,
        b in 0u32..40,
        with_constraint in any::<bool>(),
    ) {
        let ty = Type::arrow(Type::var(a), Type::pair(Type::var(b), Type::Int));
        let c = if with_constraint {
            Constraint::implies(
                Constraint::loc(Type::var(a)),
                Constraint::loc(Type::var(b)),
            )
        } else {
            Constraint::True
        };
        let s = Scheme::close(ty, c).normalize();
        let again = s.normalize();
        prop_assert_eq!(s.to_string(), again.to_string());
    }

    #[test]
    fn normalize_is_alpha_invariant(shift in 1u32..50) {
        // The same scheme written with shifted variables normalizes
        // to the identical display form.
        let mk = |base: u32| {
            Scheme::close(
                Type::arrow(Type::var(base), Type::var(base + 1)),
                Constraint::implies(
                    Constraint::loc(Type::var(base)),
                    Constraint::loc(Type::var(base + 1)),
                ),
            )
            .normalize()
        };
        prop_assert_eq!(mk(0).to_string(), mk(shift).to_string());
    }
}

// ---------- cost compositionality over length ----------

#[test]
fn shift_pipelines_compose_linearly() {
    let machine = BspMachine::new(BspParams::new(4, 1, 1));
    let unit_cost = machine.run(&workloads::ping_rounds(1).ast()).unwrap().cost;
    for rounds in 2..=8 {
        let cost = machine
            .run(&workloads::ping_rounds(rounds).ast())
            .unwrap()
            .cost;
        assert_eq!(
            cost.supersteps,
            rounds as u64 * unit_cost.supersteps,
            "S not linear at {rounds}"
        );
        assert_eq!(
            cost.h_relation,
            rounds as u64 * unit_cost.h_relation,
            "H not linear at {rounds}"
        );
    }
}

#[test]
fn priced_time_is_monotone_in_machine_parameters() {
    let e = workloads::scan_plus_log().ast();
    let cost = BspMachine::new(BspParams::new(8, 1, 1))
        .run(&e)
        .unwrap()
        .cost;
    let mut last = 0;
    for (g, l) in [(1, 1), (2, 5), (10, 100), (160, 40_000)] {
        let t = cost.time(&BspParams::new(8, g, l));
        assert!(t > last, "time not monotone at g={g}, l={l}");
        last = t;
    }
}
