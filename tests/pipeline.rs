//! Whole-pipeline integration: the paper corpus through parse →
//! typecheck → (simulated) execution.

use bsml_bsp::BspParams;
use bsml_core::{Bsml, BsmlError};
use bsml_eval::EvalError;
use bsml_std::{paper_corpus, workloads, Verdict};

fn bsml(p: usize) -> Bsml {
    Bsml::new(BspParams::new(p, 10, 1000))
}

#[test]
fn corpus_pipeline_verdicts() {
    let b = bsml(4);
    for entry in paper_corpus() {
        match (entry.verdict, b.run(&entry.source)) {
            (Verdict::Accept, Ok(_)) => {}
            (Verdict::Accept, Err(BsmlError::Eval(EvalError::DivisionByZero))) => {}
            (Verdict::Accept, Err(err)) => panic!(
                "`{}` should pass the pipeline: {}",
                entry.name,
                err.render(&entry.source)
            ),
            (Verdict::Reject, Err(BsmlError::Type(_))) => {}
            (Verdict::Reject, Err(other)) => {
                panic!("`{}` rejected, but not statically: {other}", entry.name)
            }
            (Verdict::Reject, Ok(out)) => panic!(
                "`{}` should be rejected, produced {}",
                entry.name, out.report.value
            ),
        }
    }
}

#[test]
fn accepted_parallel_identity_runs_on_vectors() {
    let out = bsml(4)
        .run(
            "(fun x -> if mkpar (fun i -> true) at 0 then x else x) \
             (mkpar (fun i -> i))",
        )
        .unwrap();
    assert_eq!(out.report.value.to_string(), "<|0, 1, 2, 3|>");
    // One ifat barrier.
    assert_eq!(out.report.cost.supersteps, 1);
}

#[test]
fn rejected_programs_that_would_misbehave_dynamically() {
    // Every statically-rejected corpus entry either (a) crashes the
    // dynamic semantics with nested parallelism, or (b) runs but is
    // exactly the kind of expression whose cost the paper shows to be
    // non-compositional. Verify (a) where it applies.
    let b = bsml(4);
    let dynamic_nesting = ["example2-hidden-nesting", "example1-nested-bcast"];
    for entry in paper_corpus() {
        if dynamic_nesting.contains(&entry.name) {
            match b.run_unchecked(&entry.source) {
                Err(BsmlError::Eval(EvalError::NestedParallelism)) => {}
                other => panic!(
                    "`{}` should crash with dynamic nesting, got {other:?}",
                    entry.name
                ),
            }
        }
    }
}

#[test]
fn workloads_run_end_to_end_with_costs() {
    let b = bsml(4);
    for w in workloads::all_basic() {
        let out = b
            .run(&w.source)
            .unwrap_or_else(|err| panic!("{}: {}", w.name, err.render(&w.source)));
        assert!(out.report.cost.work > 0, "{} did no work at all", w.name);
        // Global results are vectors.
        assert!(out.check.inference.ty.to_string().contains("par"));
    }
}

#[test]
fn derivations_render_for_the_corpus_accepts() {
    let b = bsml(2);
    for entry in paper_corpus() {
        if entry.verdict == Verdict::Accept {
            let d = b
                .derivation(&entry.source)
                .unwrap_or_else(|err| panic!("{}: {err}", entry.name));
            assert!(!d.is_empty());
            assert!(d.lines().count() >= 1);
        }
    }
}

#[test]
fn machine_size_does_not_change_verdicts() {
    // Typing is machine-independent; execution works for any p.
    for p in [1, 2, 3, 8, 16] {
        let b = bsml(p);
        let out = b.run(&workloads::fold_plus().source).unwrap();
        let expected: i64 = (1..=p as i64).sum();
        let expected = format!("<|{}|>", vec![expected.to_string(); p].join(", "));
        assert_eq!(out.report.value.to_string(), expected, "p={p}");
    }
}
