//! Experiment E1: the paper's equation (1).
//!
//! `bcast n vec` must cost `p + (p−1)·s·g + l` — we verify the exact
//! communication (`H = (p−1)·s`) and synchronization (`S = 1`) terms
//! on the simulator across sweeps of `p` and `s`, and the *shape* of
//! the work term (`W` grows linearly in `p` for the send-function
//! evaluation, as the paper's `p` term does).

use bsml_bsp::{formulas, BspMachine, BspParams};
use bsml_std::workloads;

fn run_cost(p: usize, program: &bsml_std::Program) -> bsml_bsp::CostSummary {
    let machine = BspMachine::new(BspParams::new(p, 1, 1));
    machine
        .run(&program.ast())
        .unwrap_or_else(|e| panic!("{} at p={p}: {e}", program.name))
        .cost
}

#[test]
fn equation1_h_and_s_terms_are_exact_over_p() {
    // One-word payload: H = (p−1)·1, S = 1, for every machine size.
    for p in [2, 3, 4, 8, 16, 32] {
        let cost = run_cost(p, &workloads::bcast_direct(0));
        let predicted = formulas::bcast_direct(p, 1);
        assert_eq!(cost.h_relation, predicted.h_relation, "H at p={p}");
        assert_eq!(cost.supersteps, predicted.supersteps, "S at p={p}");
    }
}

#[test]
fn equation1_h_scales_linearly_in_message_size() {
    // Payload of s list elements: the message is a list of s ints,
    // measured as s+1 words (s values + the nil terminator).
    let p = 4;
    for s in [1, 2, 8, 32] {
        let cost = run_cost(p, &workloads::bcast_direct_payload(0, s));
        let words = s as u64 + 1;
        let predicted = formulas::bcast_direct(p, words);
        assert_eq!(
            cost.h_relation, predicted.h_relation,
            "H at s={s} (payload {words} words)"
        );
        assert_eq!(cost.supersteps, 1);
    }
}

#[test]
fn equation1_work_term_grows_linearly_in_p() {
    // W(p) should be ~affine in p (each processor evaluates the send
    // function for p destinations). Check the second difference is
    // small relative to the first.
    let w: Vec<u64> = [4, 8, 16]
        .iter()
        .map(|&p| run_cost(p, &workloads::bcast_direct(0)).work)
        .collect();
    let d1 = w[1] - w[0];
    let d2 = w[2] - w[1];
    // Doubling p should roughly double the increment (affine in p
    // means d2 ≈ 2·d1); allow 25% slack for interpreter constants.
    let lo = 2 * d1 - d1 / 2;
    let hi = 2 * d1 + d1 / 2;
    assert!(
        (lo..=hi).contains(&d2),
        "work increments not ~linear: w={w:?}, d1={d1}, d2={d2}"
    );
}

#[test]
fn log_bcast_has_logarithmic_supersteps() {
    for p in [1, 2, 3, 4, 5, 8, 16] {
        let cost = run_cost(p, &workloads::bcast_log_payload(1));
        assert_eq!(cost.supersteps, formulas::ceil_log2(p), "S at p={p}");
    }
}

#[test]
fn direct_vs_log_crossover_matches_the_cost_model() {
    // On a machine with expensive barriers the direct broadcast wins;
    // with expensive words and cheap barriers the logarithmic one
    // wins. Verify with *measured* costs priced on each machine.
    let p = 16;
    let direct = run_cost(p, &workloads::bcast_direct(0));
    let log = run_cost(p, &workloads::bcast_log_payload(1));

    // Expensive barrier, cheap words (ethernet-like).
    let barrier_heavy = BspParams::new(p, 1, 1_000_000);
    assert!(
        direct.as_cost().time(&barrier_heavy) < log.as_cost().time(&barrier_heavy),
        "direct should win when l dominates"
    );

    // Expensive words, cheap barrier: H_direct = 15 vs H_log = 4·small.
    let word_heavy = BspParams::new(p, 1_000_000, 1);
    assert!(
        log.as_cost().time(&word_heavy) < direct.as_cost().time(&word_heavy),
        "log should win when g dominates (H: direct={} log={})",
        direct.h_relation,
        log.h_relation
    );
}

#[test]
fn shift_is_a_one_relation() {
    for p in [2, 4, 8] {
        let cost = run_cost(p, &workloads::shift());
        let predicted = formulas::shift(p, 1);
        assert_eq!(cost.h_relation, predicted.h_relation, "p={p}");
        assert_eq!(cost.supersteps, predicted.supersteps);
    }
}

#[test]
fn total_exchange_is_a_p_minus_1_relation() {
    for p in [2, 4, 8] {
        let cost = run_cost(p, &workloads::total_exchange());
        let predicted = formulas::total_exchange(p, 1);
        assert_eq!(cost.h_relation, predicted.h_relation, "p={p}");
        assert_eq!(cost.supersteps, 1);
    }
}

#[test]
fn scan_direct_vs_log_superstep_counts() {
    for p in [2, 4, 8, 16] {
        let direct = run_cost(p, &workloads::scan_plus_direct());
        let log = run_cost(p, &workloads::scan_plus_log());
        assert_eq!(direct.supersteps, 1, "p={p}");
        assert_eq!(log.supersteps, formulas::ceil_log2(p), "p={p}");
        // Direct moves more words at large p: H_direct = p−1 (proc
        // p−1 receives from everyone), H_log = log p.
        if p >= 4 {
            assert!(direct.h_relation > log.h_relation, "p={p}");
        }
    }
}

#[test]
fn ping_rounds_superstep_count_is_exact() {
    for rounds in [1, 2, 5, 10] {
        let cost = run_cost(4, &workloads::ping_rounds(rounds));
        assert_eq!(cost.supersteps, rounds as u64);
    }
}

#[test]
fn cost_model_is_compositional_for_sequenced_puts() {
    // The whole point of the nesting restriction (§2.1): the cost of
    // a sequence is the sum of the costs. Two shifts cost exactly one
    // shift twice (same H per superstep, same S sum).
    let one = run_cost(4, &workloads::ping_rounds(1));
    let two = run_cost(4, &workloads::ping_rounds(2));
    assert_eq!(two.supersteps, 2 * one.supersteps);
    assert_eq!(two.h_relation, 2 * one.h_relation);
}
