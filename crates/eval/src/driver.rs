//! Pluggable execution backends for the four parallel primitives.
//!
//! The big-step evaluator delegates `mkpar`, `apply`, `put` and
//! `if‥at‥` to a [`ParallelDriver`]. Two implementations exist:
//!
//! * [`GlobalDriver`] (the default) — the *lockstep* model: one
//!   evaluator holds whole `p`-wide vectors and plays every processor
//!   in turn. Deterministic, sequential, used by the cost simulator.
//! * `SpmdDriver` (in `bsml-bsp::distributed`) — the *distributed*
//!   model the paper's BSMLlib actually used: one OS thread per
//!   processor, each holding only its own vector components (width-1
//!   vectors), exchanging real messages at `put`/`if‥at‥` barriers.
//!
//! The driver calls back into the evaluator through [`Applier`] to
//! run component functions and to report communication events.

use crate::error::EvalError;
use crate::hooks::Mode;
use crate::value::Value;

/// The evaluator services a driver may use.
pub trait Applier {
    /// Applies a function value to an argument in the given mode
    /// (ticking fuel and work hooks as usual).
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] from the evaluation.
    fn apply_fn(&mut self, f: Value, arg: Value, mode: Mode) -> Result<Value, EvalError>;

    /// Rejects a vector component that is itself parallel data.
    ///
    /// # Errors
    ///
    /// [`EvalError::NestedParallelism`].
    fn ensure_local(&self, v: &Value) -> Result<(), EvalError>;

    /// Reports a completed `put` exchange (`messages[j][i]` = what
    /// `j` sent to `i`) to the cost hooks.
    fn note_put(&mut self, messages: &[Vec<Value>]);

    /// Reports an `if‥at‥` synchronization to the cost hooks.
    fn note_ifat(&mut self, at: usize, chosen: bool);

    /// Reports an asynchronous vector operation to the cost hooks.
    fn note_async(&mut self);

    /// The evaluator's remaining fuel budget. Deterministic replay
    /// (checkpoint resume in `bsml-bsp`) uses this as a cheap but
    /// sensitive progress fingerprint: replaying a superstep prefix
    /// must land on exactly the fuel a checkpoint recorded.
    fn fuel_left(&self) -> u64;
}

/// A backend implementing the parallel primitives.
pub trait ParallelDriver {
    /// The machine size `p` (the value of `bsp_p ()`).
    fn machine_width(&self) -> usize;

    /// The width of [`Value::Vector`]s in this backend (`p` in the
    /// lockstep model, 1 per processor in the SPMD model), or `None`
    /// when runtime vector *literals* are unsupported.
    fn literal_width(&self) -> Option<usize>;

    /// `mkpar f` — `f` is a function value.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    fn mkpar(&mut self, ev: &mut dyn Applier, f: &Value) -> Result<Value, EvalError>;

    /// `apply (⟨fs⟩, ⟨vs⟩)` — equal-width component slices.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    fn apply_par(
        &mut self,
        ev: &mut dyn Applier,
        fs: &[Value],
        vs: &[Value],
    ) -> Result<Value, EvalError>;

    /// `put ⟨fs⟩`.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    fn put(&mut self, ev: &mut dyn Applier, fs: &[Value]) -> Result<Value, EvalError>;

    /// `if ⟨bools⟩ at n` — returns the chosen branch's boolean after
    /// the synchronization.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    fn ifat(&mut self, ev: &mut dyn Applier, bools: &[Value], at: usize)
        -> Result<bool, EvalError>;
}

/// The default lockstep backend (paper §3's semantics, literally).
#[derive(Clone, Debug)]
pub struct GlobalDriver {
    p: usize,
}

impl GlobalDriver {
    /// A lockstep machine of `p` processors.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn new(p: usize) -> GlobalDriver {
        assert!(p > 0, "a BSP machine needs at least one processor");
        GlobalDriver { p }
    }
}

impl ParallelDriver for GlobalDriver {
    fn machine_width(&self) -> usize {
        self.p
    }

    fn literal_width(&self) -> Option<usize> {
        Some(self.p)
    }

    fn mkpar(&mut self, ev: &mut dyn Applier, f: &Value) -> Result<Value, EvalError> {
        ev.note_async();
        let mut vs = Vec::with_capacity(self.p);
        for i in 0..self.p {
            let v = ev.apply_fn(f.clone(), Value::Int(i as i64), Mode::OnProc(i))?;
            ev.ensure_local(&v)?;
            vs.push(v);
        }
        Ok(Value::vector(vs))
    }

    fn apply_par(
        &mut self,
        ev: &mut dyn Applier,
        fs: &[Value],
        vs: &[Value],
    ) -> Result<Value, EvalError> {
        ev.note_async();
        let mut out = Vec::with_capacity(fs.len());
        for i in 0..fs.len() {
            let v = ev.apply_fn(fs[i].clone(), vs[i].clone(), Mode::OnProc(i))?;
            ev.ensure_local(&v)?;
            out.push(v);
        }
        Ok(Value::vector(out))
    }

    fn put(&mut self, ev: &mut dyn Applier, fs: &[Value]) -> Result<Value, EvalError> {
        if fs.len() != self.p {
            return Err(EvalError::ScrutineeMismatch(
                "put",
                format!(
                    "vector of width {} on a {}-processor machine",
                    fs.len(),
                    self.p
                ),
            ));
        }
        // messages[j][i]: what j sends to i.
        let mut messages: Vec<Vec<Value>> = Vec::with_capacity(self.p);
        for (j, f) in fs.iter().enumerate() {
            let mut row = Vec::with_capacity(self.p);
            for i in 0..self.p {
                let v = ev.apply_fn(f.clone(), Value::Int(i as i64), Mode::OnProc(j))?;
                ev.ensure_local(&v)?;
                row.push(v);
            }
            messages.push(row);
        }
        ev.note_put(&messages);
        // Receiver i gets the table [messages[0][i], …].
        let out = (0..self.p)
            .map(|i| {
                let table: Vec<Value> = messages.iter().map(|row| row[i].clone()).collect();
                Value::MsgTable(std::rc::Rc::new(table))
            })
            .collect();
        Ok(Value::vector(out))
    }

    fn ifat(
        &mut self,
        ev: &mut dyn Applier,
        bools: &[Value],
        at: usize,
    ) -> Result<bool, EvalError> {
        let chosen = match bools.get(at) {
            Some(Value::Bool(b)) => *b,
            Some(v) => return Err(EvalError::ScrutineeMismatch("if‥at‥", v.to_string())),
            None => return Err(EvalError::PidOutOfRange(at as i64, self.p)),
        };
        ev.note_ifat(at, chosen);
        Ok(chosen)
    }
}
