//! Dynamic semantics of mini-BSML (paper §3).
//!
//! Two evaluators are provided:
//!
//! * [`smallstep`] — the literal small-step machine of the paper:
//!   head reductions `ε`, the δ-rules of Figures 1 and 2, and the
//!   evaluation contexts `Γ` (global) and `Γ_l` (local, inside a
//!   parallel vector component) of Figure 5. Parallel primitives are
//!   *stuck* inside a vector component, exactly as in the paper —
//!   this is the dynamic face of the nesting restriction.
//! * [`bigstep`] — an efficient environment-based evaluator used to
//!   actually run programs, drive the BSP simulator (`bsml-bsp`), and
//!   serve as an independent oracle for the small-step machine.
//!
//! ```
//! use bsml_eval::{bigstep::eval_closed, smallstep::run};
//! use bsml_syntax::parse;
//!
//! let e = parse("apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i * 10))")?;
//! let p = 4;
//! let v = eval_closed(&e, p)?;
//! assert_eq!(v.to_string(), "<|0, 11, 22, 33|>");
//!
//! // The small-step machine agrees.
//! let normal = run(&e, p, 10_000)?;
//! assert_eq!(normal.to_string(), "<|0, 11, 22, 33|>");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bigstep;
pub mod bytes;
pub mod driver;
pub mod env;
pub mod error;
pub mod fuel;
pub mod hooks;
pub mod persist;
pub mod smallstep;
pub mod snapshot;
pub mod value;

pub use bigstep::{eval_closed, Evaluator};
pub use bytes::{ByteReader, CodecError};
pub use driver::{Applier, GlobalDriver, ParallelDriver};
pub use env::Env;
pub use error::EvalError;
pub use fuel::{FuelCell, Quiescence};
pub use hooks::{CountingHooks, EvalHooks, Mode, NoHooks, TeeHooks, TracingHooks};
pub use smallstep::{run, step, StepOutcome};
pub use snapshot::{Snapshot, ValueSnapshot};
pub use value::{PortableValue, Value};
