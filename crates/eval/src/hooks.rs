//! Instrumentation hooks for the big-step evaluator.
//!
//! The BSP simulator (`bsml-bsp`) implements [`EvalHooks`] to charge
//! local work to the right processor and to account communication and
//! synchronization at `put` / `if‥at‥` — the three cost terms
//! `W + H·g + S·l` of the BSP model (paper §2).

use bsml_obs::Telemetry;

use crate::value::Value;

/// Where a reduction step is happening.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Replicated global evaluation: every processor performs this
    /// work (BSML programs are SPMD — global expressions are evaluated
    /// identically everywhere).
    Global,
    /// Asynchronous local evaluation inside the component of a
    /// parallel vector held by this processor.
    OnProc(usize),
}

/// Callbacks invoked by [`crate::bigstep::Evaluator`].
///
/// All methods have no-op defaults; implement only what you need.
pub trait EvalHooks {
    /// One elementary reduction step was performed in `mode`.
    fn on_step(&mut self, mode: Mode) {
        let _ = mode;
    }

    /// `put` exchanged messages: `messages[j][i]` is what process `j`
    /// sends to process `i` (`Value::NoComm` for "nothing"). Called
    /// once per `put`, *before* the barrier; the callee is expected to
    /// account one superstep.
    fn on_put(&mut self, messages: &[Vec<Value>]) {
        let _ = messages;
    }

    /// `if‥at‥` synchronized on the boolean at process `at`.
    /// One superstep: the boolean is broadcast (a `(p−1)`-relation of
    /// one word) and a barrier occurs.
    fn on_ifat(&mut self, at: usize, chosen: bool) {
        let _ = (at, chosen);
    }

    /// A parallel vector was created by `mkpar` or transformed by
    /// `apply` (purely asynchronous — no communication).
    fn on_async_parallel(&mut self) {}
}

/// The do-nothing hooks used when no instrumentation is wanted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoHooks;

impl EvalHooks for NoHooks {}

/// Hooks that simply count reduction steps, splitting global from
/// per-processor work. Handy in tests and benchmarks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingHooks {
    /// Steps performed in [`Mode::Global`].
    pub global_steps: u64,
    /// Steps performed on each processor.
    pub local_steps: Vec<u64>,
    /// Number of `put` barriers.
    pub puts: u64,
    /// Number of `if‥at‥` barriers.
    pub ifats: u64,
    /// Number of asynchronous parallel operations (`mkpar` / `apply`).
    pub async_ops: u64,
}

impl CountingHooks {
    /// Counting hooks for a machine of `p` processors.
    #[must_use]
    pub fn new(p: usize) -> CountingHooks {
        CountingHooks {
            global_steps: 0,
            local_steps: vec![0; p],
            puts: 0,
            ifats: 0,
            async_ops: 0,
        }
    }

    /// Total number of synchronization barriers observed.
    #[must_use]
    pub fn supersteps(&self) -> u64 {
        self.puts + self.ifats
    }
}

impl EvalHooks for CountingHooks {
    fn on_step(&mut self, mode: Mode) {
        match mode {
            Mode::Global => self.global_steps += 1,
            Mode::OnProc(i) => {
                if let Some(slot) = self.local_steps.get_mut(i) {
                    *slot += 1;
                }
            }
        }
    }

    fn on_put(&mut self, _messages: &[Vec<Value>]) {
        self.puts += 1;
    }

    fn on_ifat(&mut self, _at: usize, _chosen: bool) {
        self.ifats += 1;
    }

    fn on_async_parallel(&mut self) {
        self.async_ops += 1;
    }
}

/// Hooks that bridge evaluator events into a [`Telemetry`] sink.
///
/// Counts are accumulated locally and flushed to the sink's metrics
/// registry as `eval.*` counters on [`TracingHooks::flush`] (or drop),
/// so per-step overhead stays a few integer adds even when telemetry
/// is enabled. Flushed counters:
///
/// * `eval.fuel_ticks` — every reduction step (the fuel meter),
/// * `eval.steps.global` / `eval.steps.local` — the same ticks split
///   by [`Mode`],
/// * `eval.puts`, `eval.ifats`, `eval.async_ops` — primitive counts,
/// * `eval.put_words` — words moved by `put` exchanges.
#[derive(Debug)]
pub struct TracingHooks {
    telemetry: Telemetry,
    global_steps: u64,
    local_steps: u64,
    puts: u64,
    ifats: u64,
    async_ops: u64,
    put_words: u64,
}

impl TracingHooks {
    /// Tracing hooks feeding `telemetry`.
    #[must_use]
    pub fn new(telemetry: Telemetry) -> TracingHooks {
        TracingHooks {
            telemetry,
            global_steps: 0,
            local_steps: 0,
            puts: 0,
            ifats: 0,
            async_ops: 0,
            put_words: 0,
        }
    }

    /// Writes the accumulated counts to the sink and resets them.
    pub fn flush(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let ticks = self.global_steps + self.local_steps;
        for (name, value) in [
            ("eval.fuel_ticks", ticks),
            ("eval.steps.global", self.global_steps),
            ("eval.steps.local", self.local_steps),
            ("eval.puts", self.puts),
            ("eval.ifats", self.ifats),
            ("eval.async_ops", self.async_ops),
            ("eval.put_words", self.put_words),
        ] {
            if value > 0 {
                self.telemetry.counter_add(name, value);
            }
        }
        self.global_steps = 0;
        self.local_steps = 0;
        self.puts = 0;
        self.ifats = 0;
        self.async_ops = 0;
        self.put_words = 0;
    }
}

impl Drop for TracingHooks {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Forwards every callback to two underlying hooks, so one evaluator
/// pass can feed both (e.g. BSP cost accounting and telemetry).
#[derive(Debug)]
pub struct TeeHooks<'a, A: EvalHooks, B: EvalHooks> {
    first: &'a mut A,
    second: &'a mut B,
}

impl<'a, A: EvalHooks, B: EvalHooks> TeeHooks<'a, A, B> {
    /// Hooks relaying to `first` then `second`, in that order.
    pub fn new(first: &'a mut A, second: &'a mut B) -> Self {
        TeeHooks { first, second }
    }
}

impl<A: EvalHooks, B: EvalHooks> EvalHooks for TeeHooks<'_, A, B> {
    fn on_step(&mut self, mode: Mode) {
        self.first.on_step(mode);
        self.second.on_step(mode);
    }

    fn on_put(&mut self, messages: &[Vec<Value>]) {
        self.first.on_put(messages);
        self.second.on_put(messages);
    }

    fn on_ifat(&mut self, at: usize, chosen: bool) {
        self.first.on_ifat(at, chosen);
        self.second.on_ifat(at, chosen);
    }

    fn on_async_parallel(&mut self) {
        self.first.on_async_parallel();
        self.second.on_async_parallel();
    }
}

impl EvalHooks for TracingHooks {
    fn on_step(&mut self, mode: Mode) {
        match mode {
            Mode::Global => self.global_steps += 1,
            Mode::OnProc(_) => self.local_steps += 1,
        }
    }

    fn on_put(&mut self, messages: &[Vec<Value>]) {
        self.puts += 1;
        // Same accounting as the BSP cost hooks: self-messages stay in
        // local memory and do not count toward the h-relation.
        for (j, row) in messages.iter().enumerate() {
            for (i, v) in row.iter().enumerate() {
                if i != j {
                    self.put_words += v.size_in_words();
                }
            }
        }
    }

    fn on_ifat(&mut self, _at: usize, _chosen: bool) {
        self.ifats += 1;
    }

    fn on_async_parallel(&mut self) {
        self.async_ops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_hooks_accumulate() {
        let mut h = CountingHooks::new(2);
        h.on_step(Mode::Global);
        h.on_step(Mode::OnProc(1));
        h.on_step(Mode::OnProc(1));
        h.on_put(&[]);
        h.on_ifat(0, true);
        assert_eq!(h.global_steps, 1);
        assert_eq!(h.local_steps, vec![0, 2]);
        assert_eq!(h.supersteps(), 2);
    }

    #[test]
    fn counting_hooks_count_async_ops() {
        let mut h = CountingHooks::new(2);
        h.on_async_parallel();
        h.on_async_parallel();
        assert_eq!(h.async_ops, 2);
        // Async ops are communication-free: no superstep is charged.
        assert_eq!(h.supersteps(), 0);
    }

    #[test]
    fn tracing_hooks_flush_into_telemetry() {
        let tel = Telemetry::enabled_logical();
        let mut h = TracingHooks::new(tel.clone());
        h.on_step(Mode::Global);
        h.on_step(Mode::OnProc(0));
        h.on_step(Mode::OnProc(1));
        // p0 sends one int to p1; the self-message does not count.
        h.on_put(&[
            vec![Value::Int(7), Value::Int(8)],
            vec![Value::NoComm, Value::NoComm],
        ]);
        h.on_ifat(0, true);
        h.on_async_parallel();
        // Nothing is visible before the flush…
        assert_eq!(tel.counter_value("eval.fuel_ticks"), 0);
        h.flush();
        assert_eq!(tel.counter_value("eval.fuel_ticks"), 3);
        assert_eq!(tel.counter_value("eval.steps.global"), 1);
        assert_eq!(tel.counter_value("eval.steps.local"), 2);
        assert_eq!(tel.counter_value("eval.puts"), 1);
        assert_eq!(tel.counter_value("eval.ifats"), 1);
        assert_eq!(tel.counter_value("eval.async_ops"), 1);
        assert_eq!(tel.counter_value("eval.put_words"), 1);
        // …and the flush resets the local accumulators.
        h.flush();
        assert_eq!(tel.counter_value("eval.puts"), 1);
    }

    #[test]
    fn tracing_hooks_flush_on_drop() {
        let tel = Telemetry::enabled_logical();
        {
            let mut h = TracingHooks::new(tel.clone());
            h.on_step(Mode::Global);
        }
        assert_eq!(tel.counter_value("eval.fuel_ticks"), 1);
    }

    #[test]
    fn disabled_tracing_hooks_are_harmless() {
        let mut h = TracingHooks::new(Telemetry::disabled());
        h.on_step(Mode::Global);
        h.flush();
    }

    #[test]
    fn out_of_range_proc_is_ignored() {
        let mut h = CountingHooks::new(1);
        h.on_step(Mode::OnProc(5));
        assert_eq!(h.local_steps, vec![0]);
    }

    #[test]
    fn no_hooks_is_a_unit() {
        let mut h = NoHooks;
        h.on_step(Mode::Global);
        h.on_put(&[]);
        h.on_ifat(0, false);
        h.on_async_parallel();
    }
}
