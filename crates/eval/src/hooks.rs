//! Instrumentation hooks for the big-step evaluator.
//!
//! The BSP simulator (`bsml-bsp`) implements [`EvalHooks`] to charge
//! local work to the right processor and to account communication and
//! synchronization at `put` / `if‥at‥` — the three cost terms
//! `W + H·g + S·l` of the BSP model (paper §2).

use crate::value::Value;

/// Where a reduction step is happening.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Replicated global evaluation: every processor performs this
    /// work (BSML programs are SPMD — global expressions are evaluated
    /// identically everywhere).
    Global,
    /// Asynchronous local evaluation inside the component of a
    /// parallel vector held by this processor.
    OnProc(usize),
}

/// Callbacks invoked by [`crate::bigstep::Evaluator`].
///
/// All methods have no-op defaults; implement only what you need.
pub trait EvalHooks {
    /// One elementary reduction step was performed in `mode`.
    fn on_step(&mut self, mode: Mode) {
        let _ = mode;
    }

    /// `put` exchanged messages: `messages[j][i]` is what process `j`
    /// sends to process `i` (`Value::NoComm` for "nothing"). Called
    /// once per `put`, *before* the barrier; the callee is expected to
    /// account one superstep.
    fn on_put(&mut self, messages: &[Vec<Value>]) {
        let _ = messages;
    }

    /// `if‥at‥` synchronized on the boolean at process `at`.
    /// One superstep: the boolean is broadcast (a `(p−1)`-relation of
    /// one word) and a barrier occurs.
    fn on_ifat(&mut self, at: usize, chosen: bool) {
        let _ = (at, chosen);
    }

    /// A parallel vector was created by `mkpar` or transformed by
    /// `apply` (purely asynchronous — no communication).
    fn on_async_parallel(&mut self) {}
}

/// The do-nothing hooks used when no instrumentation is wanted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoHooks;

impl EvalHooks for NoHooks {}

/// Hooks that simply count reduction steps, splitting global from
/// per-processor work. Handy in tests and benchmarks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingHooks {
    /// Steps performed in [`Mode::Global`].
    pub global_steps: u64,
    /// Steps performed on each processor.
    pub local_steps: Vec<u64>,
    /// Number of `put` barriers.
    pub puts: u64,
    /// Number of `if‥at‥` barriers.
    pub ifats: u64,
}

impl CountingHooks {
    /// Counting hooks for a machine of `p` processors.
    #[must_use]
    pub fn new(p: usize) -> CountingHooks {
        CountingHooks {
            global_steps: 0,
            local_steps: vec![0; p],
            puts: 0,
            ifats: 0,
        }
    }

    /// Total number of synchronization barriers observed.
    #[must_use]
    pub fn supersteps(&self) -> u64 {
        self.puts + self.ifats
    }
}

impl EvalHooks for CountingHooks {
    fn on_step(&mut self, mode: Mode) {
        match mode {
            Mode::Global => self.global_steps += 1,
            Mode::OnProc(i) => {
                if let Some(slot) = self.local_steps.get_mut(i) {
                    *slot += 1;
                }
            }
        }
    }

    fn on_put(&mut self, _messages: &[Vec<Value>]) {
        self.puts += 1;
    }

    fn on_ifat(&mut self, _at: usize, _chosen: bool) {
        self.ifats += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_hooks_accumulate() {
        let mut h = CountingHooks::new(2);
        h.on_step(Mode::Global);
        h.on_step(Mode::OnProc(1));
        h.on_step(Mode::OnProc(1));
        h.on_put(&[]);
        h.on_ifat(0, true);
        assert_eq!(h.global_steps, 1);
        assert_eq!(h.local_steps, vec![0, 2]);
        assert_eq!(h.supersteps(), 2);
    }

    #[test]
    fn out_of_range_proc_is_ignored() {
        let mut h = CountingHooks::new(1);
        h.on_step(Mode::OnProc(5));
        assert_eq!(h.local_steps, vec![0]);
    }

    #[test]
    fn no_hooks_is_a_unit() {
        let mut h = NoHooks;
        h.on_step(Mode::Global);
        h.on_put(&[]);
        h.on_ifat(0, false);
        h.on_async_parallel();
    }
}
