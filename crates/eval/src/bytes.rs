//! A minimal little-endian byte codec shared by the persistence
//! layers ([`crate::persist`] here, `SessionSnapshot` in `bsml-core`).
//!
//! The reader is *total*: every method is bounds-checked and returns a
//! typed [`CodecError`] instead of panicking, whatever bytes it is
//! fed — the property the durability fault grids lean on. Counts are
//! validated against the bytes actually remaining, so a corrupted
//! length can never drive an attempted multi-gigabyte allocation.

use std::fmt;

/// Why decoding failed. Decoders never panic on malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the announced structure did.
    Truncated,
    /// An unknown tag byte for the structure being decoded.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A declared count exceeds what the remaining bytes could hold.
    BadCount,
    /// An embedded string is not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the announced structure ended.
    Trailing(usize),
    /// An embedded source fragment failed to re-parse.
    Unparsable(String),
    /// Nesting exceeded the decoder's depth bound (corrupt input could
    /// otherwise overflow the stack — a panic in disguise).
    TooDeep,
    /// A back-reference to a structure the input never defined.
    DanglingRef(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("input truncated"),
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            CodecError::BadCount => f.write_str("declared count exceeds remaining bytes"),
            CodecError::BadUtf8 => f.write_str("embedded string is not UTF-8"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes"),
            CodecError::Unparsable(what) => write!(f, "embedded source does not parse: {what}"),
            CodecError::TooDeep => f.write_str("nesting exceeds decoder depth bound"),
            CodecError::DanglingRef(id) => write!(f, "back-reference to undefined id {id}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends length-prefixed raw bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// A bounds-checked little-endian reader.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let end = self.pos.checked_add(8).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `u64` count, validated against the remaining length so
    /// a corrupted count cannot drive a huge allocation.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::BadCount`].
    pub fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(CodecError::BadCount);
        }
        Ok(n as usize)
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Reads a length-prefixed string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`], [`CodecError::BadCount`], or
    /// [`CodecError::BadUtf8`].
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads length-prefixed raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::BadCount`].
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.count()?;
        self.take(n)
    }

    /// Fails with [`CodecError::Trailing`] unless fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::Trailing`].
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Trailing(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_strings() {
        let mut out = Vec::new();
        put_u64(&mut out, 42);
        put_str(&mut out, "héllo");
        put_bytes(&mut out, &[1, 2, 3]);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_bad_counts_are_typed() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX); // absurd count
        let mut r = ByteReader::new(&out);
        assert_eq!(r.count(), Err(CodecError::BadCount));
        let mut r = ByteReader::new(&out[..3]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
        let mut r = ByteReader::new(&[]);
        assert_eq!(r.u8(), Err(CodecError::Truncated));
    }

    #[test]
    fn finish_reports_trailing_bytes() {
        let mut r = ByteReader::new(&[0, 0]);
        assert_eq!(r.finish(), Err(CodecError::Trailing(2)));
        r.u8().unwrap();
        r.u8().unwrap();
        r.finish().unwrap();
    }
}
