//! Shared fuel cells: cooperative, slice-granular preemption for the
//! big-step evaluator.
//!
//! A [`FuelCell`] splits one evaluation's fuel budget between two
//! parties on two threads:
//!
//! * the **evaluator** (via [`Evaluator::with_fuel_cell`]) draws fuel
//!   in grants: when its local fuel runs out it calls
//!   [`FuelCell::request`], which parks the evaluating thread until a
//!   scheduler grants more — or cancels, which surfaces as
//!   [`EvalError::Cancelled`] at the very next tick;
//! * the **scheduler** (a `bsml-serve` worker) calls
//!   [`FuelCell::grant`] to hand out one fuel slice at a time and
//!   [`FuelCell::wait_quiescent`] to learn when the slice has been
//!   fully consumed (the evaluator parked again) or the evaluation
//!   finished.
//!
//! This is what makes a divergent phrase *preemptible* without an
//! async runtime and without killing threads: between grants the
//! evaluation is frozen mid-expression on its own parked thread,
//! holding its whole Rust call stack, and resumes exactly where it
//! stopped when the next grant arrives. Cancellation is cooperative —
//! the evaluator notices at its next fuel tick, which is at most one
//! reduction step away — so a cancelled phrase unwinds promptly and a
//! wall-clock watchdog is only ever a backstop, never the mechanism.
//!
//! [`Evaluator::with_fuel_cell`]: crate::Evaluator::with_fuel_cell

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::EvalError;

#[derive(Debug, Default)]
struct CellState {
    /// Fuel granted but not yet drawn by the evaluator.
    fuel: u64,
    /// The evaluator is parked inside [`FuelCell::request`].
    parked: bool,
    /// [`FuelCell::cancel`] was called; the next draw fails.
    cancelled: bool,
    /// [`FuelCell::finish`] was called; no more draws will happen.
    finished: bool,
    /// Total fuel ever drawn by the evaluator (monotone).
    drawn: u64,
}

/// What [`FuelCell::wait_quiescent`] observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quiescence {
    /// The evaluator consumed every granted unit and is parked
    /// waiting for the next slice.
    Parked,
    /// The evaluation finished ([`FuelCell::finish`] was called) —
    /// successfully or not; the result travels out of band.
    Finished,
    /// Neither happened within the timeout: the evaluator is still
    /// burning its slice (or is stuck in a non-ticking state — the
    /// caller's watchdog decides which).
    TimedOut,
}

/// A thread-safe fuel budget shared between one evaluation and one
/// scheduler. See the [module docs](self).
#[derive(Debug, Default)]
pub struct FuelCell {
    state: Mutex<CellState>,
    cv: Condvar,
}

impl FuelCell {
    /// A fresh cell with no fuel: an evaluator attached to it parks at
    /// its first tick until the scheduler grants a slice.
    #[must_use]
    pub fn new() -> Arc<FuelCell> {
        Arc::new(FuelCell::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CellState> {
        // The protected data is plain counters/flags, valid at every
        // instant; a panicking peer must not wedge the scheduler.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Adds `n` fuel units and wakes a parked evaluator.
    pub fn grant(&self, n: u64) {
        let mut s = self.lock();
        s.fuel = s.fuel.saturating_add(n);
        drop(s);
        self.cv.notify_all();
    }

    /// Cancels the evaluation: the evaluator's next draw (at most one
    /// reduction step away) fails with [`EvalError::Cancelled`].
    /// Idempotent.
    pub fn cancel(&self) {
        let mut s = self.lock();
        s.cancelled = true;
        drop(s);
        self.cv.notify_all();
    }

    /// Marks the evaluation finished, waking a scheduler blocked in
    /// [`FuelCell::wait_quiescent`]. Called by the session host once
    /// the evaluation returned (either way). Idempotent.
    pub fn finish(&self) {
        let mut s = self.lock();
        s.finished = true;
        drop(s);
        self.cv.notify_all();
    }

    /// Rearms the cell for the next evaluation: fuel, flags, and the
    /// drawn tally all return to zero. Only call between evaluations.
    pub fn reset(&self) {
        let mut s = self.lock();
        *s = CellState::default();
        drop(s);
        self.cv.notify_all();
    }

    /// Total fuel the evaluator has drawn since the last
    /// [`FuelCell::reset`] — the scheduler's exact spent meter.
    #[must_use]
    pub fn drawn(&self) -> u64 {
        self.lock().drawn
    }

    /// `true` once [`FuelCell::cancel`] was called (and not yet
    /// reset).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.lock().cancelled
    }

    /// Draws all currently granted fuel, parking the calling thread
    /// until some is available. Called by the evaluator only.
    ///
    /// # Errors
    ///
    /// [`EvalError::Cancelled`] once the cell is cancelled.
    pub fn request(&self) -> Result<u64, EvalError> {
        let mut s = self.lock();
        loop {
            if s.cancelled {
                // Leave `parked` false: a cancelled evaluation is
                // unwinding, not waiting.
                s.parked = false;
                return Err(EvalError::Cancelled);
            }
            if s.fuel > 0 {
                let take = s.fuel;
                s.fuel = 0;
                s.parked = false;
                s.drawn = s.drawn.saturating_add(take);
                return Ok(take);
            }
            s.parked = true;
            self.cv.notify_all(); // wake a scheduler waiting for quiescence
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the evaluator is parked with zero fuel
    /// outstanding, the evaluation finished, or `timeout` elapsed.
    /// Called by the scheduler after a [`FuelCell::grant`].
    #[must_use]
    pub fn wait_quiescent(&self, timeout: Duration) -> Quiescence {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if s.finished {
                return Quiescence::Finished;
            }
            // Once cancelled, `parked` is transient — the evaluator is
            // about to wake, unwind, and finish. Reporting Parked here
            // would make a scheduler's watchdog misread cooperative
            // cancellation as a wedged host.
            if s.parked && s.fuel == 0 && !s.cancelled {
                return Quiescence::Parked;
            }
            let now = Instant::now();
            if now >= deadline {
                return Quiescence::TimedOut;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn grant_then_request_hands_over_all_fuel() {
        let cell = FuelCell::new();
        cell.grant(100);
        cell.grant(20);
        assert_eq!(cell.request().unwrap(), 120);
        assert_eq!(cell.drawn(), 120);
    }

    #[test]
    fn request_parks_until_granted() {
        let cell = FuelCell::new();
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.request());
        // The evaluator thread parks; the scheduler observes it.
        assert_eq!(
            cell.wait_quiescent(Duration::from_secs(5)),
            Quiescence::Parked
        );
        cell.grant(7);
        assert_eq!(t.join().unwrap().unwrap(), 7);
    }

    #[test]
    fn cancel_fails_parked_and_future_requests() {
        let cell = FuelCell::new();
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.request());
        assert_eq!(
            cell.wait_quiescent(Duration::from_secs(5)),
            Quiescence::Parked
        );
        cell.cancel();
        assert_eq!(t.join().unwrap(), Err(EvalError::Cancelled));
        // Sticky until reset.
        assert_eq!(cell.request(), Err(EvalError::Cancelled));
        assert!(cell.is_cancelled());
        cell.reset();
        assert!(!cell.is_cancelled());
        cell.grant(1);
        assert_eq!(cell.request().unwrap(), 1);
    }

    #[test]
    fn finish_wakes_quiescence_waiters() {
        let cell = FuelCell::new();
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            // Simulated evaluation: draw, "work", finish.
            c2.grant(5);
            let _ = c2.request().unwrap();
            c2.finish();
        });
        assert_eq!(
            cell.wait_quiescent(Duration::from_secs(5)),
            Quiescence::Finished
        );
        t.join().unwrap();
    }

    #[test]
    fn wait_quiescent_times_out_when_nothing_happens() {
        let cell = FuelCell::new();
        cell.grant(10); // outstanding fuel, nobody drawing
        assert_eq!(
            cell.wait_quiescent(Duration::from_millis(10)),
            Quiescence::TimedOut
        );
    }

    #[test]
    fn cancel_of_a_parked_evaluator_waits_for_finish_not_parked() {
        let cell = FuelCell::new();
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            // Simulated host: park for fuel, observe cancellation,
            // unwind "slowly", then report finished.
            let r = c2.request();
            assert_eq!(r, Err(EvalError::Cancelled));
            thread::sleep(Duration::from_millis(50));
            c2.finish();
        });
        assert_eq!(
            cell.wait_quiescent(Duration::from_secs(5)),
            Quiescence::Parked
        );
        cell.cancel();
        // The cancelled-but-not-yet-finished window must read as
        // "still working", never as Parked — the watchdog would
        // otherwise abandon a host that is unwinding cooperatively.
        assert_eq!(
            cell.wait_quiescent(Duration::from_secs(5)),
            Quiescence::Finished
        );
        t.join().unwrap();
    }

    #[test]
    fn reset_clears_the_drawn_meter() {
        let cell = FuelCell::new();
        cell.grant(3);
        let _ = cell.request().unwrap();
        assert_eq!(cell.drawn(), 3);
        cell.reset();
        assert_eq!(cell.drawn(), 0);
    }
}
