//! Persistent evaluation environments.
//!
//! A cheap-to-clone association list: closures capture the environment
//! by reference counting, extension is O(1).

use std::rc::Rc;

use bsml_ast::Ident;

use crate::value::Value;

#[derive(Debug)]
struct Node {
    name: Ident,
    value: Value,
    next: Option<Rc<Node>>,
}

/// A persistent name → value environment.
///
/// # Example
///
/// ```
/// use bsml_eval::{Env, Value};
/// use bsml_ast::Ident;
///
/// let e = Env::new().bind(Ident::new("x"), Value::Int(1));
/// let e2 = e.bind(Ident::new("x"), Value::Int(2));
/// assert_eq!(e.lookup(&Ident::new("x")).unwrap().to_string(), "1");
/// assert_eq!(e2.lookup(&Ident::new("x")).unwrap().to_string(), "2");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Env {
    head: Option<Rc<Node>>,
}

impl Env {
    /// The empty environment.
    #[must_use]
    pub fn new() -> Env {
        Env::default()
    }

    /// Extends the environment with a binding, shadowing any previous
    /// binding of the same name. The receiver is unchanged.
    #[must_use]
    pub fn bind(&self, name: Ident, value: Value) -> Env {
        Env {
            head: Some(Rc::new(Node {
                name,
                value,
                next: self.head.clone(),
            })),
        }
    }

    /// Looks a name up, innermost binding first.
    #[must_use]
    pub fn lookup(&self, name: &Ident) -> Option<&Value> {
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = node.next.as_deref();
        }
        None
    }

    /// Number of (possibly shadowed) bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            n += 1;
            cur = node.next.as_deref();
        }
        n
    }

    /// `true` for the empty environment.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// Iterates over all bindings, innermost (most recent) first.
    /// Shadowed bindings are included, after the binding that shadows
    /// them — rebuilding with `bind` in *reverse* iteration order
    /// reproduces the environment exactly.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &Value)> {
        EnvIter {
            cur: self.head.as_deref(),
        }
    }

    /// Crate-internal spine walk for the byte codec
    /// ([`crate::persist`]): the innermost binding together with the
    /// tail environment and a stable node identity. Closures capture
    /// suffixes of the toplevel spine, so memoizing on the identity
    /// turns the codec's output linear in distinct nodes.
    pub(crate) fn spine_head(&self) -> Option<(&Ident, &Value, Env, usize)> {
        self.head.as_ref().map(|node| {
            (
                &node.name,
                &node.value,
                Env {
                    head: node.next.clone(),
                },
                Rc::as_ptr(node) as usize,
            )
        })
    }
}

struct EnvIter<'a> {
    cur: Option<&'a Node>,
}

impl<'a> Iterator for EnvIter<'a> {
    type Item = (&'a Ident, &'a Value);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.cur?;
        self.cur = node.next.as_deref();
        Some((&node.name, &node.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Ident {
        Ident::new("x")
    }

    #[test]
    fn empty_lookup_fails() {
        assert!(Env::new().lookup(&x()).is_none());
        assert!(Env::new().is_empty());
        assert_eq!(Env::new().len(), 0);
    }

    #[test]
    fn shadowing() {
        let e1 = Env::new().bind(x(), Value::Int(1));
        let e2 = e1.bind(x(), Value::Int(2));
        assert_eq!(e1.lookup(&x()).unwrap().to_string(), "1");
        assert_eq!(e2.lookup(&x()).unwrap().to_string(), "2");
        assert_eq!(e2.len(), 2);
    }

    #[test]
    fn persistence_under_branching() {
        let base = Env::new().bind(x(), Value::Int(1));
        let left = base.bind(Ident::new("y"), Value::Int(10));
        let right = base.bind(Ident::new("y"), Value::Int(20));
        assert_eq!(left.lookup(&Ident::new("y")).unwrap().to_string(), "10");
        assert_eq!(right.lookup(&Ident::new("y")).unwrap().to_string(), "20");
        assert!(base.lookup(&Ident::new("y")).is_none());
    }
}
