//! The literal small-step machine of the paper (§3).
//!
//! * Head reductions `ε`: β, `let`, conditionals.
//! * δ-rules of Figure 1 (sequential operators) and Figure 2
//!   (parallel operators `mkpar`, `apply`, `put`, `if‥at‥`).
//! * Evaluation contexts of Figure 5: global contexts `Γ` everywhere,
//!   local contexts `Γ_l` *inside parallel vector components* — where
//!   only local (`ε ∪ δ`) reductions may fire. A parallel primitive
//!   inside a vector component is therefore **stuck**, which is the
//!   dynamic reading of the nesting restriction.
//!
//! `put` follows Figure 2 literally: it produces a vector of `let`
//! chains binding the received messages, ending in the
//! `fun x -> if x = 0 then … else nc ()` dispatcher. One deliberate
//! generalization: when a component function is not syntactically a
//! λ-abstraction (e.g. a primitive like `isnc`), the machine builds
//! the β-equivalent application `f i` instead of a substitution.

use bsml_ast::build as b;
use bsml_ast::{classify_value, Const, Expr, ExprKind, Ident, Op, ValueClass};

use crate::error::EvalError;

/// The result of attempting one reduction step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// `e ⇀ e'`.
    Reduced(Expr),
    /// The expression is a value (normal form of the semantics).
    Value,
    /// The expression is in normal form but is *not* a value — no
    /// rule applies. Theorem 1 says this never happens to well-typed
    /// programs.
    Stuck(String),
}

/// Performs at most one reduction step at the global level.
#[must_use]
pub fn step(e: &Expr, p: usize) -> StepOutcome {
    step_in(e, p, false)
}

/// Runs the machine to a normal form.
///
/// # Errors
///
/// * [`EvalError::OutOfFuel`] after `max_steps` reductions,
/// * [`EvalError::NotAFunction`] (with the stuck reason) if a
///   non-value normal form is reached.
pub fn run(e: &Expr, p: usize, max_steps: u64) -> Result<Expr, EvalError> {
    let mut cur = e.clone();
    for _ in 0..max_steps {
        match step(&cur, p) {
            StepOutcome::Reduced(next) => cur = next,
            StepOutcome::Value => return Ok(cur),
            StepOutcome::Stuck(reason) => {
                return Err(EvalError::NotAFunction(format!(
                    "stuck term `{cur}`: {reason}"
                )))
            }
        }
    }
    Err(EvalError::OutOfFuel)
}

/// Runs the machine, recording every intermediate expression
/// (including the initial one). Useful for printing reduction traces.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn trace(e: &Expr, p: usize, max_steps: u64) -> Result<Vec<Expr>, EvalError> {
    let mut out = vec![e.clone()];
    let mut cur = e.clone();
    for _ in 0..max_steps {
        match step(&cur, p) {
            StepOutcome::Reduced(next) => {
                out.push(next.clone());
                cur = next;
            }
            StepOutcome::Value => return Ok(out),
            StepOutcome::Stuck(reason) => {
                return Err(EvalError::NotAFunction(format!(
                    "stuck term `{cur}`: {reason}"
                )))
            }
        }
    }
    Err(EvalError::OutOfFuel)
}

fn is_value(e: &Expr) -> bool {
    classify_value(e) != ValueClass::NotAValue
}

/// One step under a context; `in_vector` selects the local context
/// grammar `Γ_l` (no parallel reductions).
fn step_in(e: &Expr, p: usize, in_vector: bool) -> StepOutcome {
    use ExprKind::*;
    use StepOutcome::*;

    // Values first: nothing to do.
    if is_value(e) {
        return Value;
    }

    match &e.kind {
        Var(x) => Stuck(format!("free variable `{x}`")),
        // Covered by the is_value check above.
        Const(_) | Op(_) | Nil | Fun(..) => Value,

        App(f, a) => {
            match step_in(f, p, in_vector) {
                Reduced(f2) => return Reduced(rebuild2(e, App(Box::new(f2), a.clone()))),
                Stuck(r) => return Stuck(r),
                Value => {}
            }
            match step_in(a, p, in_vector) {
                Reduced(a2) => return Reduced(rebuild2(e, App(f.clone(), Box::new(a2)))),
                Stuck(r) => return Stuck(r),
                Value => {}
            }
            head_apply(f, a, p, in_vector)
        }

        Let(x, e1, e2) => match step_in(e1, p, in_vector) {
            Reduced(e1b) => Reduced(rebuild2(e, Let(x.clone(), Box::new(e1b), e2.clone()))),
            Stuck(r) => Stuck(r),
            Value => Reduced(e2.substitute(x, e1)),
        },

        Pair(a, bx) => binary_congruence(e, a, bx, p, in_vector, Pair),
        Cons(a, bx) => binary_congruence(e, a, bx, p, in_vector, Cons),

        If(c, t, els) => match step_in(c, p, in_vector) {
            Reduced(c2) => Reduced(rebuild2(e, If(Box::new(c2), t.clone(), els.clone()))),
            Stuck(r) => Stuck(r),
            Value => match &c.kind {
                Const(self::Const::Bool(true)) => Reduced((**t).clone()),
                Const(self::Const::Bool(false)) => Reduced((**els).clone()),
                _ => Stuck(format!("`if` on non-boolean `{c}`")),
            },
        },

        IfAt(v, n, t, els) => {
            if in_vector {
                return Stuck("`if‥at‥` inside a parallel vector component".to_string());
            }
            match step_in(v, p, false) {
                Reduced(v2) => {
                    return Reduced(rebuild2(
                        e,
                        IfAt(Box::new(v2), n.clone(), t.clone(), els.clone()),
                    ))
                }
                Stuck(r) => return Stuck(r),
                Value => {}
            }
            match step_in(n, p, false) {
                Reduced(n2) => {
                    return Reduced(rebuild2(
                        e,
                        IfAt(v.clone(), Box::new(n2), t.clone(), els.clone()),
                    ))
                }
                Stuck(r) => return Stuck(r),
                Value => {}
            }
            let (vs, idx) = match (&v.kind, &n.kind) {
                (Vector(vs), Const(self::Const::Int(idx))) => (vs, *idx),
                _ => return Stuck(format!("`if‥at‥` on `{v}` at `{n}`")),
            };
            if idx < 0 || idx as usize >= vs.len() {
                return Stuck(format!("process id {idx} outside 0‥{}", vs.len()));
            }
            match &vs[idx as usize].kind {
                Const(self::Const::Bool(true)) => Reduced((**t).clone()),
                Const(self::Const::Bool(false)) => Reduced((**els).clone()),
                other_comp => Stuck(format!(
                    "`if‥at‥` vector holds a non-boolean at {idx}: `{}`",
                    Expr::synth(other_comp.clone())
                )),
            }
        }

        Vector(es) => {
            if in_vector {
                return Stuck("parallel vector inside a parallel vector".to_string());
            }
            for (i, comp) in es.iter().enumerate() {
                match step_in(comp, p, true) {
                    Reduced(c2) => {
                        let mut es2 = es.clone();
                        es2[i] = c2;
                        return Reduced(rebuild2(e, Vector(es2)));
                    }
                    Stuck(r) => return Stuck(r),
                    Value => {
                        if classify_value(comp) == ValueClass::Global {
                            return Stuck(
                                "parallel vector component is itself parallel data".to_string(),
                            );
                        }
                    }
                }
            }
            // All components are local values — but then `is_value`
            // would have returned above; reaching here means some
            // component is a non-local value.
            Stuck("malformed parallel vector".to_string())
        }

        Inl(inner) => unary_congruence(e, inner, p, in_vector, Inl),
        Inr(inner) => unary_congruence(e, inner, p, in_vector, Inr),

        Case {
            scrutinee,
            left_var,
            left_body,
            right_var,
            right_body,
        } => match step_in(scrutinee, p, in_vector) {
            Reduced(s2) => Reduced(rebuild2(
                e,
                Case {
                    scrutinee: Box::new(s2),
                    left_var: left_var.clone(),
                    left_body: left_body.clone(),
                    right_var: right_var.clone(),
                    right_body: right_body.clone(),
                },
            )),
            Stuck(r) => Stuck(r),
            Value => match &scrutinee.kind {
                Inl(v) => Reduced(left_body.substitute(left_var, v)),
                Inr(v) => Reduced(right_body.substitute(right_var, v)),
                _ => Stuck(format!("`case` on non-sum `{scrutinee}`")),
            },
        },

        MatchList {
            scrutinee,
            nil_body,
            head_var,
            tail_var,
            cons_body,
        } => match step_in(scrutinee, p, in_vector) {
            Reduced(s2) => Reduced(rebuild2(
                e,
                MatchList {
                    scrutinee: Box::new(s2),
                    nil_body: nil_body.clone(),
                    head_var: head_var.clone(),
                    tail_var: tail_var.clone(),
                    cons_body: cons_body.clone(),
                },
            )),
            Stuck(r) => Stuck(r),
            Value => match &scrutinee.kind {
                Nil => Reduced((**nil_body).clone()),
                Cons(h, t) => Reduced(cons_body.substitute(head_var, h).substitute(tail_var, t)),
                _ => Stuck(format!("`match` on non-list `{scrutinee}`")),
            },
        },
    }
}

fn rebuild2(original: &Expr, kind: ExprKind) -> Expr {
    Expr::new(kind, original.span)
}

fn unary_congruence(
    e: &Expr,
    inner: &Expr,
    p: usize,
    in_vector: bool,
    wrap: impl FnOnce(Box<Expr>) -> ExprKind,
) -> StepOutcome {
    match step_in(inner, p, in_vector) {
        StepOutcome::Reduced(i2) => StepOutcome::Reduced(rebuild2(e, wrap(Box::new(i2)))),
        other => other,
    }
}

fn binary_congruence(
    e: &Expr,
    a: &Expr,
    bx: &Expr,
    p: usize,
    in_vector: bool,
    wrap: impl FnOnce(Box<Expr>, Box<Expr>) -> ExprKind,
) -> StepOutcome {
    match step_in(a, p, in_vector) {
        StepOutcome::Reduced(a2) => {
            return StepOutcome::Reduced(rebuild2(e, wrap(Box::new(a2), Box::new(bx.clone()))))
        }
        StepOutcome::Stuck(r) => return StepOutcome::Stuck(r),
        StepOutcome::Value => {}
    }
    match step_in(bx, p, in_vector) {
        StepOutcome::Reduced(b2) => {
            StepOutcome::Reduced(rebuild2(e, wrap(Box::new(a.clone()), Box::new(b2))))
        }
        StepOutcome::Stuck(r) => StepOutcome::Stuck(r),
        // Both are values; the surrounding is_value check decides.
        StepOutcome::Value => StepOutcome::Stuck("malformed pair of values".to_string()),
    }
}

/// Head application of a value to a value: β, or a δ-rule.
fn head_apply(f: &Expr, a: &Expr, p: usize, in_vector: bool) -> StepOutcome {
    use StepOutcome::*;
    match &f.kind {
        ExprKind::Fun(x, body) => Reduced(body.substitute(x, a)),
        ExprKind::Op(op) => delta(*op, a, p, in_vector),
        _ => Stuck(format!("applying non-function `{f}`")),
    }
}

/// Applies a function-value expression to an argument expression,
/// substituting when the function is a λ (the paper's form) and
/// building a β-equivalent application otherwise.
fn apply_fn(f: &Expr, arg: Expr) -> Expr {
    match &f.kind {
        ExprKind::Fun(x, body) => body.substitute(x, &arg),
        _ => b::app(f.clone(), arg),
    }
}

/// Is this expression the value `nc ()`?
fn is_nc(e: &Expr) -> bool {
    if let ExprKind::App(f, a) = &e.kind {
        matches!(f.kind, ExprKind::Op(Op::Nc)) && matches!(a.kind, ExprKind::Const(Const::Unit))
    } else {
        false
    }
}

/// Does this value expression contain a function (making structural
/// equality undecidable)?
fn contains_function(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |sub| {
        if matches!(sub.kind, ExprKind::Fun(..) | ExprKind::Op(_)) {
            found = true;
        }
    });
    found
}

/// The δ-rules of Figures 1 and 2 on value expressions.
fn delta(op: Op, a: &Expr, p: usize, in_vector: bool) -> StepOutcome {
    use StepOutcome::*;

    if op.is_parallel() && in_vector {
        return Stuck(format!(
            "parallel primitive `{op}` inside a vector component"
        ));
    }

    let ints = |a: &Expr| -> Option<(i64, i64)> {
        if let ExprKind::Pair(x, y) = &a.kind {
            if let (ExprKind::Const(Const::Int(x)), ExprKind::Const(Const::Int(y))) =
                (&x.kind, &y.kind)
            {
                return Some((*x, *y));
            }
        }
        None
    };
    let bools = |a: &Expr| -> Option<(bool, bool)> {
        if let ExprKind::Pair(x, y) = &a.kind {
            if let (ExprKind::Const(Const::Bool(x)), ExprKind::Const(Const::Bool(y))) =
                (&x.kind, &y.kind)
            {
                return Some((*x, *y));
            }
        }
        None
    };
    let stuck = || Stuck(format!("no δ-rule for `{op}` on `{a}`"));

    match op {
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => match ints(a) {
            Some((x, y)) => {
                let r = match op {
                    Op::Add => x.wrapping_add(y),
                    Op::Sub => x.wrapping_sub(y),
                    Op::Mul => x.wrapping_mul(y),
                    Op::Div | Op::Mod => {
                        if y == 0 {
                            return Stuck("division by zero".to_string());
                        }
                        if op == Op::Div {
                            x.wrapping_div(y)
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    _ => unreachable!(),
                };
                Reduced(b::int(r))
            }
            None => stuck(),
        },
        Op::Lt | Op::Le | Op::Gt | Op::Ge => match ints(a) {
            Some((x, y)) => Reduced(b::bool_(match op {
                Op::Lt => x < y,
                Op::Le => x <= y,
                Op::Gt => x > y,
                Op::Ge => x >= y,
                _ => unreachable!(),
            })),
            None => stuck(),
        },
        Op::And | Op::Or => match bools(a) {
            Some((x, y)) => Reduced(b::bool_(if op == Op::And { x && y } else { x || y })),
            None => stuck(),
        },
        Op::Not => match &a.kind {
            ExprKind::Const(Const::Bool(x)) => Reduced(b::bool_(!x)),
            _ => stuck(),
        },
        Op::Eq => match &a.kind {
            ExprKind::Pair(x, y) => {
                if contains_function(x) || contains_function(y) {
                    Stuck("structural equality on a functional value".to_string())
                } else {
                    Reduced(b::bool_(x == y))
                }
            }
            _ => stuck(),
        },
        Op::Fst => match &a.kind {
            ExprKind::Pair(x, _) => Reduced((**x).clone()),
            _ => stuck(),
        },
        Op::Snd => match &a.kind {
            ExprKind::Pair(_, y) => Reduced((**y).clone()),
            _ => stuck(),
        },
        Op::Fix => match &a.kind {
            // fix(fun x → e) → e[x ← fix(fun x → e)]
            ExprKind::Fun(x, body) => Reduced(body.substitute(x, &b::fix(a.clone()))),
            ExprKind::Op(_) => Reduced(b::app(a.clone(), b::fix(a.clone()))),
            _ => stuck(),
        },
        // `nc ()` is a value — by the time we get here `a` is a value
        // other than `()` (the `()` case never reaches delta because
        // classify_value treats `nc ()` as a value).
        Op::Nc => stuck(),
        Op::Isnc => Reduced(b::bool_(is_nc(a))),
        Op::BspP => match &a.kind {
            ExprKind::Const(Const::Unit) => Reduced(b::int(p as i64)),
            _ => stuck(),
        },
        Op::Mkpar => {
            if matches!(a.kind, ExprKind::Fun(..) | ExprKind::Op(_)) {
                let comps = (0..p).map(|i| apply_fn(a, b::int(i as i64))).collect();
                Reduced(b::vector(comps))
            } else {
                stuck()
            }
        }
        Op::Apply => match &a.kind {
            ExprKind::Pair(fs, vs) => match (&fs.kind, &vs.kind) {
                (ExprKind::Vector(fs), ExprKind::Vector(vs)) if fs.len() == vs.len() => {
                    let comps = fs
                        .iter()
                        .zip(vs.iter())
                        .map(|(f, v)| apply_fn(f, v.clone()))
                        .collect();
                    Reduced(b::vector(comps))
                }
                _ => stuck(),
            },
            _ => stuck(),
        },
        // The store-free small-step machine covers the paper's pure
        // core; references live in the big-step semantics only
        // (modelling them here would thread a store σ through every
        // rule, which the paper's formal system does not do).
        Op::Ref | Op::Deref | Op::Assign => Stuck(format!(
            "`{op}` requires the store semantics (big-step evaluator)"
        )),
        Op::Put => match &a.kind {
            ExprKind::Vector(fs) if fs.len() == p => {
                // Figure 2: e'_i binds every delivered message and
                // ends in the dispatcher function.
                let comps = (0..p)
                    .map(|i| {
                        let msg_name = |j: usize| Ident::new(format!("m{j}_recv")); // v_j^i
                                                                                    // Dispatcher: fun x -> if x = 0 then m0 … else nc ()
                        let mut dispatch = b::nc_value();
                        for j in (0..p).rev() {
                            dispatch = b::if_(
                                b::eq(b::var("x"), b::int(j as i64)),
                                Expr::synth(ExprKind::Var(msg_name(j))),
                                dispatch,
                            );
                        }
                        let mut body = b::fun_("x", dispatch);
                        for j in (0..p).rev() {
                            body = Expr::synth(ExprKind::Let(
                                msg_name(j),
                                Box::new(apply_fn(&fs[j], b::int(i as i64))),
                                Box::new(body),
                            ));
                        }
                        body
                    })
                    .collect();
                Reduced(b::vector(comps))
            }
            _ => stuck(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_syntax::parse;

    fn nf(src: &str, p: usize) -> Expr {
        let e = parse(src).expect("parse");
        run(&e, p, 1_000_000).unwrap_or_else(|err| panic!("run `{src}`: {err}"))
    }

    fn stuck_reason(src: &str, p: usize) -> String {
        let e = parse(src).expect("parse");
        match run(&e, p, 1_000_000) {
            Err(EvalError::NotAFunction(r)) => r,
            other => panic!("expected stuck, got {other:?}"),
        }
    }

    #[test]
    fn figure1_delta_rules_fire() {
        // (δ+)
        assert_eq!(nf("1 + 2", 1), b::int(3));
        // (δ fst)
        assert_eq!(nf("fst (1, 2)", 1), b::int(1));
        assert_eq!(nf("snd (1, 2)", 1), b::int(2));
        // (δ ifthenelseT/F)
        assert_eq!(nf("if true then 1 else 2", 1), b::int(1));
        assert_eq!(nf("if false then 1 else 2", 1), b::int(2));
        // (δ isnc) — both axioms
        assert_eq!(nf("isnc (nc ())", 1), b::bool_(true));
        assert_eq!(nf("isnc 5", 1), b::bool_(false));
        // (δ fix)
        assert_eq!(
            nf(
                "let rec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 5",
                1
            ),
            b::int(120)
        );
    }

    #[test]
    fn figure2_mkpar() {
        // (δ mkpar): ⟨e[x←0], …, e[x←p−1]⟩
        assert_eq!(
            nf("mkpar (fun i -> i + 10)", 3),
            b::vector(vec![b::int(10), b::int(11), b::int(12)])
        );
    }

    #[test]
    fn figure2_apply() {
        assert_eq!(
            nf(
                "apply (mkpar (fun i -> fun x -> x * i), mkpar (fun i -> i + 1))",
                3
            ),
            b::vector(vec![b::int(0), b::int(2), b::int(6)])
        );
    }

    #[test]
    fn figure2_put_builds_dispatchers() {
        // After put, applying the received function to a pid within
        // range yields the message; outside the range, nc ().
        let v = nf(
            "let recv = put (mkpar (fun j -> fun i -> j * 10 + i)) in
             apply (recv, mkpar (fun i -> 1))",
            3,
        );
        // Process i receives from 1 the message 10 + i.
        assert_eq!(v, b::vector(vec![b::int(10), b::int(11), b::int(12)]));
        let out_of_range = nf(
            "let recv = put (mkpar (fun j -> fun i -> j)) in
             apply (mkpar (fun i -> fun f -> isnc (f 42)), recv)",
            2,
        );
        assert_eq!(
            out_of_range,
            b::vector(vec![b::bool_(true), b::bool_(true)])
        );
    }

    #[test]
    fn figure2_nonlambda_components_use_application() {
        // The documented generalization: primitive operators as
        // component functions build `f i` instead of substituting.
        assert_eq!(nf("mkpar isnc", 3), b::vector(vec![b::bool_(false); 3]));
        let v = nf(
            "let r = put (mkpar (fun j -> fun d -> isnc)) in
             apply (apply (mkpar (fun i -> fun f -> f i), r), mkpar (fun i -> i))",
            2,
        );
        // Every delivered function is isnc; isnc i = false.
        assert_eq!(v, b::vector(vec![b::bool_(false), b::bool_(false)]));
    }

    #[test]
    fn figure2_ifat() {
        assert_eq!(
            nf("if mkpar (fun i -> i = 1) at 1 then 5 else 6", 2),
            b::int(5)
        );
        assert_eq!(
            nf("if mkpar (fun i -> i = 1) at 0 then 5 else 6", 2),
            b::int(6)
        );
    }

    #[test]
    fn beta_and_let() {
        assert_eq!(nf("(fun x -> x + x) 21", 1), b::int(42));
        assert_eq!(nf("let x = 6 in x * 7", 1), b::int(42));
    }

    #[test]
    fn evaluation_is_left_to_right() {
        // The left pair component reduces before the right one.
        let e = parse("((fun x -> x) 1, (fun y -> y) 2)").unwrap();
        if let StepOutcome::Reduced(e2) = step(&e, 1) {
            assert_eq!(e2, parse("(1, (fun y -> y) 2)").unwrap());
        } else {
            panic!("expected a step");
        }
    }

    #[test]
    fn local_context_blocks_parallel_reduction() {
        // example2 from the paper — mkpar under mkpar is stuck in the
        // small-step machine (no Γ_l rule covers δ_g).
        let r = stuck_reason("mkpar (fun pid -> let this = mkpar (fun i -> i) in pid)", 2);
        assert!(r.contains("parallel primitive"), "got: {r}");
    }

    #[test]
    fn ifat_in_vector_is_stuck() {
        let r = stuck_reason(
            "mkpar (fun pid -> if mkpar (fun i -> true) at 0 then 1 else 2)",
            2,
        );
        assert!(r.contains("parallel"), "got: {r}");
    }

    #[test]
    fn nested_vector_value_is_stuck() {
        let r = stuck_reason(
            "let vec = mkpar (fun i -> i) in mkpar (fun pid -> fst (vec, pid))",
            2,
        );
        assert!(
            r.contains("parallel data") || r.contains("vector"),
            "got: {r}"
        );
    }

    #[test]
    fn stuck_on_type_errors() {
        assert!(stuck_reason("1 2", 1).contains("applying non-function"));
        assert!(stuck_reason("1 + true", 1).contains("no δ-rule"));
        assert!(stuck_reason("if 3 then 1 else 2", 1).contains("non-boolean"));
    }

    #[test]
    fn division_by_zero_is_stuck() {
        assert!(stuck_reason("1 / 0", 1).contains("division by zero"));
    }

    #[test]
    fn function_equality_is_stuck() {
        assert!(stuck_reason("(fun x -> x) = (fun x -> x)", 1).contains("functional"));
    }

    #[test]
    fn out_of_fuel() {
        let e = parse("let rec loop x = loop x in loop 0").unwrap();
        assert_eq!(run(&e, 1, 1_000), Err(EvalError::OutOfFuel));
    }

    #[test]
    fn trace_records_every_step() {
        let e = parse("1 + 2 + 3").unwrap();
        let tr = trace(&e, 1, 100).unwrap();
        assert_eq!(tr.first().unwrap(), &e);
        assert_eq!(tr.last().unwrap(), &b::int(6));
        assert!(tr.len() >= 3);
        // Consecutive entries differ by exactly one step.
        for w in tr.windows(2) {
            assert_eq!(step(&w[0], 1), StepOutcome::Reduced(w[1].clone()));
        }
    }

    #[test]
    fn values_do_not_step() {
        for src in [
            "1",
            "true",
            "()",
            "fun x -> x",
            "(1, 2)",
            "[]",
            "[1; 2]",
            "nc ()",
        ] {
            let e = parse(src).unwrap();
            let v = run(&e, 1, 10).unwrap();
            assert_eq!(step(&v, 1), StepOutcome::Value, "on `{src}`");
        }
    }

    #[test]
    fn sums_and_lists_reduce() {
        assert_eq!(
            nf("case inl 3 of inl a -> a * 2 | inr b -> b", 1),
            b::int(6)
        );
        assert_eq!(
            nf("case inr 3 of inl a -> a | inr b -> b * 3", 1),
            b::int(9)
        );
        assert_eq!(
            nf(
                "let rec len xs = match xs with [] -> 0 | h :: t -> 1 + len t in len [9;8;7]",
                1
            ),
            b::int(3)
        );
    }
}
