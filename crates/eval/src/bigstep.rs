//! Environment-based big-step evaluator.
//!
//! This is the practical engine: it runs programs, drives the BSP
//! simulator through [`EvalHooks`], and is cross-checked against the
//! literal small-step machine of [`crate::smallstep`].
//!
//! The evaluator enforces the dynamic face of the nesting restriction:
//! evaluating a parallel primitive (or a vector literal, or `if‥at‥`)
//! *inside* a parallel vector component raises
//! [`EvalError::NestedParallelism`]. Well-typed programs (accepted by
//! `bsml-infer`) never trigger it — that is Theorem 1.

use std::rc::Rc;
use std::sync::Arc;

use bsml_ast::{Const, Expr, ExprKind, Op};

use crate::driver::{Applier, GlobalDriver, ParallelDriver};
use crate::env::Env;
use crate::error::EvalError;
use crate::fuel::FuelCell;
use crate::hooks::{EvalHooks, Mode, NoHooks};
use crate::value::Value;

/// Default fuel: enough for every test and benchmark workload while
/// still catching runaway recursion quickly.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// The big-step evaluator for a `p`-processor machine.
///
/// # Example
///
/// ```
/// use bsml_eval::{Evaluator, NoHooks};
/// use bsml_syntax::parse;
///
/// let e = parse("let x = 2 in x * 21")?;
/// let mut hooks = NoHooks;
/// let mut ev = Evaluator::new(4, &mut hooks);
/// assert_eq!(ev.eval(&e)?.to_string(), "42");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Evaluator<'h, H: EvalHooks> {
    p: usize,
    fuel: u64,
    depth: u32,
    max_depth: u32,
    hooks: &'h mut H,
    /// The parallel backend (`None` only transiently while a driver
    /// method is running).
    driver: Option<Box<dyn ParallelDriver>>,
    /// When set, an exhausted local budget draws the next fuel slice
    /// from this shared cell (parking the thread) instead of failing
    /// with [`EvalError::OutOfFuel`]. See [`crate::fuel`].
    fuel_cell: Option<Arc<FuelCell>>,
}

/// Default limit on non-tail recursion depth. Tail calls (recursive
/// functions in tail position, `let`/`if`/`case` bodies) do not count:
/// the evaluator executes them in constant stack space.
pub const DEFAULT_MAX_DEPTH: u32 = 4_000;

/// Result of evaluating a closure body up to its tail position:
/// either a finished value, or one more application to perform.
/// [`Evaluator::apply_value`] loops on `Call`, so recursive functions
/// in tail position run in constant Rust stack space.
enum TailResult {
    Value(Value),
    Call(Value, Value),
}

/// Evaluates a closed expression on a `p`-processor machine with
/// default fuel and no instrumentation.
///
/// # Errors
///
/// See [`EvalError`].
pub fn eval_closed(e: &Expr, p: usize) -> Result<Value, EvalError> {
    let mut hooks = NoHooks;
    Evaluator::new(p, &mut hooks).eval(e)
}

impl<'h, H: EvalHooks> Evaluator<'h, H> {
    /// Creates an evaluator with [`DEFAULT_FUEL`].
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` — a BSP machine has at least one processor.
    #[must_use]
    pub fn new(p: usize, hooks: &'h mut H) -> Self {
        Self::with_fuel(p, hooks, DEFAULT_FUEL)
    }

    /// Creates an evaluator with an explicit step budget.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn with_fuel(p: usize, hooks: &'h mut H, fuel: u64) -> Self {
        Self::with_driver(hooks, fuel, Box::new(GlobalDriver::new(p)))
    }

    /// Creates an evaluator over an explicit parallel backend (used
    /// by the distributed SPMD machine in `bsml-bsp`).
    #[must_use]
    pub fn with_driver(hooks: &'h mut H, fuel: u64, driver: Box<dyn ParallelDriver>) -> Self {
        let p = driver.machine_width();
        assert!(p > 0, "a BSP machine needs at least one processor");
        Evaluator {
            p,
            fuel,
            depth: 0,
            max_depth: DEFAULT_MAX_DEPTH,
            hooks,
            driver: Some(driver),
            fuel_cell: None,
        }
    }

    /// Attaches a shared [`FuelCell`]: the evaluator starts with zero
    /// local fuel and draws every slice from the cell, parking between
    /// grants. The constructor's fuel argument is ignored — the cell
    /// is the budget authority, and cancellation through it surfaces
    /// as [`EvalError::Cancelled`] at the next tick.
    #[must_use]
    pub fn with_fuel_cell(mut self, cell: Arc<FuelCell>) -> Self {
        self.fuel = 0;
        self.fuel_cell = Some(cell);
        self
    }

    /// Runs a driver method with the evaluator as its [`Applier`].
    fn drive<R>(&mut self, f: impl FnOnce(&mut dyn ParallelDriver, &mut dyn Applier) -> R) -> R {
        let mut d = self
            .driver
            .take()
            .expect("parallel driver re-entered; nested parallelism guard failed");
        let r = f(&mut *d, self);
        self.driver = Some(d);
        r
    }

    /// Overrides the non-tail recursion depth limit.
    #[must_use]
    pub fn max_depth(mut self, max_depth: u32) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// The machine size.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Remaining fuel.
    #[must_use]
    pub fn fuel_left(&self) -> u64 {
        self.fuel
    }

    /// Evaluates a closed expression in global (replicated) mode.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn eval(&mut self, e: &Expr) -> Result<Value, EvalError> {
        self.eval_in(&Env::new(), e, Mode::Global)
    }

    /// Evaluates under an environment.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn eval_with_env(&mut self, env: &Env, e: &Expr) -> Result<Value, EvalError> {
        self.eval_in(env, e, Mode::Global)
    }

    fn tick(&mut self, mode: Mode) -> Result<(), EvalError> {
        if self.fuel == 0 {
            match &self.fuel_cell {
                Some(cell) => self.fuel = cell.request()?,
                None => return Err(EvalError::OutOfFuel),
            }
        }
        self.fuel -= 1;
        self.hooks.on_step(mode);
        Ok(())
    }

    fn eval_in(&mut self, env: &Env, e: &Expr, mode: Mode) -> Result<Value, EvalError> {
        if self.depth >= self.max_depth {
            return Err(EvalError::RecursionLimit);
        }
        self.depth += 1;
        let r = self.eval_node(env, e, mode);
        self.depth -= 1;
        r
    }

    /// Evaluates a closure body, turning tail positions (`let`/`if`/
    /// `case`/`match` bodies and the final application) into loop
    /// iterations instead of Rust recursion.
    fn eval_tail(&mut self, env: &Env, e: &Expr, mode: Mode) -> Result<TailResult, EvalError> {
        let mut env = env.clone();
        let mut cur = e;
        loop {
            match &cur.kind {
                ExprKind::Let(x, bound, body) => {
                    self.tick(mode)?;
                    let bv = self.eval_in(&env, bound, mode)?;
                    env = env.bind(x.clone(), bv);
                    cur = body;
                }
                ExprKind::If(c, t, els) => {
                    self.tick(mode)?;
                    match self.eval_in(&env, c, mode)? {
                        Value::Bool(true) => cur = t,
                        Value::Bool(false) => cur = els,
                        v => return Err(EvalError::ScrutineeMismatch("if", v.to_string())),
                    }
                }
                ExprKind::Case {
                    scrutinee,
                    left_var,
                    left_body,
                    right_var,
                    right_body,
                } => {
                    self.tick(mode)?;
                    match self.eval_in(&env, scrutinee, mode)? {
                        Value::Inl(v) => {
                            env = env.bind(left_var.clone(), (*v).clone());
                            cur = left_body;
                        }
                        Value::Inr(v) => {
                            env = env.bind(right_var.clone(), (*v).clone());
                            cur = right_body;
                        }
                        v => return Err(EvalError::ScrutineeMismatch("case", v.to_string())),
                    }
                }
                ExprKind::MatchList {
                    scrutinee,
                    nil_body,
                    head_var,
                    tail_var,
                    cons_body,
                } => {
                    self.tick(mode)?;
                    match self.eval_in(&env, scrutinee, mode)? {
                        Value::Nil => cur = nil_body,
                        Value::Cons(h, t) => {
                            env = env
                                .bind(head_var.clone(), (*h).clone())
                                .bind(tail_var.clone(), (*t).clone());
                            cur = cons_body;
                        }
                        v => return Err(EvalError::ScrutineeMismatch("match", v.to_string())),
                    }
                }
                ExprKind::App(f, a) => {
                    self.tick(mode)?;
                    let fv = self.eval_in(&env, f, mode)?;
                    let av = self.eval_in(&env, a, mode)?;
                    return Ok(TailResult::Call(fv, av));
                }
                _ => return Ok(TailResult::Value(self.eval_in(&env, cur, mode)?)),
            }
        }
    }

    fn eval_node(&mut self, env: &Env, e: &Expr, mode: Mode) -> Result<Value, EvalError> {
        self.tick(mode)?;
        match &e.kind {
            ExprKind::Var(x) => env
                .lookup(x)
                .cloned()
                .ok_or_else(|| EvalError::Unbound(x.clone())),
            ExprKind::Const(Const::Int(n)) => Ok(Value::Int(*n)),
            ExprKind::Const(Const::Bool(b)) => Ok(Value::Bool(*b)),
            ExprKind::Const(Const::Unit) => Ok(Value::Unit),
            ExprKind::Op(op) => Ok(Value::Prim(*op)),
            ExprKind::Fun(x, body) => Ok(Value::Closure {
                param: x.clone(),
                body: Rc::new((**body).clone()),
                env: env.clone(),
            }),
            ExprKind::App(f, a) => {
                let fv = self.eval_in(env, f, mode)?;
                let av = self.eval_in(env, a, mode)?;
                self.apply_value(fv, av, mode)
            }
            ExprKind::Let(x, bound, body) => {
                let bv = self.eval_in(env, bound, mode)?;
                let env2 = env.bind(x.clone(), bv);
                self.eval_in(&env2, body, mode)
            }
            ExprKind::Pair(a, b) => {
                let av = self.eval_in(env, a, mode)?;
                let bv = self.eval_in(env, b, mode)?;
                Ok(Value::pair(av, bv))
            }
            ExprKind::If(c, t, els) => match self.eval_in(env, c, mode)? {
                Value::Bool(true) => self.eval_in(env, t, mode),
                Value::Bool(false) => self.eval_in(env, els, mode),
                v => Err(EvalError::ScrutineeMismatch("if", v.to_string())),
            },
            ExprKind::IfAt(vec, n, t, els) => {
                if let Mode::OnProc(_) = mode {
                    return Err(EvalError::NestedParallelism);
                }
                let vv = self.eval_in(env, vec, mode)?;
                let nv = self.eval_in(env, n, mode)?;
                let bools = match vv {
                    Value::Vector(vs) => vs,
                    v => return Err(EvalError::ScrutineeMismatch("if‥at‥", v.to_string())),
                };
                let idx = match nv {
                    Value::Int(i) => i,
                    v => return Err(EvalError::ScrutineeMismatch("at", v.to_string())),
                };
                if idx < 0 || idx as usize >= self.p {
                    return Err(EvalError::PidOutOfRange(idx, self.p));
                }
                let chosen = self.drive(|d, ev| d.ifat(ev, &bools, idx as usize))?;
                if chosen {
                    self.eval_in(env, t, mode)
                } else {
                    self.eval_in(env, els, mode)
                }
            }
            ExprKind::Vector(es) => {
                if let Mode::OnProc(_) = mode {
                    return Err(EvalError::NestedParallelism);
                }
                let width = self.driver.as_ref().and_then(|d| d.literal_width()).ok_or(
                    EvalError::ScrutineeMismatch(
                        "parallel vector literal",
                        "unsupported by this execution backend".to_string(),
                    ),
                )?;
                if es.len() != width {
                    return Err(EvalError::ScrutineeMismatch(
                        "parallel vector literal",
                        format!("width {} on a {width}-processor machine", es.len()),
                    ));
                }
                let mut vs = Vec::with_capacity(width);
                for (i, comp) in es.iter().enumerate() {
                    let v = self.eval_in(env, comp, Mode::OnProc(i))?;
                    self.check_local(&v)?;
                    vs.push(v);
                }
                Ok(Value::vector(vs))
            }
            ExprKind::Inl(inner) => Ok(Value::Inl(Rc::new(self.eval_in(env, inner, mode)?))),
            ExprKind::Inr(inner) => Ok(Value::Inr(Rc::new(self.eval_in(env, inner, mode)?))),
            ExprKind::Case {
                scrutinee,
                left_var,
                left_body,
                right_var,
                right_body,
            } => match self.eval_in(env, scrutinee, mode)? {
                Value::Inl(v) => {
                    let env2 = env.bind(left_var.clone(), (*v).clone());
                    self.eval_in(&env2, left_body, mode)
                }
                Value::Inr(v) => {
                    let env2 = env.bind(right_var.clone(), (*v).clone());
                    self.eval_in(&env2, right_body, mode)
                }
                v => Err(EvalError::ScrutineeMismatch("case", v.to_string())),
            },
            ExprKind::Nil => Ok(Value::Nil),
            ExprKind::Cons(h, t) => {
                let hv = self.eval_in(env, h, mode)?;
                let tv = self.eval_in(env, t, mode)?;
                Ok(Value::Cons(Rc::new(hv), Rc::new(tv)))
            }
            ExprKind::MatchList {
                scrutinee,
                nil_body,
                head_var,
                tail_var,
                cons_body,
            } => match self.eval_in(env, scrutinee, mode)? {
                Value::Nil => self.eval_in(env, nil_body, mode),
                Value::Cons(h, t) => {
                    let env2 = env
                        .bind(head_var.clone(), (*h).clone())
                        .bind(tail_var.clone(), (*t).clone());
                    self.eval_in(&env2, cons_body, mode)
                }
                v => Err(EvalError::ScrutineeMismatch("match", v.to_string())),
            },
        }
    }

    /// Applies a function value to an argument value.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn apply_value(&mut self, f: Value, arg: Value, mode: Mode) -> Result<Value, EvalError> {
        let mut f = f;
        let mut arg = arg;
        // Trampoline: a closure body ending in another application
        // comes back as `TailResult::Call` and loops here instead of
        // consuming Rust stack — tail-recursive BSML functions run in
        // constant space.
        loop {
            match f {
                Value::Closure { param, body, env } => {
                    let env2 = env.bind(param, arg);
                    match self.eval_tail(&env2, &body, mode)? {
                        TailResult::Value(v) => return Ok(v),
                        TailResult::Call(f2, a2) => {
                            f = f2;
                            arg = a2;
                        }
                    }
                }
                Value::Prim(op) => return self.delta(op, arg, mode),
                Value::MsgTable(table) => {
                    return match arg {
                        Value::Int(j) if j >= 0 && (j as usize) < table.len() => {
                            Ok(table[j as usize].clone())
                        }
                        Value::Int(_) => Ok(Value::NoComm),
                        v => Err(EvalError::ScrutineeMismatch(
                            "delivered-messages function",
                            v.to_string(),
                        )),
                    }
                }
                Value::Fix(inner) => {
                    // (fix f) v → (f (fix f)) v — unroll and retry.
                    f = self.unroll_fix(&inner, mode)?;
                }
                v => return Err(EvalError::NotAFunction(v.to_string())),
            }
        }
    }

    /// One unrolling of the δ-rule for `fix`.
    fn unroll_fix(&mut self, f: &Value, mode: Mode) -> Result<Value, EvalError> {
        self.tick(mode)?;
        match f {
            Value::Closure { param, body, env } => {
                // fix(fun x → e) → e[x ← fix(fun x → e)]
                let env2 = env.bind(param.clone(), Value::Fix(Rc::new(f.clone())));
                self.eval_in(&env2, body, mode)
            }
            other => self.apply_value(other.clone(), Value::Fix(Rc::new(other.clone())), mode),
        }
    }

    /// Rejects a vector component that is itself parallel data.
    fn check_local(&self, v: &Value) -> Result<(), EvalError> {
        if v.contains_vector() {
            Err(EvalError::NestedParallelism)
        } else {
            Ok(())
        }
    }

    /// The δ-rules of Figures 1 and 2 on runtime values.
    fn delta(&mut self, op: Op, arg: Value, mode: Mode) -> Result<Value, EvalError> {
        use Value::*;
        if op.is_parallel() {
            if let Mode::OnProc(_) = mode {
                return Err(EvalError::NestedParallelism);
            }
        }
        let mismatch = |v: Value| Err(EvalError::DeltaMismatch(op, v.to_string()));
        match op {
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => match arg {
                Pair(a, b) => match (&*a, &*b) {
                    (Int(x), Int(y)) => {
                        let r = match op {
                            Op::Add => x.wrapping_add(*y),
                            Op::Sub => x.wrapping_sub(*y),
                            Op::Mul => x.wrapping_mul(*y),
                            Op::Div => {
                                if *y == 0 {
                                    return Err(EvalError::DivisionByZero);
                                }
                                x.wrapping_div(*y)
                            }
                            Op::Mod => {
                                if *y == 0 {
                                    return Err(EvalError::DivisionByZero);
                                }
                                x.wrapping_rem(*y)
                            }
                            _ => unreachable!(),
                        };
                        Ok(Int(r))
                    }
                    _ => mismatch(Pair(a, b)),
                },
                v => mismatch(v),
            },
            Op::Lt | Op::Le | Op::Gt | Op::Ge => match arg {
                Pair(a, b) => match (&*a, &*b) {
                    (Int(x), Int(y)) => Ok(Bool(match op {
                        Op::Lt => x < y,
                        Op::Le => x <= y,
                        Op::Gt => x > y,
                        Op::Ge => x >= y,
                        _ => unreachable!(),
                    })),
                    _ => mismatch(Pair(a, b)),
                },
                v => mismatch(v),
            },
            Op::Eq => match arg {
                Pair(a, b) => match a.try_eq(&b) {
                    Some(r) => Ok(Bool(r)),
                    None => mismatch(Pair(a, b)),
                },
                v => mismatch(v),
            },
            Op::And | Op::Or => match arg {
                Pair(a, b) => match (&*a, &*b) {
                    (Bool(x), Bool(y)) => Ok(Bool(if op == Op::And { *x && *y } else { *x || *y })),
                    _ => mismatch(Pair(a, b)),
                },
                v => mismatch(v),
            },
            Op::Not => match arg {
                Bool(b) => Ok(Bool(!b)),
                v => mismatch(v),
            },
            Op::Fst => match arg {
                Pair(a, _) => Ok((*a).clone()),
                v => mismatch(v),
            },
            Op::Snd => match arg {
                Pair(_, b) => Ok((*b).clone()),
                v => mismatch(v),
            },
            Op::Fix => {
                if arg.is_function() {
                    self.unroll_fix(&arg, mode)
                } else {
                    mismatch(arg)
                }
            }
            Op::Nc => match arg {
                Unit => Ok(NoComm),
                v => mismatch(v),
            },
            Op::Isnc => Ok(Bool(matches!(arg, NoComm))),
            Op::BspP => match arg {
                Unit => Ok(Int(self.p as i64)),
                v => mismatch(v),
            },
            Op::Mkpar => {
                if !arg.is_function() {
                    return mismatch(arg);
                }
                self.drive(|d, ev| d.mkpar(ev, &arg))
            }
            Op::Apply => match arg {
                Pair(fs, vs) => match (&*fs, &*vs) {
                    (Vector(fs), Vector(vs)) if fs.len() == vs.len() => {
                        let (fs, vs) = (fs.clone(), vs.clone());
                        self.drive(|d, ev| d.apply_par(ev, &fs, &vs))
                    }
                    _ => mismatch(Pair(fs, vs)),
                },
                v => mismatch(v),
            },
            // §6 imperative extension. The static system types the
            // cell contents (local only); the *mode* discipline is
            // enforced dynamically, exactly the interaction the paper
            // leaves to future "typing of effects" work:
            //   - a Global cell is replicated identically everywhere;
            //     assigning it inside one vector component would
            //     desynchronize the replicas;
            //   - an OnProc(i) cell lives in processor i's memory
            //     only and is unreachable from anywhere else.
            Op::Ref => {
                self.check_local(&arg)?;
                Ok(Value::cell(arg, mode))
            }
            Op::Deref => match arg {
                Cell { cell, origin } => {
                    match (origin, mode) {
                        // Reading a replicated cell anywhere is
                        // coherent (all replicas agree).
                        (Mode::Global, _) => {}
                        (Mode::OnProc(j), Mode::OnProc(k)) if j == k => {}
                        (Mode::OnProc(_), _) => {
                            return Err(EvalError::IncoherentReplicas(
                                "dereferencing a processor-local cell \
                                 outside its owning processor",
                            ))
                        }
                    }
                    Ok(cell.borrow().clone())
                }
                v => mismatch(v),
            },
            Op::Assign => match arg {
                Pair(r, v) => match (&*r, &*v) {
                    (Cell { cell, origin }, _) => {
                        match (origin, mode) {
                            (Mode::Global, Mode::Global) => {}
                            (Mode::OnProc(j), Mode::OnProc(k)) if *j == k => {}
                            (Mode::Global, Mode::OnProc(_)) => {
                                return Err(EvalError::IncoherentReplicas(
                                    "assigning a replicated (global) cell inside \
                                     a parallel vector component would \
                                     desynchronize its replicas",
                                ))
                            }
                            (Mode::OnProc(_), _) => {
                                return Err(EvalError::IncoherentReplicas(
                                    "assigning a processor-local cell outside \
                                     its owning processor",
                                ))
                            }
                        }
                        let new = v.as_ref().clone();
                        self.check_local(&new)?;
                        *cell.borrow_mut() = new;
                        Ok(Unit)
                    }
                    _ => mismatch(Pair(r, v)),
                },
                v => mismatch(v),
            },
            Op::Put => match arg {
                Vector(fs) => {
                    let fs = fs.clone();
                    self.drive(|d, ev| d.put(ev, &fs))
                }
                v => mismatch(v),
            },
        }
    }
}

impl<H: EvalHooks> Applier for Evaluator<'_, H> {
    fn apply_fn(&mut self, f: Value, arg: Value, mode: Mode) -> Result<Value, EvalError> {
        self.apply_value(f, arg, mode)
    }

    fn ensure_local(&self, v: &Value) -> Result<(), EvalError> {
        self.check_local(v)
    }

    fn note_put(&mut self, messages: &[Vec<Value>]) {
        self.hooks.on_put(messages);
    }

    fn note_ifat(&mut self, at: usize, chosen: bool) {
        self.hooks.on_ifat(at, chosen);
    }

    fn note_async(&mut self) {
        self.hooks.on_async_parallel();
    }

    fn fuel_left(&self) -> u64 {
        self.fuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::CountingHooks;
    use bsml_ast::build as b;
    use bsml_syntax::parse;

    fn run(src: &str, p: usize) -> Value {
        let e = parse(src).expect("parse");
        eval_closed(&e, p).unwrap_or_else(|err| panic!("eval `{src}`: {err}"))
    }

    fn run_err(src: &str, p: usize) -> EvalError {
        let e = parse(src).expect("parse");
        eval_closed(&e, p).expect_err("expected an error")
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("1 + 2 * 3", 1).to_string(), "7");
        assert_eq!(run("10 / 3", 1).to_string(), "3");
        assert_eq!(run("10 mod 3", 1).to_string(), "1");
        assert_eq!(run("1 - 5", 1).to_string(), "-4");
        assert_eq!(run_err("1 / 0", 1), EvalError::DivisionByZero);
        assert_eq!(run_err("1 mod 0", 1), EvalError::DivisionByZero);
    }

    #[test]
    fn comparisons_and_booleans() {
        assert_eq!(run("1 < 2", 1).to_string(), "true");
        assert_eq!(run("2 <= 1", 1).to_string(), "false");
        assert_eq!(run("3 > 2 && 1 >= 1", 1).to_string(), "true");
        assert_eq!(run("false || not false", 1).to_string(), "true");
        assert_eq!(run("(1, true) = (1, true)", 1).to_string(), "true");
        assert_eq!(run("[1; 2] = [1; 3]", 1).to_string(), "false");
    }

    #[test]
    fn functions_and_lets() {
        assert_eq!(run("(fun x -> x + 1) 41", 1).to_string(), "42");
        assert_eq!(run("let f x y = x * y in f 6 7", 1).to_string(), "42");
        assert_eq!(run("let x = 1 in let x = x + 1 in x", 1).to_string(), "2");
    }

    #[test]
    fn closures_capture() {
        assert_eq!(
            run(
                "let make = fun n -> fun x -> x + n in let add3 = make 3 in add3 4",
                1
            )
            .to_string(),
            "7"
        );
    }

    #[test]
    fn recursion_via_fix() {
        assert_eq!(
            run(
                "let rec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 10",
                1
            )
            .to_string(),
            "3628800"
        );
        assert_eq!(
            run(
                "let rec fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 15",
                1
            )
            .to_string(),
            "610"
        );
    }

    #[test]
    fn divergence_runs_out_of_fuel() {
        let e = parse("let rec loop x = loop x in loop 0").unwrap();
        let mut hooks = NoHooks;
        let mut ev = Evaluator::with_fuel(1, &mut hooks, 10_000);
        assert!(matches!(ev.eval(&e), Err(EvalError::OutOfFuel)));
    }

    #[test]
    fn pairs_sums_lists() {
        assert_eq!(run("fst (1, 2)", 1).to_string(), "1");
        assert_eq!(run("snd (1, 2)", 1).to_string(), "2");
        assert_eq!(
            run("case inl 3 of inl a -> a + 1 | inr b -> b - 1", 1).to_string(),
            "4"
        );
        assert_eq!(
            run("case inr 3 of inl a -> a + 1 | inr b -> b - 1", 1).to_string(),
            "2"
        );
        assert_eq!(
            run("match [1; 2; 3] with [] -> 0 | h :: t -> h", 1).to_string(),
            "1"
        );
        assert_eq!(
            run(
                "let rec sum xs = match xs with [] -> 0 | h :: t -> h + sum t in sum [1;2;3;4]",
                1
            )
            .to_string(),
            "10"
        );
    }

    #[test]
    fn nc_and_isnc() {
        assert_eq!(run("isnc (nc ())", 1).to_string(), "true");
        assert_eq!(run("isnc 5", 1).to_string(), "false");
    }

    #[test]
    fn mkpar_builds_vectors() {
        assert_eq!(
            run("mkpar (fun i -> i * i)", 4).to_string(),
            "<|0, 1, 4, 9|>"
        );
        assert_eq!(run("bsp_p ()", 7).to_string(), "7");
        assert_eq!(
            run("mkpar (fun i -> bsp_p ())", 3).to_string(),
            "<|3, 3, 3|>"
        );
    }

    #[test]
    fn apply_is_pointwise() {
        assert_eq!(
            run(
                "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i * 10))",
                4
            )
            .to_string(),
            "<|0, 11, 22, 33|>"
        );
    }

    #[test]
    fn put_exchanges_messages() {
        // Every process j sends j*100+i to process i; process i then
        // reads the message from process 1.
        let v = run(
            "let recv = put (mkpar (fun j -> fun i -> j * 100 + i)) in
             apply (recv, mkpar (fun i -> 1))",
            3,
        );
        assert_eq!(v.to_string(), "<|100, 101, 102|>");
    }

    #[test]
    fn put_out_of_range_is_nc() {
        let v = run(
            "let recv = put (mkpar (fun j -> fun i -> j)) in
             apply (mkpar (fun i -> fun f -> isnc (f 99)), recv)",
            2,
        );
        // Applying the delivered-messages function outside 0‥p-1
        // yields nc () — so isnc is true everywhere… but note the
        // apply chain: the table is consumed *locally*.
        assert_eq!(v.to_string(), "<|true, true|>");
    }

    #[test]
    fn ifat_chooses_branch_globally() {
        assert_eq!(
            run("if mkpar (fun i -> i = 2) at 2 then 10 else 20", 4).to_string(),
            "10"
        );
        assert_eq!(
            run("if mkpar (fun i -> i = 2) at 0 then 10 else 20", 4).to_string(),
            "20"
        );
        assert_eq!(
            run_err("if mkpar (fun i -> true) at 9 then 1 else 2", 4),
            EvalError::PidOutOfRange(9, 4)
        );
    }

    #[test]
    fn example2_is_dynamic_nesting() {
        // The paper's example2: a mkpar inside a mkpar.
        let err = run_err(
            "mkpar (fun pid -> let this = mkpar (fun pid -> pid) in pid)",
            4,
        );
        assert_eq!(err, EvalError::NestedParallelism);
    }

    #[test]
    fn ifat_inside_mkpar_is_nesting() {
        let err = run_err(
            "mkpar (fun pid -> if mkpar (fun i -> true) at 0 then 1 else 2)",
            2,
        );
        assert_eq!(err, EvalError::NestedParallelism);
    }

    #[test]
    fn vector_valued_component_is_nesting() {
        // fst (vec, 1) under mkpar would store a vector inside a
        // vector component.
        let err = run_err(
            "let vec = mkpar (fun i -> i) in mkpar (fun pid -> fst (vec, pid))",
            2,
        );
        assert_eq!(err, EvalError::NestedParallelism);
    }

    #[test]
    fn fourth_projection_evaluates_fine_dynamically() {
        // fst (1, mkpar …) — rejected statically (Fig. 10) but the
        // dynamic semantics happily evaluates it at toplevel; the
        // problem it creates is *cost-model*, not stuckness.
        assert_eq!(run("fst (1, mkpar (fun i -> i))", 2).to_string(), "1");
    }

    #[test]
    fn type_errors_are_caught() {
        assert!(matches!(run_err("1 2", 1), EvalError::NotAFunction(_)));
        assert!(matches!(
            run_err("1 + true", 1),
            EvalError::DeltaMismatch(Op::Add, _)
        ));
        assert!(matches!(
            run_err("if 1 then 2 else 3", 1),
            EvalError::ScrutineeMismatch("if", _)
        ));
        assert!(matches!(
            run_err("fst 1", 1),
            EvalError::DeltaMismatch(Op::Fst, _)
        ));
    }

    #[test]
    fn hooks_observe_work_distribution() {
        let e = parse(
            "let v = mkpar (fun i -> i * i) in
             let r = put (mkpar (fun j -> fun i -> j)) in
             if mkpar (fun i -> true) at 0 then v else v",
        )
        .unwrap();
        let mut hooks = CountingHooks::new(4);
        let mut ev = Evaluator::new(4, &mut hooks);
        ev.eval(&e).unwrap();
        assert_eq!(hooks.puts, 1);
        assert_eq!(hooks.ifats, 1);
        assert_eq!(hooks.supersteps(), 2);
        assert!(hooks.global_steps > 0);
        assert!(hooks.local_steps.iter().all(|&s| s > 0));
    }

    #[test]
    fn vector_literal_requires_machine_width() {
        let e = b::vector(vec![b::int(1), b::int(2)]);
        assert!(eval_closed(&e, 2).is_ok());
        assert!(matches!(
            eval_closed(&e, 3),
            Err(EvalError::ScrutineeMismatch(..))
        ));
    }

    #[test]
    fn unbound_variable() {
        assert_eq!(
            run_err("x", 1),
            EvalError::Unbound(bsml_ast::Ident::new("x"))
        );
    }

    #[test]
    fn fuel_cell_slices_a_real_evaluation() {
        use crate::fuel::Quiescence;
        use std::time::Duration;

        // A loop long enough to need several slices at 1000 fuel each.
        let src = "let rec loop n = if n = 0 then 42 else loop (n - 1) in loop 2000";
        let e = parse(src).expect("parse");
        let cell = FuelCell::new();
        let c2 = Arc::clone(&cell);
        let t = std::thread::spawn(move || {
            let mut hooks = NoHooks;
            let mut ev = Evaluator::new(1, &mut hooks).with_fuel_cell(Arc::clone(&c2));
            // `Value` is `Rc`-based (not `Send`): only a rendering
            // crosses back — exactly the pattern `bsml-serve` uses.
            let out = ev.eval(&e).map(|v| v.to_string());
            c2.finish();
            out
        });
        let mut slices = 0u32;
        loop {
            match cell.wait_quiescent(Duration::from_secs(10)) {
                Quiescence::Finished => break,
                Quiescence::Parked => {
                    cell.grant(1000);
                    slices += 1;
                    assert!(slices < 1000, "evaluation never finished");
                }
                Quiescence::TimedOut => panic!("evaluator stopped ticking"),
            }
        }
        assert_eq!(t.join().unwrap().unwrap(), "42");
        assert!(slices > 1, "expected multiple slices, got {slices}");
        assert!(cell.drawn() >= u64::from(slices - 1) * 1000);
    }

    #[test]
    fn fuel_cell_cancellation_surfaces_as_cancelled() {
        use crate::fuel::Quiescence;
        use std::time::Duration;

        // A genuinely divergent phrase: only cancellation stops it.
        let src = "let rec loop n = loop (n + 1) in loop 0";
        let e = parse(src).expect("parse");
        let cell = FuelCell::new();
        let c2 = Arc::clone(&cell);
        let t = std::thread::spawn(move || {
            let mut hooks = NoHooks;
            let mut ev = Evaluator::new(1, &mut hooks).with_fuel_cell(Arc::clone(&c2));
            let out = ev.eval(&e).map(|v| v.to_string());
            c2.finish();
            out
        });
        cell.grant(500);
        assert_eq!(
            cell.wait_quiescent(Duration::from_secs(10)),
            Quiescence::Parked
        );
        cell.cancel();
        assert_eq!(t.join().unwrap(), Err(EvalError::Cancelled));
    }
}
