//! Evaluation errors.

use std::fmt;

use bsml_ast::{Ident, Op};

/// A runtime error.
///
/// A *well-typed* closed program only ever produces
/// [`EvalError::OutOfFuel`] / [`EvalError::RecursionLimit`] (if it
/// diverges or recurses too deep), [`EvalError::DivisionByZero`]
/// (arithmetic partiality the type system does not track), or
/// [`EvalError::IncoherentReplicas`] (the §6 imperative extension's
/// dynamic check). The remaining variants witness ill-typed programs
/// and are exercised by the soundness test-suite on purpose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable was reached.
    Unbound(Ident),
    /// A non-function was applied.
    NotAFunction(String),
    /// A primitive received an argument outside its δ-rules.
    DeltaMismatch(Op, String),
    /// `if` scrutinee was not a boolean, `case` scrutinee not a sum, …
    ScrutineeMismatch(&'static str, String),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A parallel primitive or vector was evaluated *inside* a
    /// parallel vector component — dynamic nesting, the very thing
    /// the type system rejects statically (paper §2.1).
    NestedParallelism,
    /// `if‥at‥` was asked for a process id outside `0‥p-1`.
    PidOutOfRange(i64, usize),
    /// The step/fuel budget ran out (the program may diverge).
    OutOfFuel,
    /// The evaluation was cancelled from outside through its
    /// [`crate::FuelCell`] (deadline enforcement, load shedding, or
    /// shutdown). Unlike [`EvalError::OutOfFuel`] this says nothing
    /// about the program — the scheduler pulled the plug.
    Cancelled,
    /// Non-tail recursion nested deeper than the evaluator's limit.
    RecursionLimit,
    /// A message sent through `put` (or a final result gathered by
    /// the distributed machine) contained a value with no serialized
    /// form — a closure, a delivered-messages table, or a reference
    /// cell. Real BSMLlib has the same restriction (OCaml
    /// marshalling).
    NotSerializable(String),
    /// Another processor of the distributed machine failed; this
    /// processor was released from a synchronization barrier without
    /// its data. The originating processor reports the real error.
    PeerFailure,
    /// A synchronization barrier wait exceeded the distributed
    /// machine's watchdog timeout: `waiting` processors had arrived
    /// at the barrier of superstep `superstep`, the rest never came.
    /// Surfaces a stalled (or deadlocked) peer as an error instead of
    /// hanging the run forever.
    BarrierTimeout {
        /// The superstep whose barrier timed out.
        superstep: u64,
        /// How many processors were waiting when the watchdog fired.
        waiting: usize,
    },
    /// A fault-injection plan (`bsml-bsp::faults`) deliberately
    /// crashed this processor — only ever produced under test
    /// harnesses, never by real programs.
    InjectedFault {
        /// The processor that was crashed.
        rank: usize,
        /// The superstep at which the crash was injected.
        superstep: u64,
    },
    /// A reference cell was read or written from an execution mode
    /// incompatible with where it was created — a replicated (global)
    /// cell assigned inside one vector component, or a processor-local
    /// cell touched elsewhere. This is the incoherence the paper's §6
    /// "imperative features" discussion describes.
    IncoherentReplicas(&'static str),
    /// A checkpoint-resumed replay diverged from the state the
    /// checkpoint recorded (fuel fingerprint mismatch, or a recorded
    /// communication outcome that does not fit the replayed program).
    /// The checkpoint is unusable; recovery falls back to a full
    /// restart — never to the possibly-wrong resumed state.
    CheckpointDiverged {
        /// The processor whose replay diverged.
        rank: usize,
        /// The superstep at which the divergence was detected.
        superstep: u64,
        /// What went wrong, for diagnostics.
        detail: String,
    },
    /// The reliable message-passing transport gave up: a frame was
    /// retransmitted up to the machine's retransmit budget and never
    /// acknowledged (the network is lossier than the budget tolerates,
    /// or the peer stopped servicing its mailbox). Loss *within* the
    /// budget is repaired silently and never produces this error.
    TransportFailure {
        /// The processor whose exchange gave up.
        rank: usize,
        /// The superstep whose communication phase failed.
        superstep: u64,
        /// What was still outstanding when the budget ran out.
        detail: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            EvalError::NotAFunction(v) => {
                write!(f, "cannot apply non-function value `{v}`")
            }
            EvalError::DeltaMismatch(op, v) => {
                write!(f, "no δ-rule for `{op}` applied to `{v}`")
            }
            EvalError::ScrutineeMismatch(what, v) => {
                write!(f, "{what} scrutinee has unexpected value `{v}`")
            }
            EvalError::DivisionByZero => f.write_str("division by zero"),
            EvalError::NestedParallelism => f.write_str(
                "nested parallelism: a parallel primitive was evaluated inside \
                 a parallel vector component",
            ),
            EvalError::PidOutOfRange(n, p) => {
                write!(f, "process id {n} outside the machine size 0..{p}")
            }
            EvalError::OutOfFuel => f.write_str("evaluation fuel exhausted"),
            EvalError::Cancelled => f.write_str("evaluation cancelled by the scheduler"),
            EvalError::RecursionLimit => {
                f.write_str("non-tail recursion exceeded the evaluator depth limit")
            }
            EvalError::IncoherentReplicas(what) => {
                write!(f, "incoherent replicated reference: {what}")
            }
            EvalError::NotSerializable(v) => {
                write!(f, "value `{v}` has no serialized form for communication")
            }
            EvalError::PeerFailure => f.write_str("another processor failed during a superstep"),
            EvalError::BarrierTimeout { superstep, waiting } => write!(
                f,
                "barrier watchdog timeout at superstep {superstep}: \
                 {waiting} processor(s) arrived, the rest stalled"
            ),
            EvalError::InjectedFault { rank, superstep } => write!(
                f,
                "injected fault: processor {rank} crashed at superstep {superstep}"
            ),
            EvalError::CheckpointDiverged {
                rank,
                superstep,
                detail,
            } => write!(
                f,
                "checkpoint resume diverged on processor {rank} at superstep {superstep}: {detail}"
            ),
            EvalError::TransportFailure {
                rank,
                superstep,
                detail,
            } => write!(
                f,
                "transport failure on processor {rank} at superstep {superstep}: {detail}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(
            EvalError::Unbound(Ident::new("x")).to_string(),
            "unbound variable `x`"
        );
        assert!(EvalError::NestedParallelism.to_string().contains("nested"));
        assert!(EvalError::PidOutOfRange(7, 4).to_string().contains("7"));
        assert!(EvalError::DeltaMismatch(Op::Add, "true".into())
            .to_string()
            .contains("(+)"));
        let timeout = EvalError::BarrierTimeout {
            superstep: 3,
            waiting: 2,
        };
        assert!(timeout.to_string().contains("superstep 3"));
        assert!(timeout.to_string().contains("2 processor(s)"));
        let fault = EvalError::InjectedFault {
            rank: 1,
            superstep: 0,
        };
        assert!(fault.to_string().contains("processor 1"));
        let diverged = EvalError::CheckpointDiverged {
            rank: 2,
            superstep: 5,
            detail: "fuel fingerprint mismatch".into(),
        };
        assert!(diverged.to_string().contains("processor 2"));
        assert!(diverged.to_string().contains("superstep 5"));
        assert!(diverged.to_string().contains("fuel fingerprint"));
    }
}
