//! Deep, identity-free copies of evaluator state.
//!
//! A [`Snapshot`] captures an [`Env`] (and [`ValueSnapshot`] a single
//! [`Value`]) by **deep copy**: every `Rc` node is rebuilt, every
//! reference cell gets a fresh `RefCell`. Restoring therefore shares
//! *nothing* with either the snapshot or the live state it was taken
//! from — mutating a cell after `restore()` can never reach back into
//! the snapshot (no `Rc` identity leaks across restore). This is what
//! makes snapshots safe to keep around as recovery points: a
//! checkpointed environment is immutable by construction.
//!
//! Two structural properties are preserved carefully:
//!
//! * **Aliasing between cells.** Two bindings referring to the *same*
//!   `ref` cell must still refer to one (fresh) cell after restore —
//!   otherwise an assignment through one alias would stop being
//!   visible through the other, silently changing program semantics.
//!   The copier memoizes cells by `Rc` identity.
//! * **Cyclic values.** A cell can hold a closure whose captured
//!   environment contains the cell itself (`let r = ref (fun x -> x)
//!   in r := (fun y -> !r y)`). The copier breaks the cycle by
//!   registering a placeholder cell before descending into the
//!   contents, then back-patching.
//!
//! ```
//! use bsml_ast::Ident;
//! use bsml_eval::{snapshot::Snapshot, Env, Value};
//!
//! let live = Env::new().bind(Ident::new("x"), Value::Int(1));
//! let snap = Snapshot::of_env(&live);
//! let restored = snap.restore();
//! assert_eq!(restored.lookup(&Ident::new("x")).unwrap().to_string(), "1");
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::env::Env;
use crate::value::Value;

/// Memo table for reference cells, keyed by `Rc` pointer identity, so
/// aliases stay aliases and cycles terminate.
type CellMemo = HashMap<*const RefCell<Value>, Rc<RefCell<Value>>>;

/// An isolated deep copy of an [`Env`].
///
/// The captured environment shares no `Rc` node with the environment
/// it was taken from; [`Snapshot::restore`] deep-copies *again*, so a
/// snapshot can be restored any number of times and each restoration
/// is independent of the others (and of the snapshot itself).
#[derive(Clone, Debug)]
pub struct Snapshot {
    env: Env,
}

impl Snapshot {
    /// Captures a deep copy of `env`.
    #[must_use]
    pub fn of_env(env: &Env) -> Snapshot {
        Snapshot {
            env: deep_copy_env(env, &mut CellMemo::new()),
        }
    }

    /// Materializes a fresh environment from the snapshot (another
    /// deep copy — the snapshot remains isolated).
    #[must_use]
    pub fn restore(&self) -> Env {
        deep_copy_env(&self.env, &mut CellMemo::new())
    }

    /// Number of captured (possibly shadowed) bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.env.len()
    }

    /// `true` if the snapshot captured an empty environment.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.env.is_empty()
    }

    /// Crate-internal view of the captured environment, for the byte
    /// codec ([`crate::persist`]).
    pub(crate) fn env(&self) -> &Env {
        &self.env
    }

    /// Wraps an environment the caller exclusively owns (a freshly
    /// decoded one) without the deep copy `of_env` would make.
    pub(crate) fn from_owned_env(env: Env) -> Snapshot {
        Snapshot { env }
    }
}

/// An isolated deep copy of a single [`Value`].
#[derive(Clone, Debug)]
pub struct ValueSnapshot {
    value: Value,
}

impl ValueSnapshot {
    /// Captures a deep copy of `v`.
    #[must_use]
    pub fn capture(v: &Value) -> ValueSnapshot {
        ValueSnapshot {
            value: deep_copy_value(v, &mut CellMemo::new()),
        }
    }

    /// Materializes a fresh value (another deep copy).
    #[must_use]
    pub fn restore(&self) -> Value {
        deep_copy_value(&self.value, &mut CellMemo::new())
    }
}

fn deep_copy_env(env: &Env, memo: &mut CellMemo) -> Env {
    // Rebuild outermost-first so shadowing order is preserved.
    let bindings: Vec<_> = env.iter().collect();
    let mut out = Env::new();
    for (name, value) in bindings.into_iter().rev() {
        out = out.bind(name.clone(), deep_copy_value(value, memo));
    }
    out
}

fn deep_copy_value(v: &Value, memo: &mut CellMemo) -> Value {
    match v {
        Value::Int(n) => Value::Int(*n),
        Value::Bool(b) => Value::Bool(*b),
        Value::Unit => Value::Unit,
        Value::NoComm => Value::NoComm,
        Value::Nil => Value::Nil,
        Value::Prim(op) => Value::Prim(*op),
        Value::Pair(a, b) => Value::Pair(
            Rc::new(deep_copy_value(a, memo)),
            Rc::new(deep_copy_value(b, memo)),
        ),
        Value::Cons(h, t) => Value::Cons(
            Rc::new(deep_copy_value(h, memo)),
            Rc::new(deep_copy_value(t, memo)),
        ),
        Value::Inl(inner) => Value::Inl(Rc::new(deep_copy_value(inner, memo))),
        Value::Inr(inner) => Value::Inr(Rc::new(deep_copy_value(inner, memo))),
        Value::Vector(vs) => Value::vector(vs.iter().map(|c| deep_copy_value(c, memo)).collect()),
        Value::MsgTable(t) => Value::MsgTable(Rc::new(
            t.iter().map(|c| deep_copy_value(c, memo)).collect(),
        )),
        Value::Fix(inner) => Value::Fix(Rc::new(deep_copy_value(inner, memo))),
        Value::Closure { param, body, env } => Value::Closure {
            param: param.clone(),
            // A fresh Rc over a structural clone of the body: the
            // snapshot must not keep the live AST node alive.
            body: Rc::new((**body).clone()),
            env: deep_copy_env(env, memo),
        },
        Value::Cell { cell, origin } => {
            let key = Rc::as_ptr(cell);
            if let Some(copied) = memo.get(&key) {
                // An alias of a cell we already copied: preserve the
                // aliasing in the copy.
                return Value::Cell {
                    cell: Rc::clone(copied),
                    origin: *origin,
                };
            }
            // Register a placeholder before descending so a cyclic
            // value (a cell whose contents capture the cell) hits the
            // memo instead of recursing forever; back-patch after.
            let fresh = Rc::new(RefCell::new(Value::Unit));
            memo.insert(key, Rc::clone(&fresh));
            let contents = deep_copy_value(&cell.borrow(), memo);
            *fresh.borrow_mut() = contents;
            Value::Cell {
                cell: fresh,
                origin: *origin,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::Mode;
    use bsml_ast::Ident;

    fn x() -> Ident {
        Ident::new("x")
    }

    #[test]
    fn restore_is_structurally_equal() {
        let env = Env::new()
            .bind(x(), Value::Int(1))
            .bind(Ident::new("y"), Value::pair(Value::Bool(true), Value::Nil))
            .bind(x(), Value::Int(2)); // shadowing preserved
        let snap = Snapshot::of_env(&env);
        assert_eq!(snap.len(), 3);
        let restored = snap.restore();
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.lookup(&x()).unwrap().to_string(), "2");
        assert_eq!(
            restored.lookup(&Ident::new("y")).unwrap().to_string(),
            "(true, [])"
        );
    }

    #[test]
    fn no_rc_identity_leaks_through_cells() {
        // Mutating a restored cell must not reach the original, nor
        // the snapshot (each restore is independent).
        let original_cell = Value::cell(Value::Int(1), Mode::Global);
        let env = Env::new().bind(x(), original_cell.clone());
        let snap = Snapshot::of_env(&env);
        let restored = snap.restore();
        let Some(Value::Cell { cell, .. }) = restored.lookup(&x()) else {
            panic!("expected a cell");
        };
        *cell.borrow_mut() = Value::Int(99);
        let Value::Cell { cell: orig, .. } = &original_cell else {
            unreachable!()
        };
        assert_eq!(orig.borrow().to_string(), "1");
        let Some(Value::Cell { cell: again, .. }) = snap.restore().lookup(&x()).cloned() else {
            panic!("expected a cell");
        };
        assert_eq!(again.borrow().to_string(), "1");
    }

    #[test]
    fn cell_aliasing_is_preserved() {
        // Two bindings to ONE cell must restore as two bindings to one
        // (fresh) cell: an assignment through either alias stays
        // visible through the other.
        let shared = Value::cell(Value::Int(7), Mode::Global);
        let env = Env::new()
            .bind(Ident::new("a"), shared.clone())
            .bind(Ident::new("b"), shared);
        let restored = Snapshot::of_env(&env).restore();
        let Some(Value::Cell { cell: a, .. }) = restored.lookup(&Ident::new("a")) else {
            panic!("expected a cell");
        };
        let Some(Value::Cell { cell: b, .. }) = restored.lookup(&Ident::new("b")) else {
            panic!("expected a cell");
        };
        assert!(Rc::ptr_eq(a, b), "aliases must stay aliases");
    }

    #[test]
    fn cyclic_values_terminate() {
        // A cell whose contents (a closure environment) contain the
        // cell itself: the copier must terminate and preserve the
        // knot.
        let cell = Value::cell(Value::Unit, Mode::Global);
        let closure = Value::Closure {
            param: x(),
            body: Rc::new(bsml_ast::build::var("x")),
            env: Env::new().bind(Ident::new("r"), cell.clone()),
        };
        let Value::Cell { cell: rc, .. } = &cell else {
            unreachable!()
        };
        *rc.borrow_mut() = closure;
        let snap = ValueSnapshot::capture(&cell);
        let restored = snap.restore();
        let Value::Cell { cell: fresh, .. } = &restored else {
            panic!("expected a cell");
        };
        // The restored knot is tied onto the fresh cell, not the
        // original.
        let contents = fresh.borrow();
        let Value::Closure { env, .. } = &*contents else {
            panic!("expected the closure");
        };
        let Some(Value::Cell { cell: inner, .. }) = env.lookup(&Ident::new("r")) else {
            panic!("expected the captured cell");
        };
        assert!(Rc::ptr_eq(fresh, inner), "cycle must close onto the copy");
        assert!(!Rc::ptr_eq(rc, inner), "cycle must not leak the original");
    }

    #[test]
    fn value_snapshot_roundtrip() {
        let v = Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]);
        let snap = ValueSnapshot::capture(&v);
        assert_eq!(snap.restore().to_string(), "[1; 2; 3]");
    }
}
