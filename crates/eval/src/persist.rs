//! A byte codec for evaluator state ([`Value`], [`Env`],
//! [`Snapshot`]) — the foundation of the serving layer's durable
//! session snapshots.
//!
//! The encoding mirrors the structural care [`crate::snapshot`] takes
//! in memory:
//!
//! * **Cell aliasing and cycles.** Reference cells are numbered on
//!   first encounter (`CellDef`) and back-referenced afterwards
//!   (`CellRef`), with the id registered *before* descending into the
//!   contents so a cell whose contents capture the cell itself
//!   encodes — and decodes — as a tied knot, not an infinite loop.
//! * **Environment sharing.** Environments are persistent spines;
//!   every closure created at the toplevel captures a *suffix* of the
//!   session environment. Spine nodes are memoized by identity, so a
//!   session with n bindings and k closures encodes in O(n + k), not
//!   O(n·k), and decoding rebuilds the same sharing.
//! * **Closure bodies** are stored as pretty-printed source and
//!   re-parsed on decode. `crates/syntax/tests/roundtrip.rs` holds the
//!   property this leans on: `parse(print(e)) = e` for every
//!   generatable expression.
//!
//! Decoding is *total*: malformed bytes produce a typed
//! [`CodecError`], never a panic — nesting is depth-bounded so corrupt
//! input cannot overflow the stack, and counts are validated before
//! allocation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bsml_ast::{Ident, Op};

use crate::bytes::{put_str, put_u64, ByteReader, CodecError};
use crate::env::Env;
use crate::hooks::Mode;
use crate::snapshot::Snapshot;
use crate::value::Value;

/// Decoder nesting bound. Deep enough for any session the evaluator
/// can realistically build (the in-memory deep copy in
/// [`crate::snapshot`] recurses on the same structure, so values
/// anywhere near this deep already strain the stack elsewhere),
/// shallow enough that corrupt input cannot overflow a 2 MiB thread
/// stack even in debug builds, where a decoder frame runs to a few
/// KiB.
const MAX_DEPTH: usize = 100;

// Value tags.
const T_INT: u8 = 0;
const T_BOOL: u8 = 1;
const T_UNIT: u8 = 2;
const T_NOCOMM: u8 = 3;
const T_NIL: u8 = 4;
const T_PRIM: u8 = 5;
const T_PAIR: u8 = 6;
const T_CONS: u8 = 7;
const T_INL: u8 = 8;
const T_INR: u8 = 9;
const T_VECTOR: u8 = 10;
const T_MSGTABLE: u8 = 11;
const T_FIX: u8 = 12;
const T_CLOSURE: u8 = 13;
const T_CELL_DEF: u8 = 14;
const T_CELL_REF: u8 = 15;

// Environment spine frame tags.
const E_EMPTY: u8 = 0;
const E_BINDING: u8 = 1;
const E_TAIL_REF: u8 = 2;

// Mode tags.
const M_GLOBAL: u8 = 0;
const M_ON_PROC: u8 = 1;

/// Shared encoder state: ids for cells (by `RefCell` identity) and
/// environment spine nodes (by node identity).
#[derive(Default)]
struct EncodeMemo {
    cells: HashMap<usize, u64>,
    nodes: HashMap<usize, u64>,
}

/// Shared decoder state: the structures each id resolved to.
#[derive(Default)]
struct DecodeMemo {
    cells: HashMap<u64, Rc<RefCell<Value>>>,
    envs: HashMap<u64, Env>,
}

/// Encodes a single value.
#[must_use]
pub fn value_to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(&mut out, v, &mut EncodeMemo::default());
    out
}

/// Decodes a single value.
///
/// # Errors
///
/// [`CodecError`] on any malformed input; never panics.
pub fn value_from_bytes(bytes: &[u8]) -> Result<Value, CodecError> {
    let mut r = ByteReader::new(bytes);
    let v = decode_value(&mut r, &mut DecodeMemo::default(), 0)?;
    r.finish()?;
    Ok(v)
}

/// Encodes an environment, preserving spine sharing among any
/// closures it contains.
#[must_use]
pub fn env_to_bytes(env: &Env) -> Vec<u8> {
    let mut out = Vec::new();
    encode_env(&mut out, env, &mut EncodeMemo::default());
    out
}

/// Decodes an environment.
///
/// # Errors
///
/// [`CodecError`] on any malformed input; never panics.
pub fn env_from_bytes(bytes: &[u8]) -> Result<Env, CodecError> {
    let mut r = ByteReader::new(bytes);
    let env = decode_env(&mut r, &mut DecodeMemo::default(), 0)?;
    r.finish()?;
    Ok(env)
}

impl Snapshot {
    /// Serializes the snapshot to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        env_to_bytes(self.env())
    }

    /// Deserializes a snapshot. The decoded environment is freshly
    /// built, so the usual snapshot isolation guarantee holds.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on any malformed input; never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, CodecError> {
        Ok(Snapshot::from_owned_env(env_from_bytes(bytes)?))
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value, memo: &mut EncodeMemo) {
    match v {
        Value::Int(n) => {
            out.push(T_INT);
            put_u64(out, *n as u64);
        }
        Value::Bool(b) => {
            out.push(T_BOOL);
            out.push(u8::from(*b));
        }
        Value::Unit => out.push(T_UNIT),
        Value::NoComm => out.push(T_NOCOMM),
        Value::Nil => out.push(T_NIL),
        Value::Prim(op) => {
            out.push(T_PRIM);
            let idx = Op::ALL
                .iter()
                .position(|o| o == op)
                .expect("every Op appears in Op::ALL");
            out.push(idx as u8);
        }
        Value::Pair(a, b) => {
            out.push(T_PAIR);
            encode_value(out, a, memo);
            encode_value(out, b, memo);
        }
        Value::Cons(h, t) => {
            out.push(T_CONS);
            encode_value(out, h, memo);
            encode_value(out, t, memo);
        }
        Value::Inl(inner) => {
            out.push(T_INL);
            encode_value(out, inner, memo);
        }
        Value::Inr(inner) => {
            out.push(T_INR);
            encode_value(out, inner, memo);
        }
        Value::Vector(vs) => {
            out.push(T_VECTOR);
            put_u64(out, vs.len() as u64);
            for c in vs.iter() {
                encode_value(out, c, memo);
            }
        }
        Value::MsgTable(t) => {
            out.push(T_MSGTABLE);
            put_u64(out, t.len() as u64);
            for c in t.iter() {
                encode_value(out, c, memo);
            }
        }
        Value::Fix(inner) => {
            out.push(T_FIX);
            encode_value(out, inner, memo);
        }
        Value::Closure { param, body, env } => {
            out.push(T_CLOSURE);
            put_str(out, param.as_str());
            put_str(out, &body.to_string());
            encode_env(out, env, memo);
        }
        Value::Cell { cell, origin } => {
            let key = Rc::as_ptr(cell) as usize;
            if let Some(id) = memo.cells.get(&key) {
                // The origin tag lives on each occurrence (exactly as
                // the in-memory deep copy preserves it per alias).
                out.push(T_CELL_REF);
                put_u64(out, *id);
                encode_mode(out, *origin);
                return;
            }
            let id = memo.cells.len() as u64;
            // Register before descending so a cyclic cell hits the
            // back-reference instead of recursing forever.
            memo.cells.insert(key, id);
            out.push(T_CELL_DEF);
            put_u64(out, id);
            encode_mode(out, *origin);
            encode_value(out, &cell.borrow(), memo);
        }
    }
}

fn encode_env(out: &mut Vec<u8>, env: &Env, memo: &mut EncodeMemo) {
    let mut cur = env.clone();
    loop {
        let Some((name, value, tail, key)) = cur.spine_head() else {
            out.push(E_EMPTY);
            return;
        };
        if let Some(id) = memo.nodes.get(&key) {
            out.push(E_TAIL_REF);
            put_u64(out, *id);
            return;
        }
        let id = memo.nodes.len() as u64;
        memo.nodes.insert(key, id);
        out.push(E_BINDING);
        put_u64(out, id);
        put_str(out, name.as_str());
        encode_value(out, value, memo);
        cur = tail;
    }
}

fn encode_mode(out: &mut Vec<u8>, mode: Mode) {
    match mode {
        Mode::Global => out.push(M_GLOBAL),
        Mode::OnProc(i) => {
            out.push(M_ON_PROC);
            put_u64(out, i as u64);
        }
    }
}

fn decode_value(
    r: &mut ByteReader<'_>,
    memo: &mut DecodeMemo,
    depth: usize,
) -> Result<Value, CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError::TooDeep);
    }
    let tag = r.u8()?;
    match tag {
        T_INT => Ok(Value::Int(r.i64()?)),
        T_BOOL => Ok(Value::Bool(r.u8()? != 0)),
        T_UNIT => Ok(Value::Unit),
        T_NOCOMM => Ok(Value::NoComm),
        T_NIL => Ok(Value::Nil),
        T_PRIM => {
            let idx = r.u8()? as usize;
            Op::ALL
                .get(idx)
                .map(|op| Value::Prim(*op))
                .ok_or(CodecError::BadTag {
                    what: "primitive",
                    tag: idx as u8,
                })
        }
        T_PAIR => Ok(Value::Pair(
            Rc::new(decode_value(r, memo, depth + 1)?),
            Rc::new(decode_value(r, memo, depth + 1)?),
        )),
        T_CONS => Ok(Value::Cons(
            Rc::new(decode_value(r, memo, depth + 1)?),
            Rc::new(decode_value(r, memo, depth + 1)?),
        )),
        T_INL => Ok(Value::Inl(Rc::new(decode_value(r, memo, depth + 1)?))),
        T_INR => Ok(Value::Inr(Rc::new(decode_value(r, memo, depth + 1)?))),
        T_VECTOR => {
            let n = r.count()?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(r, memo, depth + 1)?);
            }
            Ok(Value::vector(vs))
        }
        T_MSGTABLE => {
            let n = r.count()?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(r, memo, depth + 1)?);
            }
            Ok(Value::MsgTable(Rc::new(vs)))
        }
        T_FIX => Ok(Value::Fix(Rc::new(decode_value(r, memo, depth + 1)?))),
        T_CLOSURE => {
            let param = r.str()?;
            let source = r.str()?;
            let body =
                bsml_syntax::parse(&source).map_err(|e| CodecError::Unparsable(e.to_string()))?;
            let env = decode_env(r, memo, depth + 1)?;
            Ok(Value::Closure {
                param: Ident::new(&param),
                body: Rc::new(body),
                env,
            })
        }
        T_CELL_DEF => {
            let id = r.u64()?;
            let origin = decode_mode(r)?;
            // Placeholder first, so a knot tied through the cell
            // back-references it; patch the contents in afterwards.
            let cell = Rc::new(RefCell::new(Value::Unit));
            memo.cells.insert(id, Rc::clone(&cell));
            let contents = decode_value(r, memo, depth + 1)?;
            *cell.borrow_mut() = contents;
            Ok(Value::Cell { cell, origin })
        }
        T_CELL_REF => {
            let id = r.u64()?;
            let origin = decode_mode(r)?;
            let cell = memo.cells.get(&id).ok_or(CodecError::DanglingRef(id))?;
            Ok(Value::Cell {
                cell: Rc::clone(cell),
                origin,
            })
        }
        other => Err(CodecError::BadTag {
            what: "value",
            tag: other,
        }),
    }
}

fn decode_env(
    r: &mut ByteReader<'_>,
    memo: &mut DecodeMemo,
    depth: usize,
) -> Result<Env, CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError::TooDeep);
    }
    // Collect innermost-first frames until the spine terminates.
    let mut frames: Vec<(u64, String, Value)> = Vec::new();
    let base = loop {
        match r.u8()? {
            E_EMPTY => break Env::new(),
            E_TAIL_REF => {
                let id = r.u64()?;
                break memo
                    .envs
                    .get(&id)
                    .cloned()
                    .ok_or(CodecError::DanglingRef(id))?;
            }
            E_BINDING => {
                let id = r.u64()?;
                let name = r.str()?;
                let value = decode_value(r, memo, depth + 1)?;
                frames.push((id, name, value));
            }
            other => {
                return Err(CodecError::BadTag {
                    what: "environment frame",
                    tag: other,
                })
            }
        }
    };
    // Rebind outermost-first; each bind recreates the node whose id
    // the encoder assigned, so later TailRefs resolve to it.
    let mut env = base;
    for (id, name, value) in frames.into_iter().rev() {
        env = env.bind(Ident::new(&name), value);
        memo.envs.insert(id, env.clone());
    }
    Ok(env)
}

fn decode_mode(r: &mut ByteReader<'_>) -> Result<Mode, CodecError> {
    match r.u8()? {
        M_GLOBAL => Ok(Mode::Global),
        M_ON_PROC => Ok(Mode::OnProc(r.u64()? as usize)),
        other => Err(CodecError::BadTag {
            what: "mode",
            tag: other,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        value_from_bytes(&value_to_bytes(v)).expect("roundtrip")
    }

    #[test]
    fn first_order_values_roundtrip() {
        for v in [
            Value::Int(-7),
            Value::Bool(true),
            Value::Unit,
            Value::NoComm,
            Value::Nil,
            Value::pair(Value::Int(1), Value::Bool(false)),
            Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]),
            Value::Inl(Rc::new(Value::Unit)),
            Value::Inr(Rc::new(Value::Int(9))),
            Value::vector(vec![Value::Int(1), Value::Int(2)]),
        ] {
            assert_eq!(roundtrip(&v).to_string(), v.to_string());
        }
    }

    #[test]
    fn every_primitive_roundtrips() {
        for op in Op::ALL {
            let Value::Prim(back) = roundtrip(&Value::Prim(op)) else {
                panic!("expected a primitive");
            };
            assert_eq!(back, op);
        }
    }

    #[test]
    fn closures_roundtrip_by_reparse() {
        let body = bsml_syntax::parse("x + y").unwrap();
        let v = Value::Closure {
            param: Ident::new("x"),
            body: Rc::new(body),
            env: Env::new().bind(Ident::new("y"), Value::Int(41)),
        };
        let Value::Closure { param, body, env } = roundtrip(&v) else {
            panic!("expected a closure");
        };
        assert_eq!(param.as_str(), "x");
        assert_eq!(body.to_string(), "x + y");
        assert_eq!(env.lookup(&Ident::new("y")).unwrap().to_string(), "41");
    }

    #[test]
    fn cell_aliasing_survives_the_bytes() {
        let shared = Value::cell(Value::Int(7), Mode::Global);
        let v = Value::pair(shared.clone(), shared);
        let Value::Pair(a, b) = roundtrip(&v) else {
            panic!("expected a pair");
        };
        let (Value::Cell { cell: ca, .. }, Value::Cell { cell: cb, .. }) = (&*a, &*b) else {
            panic!("expected cells");
        };
        assert!(Rc::ptr_eq(ca, cb), "aliases must stay aliases");
        *ca.borrow_mut() = Value::Int(99);
        assert_eq!(cb.borrow().to_string(), "99");
    }

    #[test]
    fn cyclic_cells_roundtrip() {
        // let r = ref (fun x -> x) in r := (fun y -> !r y) — the cell
        // contents capture the cell.
        let cell = Value::cell(Value::Unit, Mode::Global);
        let closure = Value::Closure {
            param: Ident::new("x"),
            body: Rc::new(bsml_ast::build::var("x")),
            env: Env::new().bind(Ident::new("r"), cell.clone()),
        };
        let Value::Cell { cell: rc, .. } = &cell else {
            unreachable!()
        };
        *rc.borrow_mut() = closure;
        let back = roundtrip(&cell);
        let Value::Cell { cell: fresh, .. } = &back else {
            panic!("expected a cell");
        };
        let contents = fresh.borrow();
        let Value::Closure { env, .. } = &*contents else {
            panic!("expected the closure");
        };
        let Some(Value::Cell { cell: inner, .. }) = env.lookup(&Ident::new("r")) else {
            panic!("expected the captured cell");
        };
        assert!(Rc::ptr_eq(fresh, inner), "knot must close onto the copy");
    }

    #[test]
    fn env_spine_sharing_is_linear_and_rebuilt() {
        // A toplevel env with closures capturing suffixes: the shared
        // spine must encode once and decode back into shared nodes.
        let base = Env::new()
            .bind(Ident::new("a"), Value::Int(1))
            .bind(Ident::new("b"), Value::Int(2));
        let clos = |env: &Env| Value::Closure {
            param: Ident::new("x"),
            body: Rc::new(bsml_ast::build::var("x")),
            env: env.clone(),
        };
        let env = base
            .bind(Ident::new("f"), clos(&base))
            .bind(Ident::new("g"), clos(&base));
        let bytes = env_to_bytes(&env);
        let back = env_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.lookup(&Ident::new("a")).unwrap().to_string(), "1");
        // Sharing check: f's and g's captured envs are the same nodes.
        let (Some(Value::Closure { env: ef, .. }), Some(Value::Closure { env: eg, .. })) =
            (back.lookup(&Ident::new("f")), back.lookup(&Ident::new("g")))
        else {
            panic!("expected closures");
        };
        let (pf, pg) = match (ef.spine_head(), eg.spine_head()) {
            (Some((.., a)), Some((.., b))) => (a, b),
            _ => panic!("expected non-empty captured envs"),
        };
        assert_eq!(pf, pg, "captured spines must share nodes after decode");
        // And the encoding is linear: a second closure over the same
        // spine costs a back-reference, not a re-encoding.
        let one = env_to_bytes(&base.bind(Ident::new("f"), clos(&base)));
        assert!(bytes.len() < one.len() + one.len() / 2);
    }

    #[test]
    fn snapshot_roundtrips() {
        let env = Env::new()
            .bind(Ident::new("x"), Value::Int(1))
            .bind(Ident::new("x"), Value::Int(2)); // shadowing kept
        let snap = Snapshot::of_env(&env);
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(
            back.restore().lookup(&Ident::new("x")).unwrap().to_string(),
            "2"
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        let good = value_to_bytes(&Value::pair(
            Value::cell(Value::Int(5), Mode::OnProc(2)),
            Value::list([Value::Int(1), Value::Int(2)]),
        ));
        // Truncation at every boundary.
        for cut in 0..good.len() {
            assert!(value_from_bytes(&good[..cut]).is_err());
        }
        // Every single-bit flip either decodes to something or errors;
        // never panics.
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                let _ = value_from_bytes(&bad);
            }
        }
        // A dangling back-reference is typed.
        let mut bad = vec![T_CELL_REF];
        put_u64(&mut bad, 42);
        bad.push(M_GLOBAL);
        assert!(matches!(
            value_from_bytes(&bad),
            Err(CodecError::DanglingRef(42))
        ));
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        // 1 MiB of Inl tags: the decoder must refuse, not crash.
        let bytes = vec![T_INL; 1 << 20];
        assert!(matches!(value_from_bytes(&bytes), Err(CodecError::TooDeep)));
    }
}
