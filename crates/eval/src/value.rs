//! Runtime values of the big-step evaluator.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use bsml_ast::{Expr, Ident, Op};

use crate::env::Env;
use crate::hooks::Mode;

/// A big-step runtime value.
///
/// Mirrors the paper's Figure 4, with closures instead of substituted
/// lambdas and one extra representation: [`Value::MsgTable`], the
/// delivered-message function `fd_i` produced by `put` (a function
/// value backed by a table, returning `nc ()` outside `0‥p-1` exactly
/// as the δ-rule of Figure 2 specifies).
#[derive(Clone, Debug)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// The unit value `()`.
    Unit,
    /// A function closure.
    Closure {
        /// The parameter.
        param: Ident,
        /// The body (shared — closures are cloned freely).
        body: Rc<Expr>,
        /// The captured environment.
        env: Env,
    },
    /// A primitive operator as a first-class value.
    Prim(Op),
    /// A pair.
    Pair(Rc<Value>, Rc<Value>),
    /// The "no message" value `nc ()`.
    NoComm,
    /// Left injection (§6 extension).
    Inl(Rc<Value>),
    /// Right injection (§6 extension).
    Inr(Rc<Value>),
    /// The empty list (§6 extension).
    Nil,
    /// A list cell (§6 extension).
    Cons(Rc<Value>, Rc<Value>),
    /// A p-wide parallel vector.
    Vector(Rc<Vec<Value>>),
    /// The delivered-messages function of `put`: applying it to `j`
    /// yields the message received from process `j`, or `nc ()`
    /// outside `0‥p-1`.
    MsgTable(Rc<Vec<Value>>),
    /// The fixpoint `fix f` as a function value: applying it unrolls
    /// one step of the δ-rule `fix(fun x → e) → e[x ← fix(fun x → e)]`.
    Fix(Rc<Value>),
    /// A mutable reference cell (§6 "imperative features" extension),
    /// tagged with the execution mode it was created in. The
    /// evaluator uses the tag to reject incoherent replicated
    /// updates — the interaction the paper's §6 describes.
    Cell {
        /// The mutable contents.
        cell: Rc<RefCell<Value>>,
        /// Where the cell was created: a [`Mode::Global`] cell exists
        /// identically on every processor (replicated); a
        /// [`Mode::OnProc`] cell lives in one local memory.
        origin: Mode,
    },
}

impl Value {
    /// Builds a vector value.
    #[must_use]
    pub fn vector(vs: Vec<Value>) -> Value {
        Value::Vector(Rc::new(vs))
    }

    /// Builds a pair value.
    #[must_use]
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Rc::new(a), Rc::new(b))
    }

    /// Builds a reference cell created in the given mode.
    #[must_use]
    pub fn cell(contents: Value, origin: Mode) -> Value {
        Value::Cell {
            cell: Rc::new(RefCell::new(contents)),
            origin,
        }
    }

    /// Builds a list value from items.
    #[must_use]
    pub fn list(
        items: impl IntoIterator<IntoIter = impl DoubleEndedIterator<Item = Value>>,
    ) -> Value {
        items
            .into_iter()
            .rev()
            .fold(Value::Nil, |t, h| Value::Cons(Rc::new(h), Rc::new(t)))
    }

    /// `true` for values a function application can consume.
    #[must_use]
    pub fn is_function(&self) -> bool {
        matches!(
            self,
            Value::Closure { .. } | Value::Prim(_) | Value::MsgTable(_) | Value::Fix(_)
        )
    }

    /// `true` if a parallel vector occurs anywhere inside the value.
    #[must_use]
    pub fn contains_vector(&self) -> bool {
        match self {
            Value::Vector(_) => true,
            Value::Pair(a, b) | Value::Cons(a, b) => a.contains_vector() || b.contains_vector(),
            Value::Inl(v) | Value::Inr(v) => v.contains_vector(),
            Value::Cell { cell, .. } => cell.borrow().contains_vector(),
            // Closure environments could capture vectors; treated
            // conservatively by the evaluator at creation time.
            _ => false,
        }
    }

    /// The BSP "word" size of a value — the unit in which h-relations
    /// are measured by the cost model (paper §2: "every processor
    /// receives/sends at most one *word*").
    ///
    /// Scalars count 1; structured values count their parts;
    /// `nc ()` counts 0 (no message is sent, per §2 `put` spec).
    #[must_use]
    pub fn size_in_words(&self) -> u64 {
        match self {
            Value::Int(_) | Value::Bool(_) | Value::Unit => 1,
            Value::NoComm => 0,
            Value::Pair(a, b) | Value::Cons(a, b) => a.size_in_words() + b.size_in_words(),
            Value::Inl(v) | Value::Inr(v) => 1 + v.size_in_words(),
            Value::Nil => 1,
            // Sending a function costs its code size; we charge 1 word
            // per AST node as a machine-independent proxy.
            Value::Closure { body, .. } => body.size() as u64,
            Value::Prim(_) => 1,
            Value::MsgTable(t) => t.iter().map(Value::size_in_words).sum(),
            Value::Vector(vs) => vs.iter().map(Value::size_in_words).sum(),
            Value::Fix(inner) => inner.size_in_words(),
            // A serialized cell costs its contents plus the header;
            // sending one across processors is almost always a bug,
            // caught by the origin check at first use.
            Value::Cell { cell, .. } => 1 + cell.borrow().size_in_words(),
        }
    }

    /// Structural equality on first-order values.
    ///
    /// Returns `None` when a function value is encountered (closures
    /// have no decidable equality).
    #[must_use]
    pub fn try_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a == b),
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            (Value::Unit, Value::Unit)
            | (Value::NoComm, Value::NoComm)
            | (Value::Nil, Value::Nil) => Some(true),
            (Value::Pair(a1, b1), Value::Pair(a2, b2))
            | (Value::Cons(a1, b1), Value::Cons(a2, b2)) => Some(a1.try_eq(a2)? && b1.try_eq(b2)?),
            (Value::Inl(a), Value::Inl(b)) | (Value::Inr(a), Value::Inr(b)) => a.try_eq(b),
            (Value::Vector(xs), Value::Vector(ys)) => {
                if xs.len() != ys.len() {
                    return Some(false);
                }
                for (x, y) in xs.iter().zip(ys.iter()) {
                    if !x.try_eq(y)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            // OCaml's (=) compares reference *contents*.
            (Value::Cell { cell: a, .. }, Value::Cell { cell: b2, .. }) => {
                if Rc::ptr_eq(a, b2) {
                    return Some(true);
                }
                let x = a.borrow().clone();
                let y = b2.borrow().clone();
                x.try_eq(&y)
            }
            (Value::Closure { .. }, _)
            | (_, Value::Closure { .. })
            | (Value::Prim(_), _)
            | (_, Value::Prim(_))
            | (Value::MsgTable(_), _)
            | (_, Value::MsgTable(_))
            | (Value::Fix(_), _)
            | (_, Value::Fix(_)) => None,
            _ => Some(false),
        }
    }
}

/// A first-order value in serialized (thread-safe) form — what can
/// actually travel between processors of the distributed machine.
///
/// Functions, delivered-message tables and reference cells have no
/// portable form, exactly like OCaml values under marshalling
/// restrictions in the original BSMLlib.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortableValue {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// Unit.
    Unit,
    /// `nc ()`.
    NoComm,
    /// A pair.
    Pair(Box<PortableValue>, Box<PortableValue>),
    /// Left injection.
    Inl(Box<PortableValue>),
    /// Right injection.
    Inr(Box<PortableValue>),
    /// The empty list.
    Nil,
    /// A list cell.
    Cons(Box<PortableValue>, Box<PortableValue>),
    /// A parallel vector (only ever at the top of a *result*, never
    /// inside a message — components are local values).
    Vector(Vec<PortableValue>),
}

impl PortableValue {
    /// Deserializes back into a runtime value.
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            PortableValue::Int(n) => Value::Int(*n),
            PortableValue::Bool(b) => Value::Bool(*b),
            PortableValue::Unit => Value::Unit,
            PortableValue::NoComm => Value::NoComm,
            PortableValue::Pair(a, b) => Value::pair(a.to_value(), b.to_value()),
            PortableValue::Inl(v) => Value::Inl(Rc::new(v.to_value())),
            PortableValue::Inr(v) => Value::Inr(Rc::new(v.to_value())),
            PortableValue::Nil => Value::Nil,
            PortableValue::Cons(h, t) => Value::Cons(Rc::new(h.to_value()), Rc::new(t.to_value())),
            PortableValue::Vector(vs) => {
                Value::vector(vs.iter().map(PortableValue::to_value).collect())
            }
        }
    }
}

impl Value {
    /// Serializes a first-order value, or reports why it cannot
    /// travel.
    ///
    /// # Errors
    ///
    /// [`crate::EvalError::NotSerializable`] on functions, message
    /// tables and reference cells.
    pub fn to_portable(&self) -> Result<PortableValue, crate::EvalError> {
        match self {
            Value::Int(n) => Ok(PortableValue::Int(*n)),
            Value::Bool(b) => Ok(PortableValue::Bool(*b)),
            Value::Unit => Ok(PortableValue::Unit),
            Value::NoComm => Ok(PortableValue::NoComm),
            Value::Pair(a, b) => Ok(PortableValue::Pair(
                Box::new(a.to_portable()?),
                Box::new(b.to_portable()?),
            )),
            Value::Inl(v) => Ok(PortableValue::Inl(Box::new(v.to_portable()?))),
            Value::Inr(v) => Ok(PortableValue::Inr(Box::new(v.to_portable()?))),
            Value::Nil => Ok(PortableValue::Nil),
            Value::Cons(h, t) => Ok(PortableValue::Cons(
                Box::new(h.to_portable()?),
                Box::new(t.to_portable()?),
            )),
            Value::Vector(vs) => Ok(PortableValue::Vector(
                vs.iter()
                    .map(Value::to_portable)
                    .collect::<Result<_, _>>()?,
            )),
            Value::Closure { .. }
            | Value::Prim(_)
            | Value::MsgTable(_)
            | Value::Fix(_)
            | Value::Cell { .. } => Err(crate::EvalError::NotSerializable(self.to_string())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Unit => f.write_str("()"),
            Value::Closure { param, .. } => write!(f, "<fun {param}>"),
            Value::Prim(op) => write!(f, "{op}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::NoComm => f.write_str("nc ()"),
            Value::Inl(v) => write!(f, "inl {v}"),
            Value::Inr(v) => write!(f, "inr {v}"),
            Value::Nil => f.write_str("[]"),
            Value::Cons(..) => {
                f.write_str("[")?;
                let mut cur = self;
                let mut first = true;
                loop {
                    match cur {
                        Value::Cons(h, t) => {
                            if !first {
                                f.write_str("; ")?;
                            }
                            write!(f, "{h}")?;
                            first = false;
                            cur = t;
                        }
                        Value::Nil => break,
                        other => {
                            // Improper list (unreachable for typed
                            // programs) — print the tail explicitly.
                            write!(f, " . {other}")?;
                            break;
                        }
                    }
                }
                f.write_str("]")
            }
            Value::Vector(vs) => {
                f.write_str("<|")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("|>")
            }
            Value::MsgTable(_) => f.write_str("<delivered-messages>"),
            Value::Fix(_) => f.write_str("<fix>"),
            Value::Cell { cell, .. } => write!(f, "ref {}", cell.borrow()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(
            Value::pair(Value::Int(1), Value::Unit).to_string(),
            "(1, ())"
        );
        assert_eq!(
            Value::vector(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "<|1, 2|>"
        );
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]).to_string(),
            "[1; 2]"
        );
        assert_eq!(Value::NoComm.to_string(), "nc ()");
        assert_eq!(Value::Inl(Rc::new(Value::Int(1))).to_string(), "inl 1");
    }

    #[test]
    fn sizes_in_words() {
        assert_eq!(Value::Int(5).size_in_words(), 1);
        assert_eq!(Value::NoComm.size_in_words(), 0);
        assert_eq!(
            Value::pair(Value::Int(1), Value::pair(Value::Int(2), Value::Int(3))).size_in_words(),
            3
        );
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]).size_in_words(),
            3 // two cells + nil
        );
    }

    #[test]
    fn try_eq_first_order() {
        let a = Value::pair(Value::Int(1), Value::Bool(true));
        let b = Value::pair(Value::Int(1), Value::Bool(true));
        assert_eq!(a.try_eq(&b), Some(true));
        let c = Value::pair(Value::Int(2), Value::Bool(true));
        assert_eq!(a.try_eq(&c), Some(false));
        assert_eq!(Value::Int(1).try_eq(&Value::Bool(true)), Some(false));
    }

    #[test]
    fn try_eq_functions_undecidable() {
        let f = Value::Prim(Op::Add);
        assert_eq!(f.try_eq(&f), None);
    }

    #[test]
    fn contains_vector() {
        assert!(Value::vector(vec![]).contains_vector());
        assert!(Value::pair(Value::Int(1), Value::vector(vec![])).contains_vector());
        assert!(!Value::Int(1).contains_vector());
    }
}
