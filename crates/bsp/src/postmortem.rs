//! Postmortem bundles and the BSP cost-model analyzer (DESIGN.md
//! §12).
//!
//! When a distributed attempt fails, the supervisor drains every
//! rank's [flight recorder](bsml_obs::FlightRecorder) into one
//! [`PostmortemBundle`]: a checksummed, self-describing file of every
//! rank's last protocol events, each stamped with the rank's Lamport
//! clock. The bundle is deliberately *logical* — ranks, sequence
//! numbers, Lamport stamps, word counts, no wall-clock time — so a
//! seeded chaos run writes a byte-identical bundle every time, and a
//! bundle from one machine analyzes identically on any other.
//!
//! [`PostmortemBundle::analyze`] turns a bundle into an [`Analysis`]:
//!
//! * **causal consistency** — per-rank Lamport stamps strictly
//!   increase, per-link sequence numbers are monotone, and every
//!   received frame happens strictly *after* its send (with the
//!   send's stamp riding in the frame header, this is checkable from
//!   the receiver's log alone);
//! * **a superstep timeline** — per-superstep work, words sent and
//!   received per rank, wire bytes, and barrier spread, reconstructed
//!   from the per-rank [`FlightEvent::SuperstepEnd`] /
//!   [`FlightEvent::BarrierEnter`] records;
//! * **failure localization** — the (rank, superstep) the attempt
//!   died at, preferring an explicitly recorded
//!   [`FlightEvent::FaultFired`], then the error's own coordinate,
//!   then the rank whose clock stopped first.
//!
//! The timeline doubles as an *observed cost model*: on a clean run
//! its per-superstep `(w, h)` figures match the lockstep
//! [`BspMachine`](crate::BspMachine) oracle's [`RunReport`] exactly
//! (asserted in `tests/postmortem.rs`), and
//! [`Analysis::render`] prices each superstep against a
//! [`BspParams`] profile next to the observed barrier spread and
//! straggler imbalance.

use std::fmt;
use std::io;
use std::path::Path;

use bsml_eval::EvalError;
use bsml_obs::{FlightEvent, TimedFlightEvent};

use crate::machine::{BspParams, RunReport};
use crate::wire::{fnv1a, put_u64, Reader, WireError};

/// File magic of a postmortem bundle (`BSMLPM01`).
pub const BUNDLE_MAGIC: u64 = u64::from_le_bytes(*b"BSMLPM01");
/// Trailing commit marker (`BSMLPMOK`): a bundle without it was cut
/// short mid-write and is rejected whole.
const DONE_MAGIC: u64 = u64::from_le_bytes(*b"BSMLPMOK");

/// The drained flight recorders of one distributed attempt, all
/// ranks. Produced by
/// [`DistMachine::run_recorded`](crate::DistMachine::run_recorded)
/// (and internally by the supervisor on every failed attempt).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightLog {
    /// One entry per rank, in rank order.
    pub ranks: Vec<RankFlightLog>,
}

/// One rank's drained flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankFlightLog {
    /// The recording rank.
    pub rank: usize,
    /// Events evicted from the ring before the drain — non-zero means
    /// this log is a *suffix* of the rank's history, and the analyzer
    /// treats a missing send for an observed receive as inconclusive
    /// rather than a violation.
    pub dropped: u64,
    /// The retained events, oldest first (the rank's causal order).
    pub events: Vec<TimedFlightEvent>,
}

impl RankFlightLog {
    /// The rank's final Lamport stamp (0 for an empty log).
    #[must_use]
    pub fn last_lamport(&self) -> u64 {
        self.events.last().map_or(0, |e| e.lamport)
    }
}

/// A failed (or analyzed-clean) attempt's black box: the error, its
/// coordinate when the error carries one, and every rank's flight
/// log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PostmortemBundle {
    /// Machine width.
    pub p: usize,
    /// Which supervised attempt this was.
    pub attempt: u32,
    /// The failure's rendered error (empty for a clean-run bundle).
    pub error: String,
    /// The failing rank, when the error names one.
    pub error_rank: Option<u64>,
    /// The failing superstep, when the error names one.
    pub error_superstep: Option<u64>,
    /// Per-rank flight logs, in rank order.
    pub ranks: Vec<RankFlightLog>,
}

/// The (rank, superstep) coordinate an [`EvalError`] carries, if any.
/// Barrier timeouts name only the superstep — the stalled rank is
/// what the flight logs are for.
#[must_use]
pub fn error_coordinate(err: &EvalError) -> (Option<u64>, Option<u64>) {
    match err {
        EvalError::InjectedFault { rank, superstep }
        | EvalError::TransportFailure {
            rank, superstep, ..
        }
        | EvalError::CheckpointDiverged {
            rank, superstep, ..
        } => (Some(*rank as u64), Some(*superstep)),
        EvalError::BarrierTimeout { superstep, .. } => (None, Some(*superstep)),
        _ => (None, None),
    }
}

/// What can go wrong loading a bundle.
#[derive(Debug)]
pub enum PostmortemError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The bytes are not a bundle (magic, marker, checksum,
    /// structure).
    Malformed(String),
    /// A primitive read ran off the end of a blob.
    Wire(WireError),
}

impl fmt::Display for PostmortemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostmortemError::Io(e) => write!(f, "postmortem i/o: {e}"),
            PostmortemError::Malformed(m) => write!(f, "malformed postmortem bundle: {m}"),
            PostmortemError::Wire(e) => write!(f, "malformed postmortem bundle: {e}"),
        }
    }
}

impl std::error::Error for PostmortemError {}

impl From<io::Error> for PostmortemError {
    fn from(e: io::Error) -> PostmortemError {
        PostmortemError::Io(e)
    }
}

impl From<WireError> for PostmortemError {
    fn from(e: WireError) -> PostmortemError {
        PostmortemError::Wire(e)
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Event tags, in [`FlightEvent`] declaration order.
const TAG_FRAME_SENT: u8 = 0;
const TAG_FRAME_RECEIVED: u8 = 1;
const TAG_ACK_SENT: u8 = 2;
const TAG_ACK_RECEIVED: u8 = 3;
const TAG_FRAME_RETRANSMITTED: u8 = 4;
const TAG_CORRUPT_REJECTED: u8 = 5;
const TAG_BACKPRESSURE_WAIT: u8 = 6;
const TAG_BARRIER_ENTER: u8 = 7;
const TAG_BARRIER_EXIT: u8 = 8;
const TAG_SUPERSTEP_END: u8 = 9;
const TAG_CHECKPOINT_STAGED: u8 = 10;
const TAG_CHECKPOINT_COMMITTED: u8 = 11;
const TAG_FAULT_FIRED: u8 = 12;
const TAG_LINK_DOWN: u8 = 13;
const TAG_LINK_UP: u8 = 14;

pub(crate) fn encode_event(out: &mut Vec<u8>, ev: &TimedFlightEvent) {
    let fields: (u8, [u64; 4], usize) = match ev.event {
        FlightEvent::FrameSent {
            to,
            seq,
            superstep,
            bytes,
        } => (TAG_FRAME_SENT, [to, seq, superstep, bytes], 4),
        FlightEvent::FrameReceived {
            from,
            seq,
            superstep,
            sent_lamport,
        } => (TAG_FRAME_RECEIVED, [from, seq, superstep, sent_lamport], 4),
        FlightEvent::AckSent { to, seq } => (TAG_ACK_SENT, [to, seq, 0, 0], 2),
        FlightEvent::AckReceived { from, seq, polls } => {
            (TAG_ACK_RECEIVED, [from, seq, polls, 0], 3)
        }
        FlightEvent::FrameRetransmitted { to, seq } => {
            (TAG_FRAME_RETRANSMITTED, [to, seq, 0, 0], 2)
        }
        FlightEvent::CorruptRejected => (TAG_CORRUPT_REJECTED, [0, 0, 0, 0], 0),
        FlightEvent::BackpressureWait { to } => (TAG_BACKPRESSURE_WAIT, [to, 0, 0, 0], 1),
        FlightEvent::BarrierEnter { superstep } => (TAG_BARRIER_ENTER, [superstep, 0, 0, 0], 1),
        FlightEvent::BarrierExit { superstep } => (TAG_BARRIER_EXIT, [superstep, 0, 0, 0], 1),
        FlightEvent::SuperstepEnd {
            superstep,
            work,
            sent_words,
            received_words,
        } => (
            TAG_SUPERSTEP_END,
            [superstep, work, sent_words, received_words],
            4,
        ),
        FlightEvent::CheckpointStaged { generation } => {
            (TAG_CHECKPOINT_STAGED, [generation, 0, 0, 0], 1)
        }
        FlightEvent::CheckpointCommitted { generation } => {
            (TAG_CHECKPOINT_COMMITTED, [generation, 0, 0, 0], 1)
        }
        FlightEvent::FaultFired { superstep, kind } => {
            (TAG_FAULT_FIRED, [superstep, kind, 0, 0], 2)
        }
        FlightEvent::LinkDown { rank, superstep } => (TAG_LINK_DOWN, [rank, superstep, 0, 0], 2),
        FlightEvent::LinkUp { rank, superstep } => (TAG_LINK_UP, [rank, superstep, 0, 0], 2),
    };
    let (tag, vals, n) = fields;
    out.push(tag);
    put_u64(out, ev.lamport);
    for v in &vals[..n] {
        put_u64(out, *v);
    }
}

pub(crate) fn decode_event(r: &mut Reader<'_>) -> Result<TimedFlightEvent, PostmortemError> {
    let tag = r.u8()?;
    let lamport = r.u64()?;
    let event = match tag {
        TAG_FRAME_SENT => FlightEvent::FrameSent {
            to: r.u64()?,
            seq: r.u64()?,
            superstep: r.u64()?,
            bytes: r.u64()?,
        },
        TAG_FRAME_RECEIVED => FlightEvent::FrameReceived {
            from: r.u64()?,
            seq: r.u64()?,
            superstep: r.u64()?,
            sent_lamport: r.u64()?,
        },
        TAG_ACK_SENT => FlightEvent::AckSent {
            to: r.u64()?,
            seq: r.u64()?,
        },
        TAG_ACK_RECEIVED => FlightEvent::AckReceived {
            from: r.u64()?,
            seq: r.u64()?,
            polls: r.u64()?,
        },
        TAG_FRAME_RETRANSMITTED => FlightEvent::FrameRetransmitted {
            to: r.u64()?,
            seq: r.u64()?,
        },
        TAG_CORRUPT_REJECTED => FlightEvent::CorruptRejected,
        TAG_BACKPRESSURE_WAIT => FlightEvent::BackpressureWait { to: r.u64()? },
        TAG_BARRIER_ENTER => FlightEvent::BarrierEnter {
            superstep: r.u64()?,
        },
        TAG_BARRIER_EXIT => FlightEvent::BarrierExit {
            superstep: r.u64()?,
        },
        TAG_SUPERSTEP_END => FlightEvent::SuperstepEnd {
            superstep: r.u64()?,
            work: r.u64()?,
            sent_words: r.u64()?,
            received_words: r.u64()?,
        },
        TAG_CHECKPOINT_STAGED => FlightEvent::CheckpointStaged {
            generation: r.u64()?,
        },
        TAG_CHECKPOINT_COMMITTED => FlightEvent::CheckpointCommitted {
            generation: r.u64()?,
        },
        TAG_FAULT_FIRED => FlightEvent::FaultFired {
            superstep: r.u64()?,
            kind: r.u64()?,
        },
        TAG_LINK_DOWN => FlightEvent::LinkDown {
            rank: r.u64()?,
            superstep: r.u64()?,
        },
        TAG_LINK_UP => FlightEvent::LinkUp {
            rank: r.u64()?,
            superstep: r.u64()?,
        },
        other => {
            return Err(PostmortemError::Malformed(format!(
                "unknown event tag {other}"
            )))
        }
    };
    Ok(TimedFlightEvent { lamport, event })
}

impl PostmortemBundle {
    /// Assembles a bundle from an attempt's error (empty string for a
    /// clean-run bundle), its coordinate, and the drained flight log.
    #[must_use]
    pub fn new(
        p: usize,
        attempt: u32,
        error: String,
        error_rank: Option<u64>,
        error_superstep: Option<u64>,
        log: FlightLog,
    ) -> PostmortemBundle {
        PostmortemBundle {
            p,
            attempt,
            error,
            error_rank,
            error_superstep,
            ranks: log.ranks,
        }
    }

    /// Serializes the bundle: magic, header, one length-prefixed and
    /// FNV-trailed blob per rank (the checkpoint framing idiom — a
    /// corrupted rank blob is detected on its own), a whole-file
    /// FNV-1a checksum and the commit marker.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        put_u64(&mut out, BUNDLE_MAGIC);
        put_u64(&mut out, self.p as u64);
        put_u64(&mut out, u64::from(self.attempt));
        for opt in [self.error_rank, self.error_superstep] {
            match opt {
                Some(v) => {
                    out.push(1);
                    put_u64(&mut out, v);
                }
                None => out.push(0),
            }
        }
        put_u64(&mut out, self.error.len() as u64);
        out.extend_from_slice(self.error.as_bytes());
        put_u64(&mut out, self.ranks.len() as u64);
        for rank in &self.ranks {
            let mut blob = Vec::with_capacity(64);
            put_u64(&mut blob, rank.rank as u64);
            put_u64(&mut blob, rank.dropped);
            put_u64(&mut blob, rank.events.len() as u64);
            for ev in &rank.events {
                encode_event(&mut blob, ev);
            }
            let checksum = fnv1a(&blob);
            put_u64(&mut blob, checksum);
            put_u64(&mut out, blob.len() as u64);
            out.extend_from_slice(&blob);
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        put_u64(&mut out, DONE_MAGIC);
        out
    }

    /// Parses and verifies a bundle (magic, commit marker, whole-file
    /// checksum, then every rank blob's own checksum).
    ///
    /// # Errors
    ///
    /// [`PostmortemError::Malformed`] or [`PostmortemError::Wire`] on
    /// anything that does not verify.
    pub fn decode(bytes: &[u8]) -> Result<PostmortemBundle, PostmortemError> {
        if bytes.len() < 8 + 8 + 8 {
            return Err(PostmortemError::Malformed("bundle too short".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 16);
        let claimed = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
        let done = u64::from_le_bytes(tail[8..].try_into().expect("8 bytes"));
        if done != DONE_MAGIC {
            return Err(PostmortemError::Malformed(
                "missing commit marker (write was cut short)".into(),
            ));
        }
        if fnv1a(body) != claimed {
            return Err(PostmortemError::Malformed("checksum mismatch".into()));
        }
        let mut r = Reader::new(body);
        if r.u64()? != BUNDLE_MAGIC {
            return Err(PostmortemError::Malformed("bad magic".into()));
        }
        let p = r.u64()? as usize;
        let attempt = u32::try_from(r.u64()?)
            .map_err(|_| PostmortemError::Malformed("attempt out of range".into()))?;
        let mut opts = [None, None];
        for slot in &mut opts {
            *slot = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                other => {
                    return Err(PostmortemError::Malformed(format!(
                        "bad option tag {other}"
                    )))
                }
            };
        }
        let error_len = r.count()?;
        let error = String::from_utf8(r.take(error_len)?.to_vec())
            .map_err(|_| PostmortemError::Malformed("error is not utf-8".into()))?;
        let nranks = r.count()?;
        let mut ranks = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let blob_len = r.count()?;
            let blob = r.take(blob_len)?;
            if blob.len() < 8 {
                return Err(PostmortemError::Malformed("rank blob too short".into()));
            }
            let (blob_body, blob_tail) = blob.split_at(blob.len() - 8);
            let blob_claimed = u64::from_le_bytes(blob_tail.try_into().expect("8 bytes"));
            if fnv1a(blob_body) != blob_claimed {
                return Err(PostmortemError::Malformed(
                    "rank blob checksum mismatch".into(),
                ));
            }
            let mut br = Reader::new(blob_body);
            let rank = br.u64()? as usize;
            let dropped = br.u64()?;
            let n = br.count()?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(decode_event(&mut br)?);
            }
            if br.remaining() != 0 {
                return Err(PostmortemError::Malformed(format!(
                    "{} trailing bytes in rank blob",
                    br.remaining()
                )));
            }
            ranks.push(RankFlightLog {
                rank,
                dropped,
                events,
            });
        }
        if r.remaining() != 0 {
            return Err(PostmortemError::Malformed(format!(
                "{} trailing bytes after rank blobs",
                r.remaining()
            )));
        }
        Ok(PostmortemBundle {
            p,
            attempt,
            error,
            error_rank: opts[0],
            error_superstep: opts[1],
            ranks,
        })
    }

    /// Writes the encoded bundle to `path`.
    ///
    /// # Errors
    ///
    /// [`PostmortemError::Io`].
    pub fn write_to(&self, path: &Path) -> Result<(), PostmortemError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Loads and verifies a bundle from `path`.
    ///
    /// # Errors
    ///
    /// Any [`PostmortemError`].
    pub fn load(path: &Path) -> Result<PostmortemBundle, PostmortemError> {
        let bytes = std::fs::read(path)?;
        PostmortemBundle::decode(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

/// A causal-consistency violation found in a bundle. On a correct
/// runtime none of these are producible — each one is a runtime bug
/// (or a forged bundle), not a user error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CausalViolation {
    /// A rank's Lamport stamps did not strictly increase.
    NonMonotonicClock {
        /// The offending rank.
        rank: usize,
        /// Index of the offending event in the rank's log.
        index: usize,
        /// The preceding stamp.
        prev: u64,
        /// The non-increasing stamp.
        next: u64,
    },
    /// A frame was received at a stamp not strictly after its send.
    ReceiveBeforeSend {
        /// The receiving rank.
        rank: usize,
        /// The sending rank.
        from: usize,
        /// The frame's per-link sequence number.
        seq: u64,
        /// The sender's stamp, from the frame header.
        sent_lamport: u64,
        /// The receiver's stamp at acceptance.
        recv_lamport: u64,
    },
    /// A receive has no matching send in the sender's *complete* log
    /// (`dropped == 0` — an evicted-ring sender is inconclusive and
    /// not reported).
    MissingSend {
        /// The receiving rank.
        rank: usize,
        /// The claimed sending rank.
        from: usize,
        /// The frame's per-link sequence number.
        seq: u64,
    },
    /// The sender's recorded stamp for (to, seq) disagrees with the
    /// stamp the receiver saw in the frame header.
    StampMismatch {
        /// The receiving rank.
        rank: usize,
        /// The sending rank.
        from: usize,
        /// The frame's per-link sequence number.
        seq: u64,
        /// The stamp in the sender's log.
        sender_recorded: u64,
        /// The stamp in the received frame header.
        receiver_saw: u64,
    },
    /// Accepted sequence numbers on one link went backwards (or
    /// repeated).
    SeqRegression {
        /// The receiving rank.
        rank: usize,
        /// The sending rank.
        from: usize,
        /// The previously accepted sequence number.
        prev: u64,
        /// The regressed sequence number.
        next: u64,
    },
}

impl fmt::Display for CausalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalViolation::NonMonotonicClock {
                rank,
                index,
                prev,
                next,
            } => write!(
                f,
                "rank {rank}: Lamport clock went {prev} -> {next} at event {index}"
            ),
            CausalViolation::ReceiveBeforeSend {
                rank,
                from,
                seq,
                sent_lamport,
                recv_lamport,
            } => write!(
                f,
                "rank {rank}: frame {from}->{rank} seq {seq} received at stamp \
                 {recv_lamport}, not after its send at {sent_lamport}"
            ),
            CausalViolation::MissingSend { rank, from, seq } => write!(
                f,
                "rank {rank}: received frame {from}->{rank} seq {seq}, but rank {from}'s \
                 complete log never sent it"
            ),
            CausalViolation::StampMismatch {
                rank,
                from,
                seq,
                sender_recorded,
                receiver_saw,
            } => write!(
                f,
                "frame {from}->{rank} seq {seq}: sender recorded stamp {sender_recorded}, \
                 receiver saw {receiver_saw}"
            ),
            CausalViolation::SeqRegression {
                rank,
                from,
                prev,
                next,
            } => write!(
                f,
                "rank {rank}: link {from}->{rank} accepted seq {next} after {prev}"
            ),
        }
    }
}

/// One superstep of the reconstructed timeline: per-rank local
/// accounting plus the barrier's logical geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuperstepObservation {
    /// The superstep index.
    pub superstep: u64,
    /// Fuel burned per rank (index = rank; 0 where unreported).
    pub work: Vec<u64>,
    /// Words sent per rank (self-messages excluded).
    pub sent_words: Vec<u64>,
    /// Words received per rank.
    pub received_words: Vec<u64>,
    /// Which ranks contributed a [`FlightEvent::SuperstepEnd`] — a
    /// crashed rank leaves a hole here, which is itself a diagnostic.
    pub reported: Vec<bool>,
    /// Encoded wire bytes of every data frame sent this superstep
    /// (protocol overhead included — dividing by the h-relation gives
    /// an *observed* per-word gap).
    pub bytes_on_wire: u64,
    /// `max - min` of the ranks' barrier-arrival Lamport stamps: how
    /// logically spread-out the barrier entry was (stragglers widen
    /// it).
    pub barrier_spread: u64,
    /// `max` over ranks of the barrier's enter-to-exit stamp delta:
    /// the observed logical barrier latency (the analogue of `l`).
    pub barrier_latency: u64,
}

impl SuperstepObservation {
    fn empty(superstep: u64, p: usize) -> SuperstepObservation {
        SuperstepObservation {
            superstep,
            work: vec![0; p],
            sent_words: vec![0; p],
            received_words: vec![0; p],
            reported: vec![false; p],
            bytes_on_wire: 0,
            barrier_spread: 0,
            barrier_latency: 0,
        }
    }

    /// `max_i w_i`: the superstep's work term.
    #[must_use]
    pub fn max_work(&self) -> u64 {
        self.work.iter().copied().max().unwrap_or(0)
    }

    /// `max_i max(h_i⁺, h_i⁻)`: the superstep's h-relation in words.
    #[must_use]
    pub fn h_relation(&self) -> u64 {
        (0..self.work.len())
            .map(|i| self.sent_words[i].max(self.received_words[i]))
            .max()
            .unwrap_or(0)
    }

    /// Straggler imbalance `max_i w_i / avg_i w_i` over reporting
    /// ranks (1.0 for a perfectly balanced superstep, 0.0 when no
    /// rank reported work).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let reporting: Vec<u64> = self
            .reported
            .iter()
            .zip(&self.work)
            .filter(|(r, _)| **r)
            .map(|(_, w)| *w)
            .collect();
        if reporting.is_empty() {
            return 0.0;
        }
        let sum: u64 = reporting.iter().sum();
        if sum == 0 {
            return 0.0;
        }
        let max = reporting.iter().copied().max().unwrap_or(0);
        #[allow(clippy::cast_precision_loss)]
        {
            max as f64 * reporting.len() as f64 / sum as f64
        }
    }

    /// The observed wire bytes per payload word (an effective `g`, in
    /// bytes): `bytes_on_wire / h_relation`, 0 when nothing moved.
    #[must_use]
    pub fn effective_g_bytes(&self) -> u64 {
        self.bytes_on_wire
            .checked_div(self.h_relation())
            .unwrap_or(0)
    }
}

/// Where (and on what) the attempt died.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureReport {
    /// The failing rank.
    pub rank: usize,
    /// The superstep the failure landed in.
    pub superstep: u64,
    /// The failing rank's last recorded event, rendered.
    pub last_event: String,
}

/// The analyzer's verdict on one bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    /// Causal-consistency violations (empty on every bundle a correct
    /// runtime writes).
    pub violations: Vec<CausalViolation>,
    /// The reconstructed per-superstep timeline, ascending.
    pub timeline: Vec<SuperstepObservation>,
    /// The localized failure (`None` for a clean-run bundle).
    pub failure: Option<FailureReport>,
}

impl PostmortemBundle {
    /// Runs the causal checks, reconstructs the superstep timeline,
    /// and localizes the failure.
    #[must_use]
    pub fn analyze(&self) -> Analysis {
        Analysis {
            violations: self.check_causality(),
            timeline: self.reconstruct_timeline(),
            failure: self.localize_failure(),
        }
    }

    fn check_causality(&self) -> Vec<CausalViolation> {
        let mut violations = Vec::new();
        // Per-rank clocks strictly increase.
        for log in &self.ranks {
            for (i, pair) in log.events.windows(2).enumerate() {
                if pair[1].lamport <= pair[0].lamport {
                    violations.push(CausalViolation::NonMonotonicClock {
                        rank: log.rank,
                        index: i + 1,
                        prev: pair[0].lamport,
                        next: pair[1].lamport,
                    });
                }
            }
        }
        // Per-link accepted sequence numbers are monotone, and every
        // receive happens strictly after its send.
        for log in &self.ranks {
            let mut last_seq: Vec<Option<u64>> = vec![None; self.p];
            for ev in &log.events {
                let FlightEvent::FrameReceived {
                    from,
                    seq,
                    sent_lamport,
                    ..
                } = ev.event
                else {
                    continue;
                };
                let from = from as usize;
                if from < self.p {
                    if let Some(prev) = last_seq[from] {
                        if seq <= prev {
                            violations.push(CausalViolation::SeqRegression {
                                rank: log.rank,
                                from,
                                prev,
                                next: seq,
                            });
                        }
                    }
                    last_seq[from] = Some(seq);
                }
                if ev.lamport <= sent_lamport {
                    violations.push(CausalViolation::ReceiveBeforeSend {
                        rank: log.rank,
                        from,
                        seq,
                        sent_lamport,
                        recv_lamport: ev.lamport,
                    });
                }
                // Pair the receive with the sender's own record. A
                // sender whose ring evicted events is inconclusive.
                let Some(sender) = self.ranks.iter().find(|l| l.rank == from) else {
                    continue;
                };
                let matching = sender.events.iter().find_map(|sev| match sev.event {
                    FlightEvent::FrameSent { to, seq: sseq, .. }
                        if to as usize == log.rank && sseq == seq =>
                    {
                        Some(sev.lamport)
                    }
                    _ => None,
                });
                match matching {
                    Some(recorded) if recorded != sent_lamport => {
                        violations.push(CausalViolation::StampMismatch {
                            rank: log.rank,
                            from,
                            seq,
                            sender_recorded: recorded,
                            receiver_saw: sent_lamport,
                        });
                    }
                    None if sender.dropped == 0 => {
                        violations.push(CausalViolation::MissingSend {
                            rank: log.rank,
                            from,
                            seq,
                        });
                    }
                    _ => {}
                }
            }
        }
        violations
    }

    fn reconstruct_timeline(&self) -> Vec<SuperstepObservation> {
        use std::collections::BTreeMap;
        let mut steps: BTreeMap<u64, SuperstepObservation> = BTreeMap::new();
        // Barrier stamps per (superstep, rank): first enter, first
        // exit.
        let mut enters: BTreeMap<u64, Vec<Option<u64>>> = BTreeMap::new();
        let mut exits: BTreeMap<u64, Vec<Option<u64>>> = BTreeMap::new();
        for log in &self.ranks {
            let rank = log.rank;
            if rank >= self.p {
                continue;
            }
            for ev in &log.events {
                match ev.event {
                    FlightEvent::SuperstepEnd {
                        superstep,
                        work,
                        sent_words,
                        received_words,
                    } => {
                        let obs = steps
                            .entry(superstep)
                            .or_insert_with(|| SuperstepObservation::empty(superstep, self.p));
                        obs.work[rank] = work;
                        obs.sent_words[rank] = sent_words;
                        obs.received_words[rank] = received_words;
                        obs.reported[rank] = true;
                    }
                    FlightEvent::FrameSent {
                        superstep, bytes, ..
                    } => {
                        steps
                            .entry(superstep)
                            .or_insert_with(|| SuperstepObservation::empty(superstep, self.p))
                            .bytes_on_wire += bytes;
                    }
                    FlightEvent::BarrierEnter { superstep } => {
                        let slots = enters
                            .entry(superstep)
                            .or_insert_with(|| vec![None; self.p]);
                        if slots[rank].is_none() {
                            slots[rank] = Some(ev.lamport);
                        }
                    }
                    FlightEvent::BarrierExit { superstep } => {
                        let slots = exits.entry(superstep).or_insert_with(|| vec![None; self.p]);
                        if slots[rank].is_none() {
                            slots[rank] = Some(ev.lamport);
                        }
                    }
                    _ => {}
                }
            }
        }
        for (superstep, enter) in &enters {
            let obs = steps
                .entry(*superstep)
                .or_insert_with(|| SuperstepObservation::empty(*superstep, self.p));
            let stamps: Vec<u64> = enter.iter().flatten().copied().collect();
            if stamps.len() >= 2 {
                let min = stamps.iter().copied().min().unwrap_or(0);
                let max = stamps.iter().copied().max().unwrap_or(0);
                obs.barrier_spread = max - min;
            }
            if let Some(exit) = exits.get(superstep) {
                obs.barrier_latency = enter
                    .iter()
                    .zip(exit)
                    .filter_map(|(en, ex)| match (en, ex) {
                        (Some(en), Some(ex)) => Some(ex.saturating_sub(*en)),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
            }
        }
        steps.into_values().collect()
    }

    fn localize_failure(&self) -> Option<FailureReport> {
        if self.error.is_empty() {
            return None;
        }
        let last_event_of = |rank: usize| -> String {
            self.ranks
                .iter()
                .find(|l| l.rank == rank)
                .and_then(|l| l.events.last())
                .map_or_else(
                    || "(no events recorded)".to_string(),
                    |e| format!("{:?} @ lamport {}", e.event, e.lamport),
                )
        };
        // 1. An explicitly recorded terminal fault (crash, panic or
        //    stall — a message drop is repaired, not terminal).
        let mut fault: Option<(u64, usize, u64)> = None;
        for log in &self.ranks {
            for ev in &log.events {
                if let FlightEvent::FaultFired { superstep, kind } = ev.event {
                    if kind != 2 && fault.is_none_or(|(l, _, _)| ev.lamport < l) {
                        fault = Some((ev.lamport, log.rank, superstep));
                    }
                }
            }
        }
        if let Some((_, rank, superstep)) = fault {
            return Some(FailureReport {
                rank,
                superstep,
                last_event: last_event_of(rank),
            });
        }
        // 2. The error's own coordinate.
        if let Some(rank) = self.error_rank {
            let rank = rank as usize;
            let superstep = self
                .error_superstep
                .unwrap_or_else(|| self.last_superstep_of(rank));
            return Some(FailureReport {
                rank,
                superstep,
                last_event: last_event_of(rank),
            });
        }
        // 3. The rank whose clock stopped first — for barrier
        //    timeouts and peer failures, the quietest rank is the one
        //    the others were waiting on.
        let rank = self
            .ranks
            .iter()
            .min_by_key(|l| l.last_lamport())
            .map(|l| l.rank)?;
        let superstep = self
            .error_superstep
            .unwrap_or_else(|| self.last_superstep_of(rank));
        Some(FailureReport {
            rank,
            superstep,
            last_event: last_event_of(rank),
        })
    }

    /// The last superstep coordinate rank `rank`'s events mention.
    fn last_superstep_of(&self, rank: usize) -> u64 {
        let Some(log) = self.ranks.iter().find(|l| l.rank == rank) else {
            return 0;
        };
        log.events
            .iter()
            .rev()
            .find_map(|ev| match ev.event {
                FlightEvent::FrameSent { superstep, .. }
                | FlightEvent::FrameReceived { superstep, .. }
                | FlightEvent::BarrierEnter { superstep }
                | FlightEvent::BarrierExit { superstep }
                | FlightEvent::SuperstepEnd { superstep, .. }
                | FlightEvent::FaultFired { superstep, .. }
                | FlightEvent::LinkDown { superstep, .. }
                | FlightEvent::LinkUp { superstep, .. } => Some(superstep),
                _ => None,
            })
            .unwrap_or(0)
    }
}

impl Analysis {
    /// Whether the bundle's timeline is causally consistent.
    #[must_use]
    pub fn is_causally_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Differences between this timeline and a lockstep oracle's
    /// [`RunReport`] (empty = the observed per-superstep `(w, h⁺,
    /// h⁻)` figures match the cost model exactly). Only the first
    /// `report.cost.supersteps` lockstep records are compared — the
    /// trailing record is the barrier-free program tail, which the
    /// distributed recorder (correctly) never sees.
    #[must_use]
    pub fn diff_report(&self, report: &RunReport) -> Vec<String> {
        let mut diffs = Vec::new();
        let supersteps = report.cost.supersteps as usize;
        if self.timeline.len() != supersteps {
            diffs.push(format!(
                "timeline has {} supersteps, oracle has {supersteps}",
                self.timeline.len()
            ));
            return diffs;
        }
        for (s, obs) in self.timeline.iter().enumerate() {
            let Some(rec) = report.trace.get(s) else {
                break;
            };
            if obs.superstep != s as u64 {
                diffs.push(format!(
                    "superstep {s}: observation is labelled {}",
                    obs.superstep
                ));
                continue;
            }
            if let Some(missing) = obs.reported.iter().position(|r| !r) {
                diffs.push(format!("superstep {s}: rank {missing} never reported"));
                continue;
            }
            if obs.work != rec.work {
                diffs.push(format!(
                    "superstep {s}: observed work {:?}, oracle {:?}",
                    obs.work, rec.work
                ));
            }
            if obs.sent_words != rec.sent {
                diffs.push(format!(
                    "superstep {s}: observed sent {:?}, oracle {:?}",
                    obs.sent_words, rec.sent
                ));
            }
            if obs.received_words != rec.received {
                diffs.push(format!(
                    "superstep {s}: observed received {:?}, oracle {:?}",
                    obs.received_words, rec.received
                ));
            }
        }
        diffs
    }

    /// `true` iff the timeline matches the oracle exactly (see
    /// [`Analysis::diff_report`]).
    #[must_use]
    pub fn matches_report(&self, report: &RunReport) -> bool {
        self.diff_report(report).is_empty()
    }

    /// Renders the analysis as a human-readable report. With `params`
    /// each superstep is additionally priced by the BSP cost
    /// expression `w + h·g + l` next to its observed logical figures.
    #[must_use]
    pub fn render(&self, params: Option<&BspParams>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.failure {
            Some(f) => {
                let _ = writeln!(
                    out,
                    "failure localized to rank {} at superstep {}",
                    f.rank, f.superstep
                );
                let _ = writeln!(out, "  last event: {}", f.last_event);
            }
            None => {
                let _ = writeln!(out, "clean run (no failure recorded)");
            }
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "causal consistency: OK");
        } else {
            let _ = writeln!(
                out,
                "causal consistency: {} violation(s)",
                self.violations.len()
            );
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        let _ = writeln!(out, "timeline ({} superstep(s)):", self.timeline.len());
        for obs in &self.timeline {
            let w = obs.max_work();
            let h = obs.h_relation();
            let _ = write!(
                out,
                "  s{}: w={w} h={h} wire_bytes={} spread={} l_obs={} imbalance={:.2}",
                obs.superstep,
                obs.bytes_on_wire,
                obs.barrier_spread,
                obs.barrier_latency,
                obs.imbalance()
            );
            if let Some(p) = params {
                let _ = write!(out, " cost={}", w + h * p.g + p.l);
            }
            if let Some(missing) = obs.reported.iter().position(|r| !r) {
                let _ = write!(out, " [rank {missing} missing]");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> PostmortemBundle {
        PostmortemBundle {
            p: 2,
            attempt: 1,
            error: "injected fault: processor 1 crashed at superstep 0".into(),
            error_rank: Some(1),
            error_superstep: Some(0),
            ranks: vec![
                RankFlightLog {
                    rank: 0,
                    dropped: 0,
                    events: vec![
                        TimedFlightEvent {
                            lamport: 1,
                            event: FlightEvent::FrameSent {
                                to: 1,
                                seq: 0,
                                superstep: 0,
                                bytes: 42,
                            },
                        },
                        TimedFlightEvent {
                            lamport: 2,
                            event: FlightEvent::BackpressureWait { to: 1 },
                        },
                    ],
                },
                RankFlightLog {
                    rank: 1,
                    dropped: 3,
                    events: vec![TimedFlightEvent {
                        lamport: 1,
                        event: FlightEvent::FaultFired {
                            superstep: 0,
                            kind: 0,
                        },
                    }],
                },
            ],
        }
    }

    #[test]
    fn bundle_round_trips() {
        let bundle = sample_bundle();
        let bytes = bundle.encode();
        let back = PostmortemBundle::decode(&bytes).expect("round trip");
        assert_eq!(back, bundle);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = vec![
            FlightEvent::FrameSent {
                to: 1,
                seq: 2,
                superstep: 3,
                bytes: 4,
            },
            FlightEvent::FrameReceived {
                from: 1,
                seq: 2,
                superstep: 3,
                sent_lamport: 4,
            },
            FlightEvent::AckSent { to: 1, seq: 2 },
            FlightEvent::AckReceived {
                from: 1,
                seq: 2,
                polls: 3,
            },
            FlightEvent::FrameRetransmitted { to: 1, seq: 2 },
            FlightEvent::CorruptRejected,
            FlightEvent::BackpressureWait { to: 1 },
            FlightEvent::BarrierEnter { superstep: 1 },
            FlightEvent::BarrierExit { superstep: 1 },
            FlightEvent::SuperstepEnd {
                superstep: 1,
                work: 2,
                sent_words: 3,
                received_words: 4,
            },
            FlightEvent::CheckpointStaged { generation: 1 },
            FlightEvent::CheckpointCommitted { generation: 1 },
            FlightEvent::FaultFired {
                superstep: 1,
                kind: 2,
            },
            FlightEvent::LinkDown {
                rank: 1,
                superstep: 2,
            },
            FlightEvent::LinkUp {
                rank: 1,
                superstep: 2,
            },
        ];
        let bundle = PostmortemBundle {
            p: 2,
            attempt: 0,
            error: String::new(),
            error_rank: None,
            error_superstep: None,
            ranks: vec![RankFlightLog {
                rank: 0,
                dropped: 0,
                events: events
                    .into_iter()
                    .enumerate()
                    .map(|(i, event)| TimedFlightEvent {
                        lamport: i as u64 + 1,
                        event,
                    })
                    .collect(),
            }],
        };
        let back = PostmortemBundle::decode(&bundle.encode()).expect("round trip");
        assert_eq!(back, bundle);
    }

    #[test]
    fn truncated_and_corrupt_bundles_are_rejected() {
        let bytes = sample_bundle().encode();
        // Cut short: loses the commit marker.
        assert!(PostmortemBundle::decode(&bytes[..bytes.len() - 8]).is_err());
        // One flipped byte: the whole-file checksum catches it.
        let mut flipped = bytes.clone();
        flipped[9] ^= 0xff;
        assert!(PostmortemBundle::decode(&flipped).is_err());
        // Garbage is not a bundle.
        assert!(PostmortemBundle::decode(b"not a bundle").is_err());
    }

    #[test]
    fn analyzer_localizes_a_recorded_fault() {
        let analysis = sample_bundle().analyze();
        assert!(
            analysis.is_causally_consistent(),
            "{:?}",
            analysis.violations
        );
        let failure = analysis.failure.expect("failed bundle");
        assert_eq!((failure.rank, failure.superstep), (1, 0));
        assert!(failure.last_event.contains("FaultFired"));
    }

    #[test]
    fn analyzer_flags_receive_before_send() {
        let mut bundle = sample_bundle();
        // Rank 1 claims to have received rank 0's seq-0 frame at a
        // stamp not after the send stamp it carries.
        bundle.ranks[1].events = vec![TimedFlightEvent {
            lamport: 1,
            event: FlightEvent::FrameReceived {
                from: 0,
                seq: 0,
                superstep: 0,
                sent_lamport: 5,
            },
        }];
        let analysis = bundle.analyze();
        assert!(analysis.violations.iter().any(|v| matches!(
            v,
            CausalViolation::ReceiveBeforeSend {
                rank: 1,
                from: 0,
                ..
            }
        )));
        // And the stamp disagrees with the sender's record (1 vs 5).
        assert!(analysis
            .violations
            .iter()
            .any(|v| matches!(v, CausalViolation::StampMismatch { .. })));
    }

    #[test]
    fn analyzer_flags_a_stopped_clock() {
        let mut bundle = sample_bundle();
        bundle.ranks[0].events = vec![
            TimedFlightEvent {
                lamport: 5,
                event: FlightEvent::BarrierEnter { superstep: 0 },
            },
            TimedFlightEvent {
                lamport: 5,
                event: FlightEvent::BarrierExit { superstep: 0 },
            },
        ];
        let analysis = bundle.analyze();
        assert!(analysis
            .violations
            .iter()
            .any(|v| matches!(v, CausalViolation::NonMonotonicClock { rank: 0, .. })));
    }

    #[test]
    fn timeline_reconstructs_barrier_geometry() {
        let bundle = PostmortemBundle {
            p: 2,
            attempt: 0,
            error: String::new(),
            error_rank: None,
            error_superstep: None,
            ranks: vec![
                RankFlightLog {
                    rank: 0,
                    dropped: 0,
                    events: vec![
                        TimedFlightEvent {
                            lamport: 3,
                            event: FlightEvent::SuperstepEnd {
                                superstep: 0,
                                work: 10,
                                sent_words: 1,
                                received_words: 2,
                            },
                        },
                        TimedFlightEvent {
                            lamport: 4,
                            event: FlightEvent::BarrierEnter { superstep: 0 },
                        },
                        TimedFlightEvent {
                            lamport: 9,
                            event: FlightEvent::BarrierExit { superstep: 0 },
                        },
                    ],
                },
                RankFlightLog {
                    rank: 1,
                    dropped: 0,
                    events: vec![
                        TimedFlightEvent {
                            lamport: 6,
                            event: FlightEvent::SuperstepEnd {
                                superstep: 0,
                                work: 30,
                                sent_words: 2,
                                received_words: 1,
                            },
                        },
                        TimedFlightEvent {
                            lamport: 7,
                            event: FlightEvent::BarrierEnter { superstep: 0 },
                        },
                        TimedFlightEvent {
                            lamport: 8,
                            event: FlightEvent::BarrierExit { superstep: 0 },
                        },
                    ],
                },
            ],
        };
        let analysis = bundle.analyze();
        assert!(analysis.failure.is_none());
        assert_eq!(analysis.timeline.len(), 1);
        let obs = &analysis.timeline[0];
        assert_eq!(obs.work, vec![10, 30]);
        assert_eq!(obs.max_work(), 30);
        assert_eq!(obs.h_relation(), 2);
        assert_eq!(obs.barrier_spread, 3); // enters at 4 and 7
        assert_eq!(obs.barrier_latency, 5); // rank 0: 4 -> 9
        assert!((obs.imbalance() - 1.5).abs() < 1e-9); // 30 / 20
        let rendered = analysis.render(Some(&BspParams::new(2, 10, 100)));
        assert!(rendered.contains("s0: w=30 h=2"));
        assert!(rendered.contains("cost=150")); // 30 + 2*10 + 100
    }

    #[test]
    fn error_coordinates_are_extracted() {
        assert_eq!(
            error_coordinate(&EvalError::InjectedFault {
                rank: 1,
                superstep: 2
            }),
            (Some(1), Some(2))
        );
        assert_eq!(
            error_coordinate(&EvalError::BarrierTimeout {
                superstep: 3,
                waiting: 1
            }),
            (None, Some(3))
        );
        assert_eq!(error_coordinate(&EvalError::PeerFailure), (None, None));
    }
}
