//! Supervised execution of the distributed machine: watchdog,
//! retries with jittered exponential backoff, checkpoint resume, and
//! an oracle cross-check.
//!
//! **Why replay is sound.** The paper's semantics are deterministic
//! and confluent (§5, Theorem 2): a mini-BSML program's value and
//! per-superstep h-relations are a pure function of the program and
//! `p`. A distributed attempt that fails — a crashed peer, a lost
//! message, a barrier timeout — can therefore be *re-run*; there is
//! no risk that the retry computes something different. The
//! supervisor leans on this three times:
//!
//! * it retries failed attempts — including
//!   [`EvalError::TransportFailure`]s, where a lossy transport's
//!   retransmission budget ran out (the retry typically runs with the
//!   chaos disarmed, see
//!   [`crate::transport::LossyConfig::armed_attempts`]),
//! * when the machine checkpoints (see [`crate::checkpoint`]), a
//!   retry *resumes* from the latest valid checkpoint instead of
//!   restarting, replaying only the supersteps past the cut —
//!   determinism guarantees the resumed run is bit-identical to an
//!   unfaulted one,
//! * it asserts on success that the distributed answer matches the
//!   lockstep [`BspMachine`] oracle (value, superstep count, and
//!   total communication volume) — a *silently* corrupted run is
//!   thereby detected and retried like any other failure.
//!
//! **The recovery ladder.** The cheapest rung never reaches this
//! type at all: under [`crate::Execution::Processes`] a severed
//! control link is healed *inside* the attempt by reconnect-and-
//! replay (DESIGN.md §16), costing a few frames and zero supersteps —
//! only a dead rank process (or a link whose rejoin budget is
//! exhausted) fails the attempt and engages the supervisor. From
//! there, on each retry the supervisor walks the
//! store's committed generations newest-first: a generation that
//! fails integrity verification is counted (`bsp.checkpoints_corrupt`)
//! and skipped in favour of the next-older one; if no generation
//! survives, the attempt is a full restart. A corrupted checkpoint
//! can therefore cost time, never correctness. Any *failed* resumed
//! attempt — a replay that diverges from the recorded cut
//! ([`EvalError::CheckpointDiverged`]), or an error replayed straight
//! out of a poisoned outcome log — permanently demotes the run to
//! full restarts, as does an oracle divergence (the store's recorded
//! outcomes are then suspect).
//!
//! ```
//! use bsml_bsp::distributed::DistMachine;
//! use bsml_bsp::faults::FaultPlan;
//! use bsml_bsp::supervisor::Supervisor;
//! use bsml_syntax::parse;
//!
//! // Rank 1 crashes in superstep 0 of the first attempt; the
//! // supervised retry replays clean and converges.
//! let machine = DistMachine::new(4).with_faults(FaultPlan::new().crash(1, 0));
//! let out = Supervisor::new(machine).run(&parse(
//!     "let r = put (mkpar (fun j -> fun i -> j * j)) in
//!      apply (mkpar (fun i -> fun t -> t i), r)")?)?;
//! assert_eq!(out.outcome.value.to_string(), "<|0, 1, 4, 9|>");
//! assert_eq!(out.attempts, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bsml_ast::Expr;
use bsml_eval::EvalError;
use bsml_obs::Telemetry;

use crate::checkpoint::{program_fingerprint, CheckpointError, ResumePoint};
use crate::distributed::{DistMachine, DistOutcome, DEFAULT_FLIGHT_CAPACITY};
use crate::faults::SplitMix64;
use crate::machine::{BspMachine, BspParams};
use crate::postmortem::{error_coordinate, FlightLog, PostmortemBundle};

/// Default maximum number of attempts (1 initial + 2 retries).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Environment variable naming a directory for crash-time postmortem
/// bundles. When set, the supervisor writes one bundle per failed
/// attempt (enabling the machine's flight recorder at
/// [`DEFAULT_FLIGHT_CAPACITY`] if it is not already on).
pub const POSTMORTEM_DIR_ENV: &str = "BSML_POSTMORTEM_DIR";

/// Default base backoff; retry `k` sleeps `base · 2^(k-1)`, jittered.
pub const DEFAULT_BACKOFF: Duration = Duration::from_millis(5);

/// How a [`Supervisor`] waits between attempts. Injectable so tests
/// can assert the exact backoff schedule without wall-clock sleeping.
pub trait Sleeper: Send + Sync + fmt::Debug {
    /// Waits for `d` (or records that it would have).
    fn sleep(&self, d: Duration);
}

/// The default [`Sleeper`]: a real [`std::thread::sleep`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A test [`Sleeper`] that records every requested delay and returns
/// immediately — backoff schedules become assertable data.
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    slept: Mutex<Vec<Duration>>,
}

impl RecordingSleeper {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> RecordingSleeper {
        RecordingSleeper::default()
    }

    /// Every delay requested so far, in order.
    ///
    /// # Panics
    ///
    /// Panics if a previous recording panicked (poisoned lock).
    #[must_use]
    pub fn slept(&self) -> Vec<Duration> {
        self.slept.lock().unwrap().clone()
    }
}

impl Sleeper for RecordingSleeper {
    fn sleep(&self, d: Duration) {
        self.slept.lock().unwrap().push(d);
    }
}

/// The delay before retry `attempt` (1-based): exponential backoff
/// `base · 2^(attempt-1)` with deterministic ±20% jitter seeded by
/// `jitter_seed ^ attempt`. Jitter decorrelates retry storms when many
/// supervisors share a fault (and a seed-per-supervisor), while the
/// explicit seed keeps every schedule reproducible.
#[must_use]
pub fn backoff_delay(base: Duration, attempt: u32, jitter_seed: u64) -> Duration {
    let exp = 2u32.saturating_pow(attempt.saturating_sub(1));
    let nominal = base.saturating_mul(exp);
    let mut rng = SplitMix64::new(jitter_seed ^ u64::from(attempt));
    let permille = 800 + rng.next() % 401; // 0.8x ..= 1.2x
    let nanos = nominal.as_nanos().saturating_mul(u128::from(permille)) / 1000;
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// The result of a supervised run.
#[derive(Clone, Debug)]
pub struct SupervisedOutcome {
    /// The (oracle-checked) distributed outcome. Its `resumed_from`
    /// field tells whether the final attempt resumed from a
    /// checkpoint, and from which superstep.
    pub outcome: DistOutcome,
    /// How many attempts were made (1 = first try succeeded).
    pub attempts: u32,
    /// The structured error of every failed attempt, in order —
    /// oracle divergences appear as
    /// [`EvalError::ScrutineeMismatch`]`("supervised replay", …)`.
    pub recovered: Vec<EvalError>,
    /// Postmortem bundles written for the failed attempts, in order
    /// (empty unless a postmortem directory is configured — see
    /// [`Supervisor::with_postmortem`] and [`POSTMORTEM_DIR_ENV`]).
    pub postmortems: Vec<PathBuf>,
}

/// Runs a [`DistMachine`] under supervision: each attempt executes
/// under the machine's barrier watchdog, failures are retried with
/// jittered exponential backoff — resuming from the latest valid
/// checkpoint when the machine checkpoints — and successes are
/// cross-checked against the lockstep [`BspMachine`] oracle before
/// being believed.
#[derive(Clone, Debug)]
pub struct Supervisor {
    machine: DistMachine,
    max_attempts: u32,
    backoff: Duration,
    jitter_seed: u64,
    sleeper: Arc<dyn Sleeper>,
    oracle_check: bool,
    telemetry: Telemetry,
    postmortem_dir: Option<PathBuf>,
}

impl Supervisor {
    /// Supervises `machine` with [`DEFAULT_MAX_ATTEMPTS`],
    /// [`DEFAULT_BACKOFF`], a real [`ThreadSleeper`], and the oracle
    /// check enabled.
    #[must_use]
    pub fn new(machine: DistMachine) -> Supervisor {
        let postmortem_dir = bsml_obs::env::path_knob(POSTMORTEM_DIR_ENV);
        // A postmortem is drained from the flight recorder, so the
        // env knob implies recording (at the default ring capacity)
        // unless the machine already configured it.
        let machine = if postmortem_dir.is_some() && machine.flight_capacity().is_none() {
            machine.with_flight_recorder(DEFAULT_FLIGHT_CAPACITY)
        } else {
            machine
        };
        Supervisor {
            machine,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            backoff: DEFAULT_BACKOFF,
            jitter_seed: 0,
            sleeper: Arc::new(ThreadSleeper),
            oracle_check: true,
            telemetry: Telemetry::disabled(),
            postmortem_dir,
        }
    }

    /// Overrides the attempt budget (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Supervisor {
        assert!(max_attempts > 0, "a supervisor needs at least one attempt");
        self.max_attempts = max_attempts;
        self
    }

    /// Overrides the base backoff (use [`Duration::ZERO`] in tests).
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Supervisor {
        self.backoff = backoff;
        self
    }

    /// Seeds the deterministic backoff jitter (see [`backoff_delay`]).
    #[must_use]
    pub fn with_jitter_seed(mut self, jitter_seed: u64) -> Supervisor {
        self.jitter_seed = jitter_seed;
        self
    }

    /// Replaces the [`Sleeper`] — inject a [`RecordingSleeper`] to
    /// assert backoff schedules without wall-clock sleeping.
    #[must_use]
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> Supervisor {
        self.sleeper = sleeper;
        self
    }

    /// Enables/disables the lockstep-oracle cross-check on success.
    /// On by default; disable only when the program is known to
    /// behave differently on the two backends (e.g. it communicates
    /// closures, which only the lockstep machine allows).
    #[must_use]
    pub fn with_oracle_check(mut self, check: bool) -> Supervisor {
        self.oracle_check = check;
        self
    }

    /// Writes a postmortem bundle into `dir` for every failed attempt
    /// (the crash-time black box of DESIGN.md §12), enabling the
    /// machine's flight recorder at [`DEFAULT_FLIGHT_CAPACITY`] if it
    /// is not already on. Bundle writes are best-effort: an
    /// unwritable directory is counted
    /// (`bsp.postmortem_write_errors`), never an error.
    #[must_use]
    pub fn with_postmortem(mut self, dir: impl Into<PathBuf>) -> Supervisor {
        self.postmortem_dir = Some(dir.into());
        if self.machine.flight_capacity().is_none() {
            self.machine = self.machine.with_flight_recorder(DEFAULT_FLIGHT_CAPACITY);
        }
        self
    }

    /// Attaches telemetry: retries bump `bsp.retries`, resumes bump
    /// `bsp.resumes` and `bsp.supersteps_replayed`, invalid
    /// checkpoints bump `bsp.checkpoints_corrupt`, and the supervised
    /// machine's own counters (`bsp.faults_injected`,
    /// `bsp.checkpoints_written`, …) record into the same sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Supervisor {
        self.machine = self.machine.with_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Runs `e` under supervision.
    ///
    /// # Errors
    ///
    /// * The oracle's own error, if the program fails
    ///   *deterministically* (fuel, division by zero, …) — replay
    ///   cannot recover a program that is simply wrong, so no
    ///   distributed attempt is made.
    /// * The last attempt's [`EvalError`] if every attempt failed.
    pub fn run(&self, e: &Expr) -> Result<SupervisedOutcome, EvalError> {
        // Determinism (§5, Thm. 2) means the oracle's verdict is THE
        // verdict: if the program fails on the lockstep machine it
        // fails on every faithful backend, and retrying is pointless.
        let oracle = if self.oracle_check {
            // The lockstep machine plays all p processors on ONE fuel
            // pool, so give it p× the distributed per-rank budget —
            // never under-fueled relative to the supervised machine,
            // still bounded on divergent programs.
            let oracle_fuel = self.machine.fuel().saturating_mul(self.machine.p() as u64);
            Some(
                BspMachine::new(BspParams::new(self.machine.p(), 1, 1))
                    .with_fuel(oracle_fuel)
                    .run(e)?,
            )
        } else {
            None
        };

        let checkpointing = self.machine.checkpoints().is_some();
        let mut recovered = Vec::new();
        let mut postmortems = Vec::new();
        // The furthest superstep any attempt completed — what a
        // fresh, unfaulted run would NOT have to redo. The difference
        // between it and the resume point is the replay debt.
        let mut furthest = 0u64;
        let mut full_restart_only = false;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                self.telemetry.counter_add("bsp.retries", 1);
                self.sleeper
                    .sleep(backoff_delay(self.backoff, attempt, self.jitter_seed));
            }
            let resume = if attempt > 0 && !full_restart_only {
                self.latest_valid_checkpoint(e)
            } else {
                None
            };
            if attempt > 0 && checkpointing {
                let from = resume.as_ref().map_or(0, |rp| rp.superstep);
                if resume.is_some() {
                    self.telemetry.counter_add("bsp.resumes", 1);
                }
                self.telemetry
                    .counter_add("bsp.supersteps_replayed", furthest.saturating_sub(from));
            }
            let resumed = resume.is_some();
            let (result, reached, flight) =
                self.machine.run_attempt_with_resume(e, attempt, resume);
            furthest = furthest.max(reached);
            match result {
                Ok(out) => match &oracle {
                    Some(report) if !agrees(report, &out) => {
                        // The recorded outcomes behind any checkpoint
                        // of this run are suspect too — never resume
                        // from them.
                        full_restart_only = true;
                        let err = EvalError::ScrutineeMismatch(
                            "supervised replay",
                            format!(
                                "attempt {attempt} diverged from the lockstep oracle: \
                                 got {} in {} superstep(s), expected {} in {}",
                                out.value, out.supersteps, report.value, report.cost.supersteps
                            ),
                        );
                        // A silent corruption deserves a black box as
                        // much as a loud crash does.
                        postmortems.extend(self.write_postmortem(e, attempt, &err, flight));
                        recovered.push(err);
                    }
                    _ => {
                        return Ok(SupervisedOutcome {
                            outcome: out,
                            attempts: attempt + 1,
                            recovered,
                            postmortems,
                        });
                    }
                },
                Err(err) => {
                    postmortems.extend(self.write_postmortem(e, attempt, &err, flight));
                    if resumed || matches!(err, EvalError::CheckpointDiverged { .. }) {
                        // A resumed attempt can only fail through a
                        // fresh fault or a *poisoned record* — a fault
                        // (e.g. a dropped message) whose effect was
                        // recorded into the outcome log before the cut
                        // committed and is now faithfully replayed on
                        // every resume. Integrity checks can't catch a
                        // consistently-recorded wrong history, so stop
                        // trusting the store: by determinism a full
                        // restart converges in either case.
                        full_restart_only = true;
                    }
                    recovered.push(err);
                }
            }
        }
        Err(recovered.last().cloned().expect("at least one attempt ran"))
    }

    /// Writes one failed attempt's flight log as a postmortem bundle
    /// (no-op without a configured directory or an enabled recorder).
    /// Best-effort on purpose: a failing run must never be turned
    /// into a panicking one by its own black box, so every i/o error
    /// here is swallowed into a counter.
    fn write_postmortem(
        &self,
        e: &Expr,
        attempt: u32,
        err: &EvalError,
        flight: Option<FlightLog>,
    ) -> Option<PathBuf> {
        let dir = self.postmortem_dir.as_ref()?;
        let log = flight?;
        let (error_rank, error_superstep) = error_coordinate(err);
        let bundle = PostmortemBundle::new(
            self.machine.p(),
            attempt,
            err.to_string(),
            error_rank,
            error_superstep,
            log,
        );
        let fingerprint = program_fingerprint(e, self.machine.p());
        let path = dir.join(format!(
            "pm-{fingerprint:016x}-p{}-attempt{attempt}.bsmlpm",
            self.machine.p()
        ));
        let written = std::fs::create_dir_all(dir).is_ok() && bundle.write_to(&path).is_ok();
        if written {
            self.telemetry.counter_add("bsp.postmortems_written", 1);
            Some(path)
        } else {
            self.telemetry.counter_add("bsp.postmortem_write_errors", 1);
            None
        }
    }

    /// Walks the store's generations newest-first and returns the
    /// first one that passes integrity + consistency verification.
    /// Uncommitted or foreign (other program / other `p`) generations
    /// are skipped silently; anything else that fails to load is
    /// *corruption* and is counted before falling through to the
    /// next-older generation.
    fn latest_valid_checkpoint(&self, e: &Expr) -> Option<ResumePoint> {
        let (_, store) = self.machine.checkpoints()?;
        let p = self.machine.p();
        let fingerprint = program_fingerprint(e, p);
        let mut generations = store.generations();
        generations.sort_unstable();
        for generation in generations.into_iter().rev() {
            match store.load(generation, p, fingerprint) {
                Ok(frames) => {
                    return Some(ResumePoint {
                        superstep: generation,
                        frames,
                    })
                }
                Err(
                    CheckpointError::NotCommitted { .. }
                    | CheckpointError::FingerprintMismatch { .. },
                ) => {}
                Err(_) => {
                    self.telemetry.counter_add("bsp.checkpoints_corrupt", 1);
                }
            }
        }
        None
    }
}

/// Whether a distributed outcome reproduces the lockstep oracle:
/// same value, same superstep count, same total communication volume
/// (the h-relations, summed — the per-superstep split is already
/// identical by construction when these totals and the superstep
/// count agree on a deterministic program).
fn agrees(oracle: &crate::machine::RunReport, out: &DistOutcome) -> bool {
    let oracle_words: u64 = oracle
        .trace
        .iter()
        .map(|r| r.sent.iter().sum::<u64>())
        .sum();
    oracle.value.to_string() == out.value.to_string()
        && oracle.cost.supersteps == out.supersteps
        && oracle_words == out.total_words_sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointPolicy, MemoryStore};
    use crate::faults::FaultPlan;
    use bsml_syntax::parse;

    const PUT: &str = "let r = put (mkpar (fun j -> fun i -> j + i)) in
                       apply (mkpar (fun i -> fun t -> t i), r)";

    // Three put barriers: chained total exchanges, each round
    // re-exchanging the previous round's per-rank sums.
    const EXCHANGE_3: &str = "
        let sum = mkpar (fun i -> fun t ->
            let acc = ref 0 in
            (for j = 0 to bsp_p () - 1 do acc := !acc + t j done);
            !acc) in
        let next = fun v -> put (apply (mkpar (fun j -> fun v -> fun i -> v + j + 1), v)) in
        let v1 = apply (sum, put (mkpar (fun j -> fun i -> j + i + 1))) in
        let v2 = apply (sum, next v1) in
        apply (sum, next v2)";

    fn supervisor(machine: DistMachine) -> Supervisor {
        Supervisor::new(machine).with_backoff(Duration::ZERO)
    }

    #[test]
    fn clean_runs_succeed_first_try() {
        let e = parse(PUT).unwrap();
        let out = supervisor(DistMachine::new(4)).run(&e).unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.recovered.is_empty());
        assert_eq!(out.outcome.value.to_string(), "<|0, 2, 4, 6|>");
        assert_eq!(out.outcome.resumed_from, None);
    }

    #[test]
    fn crash_is_recovered_by_replay() {
        let e = parse(PUT).unwrap();
        let machine = DistMachine::new(4).with_faults(FaultPlan::new().crash(3, 0));
        let out = supervisor(machine).run(&e).unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(
            out.recovered,
            vec![EvalError::InjectedFault {
                rank: 3,
                superstep: 0
            }]
        );
        assert_eq!(out.outcome.value.to_string(), "<|0, 2, 4, 6|>");
    }

    #[test]
    fn crash_is_recovered_by_checkpoint_resume() {
        let e = parse(EXCHANGE_3).unwrap();
        let store = Arc::new(MemoryStore::new());
        let tel = Telemetry::enabled_logical();
        // Crash at superstep 2: supersteps 0 and 1 are checkpointed
        // (k = 1), so the retry resumes from generation 2 and replays
        // nothing.
        let machine = DistMachine::new(4)
            .with_faults(FaultPlan::new().crash(2, 2))
            .with_checkpoints(CheckpointPolicy::every(1), store);
        let out = supervisor(machine)
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(out.outcome.resumed_from, Some(2));
        assert_eq!(tel.counter_value("bsp.resumes"), 1);
        assert_eq!(tel.counter_value("bsp.supersteps_replayed"), 0);
        assert!(tel.counter_value("bsp.checkpoints_written") >= 2);
        assert_eq!(tel.counter_value("bsp.checkpoints_corrupt"), 0);
        // The resumed value matches the oracle (checked inside run).
        assert_eq!(out.outcome.supersteps, 3);
    }

    #[test]
    fn transport_failure_is_recovered_on_the_clean_retry() {
        use crate::transport::{LossyConfig, NetTuning, TransportConfig};
        // Attempt 0 runs on a transport that loses every frame: the
        // retransmit budget runs out and the attempt fails loudly with
        // TransportFailure. `armed_attempts(1)` disarms the chaos for
        // the retry, which runs on the clean fast path and converges.
        let e = parse(PUT).unwrap();
        let machine = DistMachine::new(4)
            .with_transport(TransportConfig::Lossy(
                LossyConfig::new(11).drop(1000).armed_attempts(1),
            ))
            .with_net_tuning(NetTuning {
                retransmit_after: 2,
                retransmit_budget: 3,
                poll_sleep: Duration::ZERO,
                ..NetTuning::default()
            });
        let out = supervisor(machine).run(&e).unwrap();
        assert_eq!(out.attempts, 2);
        assert!(matches!(
            out.recovered[0],
            EvalError::TransportFailure { .. }
        ));
        assert_eq!(out.outcome.value.to_string(), "<|0, 2, 4, 6|>");
    }

    #[test]
    fn dropped_message_is_caught_by_the_oracle() {
        // Each rank reads its right neighbour's message; dropping
        // 1 → 0 silently corrupts rank 0's value. No error is raised —
        // only the oracle cross-check notices, and the retry repairs.
        let e = parse(
            "let r = put (mkpar (fun j -> fun i -> j * 10 + i)) in
             apply (mkpar (fun i -> fun t -> t ((i + 1) mod (bsp_p ()))), r)",
        )
        .unwrap();
        let machine = DistMachine::new(4).with_faults(FaultPlan::new().drop_message(1, 0, 0));
        let out = supervisor(machine).run(&e).unwrap();
        assert_eq!(out.attempts, 2);
        assert!(matches!(
            out.recovered[0],
            EvalError::ScrutineeMismatch("supervised replay", _)
        ));
        assert_eq!(out.outcome.value.to_string(), "<|10, 21, 32, 3|>");
    }

    #[test]
    fn oracle_divergence_demotes_to_full_restart() {
        // Same dropped message, but with checkpointing on: the store
        // now holds outcomes recorded from the corrupted attempt. The
        // retry must NOT resume from them.
        let e = parse(
            "let r = put (mkpar (fun j -> fun i -> j * 10 + i)) in
             apply (mkpar (fun i -> fun t -> t ((i + 1) mod (bsp_p ()))), r)",
        )
        .unwrap();
        let store = Arc::new(MemoryStore::new());
        let machine = DistMachine::new(4)
            .with_faults(FaultPlan::new().drop_message(1, 0, 0))
            .with_checkpoints(CheckpointPolicy::every(1), store);
        let out = supervisor(machine).run(&e).unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(out.outcome.resumed_from, None);
        assert_eq!(out.outcome.value.to_string(), "<|10, 21, 32, 3|>");
    }

    #[test]
    fn attempts_exhaust_on_persistent_faults() {
        let e = parse(PUT).unwrap();
        // Crash armed on every attempt the supervisor will make.
        let plan = FaultPlan::new()
            .crash(0, 0)
            .crash(0, 0)
            .on_attempt(1)
            .crash(0, 0)
            .on_attempt(2);
        let machine = DistMachine::new(2).with_faults(plan);
        let err = supervisor(machine).run(&e).unwrap_err();
        assert_eq!(
            err,
            EvalError::InjectedFault {
                rank: 0,
                superstep: 0
            }
        );
    }

    #[test]
    fn deterministic_program_errors_are_not_retried() {
        let e = parse("1 / 0").unwrap();
        let tel = Telemetry::enabled_logical();
        let err = supervisor(DistMachine::new(2))
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
        // No distributed attempt, hence no retries.
        assert_eq!(tel.counter_value("bsp.retries"), 0);
    }

    #[test]
    fn retries_are_counted() {
        let e = parse(PUT).unwrap();
        let tel = Telemetry::enabled_logical();
        let machine = DistMachine::new(2).with_faults(FaultPlan::new().crash(1, 0));
        let out = supervisor(machine)
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(tel.counter_value("bsp.retries"), 1);
        assert_eq!(tel.counter_value("bsp.faults_injected"), 1);
    }

    #[test]
    fn backoff_schedule_is_exact_and_jittered() {
        let e = parse(PUT).unwrap();
        // Crash every attempt so all max_attempts run (and sleep).
        let plan = FaultPlan::new()
            .crash(0, 0)
            .crash(0, 0)
            .on_attempt(1)
            .crash(0, 0)
            .on_attempt(2)
            .crash(0, 0)
            .on_attempt(3);
        let machine = DistMachine::new(2).with_faults(plan);
        let sleeper = Arc::new(RecordingSleeper::new());
        let base = Duration::from_millis(10);
        let seed = 0xB5F_u64;
        let err = Supervisor::new(machine)
            .with_max_attempts(4)
            .with_backoff(base)
            .with_jitter_seed(seed)
            .with_sleeper(Arc::<RecordingSleeper>::clone(&sleeper))
            .run(&e)
            .unwrap_err();
        assert!(matches!(err, EvalError::InjectedFault { .. }));
        let slept = sleeper.slept();
        // Retries 1..=3 sleep exactly the jittered schedule — and no
        // wall-clock time passed, because the sleeper only records.
        assert_eq!(
            slept,
            vec![
                backoff_delay(base, 1, seed),
                backoff_delay(base, 2, seed),
                backoff_delay(base, 3, seed),
            ]
        );
        // Each delay is within ±20% of its nominal 10ms·2^(k-1).
        for (k, d) in slept.iter().enumerate() {
            let nominal = base.saturating_mul(2u32.pow(k as u32));
            assert!(*d >= nominal.mul_f64(0.8), "retry {k}: {d:?} too short");
            assert!(*d <= nominal.mul_f64(1.2), "retry {k}: {d:?} too long");
        }
    }

    #[test]
    fn backoff_delay_is_deterministic_per_seed() {
        let base = Duration::from_millis(20);
        assert_eq!(backoff_delay(base, 2, 7), backoff_delay(base, 2, 7));
        // Different seeds give different jitter (with overwhelming
        // probability for these particular constants — pinned here).
        assert_ne!(backoff_delay(base, 2, 7), backoff_delay(base, 2, 8));
        // Zero base stays zero regardless of jitter.
        assert_eq!(backoff_delay(Duration::ZERO, 3, 9), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = Supervisor::new(DistMachine::new(1)).with_max_attempts(0);
    }
}
