//! Supervised execution of the distributed machine: watchdog,
//! retries with exponential backoff, and an oracle cross-check.
//!
//! **Why naive replay is sound.** The paper's semantics are
//! deterministic and confluent (§5, Theorem 2): a mini-BSML program's
//! value and per-superstep h-relations are a pure function of the
//! program and `p`. A distributed attempt that fails — a crashed
//! peer, a lost message, a barrier timeout — can therefore simply be
//! *re-run from scratch*; there is no partial state worth salvaging
//! and no risk that the retry computes something different. The
//! supervisor leans on this twice: it retries failed attempts, and it
//! asserts on success that the distributed answer matches the
//! lockstep [`BspMachine`] oracle (value, superstep count, and total
//! communication volume) — a *silently* corrupted run (e.g. a dropped
//! message that produced a plausible-but-wrong value) is thereby
//! detected and retried like any other failure.
//!
//! ```
//! use bsml_bsp::distributed::DistMachine;
//! use bsml_bsp::faults::FaultPlan;
//! use bsml_bsp::supervisor::Supervisor;
//! use bsml_syntax::parse;
//!
//! // Rank 1 crashes in superstep 0 of the first attempt; the
//! // supervised retry replays clean and converges.
//! let machine = DistMachine::new(4).with_faults(FaultPlan::new().crash(1, 0));
//! let out = Supervisor::new(machine).run(&parse(
//!     "let r = put (mkpar (fun j -> fun i -> j * j)) in
//!      apply (mkpar (fun i -> fun t -> t i), r)")?)?;
//! assert_eq!(out.outcome.value.to_string(), "<|0, 1, 4, 9|>");
//! assert_eq!(out.attempts, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::time::Duration;

use bsml_ast::Expr;
use bsml_eval::EvalError;
use bsml_obs::Telemetry;

use crate::distributed::{DistMachine, DistOutcome};
use crate::machine::{BspMachine, BspParams};

/// Default maximum number of attempts (1 initial + 2 retries).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Default base backoff; attempt `k` sleeps `base · 2^(k-1)`.
pub const DEFAULT_BACKOFF: Duration = Duration::from_millis(5);

/// The result of a supervised run.
#[derive(Clone, Debug)]
pub struct SupervisedOutcome {
    /// The (oracle-checked) distributed outcome.
    pub outcome: DistOutcome,
    /// How many attempts were made (1 = first try succeeded).
    pub attempts: u32,
    /// The structured error of every failed attempt, in order —
    /// oracle divergences appear as
    /// [`EvalError::ScrutineeMismatch`]`("supervised replay", …)`.
    pub recovered: Vec<EvalError>,
}

/// Runs a [`DistMachine`] under supervision: each attempt executes
/// under the machine's barrier watchdog, failures are retried with
/// exponential backoff, and successes are cross-checked against the
/// lockstep [`BspMachine`] oracle before being believed.
#[derive(Clone, Debug)]
pub struct Supervisor {
    machine: DistMachine,
    max_attempts: u32,
    backoff: Duration,
    oracle_check: bool,
    telemetry: Telemetry,
}

impl Supervisor {
    /// Supervises `machine` with [`DEFAULT_MAX_ATTEMPTS`],
    /// [`DEFAULT_BACKOFF`], and the oracle check enabled.
    #[must_use]
    pub fn new(machine: DistMachine) -> Supervisor {
        Supervisor {
            machine,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            backoff: DEFAULT_BACKOFF,
            oracle_check: true,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Overrides the attempt budget (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Supervisor {
        assert!(max_attempts > 0, "a supervisor needs at least one attempt");
        self.max_attempts = max_attempts;
        self
    }

    /// Overrides the base backoff (use [`Duration::ZERO`] in tests).
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Supervisor {
        self.backoff = backoff;
        self
    }

    /// Enables/disables the lockstep-oracle cross-check on success.
    /// On by default; disable only when the program is known to
    /// behave differently on the two backends (e.g. it communicates
    /// closures, which only the lockstep machine allows).
    #[must_use]
    pub fn with_oracle_check(mut self, check: bool) -> Supervisor {
        self.oracle_check = check;
        self
    }

    /// Attaches telemetry: retries bump `bsp.retries`, and the
    /// supervised machine's own counters (`bsp.faults_injected`,
    /// `bsp.barrier_timeouts`, …) record into the same sink.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Supervisor {
        self.machine = self.machine.with_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// Runs `e` under supervision.
    ///
    /// # Errors
    ///
    /// * The oracle's own error, if the program fails
    ///   *deterministically* (fuel, division by zero, …) — replay
    ///   cannot recover a program that is simply wrong, so no
    ///   distributed attempt is made.
    /// * The last attempt's [`EvalError`] if every attempt failed.
    pub fn run(&self, e: &Expr) -> Result<SupervisedOutcome, EvalError> {
        // Determinism (§5, Thm. 2) means the oracle's verdict is THE
        // verdict: if the program fails on the lockstep machine it
        // fails on every faithful backend, and retrying is pointless.
        let oracle = if self.oracle_check {
            // The lockstep machine plays all p processors on ONE fuel
            // pool, so give it p× the distributed per-rank budget —
            // never under-fueled relative to the supervised machine,
            // still bounded on divergent programs.
            let oracle_fuel = self.machine.fuel().saturating_mul(self.machine.p() as u64);
            Some(
                BspMachine::new(BspParams::new(self.machine.p(), 1, 1))
                    .with_fuel(oracle_fuel)
                    .run(e)?,
            )
        } else {
            None
        };

        let mut recovered = Vec::new();
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                self.telemetry.counter_add("bsp.retries", 1);
                let exp = 2u32.saturating_pow(attempt - 1);
                std::thread::sleep(self.backoff.saturating_mul(exp));
            }
            match self.machine.run_attempt(e, attempt) {
                Ok(out) => match &oracle {
                    Some(report) if !agrees(report, &out) => {
                        recovered.push(EvalError::ScrutineeMismatch(
                            "supervised replay",
                            format!(
                                "attempt {attempt} diverged from the lockstep oracle: \
                                 got {} in {} superstep(s), expected {} in {}",
                                out.value, out.supersteps, report.value, report.cost.supersteps
                            ),
                        ));
                    }
                    _ => {
                        return Ok(SupervisedOutcome {
                            outcome: out,
                            attempts: attempt + 1,
                            recovered,
                        });
                    }
                },
                Err(err) => recovered.push(err),
            }
        }
        Err(recovered.last().cloned().expect("at least one attempt ran"))
    }
}

/// Whether a distributed outcome reproduces the lockstep oracle:
/// same value, same superstep count, same total communication volume
/// (the h-relations, summed — the per-superstep split is already
/// identical by construction when these totals and the superstep
/// count agree on a deterministic program).
fn agrees(oracle: &crate::machine::RunReport, out: &DistOutcome) -> bool {
    let oracle_words: u64 = oracle
        .trace
        .iter()
        .map(|r| r.sent.iter().sum::<u64>())
        .sum();
    oracle.value.to_string() == out.value.to_string()
        && oracle.cost.supersteps == out.supersteps
        && oracle_words == out.total_words_sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use bsml_syntax::parse;

    const PUT: &str = "let r = put (mkpar (fun j -> fun i -> j + i)) in
                       apply (mkpar (fun i -> fun t -> t i), r)";

    fn supervisor(machine: DistMachine) -> Supervisor {
        Supervisor::new(machine).with_backoff(Duration::ZERO)
    }

    #[test]
    fn clean_runs_succeed_first_try() {
        let e = parse(PUT).unwrap();
        let out = supervisor(DistMachine::new(4)).run(&e).unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.recovered.is_empty());
        assert_eq!(out.outcome.value.to_string(), "<|0, 2, 4, 6|>");
    }

    #[test]
    fn crash_is_recovered_by_replay() {
        let e = parse(PUT).unwrap();
        let machine = DistMachine::new(4).with_faults(FaultPlan::new().crash(3, 0));
        let out = supervisor(machine).run(&e).unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(
            out.recovered,
            vec![EvalError::InjectedFault {
                rank: 3,
                superstep: 0
            }]
        );
        assert_eq!(out.outcome.value.to_string(), "<|0, 2, 4, 6|>");
    }

    #[test]
    fn dropped_message_is_caught_by_the_oracle() {
        // Each rank reads its right neighbour's message; dropping
        // 1 → 0 silently corrupts rank 0's value. No error is raised —
        // only the oracle cross-check notices, and the retry repairs.
        let e = parse(
            "let r = put (mkpar (fun j -> fun i -> j * 10 + i)) in
             apply (mkpar (fun i -> fun t -> t ((i + 1) mod (bsp_p ()))), r)",
        )
        .unwrap();
        let machine = DistMachine::new(4).with_faults(FaultPlan::new().drop_message(1, 0, 0));
        let out = supervisor(machine).run(&e).unwrap();
        assert_eq!(out.attempts, 2);
        assert!(matches!(
            out.recovered[0],
            EvalError::ScrutineeMismatch("supervised replay", _)
        ));
        assert_eq!(out.outcome.value.to_string(), "<|10, 21, 32, 3|>");
    }

    #[test]
    fn attempts_exhaust_on_persistent_faults() {
        let e = parse(PUT).unwrap();
        // Crash armed on every attempt the supervisor will make.
        let plan = FaultPlan::new()
            .crash(0, 0)
            .crash(0, 0)
            .on_attempt(1)
            .crash(0, 0)
            .on_attempt(2);
        let machine = DistMachine::new(2).with_faults(plan);
        let err = supervisor(machine).run(&e).unwrap_err();
        assert_eq!(
            err,
            EvalError::InjectedFault {
                rank: 0,
                superstep: 0
            }
        );
    }

    #[test]
    fn deterministic_program_errors_are_not_retried() {
        let e = parse("1 / 0").unwrap();
        let tel = Telemetry::enabled_logical();
        let err = supervisor(DistMachine::new(2))
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
        // No distributed attempt, hence no retries.
        assert_eq!(tel.counter_value("bsp.retries"), 0);
    }

    #[test]
    fn retries_are_counted() {
        let e = parse(PUT).unwrap();
        let tel = Telemetry::enabled_logical();
        let machine = DistMachine::new(2).with_faults(FaultPlan::new().crash(1, 0));
        let out = supervisor(machine)
            .with_telemetry(tel.clone())
            .run(&e)
            .unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(tel.counter_value("bsp.retries"), 1);
        assert_eq!(tel.counter_value("bsp.faults_injected"), 1);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = Supervisor::new(DistMachine::new(1)).with_max_attempts(0);
    }
}
