//! Superstep-granularity checkpointing for the distributed machine.
//!
//! Every BSP barrier is a globally-consistent cut: when the final
//! barrier of a superstep completes, *every* rank has finished that
//! superstep and none has started the next. The distributed machine
//! exploits this (DESIGN.md §9): every `k` completed supersteps each
//! rank *stages* a [`RankFrame`] — its externally-visible state at the
//! cut — and the **last** rank to arrive at the barrier *commits* the
//! generation while it still holds the barrier lock. A committed
//! generation therefore always contains all `p` frames of the same
//! cut; a crash between staging and commit leaves an invisible,
//! harmless partial generation.
//!
//! A frame records the rank's fuel remaining, its communication
//! statistics, and the ordered log of communication outcomes (the
//! rows delivered by each `put`, the boolean chosen by each
//! `if‥at‥`). Because mini-BSML is deterministic (paper §5, Thm. 2),
//! this log is a complete recovery recipe: a resumed rank re-runs its
//! local computation, consuming recorded outcomes instead of the
//! network for the checkpointed prefix, and goes live at the cut. The
//! fuel and statistics in the frame double as a divergence detector —
//! replay must land on them *exactly*, or the checkpoint is rejected
//! ([`bsml_eval::EvalError::CheckpointDiverged`]) and recovery falls
//! back to a full restart. A corrupted checkpoint can cost time, never
//! correctness.
//!
//! Frames are serialized with a length prefix and an FNV-1a trailer
//! checksum — the same [`crate::wire`] value codec and checksum the
//! network transport speaks, so there is one serialized form on the
//! wire and at rest; the file-backed store writes one file per
//! generation under a run directory, with a commit-marker trailer, so
//! any byte-flip is caught at load and the loader can fall down the
//! generation ladder.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use bsml_ast::Expr;
use bsml_eval::PortableValue;

use crate::storage::{Disk, StorageError};
pub use crate::wire::fnv1a;
use crate::wire::{decode_value, encode_value, put_u64, Reader, WireError};

/// Leading magic of a serialized frame.
const FRAME_MAGIC: u64 = 0x4253_4d4c_4652_414d; // "BSMLFRAM"
/// Leading magic of a generation file.
const FILE_MAGIC: u64 = 0x4253_4d4c_434b_5031; // "BSMLCKP1"
/// Trailing commit marker of a generation file — its presence *is*
/// the commit: a file without it was interrupted mid-write and is
/// treated as never having existed.
const COMMIT_MAGIC: u64 = 0x4253_4d4c_444f_4e45; // "BSMLDONE"

/// Fingerprint binding a checkpoint to one (program, p) pair: frames
/// written for a different program or machine size never resume this
/// one. Same-program stale checkpoints are *sound* to resume by
/// determinism, so the store is never cleared implicitly.
#[must_use]
pub fn program_fingerprint(e: &Expr, p: usize) -> u64 {
    fnv1a(e.to_string().as_bytes()) ^ (p as u64)
}

/// One recorded communication outcome — everything a superstep's
/// synchronization contributed to this rank's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncOutcome {
    /// A `put` barrier: the full delivered table (entry `j` is the
    /// message from rank `j`, self-message included).
    Put {
        /// The delivered messages, indexed by sender.
        delivered: Vec<PortableValue>,
    },
    /// An `if‥at‥` barrier: the broadcast boolean.
    IfAt {
        /// The boolean chosen at the deciding rank.
        chosen: bool,
    },
}

/// One rank's state at a barrier cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankFrame {
    /// [`program_fingerprint`] of the run that wrote the frame.
    pub fingerprint: u64,
    /// The rank this frame belongs to.
    pub rank: usize,
    /// Completed supersteps at the cut (= the generation).
    pub superstep: u64,
    /// Evaluator fuel remaining at the cut — the replay fingerprint.
    pub fuel_left: u64,
    /// Words sent so far (self-messages excluded).
    pub sent_words: u64,
    /// Words received so far (self-messages excluded).
    pub received_words: u64,
    /// `put` barriers completed so far.
    pub puts: u64,
    /// `if‥at‥` barriers completed so far.
    pub ifats: u64,
    /// The ordered outcome log of supersteps `0..superstep`.
    pub outcomes: Vec<SyncOutcome>,
}

/// Why a checkpoint operation failed. Load-side failures make the
/// generation unusable; the caller falls back down the ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The bytes do not parse as a frame/generation.
    Malformed(String),
    /// The frame's FNV trailer does not match its contents.
    ChecksumMismatch {
        /// The generation being loaded.
        generation: u64,
        /// The rank whose frame failed verification.
        rank: usize,
    },
    /// The frame belongs to a different (program, p) pair.
    FingerprintMismatch {
        /// The generation being loaded.
        generation: u64,
    },
    /// Commit was requested before all `p` frames were staged.
    Incomplete {
        /// The generation being committed.
        generation: u64,
        /// Frames staged so far.
        have: usize,
        /// Frames required.
        need: usize,
    },
    /// The generation was never committed (or its commit marker is
    /// missing — an interrupted write).
    NotCommitted {
        /// The requested generation.
        generation: u64,
    },
    /// The file backend hit an I/O error.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::ChecksumMismatch { generation, rank } => write!(
                f,
                "checkpoint generation {generation}: rank {rank} frame checksum mismatch"
            ),
            CheckpointError::FingerprintMismatch { generation } => write!(
                f,
                "checkpoint generation {generation} belongs to a different program"
            ),
            CheckpointError::Incomplete {
                generation,
                have,
                need,
            } => write!(
                f,
                "checkpoint generation {generation} incomplete: {have}/{need} frames staged"
            ),
            CheckpointError::NotCommitted { generation } => {
                write!(f, "checkpoint generation {generation} was never committed")
            }
            CheckpointError::Io(what) => write!(f, "checkpoint I/O error: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<StorageError> for CheckpointError {
    /// Storage-backend failures (including injected faults) surface as
    /// [`CheckpointError::Io`]: typed, and always leaving the previous
    /// committed generation intact.
    fn from(e: StorageError) -> CheckpointError {
        CheckpointError::Io(e.to_string())
    }
}

impl From<WireError> for CheckpointError {
    /// Codec-level failures (truncation, bad tags, count overflow)
    /// surface as [`CheckpointError::Malformed`]; checksum checking
    /// stays checkpoint-side so the error can carry its coordinates.
    fn from(e: WireError) -> CheckpointError {
        CheckpointError::Malformed(e.to_string())
    }
}

/// How often the distributed machine checkpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    interval: u64,
}

impl CheckpointPolicy {
    /// Checkpoint every `k` completed supersteps (`k = 1` checkpoints
    /// at every barrier).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn every(k: u64) -> CheckpointPolicy {
        assert!(k > 0, "a checkpoint interval must be at least 1");
        CheckpointPolicy { interval: k }
    }

    /// The interval `k`.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }
}

impl Default for CheckpointPolicy {
    /// The default policy checkpoints at every barrier (`k = 1`).
    fn default() -> CheckpointPolicy {
        CheckpointPolicy::every(1)
    }
}

/// A consistent cut to resume from: the committed generation and all
/// `p` verified frames, indexed by rank.
#[derive(Clone, Debug)]
pub struct ResumePoint {
    /// The generation (= supersteps completed at the cut).
    pub superstep: u64,
    /// One verified frame per rank, in rank order.
    pub frames: Vec<RankFrame>,
}

/// Where checkpoint frames live.
///
/// Staging and commit are split so that the commit can run inside the
/// barrier (under its lock, by the last arriving rank): a generation
/// becomes visible to [`CheckpointStore::load`] only once every rank's
/// frame of the *same cut* is staged — the consistency argument of
/// DESIGN.md §9.
pub trait CheckpointStore: fmt::Debug + Send + Sync {
    /// Stages one rank's frame for generation `frame.superstep`.
    /// Returns the staged frame's encoded size in bytes.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] from the backend.
    fn stage(&self, frame: &RankFrame) -> Result<u64, CheckpointError>;

    /// Commits generation `generation`, making it loadable. Returns
    /// the total committed bytes.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Incomplete`] if fewer than `p` frames are
    /// staged; [`CheckpointError::Io`] from the backend.
    fn commit(&self, generation: u64, p: usize) -> Result<u64, CheckpointError>;

    /// Committed generations, ascending.
    fn generations(&self) -> Vec<u64>;

    /// Loads and verifies all `p` frames of a committed generation:
    /// structure, per-frame checksum, fingerprint, and cut coherence
    /// (every frame at `generation` with `rank` = its index).
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`]; the caller treats the generation as
    /// unusable and falls back down the ladder.
    fn load(
        &self,
        generation: u64,
        p: usize,
        fingerprint: u64,
    ) -> Result<Vec<RankFrame>, CheckpointError>;

    /// Discards every staged and committed generation.
    fn clear(&self);
}

/// The latest committed generation of a store, if any.
#[must_use]
pub fn latest_generation(store: &dyn CheckpointStore) -> Option<u64> {
    store.generations().last().copied()
}

// ---------------------------------------------------------------------------
// Frame codec (value serialization shared with crate::wire)
// ---------------------------------------------------------------------------

impl RankFrame {
    /// Serializes the frame: magic, header, outcome log, FNV-1a
    /// trailer over everything preceding it.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        put_u64(&mut out, FRAME_MAGIC);
        put_u64(&mut out, self.fingerprint);
        put_u64(&mut out, self.rank as u64);
        put_u64(&mut out, self.superstep);
        put_u64(&mut out, self.fuel_left);
        put_u64(&mut out, self.sent_words);
        put_u64(&mut out, self.received_words);
        put_u64(&mut out, self.puts);
        put_u64(&mut out, self.ifats);
        put_u64(&mut out, self.outcomes.len() as u64);
        for outcome in &self.outcomes {
            match outcome {
                SyncOutcome::Put { delivered } => {
                    out.push(0);
                    put_u64(&mut out, delivered.len() as u64);
                    for v in delivered {
                        encode_value(&mut out, v);
                    }
                }
                SyncOutcome::IfAt { chosen } => {
                    out.push(1);
                    out.push(u8::from(*chosen));
                }
            }
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses and verifies one frame (magic, structure, checksum).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] or a checksum mismatch (reported
    /// with `generation`/`rank` taken from the *claimed* header so the
    /// ladder can name the culprit).
    pub fn decode(bytes: &[u8]) -> Result<RankFrame, CheckpointError> {
        if bytes.len() < 8 + 8 {
            return Err(CheckpointError::Malformed("frame too short".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let claimed = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let mut r = Reader::new(body);
        if r.u64()? != FRAME_MAGIC {
            return Err(CheckpointError::Malformed("bad frame magic".into()));
        }
        let fingerprint = r.u64()?;
        let rank = r.u64()? as usize;
        let superstep = r.u64()?;
        if fnv1a(body) != claimed {
            // Checked after the header parse so the error can carry a
            // best-effort coordinate, but before trusting any count.
            return Err(CheckpointError::ChecksumMismatch {
                generation: superstep,
                rank,
            });
        }
        let fuel_left = r.u64()?;
        let sent_words = r.u64()?;
        let received_words = r.u64()?;
        let puts = r.u64()?;
        let ifats = r.u64()?;
        let n = r.count()?;
        let mut outcomes = Vec::with_capacity(n);
        for _ in 0..n {
            outcomes.push(match r.u8()? {
                0 => {
                    let m = r.count()?;
                    let mut delivered = Vec::with_capacity(m);
                    for _ in 0..m {
                        delivered.push(decode_value(&mut r)?);
                    }
                    SyncOutcome::Put { delivered }
                }
                1 => SyncOutcome::IfAt {
                    chosen: r.u8()? != 0,
                },
                tag => {
                    return Err(CheckpointError::Malformed(format!(
                        "unknown outcome tag {tag}"
                    )))
                }
            });
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after outcome log",
                r.remaining()
            )));
        }
        Ok(RankFrame {
            fingerprint,
            rank,
            superstep,
            fuel_left,
            sent_words,
            received_words,
            puts,
            ifats,
            outcomes,
        })
    }
}

/// Verifies that decoded frames form the consistent cut they claim:
/// one frame per rank in order, all at `generation`, all of this
/// program, each with a complete outcome log (one outcome per
/// completed superstep).
fn verify_cut(
    frames: Vec<RankFrame>,
    generation: u64,
    p: usize,
    fingerprint: u64,
) -> Result<Vec<RankFrame>, CheckpointError> {
    if frames.len() != p {
        return Err(CheckpointError::Incomplete {
            generation,
            have: frames.len(),
            need: p,
        });
    }
    for (i, f) in frames.iter().enumerate() {
        if f.fingerprint != fingerprint {
            return Err(CheckpointError::FingerprintMismatch { generation });
        }
        if f.rank != i || f.superstep != generation {
            return Err(CheckpointError::Malformed(format!(
                "frame {i} claims (rank {}, superstep {}), expected (rank {i}, superstep \
                 {generation})",
                f.rank, f.superstep
            )));
        }
        if f.outcomes.len() as u64 != generation || f.puts + f.ifats != generation {
            return Err(CheckpointError::Malformed(format!(
                "rank {i}: outcome log of {} entries ({} puts + {} ifats) for {generation} \
                 supersteps",
                f.outcomes.len(),
                f.puts,
                f.ifats
            )));
        }
    }
    Ok(frames)
}

// ---------------------------------------------------------------------------
// In-memory store
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemoryState {
    /// Staged frame bytes per generation, indexed by rank.
    staged: BTreeMap<u64, BTreeMap<usize, Vec<u8>>>,
    /// Committed generations (bytes moved out of `staged`).
    committed: BTreeMap<u64, Vec<Vec<u8>>>,
}

/// A heap-backed [`CheckpointStore`] — the default for tests and
/// single-process runs. Frames are kept *encoded*, so load exercises
/// the same verification path as the file backend.
#[derive(Debug, Default)]
pub struct MemoryStore {
    state: Mutex<MemoryState>,
}

impl MemoryStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CheckpointStore for MemoryStore {
    fn stage(&self, frame: &RankFrame) -> Result<u64, CheckpointError> {
        let bytes = frame.encode();
        let len = bytes.len() as u64;
        lock(&self.state)
            .staged
            .entry(frame.superstep)
            .or_default()
            .insert(frame.rank, bytes);
        Ok(len)
    }

    fn commit(&self, generation: u64, p: usize) -> Result<u64, CheckpointError> {
        let mut st = lock(&self.state);
        let have = st.staged.get(&generation).map_or(0, BTreeMap::len);
        if have != p {
            return Err(CheckpointError::Incomplete {
                generation,
                have,
                need: p,
            });
        }
        let staged = st.staged.remove(&generation).expect("checked non-empty");
        let frames: Vec<Vec<u8>> = staged.into_values().collect();
        let bytes = frames.iter().map(|f| f.len() as u64).sum();
        st.committed.insert(generation, frames);
        Ok(bytes)
    }

    fn generations(&self) -> Vec<u64> {
        lock(&self.state).committed.keys().copied().collect()
    }

    fn load(
        &self,
        generation: u64,
        p: usize,
        fingerprint: u64,
    ) -> Result<Vec<RankFrame>, CheckpointError> {
        let encoded = lock(&self.state)
            .committed
            .get(&generation)
            .cloned()
            .ok_or(CheckpointError::NotCommitted { generation })?;
        let frames = encoded
            .iter()
            .map(|bytes| RankFrame::decode(bytes))
            .collect::<Result<Vec<_>, _>>()?;
        verify_cut(frames, generation, p, fingerprint)
    }

    fn clear(&self) {
        let mut st = lock(&self.state);
        st.staged.clear();
        st.committed.clear();
    }
}

// ---------------------------------------------------------------------------
// File-backed store
// ---------------------------------------------------------------------------

/// A [`CheckpointStore`] writing one file per committed generation
/// under a run directory:
///
/// ```text
/// gen-00000002.ckpt :=
///     FILE_MAGIC  generation  p
///     (frame_len  frame_bytes) × p      frames in rank order, each
///                                       carrying its own FNV trailer
///     COMMIT_MAGIC                      present ⇔ committed
/// ```
///
/// Staged frames live in memory; `commit` writes the whole generation
/// to a `.tmp` sibling with the trailing marker last, fsyncs it, and
/// renames it into place ([`Disk::write_atomic`]) — so an interrupted
/// commit is indistinguishable from "no checkpoint" even across a
/// power cut, not merely across a process crash.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    disk: Arc<Disk>,
    staged: Mutex<BTreeMap<u64, BTreeMap<usize, Vec<u8>>>>,
}

impl FileStore {
    /// Opens (creating if needed) a run directory on a fault-free
    /// disk.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore, CheckpointError> {
        FileStore::open_with_disk(dir, Arc::new(Disk::new()))
    }

    /// Opens a run directory over an injectable [`Disk`] — the hook
    /// the storage-fault grid uses to prove every disk fault degrades
    /// to a typed error or an older committed generation.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be created.
    pub fn open_with_disk(
        dir: impl AsRef<Path>,
        disk: Arc<Disk>,
    ) -> Result<FileStore, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Ok(FileStore {
            dir,
            disk,
            staged: Mutex::new(BTreeMap::new()),
        })
    }

    /// The path of a generation's file.
    #[must_use]
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:08}.ckpt"))
    }

    fn read_generation(&self, generation: u64) -> Result<Vec<RankFrame>, CheckpointError> {
        let path = self.generation_path(generation);
        if !path.exists() {
            return Err(CheckpointError::NotCommitted { generation });
        }
        let bytes = self.disk.read(&path)?;
        if bytes.len() < 8 * 4 {
            return Err(CheckpointError::Malformed(
                "generation file too short".into(),
            ));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        if u64::from_le_bytes(trailer.try_into().expect("8 bytes")) != COMMIT_MAGIC {
            // No commit marker: the write was interrupted. The
            // generation never happened.
            return Err(CheckpointError::NotCommitted { generation });
        }
        let mut r = Reader::new(body);
        if r.u64()? != FILE_MAGIC {
            return Err(CheckpointError::Malformed(
                "bad generation-file magic".into(),
            ));
        }
        let claimed_gen = r.u64()?;
        if claimed_gen != generation {
            return Err(CheckpointError::Malformed(format!(
                "file claims generation {claimed_gen}, expected {generation}"
            )));
        }
        let p = r.count()?;
        let mut frames = Vec::with_capacity(p);
        for _ in 0..p {
            let len = r.count()?;
            frames.push(RankFrame::decode(r.take(len)?)?);
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after last frame",
                r.remaining()
            )));
        }
        Ok(frames)
    }
}

impl CheckpointStore for FileStore {
    fn stage(&self, frame: &RankFrame) -> Result<u64, CheckpointError> {
        let bytes = frame.encode();
        let len = bytes.len() as u64;
        lock(&self.staged)
            .entry(frame.superstep)
            .or_default()
            .insert(frame.rank, bytes);
        Ok(len)
    }

    fn commit(&self, generation: u64, p: usize) -> Result<u64, CheckpointError> {
        let staged = {
            let mut st = lock(&self.staged);
            let have = st.get(&generation).map_or(0, BTreeMap::len);
            if have != p {
                return Err(CheckpointError::Incomplete {
                    generation,
                    have,
                    need: p,
                });
            }
            st.remove(&generation).expect("checked non-empty")
        };
        let mut out = Vec::new();
        put_u64(&mut out, FILE_MAGIC);
        put_u64(&mut out, generation);
        put_u64(&mut out, p as u64);
        for frame in staged.into_values() {
            put_u64(&mut out, frame.len() as u64);
            out.extend_from_slice(&frame);
        }
        put_u64(&mut out, COMMIT_MAGIC);
        let total = out.len() as u64;
        let path = self.generation_path(generation);
        // tmp + fsync + rename + parent-dir fsync: a "committed"
        // generation is durable, not merely written.
        self.disk.write_atomic(&path, &out)?;
        Ok(total)
    }

    fn generations(&self) -> Vec<u64> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut gens: Vec<u64> = entries
            .filter_map(Result::ok)
            .filter_map(|entry| {
                let name = entry.file_name();
                let name = name.to_str()?;
                // Name-scan only: corrupt or uncommitted files stay on
                // the list so recovery can *observe* their corruption
                // (and count it) when `load` is attempted, instead of
                // silently skipping them.
                name.strip_prefix("gen-")?
                    .strip_suffix(".ckpt")?
                    .parse()
                    .ok()
            })
            .collect();
        gens.sort_unstable();
        gens
    }

    fn load(
        &self,
        generation: u64,
        p: usize,
        fingerprint: u64,
    ) -> Result<Vec<RankFrame>, CheckpointError> {
        verify_cut(
            self.read_generation(generation)?,
            generation,
            p,
            fingerprint,
        )
    }

    fn clear(&self) {
        lock(&self.staged).clear();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.filter_map(Result::ok) {
                let name = entry.file_name();
                let is_gen = name
                    .to_str()
                    .is_some_and(|n| n.starts_with("gen-") && n.ends_with(".ckpt"));
                if is_gen {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(rank: usize, superstep: u64) -> RankFrame {
        RankFrame {
            fingerprint: 0xF00D,
            rank,
            superstep,
            fuel_left: 9_000 + rank as u64,
            sent_words: 12,
            received_words: 8,
            puts: superstep,
            ifats: 0,
            outcomes: (0..superstep)
                .map(|s| SyncOutcome::Put {
                    delivered: vec![
                        PortableValue::Int(s as i64),
                        PortableValue::Pair(
                            Box::new(PortableValue::Bool(true)),
                            Box::new(PortableValue::Nil),
                        ),
                    ],
                })
                .collect(),
        }
    }

    #[test]
    fn frame_codec_roundtrips() {
        let f = RankFrame {
            outcomes: vec![
                SyncOutcome::Put {
                    delivered: vec![
                        PortableValue::NoComm,
                        PortableValue::Vector(vec![PortableValue::Int(-7)]),
                        PortableValue::Cons(
                            Box::new(PortableValue::Int(1)),
                            Box::new(PortableValue::Nil),
                        ),
                        PortableValue::Inl(Box::new(PortableValue::Unit)),
                        PortableValue::Inr(Box::new(PortableValue::Bool(false))),
                    ],
                },
                SyncOutcome::IfAt { chosen: true },
            ],
            puts: 1,
            ifats: 1,
            superstep: 2,
            ..frame(3, 0)
        };
        let decoded = RankFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let f = frame(1, 2);
        let bytes = f.encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let result = RankFrame::decode(&corrupt);
            assert!(
                result.is_err() || result.as_ref().ok() != Some(&f),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_is_malformed_not_panic() {
        let bytes = frame(0, 3).encode();
        for cut in 0..bytes.len() {
            assert!(RankFrame::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn memory_store_commit_gates_visibility() {
        let store = MemoryStore::new();
        store.stage(&frame(0, 2)).unwrap();
        // One of two frames staged: not committable, not loadable.
        assert_eq!(
            store.commit(2, 2),
            Err(CheckpointError::Incomplete {
                generation: 2,
                have: 1,
                need: 2
            })
        );
        assert!(store.generations().is_empty());
        store.stage(&frame(1, 2)).unwrap();
        let bytes = store.commit(2, 2).unwrap();
        assert!(bytes > 0);
        assert_eq!(store.generations(), vec![2]);
        let frames = store.load(2, 2, 0xF00D).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].rank, 0);
        assert_eq!(frames[1].rank, 1);
    }

    #[test]
    fn fingerprint_mismatch_rejects_foreign_checkpoints() {
        let store = MemoryStore::new();
        store.stage(&frame(0, 1)).unwrap();
        store.commit(1, 1).unwrap();
        assert_eq!(
            store.load(1, 1, 0xBEEF),
            Err(CheckpointError::FingerprintMismatch { generation: 1 })
        );
    }

    #[test]
    fn file_store_roundtrips_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "bsml-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        for gen in [1u64, 2] {
            for rank in 0..2 {
                store.stage(&frame(rank, gen)).unwrap();
            }
            store.commit(gen, 2).unwrap();
        }
        assert_eq!(store.generations(), vec![1, 2]);
        // A different handle on the same directory sees the same
        // committed generations — resume survives a process restart.
        let reopened = FileStore::open(&dir).unwrap();
        assert_eq!(reopened.generations(), vec![1, 2]);
        let frames = reopened.load(2, 2, 0xF00D).unwrap();
        assert_eq!(frames[1].fuel_left, 9_001);
        store.clear();
        assert!(store.generations().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_corruption_is_detected() {
        let dir = std::env::temp_dir().join(format!(
            "bsml-ckpt-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        store.stage(&frame(0, 1)).unwrap();
        store.commit(1, 1).unwrap();
        let path = store.generation_path(1);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte in the middle of the frame payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(1, 1, 0xF00D).is_err());
        // The generation stays on the ladder (name-scan), so recovery
        // observes — and can count — the corruption when loading it.
        assert_eq!(store.generations(), vec![1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_commit_marker_means_not_committed() {
        let dir = std::env::temp_dir().join(format!(
            "bsml-ckpt-marker-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        store.stage(&frame(0, 1)).unwrap();
        store.commit(1, 1).unwrap();
        let path = store.generation_path(1);
        let bytes = fs::read(&path).unwrap();
        // Drop the trailer: an interrupted write.
        fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert_eq!(
            store.load(1, 1, 0xF00D),
            Err(CheckpointError::NotCommitted { generation: 1 })
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_default_is_every_barrier() {
        assert_eq!(CheckpointPolicy::default().interval(), 1);
        assert_eq!(CheckpointPolicy::every(4).interval(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_interval_rejected() {
        let _ = CheckpointPolicy::every(0);
    }

    #[test]
    fn fingerprint_separates_programs_and_sizes() {
        let a = bsml_syntax::parse("1 + 2").unwrap();
        let b = bsml_syntax::parse("1 + 3").unwrap();
        assert_ne!(program_fingerprint(&a, 4), program_fingerprint(&b, 4));
        assert_ne!(program_fingerprint(&a, 4), program_fingerprint(&a, 2));
        assert_eq!(program_fingerprint(&a, 4), program_fingerprint(&a, 4));
    }
}
