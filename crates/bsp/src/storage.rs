//! An injectable storage backend: every durable byte the workspace
//! writes (checkpoint generations, server write-ahead logs) goes
//! through a [`Disk`], so disk misbehavior — ENOSPC, a torn write at a
//! chosen byte, a failing fsync, a bit flipped at rest — can be
//! injected deterministically, in the spirit of [`crate::faults`].
//!
//! The contract mirrors the fault plans of the distributed machine: a
//! seeded [`StoragePlan`] arms faults against specific operations
//! (the *n*-th append, the *n*-th atomic write, …), and the test grid
//! proves that every injected fault degrades to a typed
//! [`StorageError`] or an older consistent state — never a panic, a
//! hang, or silently wrong data.
//!
//! Two write disciplines are provided:
//!
//! * [`Disk::write_atomic`] — tmp + `sync_all` + rename + parent-dir
//!   fsync. A crash (or injected fault) at any point leaves either
//!   the old file or the new file, never a mixture.
//! * [`Disk::append_sync`] — append + `sync_all`, for log files whose
//!   *records* carry their own framing and checksums. A torn append
//!   leaves a torn tail that the log's reader must detect and drop.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Which [`Disk`] operation a fault arms against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageOp {
    /// [`Disk::write_atomic`].
    AtomicWrite,
    /// [`Disk::append_sync`].
    Append,
    /// [`Disk::read`].
    Read,
}

impl StorageOp {
    /// A short human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StorageOp::AtomicWrite => "atomic-write",
            StorageOp::Append => "append",
            StorageOp::Read => "read",
        }
    }
}

/// What the armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// The write fails before a single byte lands (disk full).
    Enospc,
    /// The write stops after `at` bytes and fails — the torn prefix
    /// *stays on disk*, exactly like a power cut mid-`write(2)`.
    TornWrite {
        /// How many bytes of the payload land before the tear.
        at: usize,
    },
    /// The data is written but `fsync` fails; the caller must treat
    /// the write as not durable.
    SyncFailure,
    /// A read returns the file's bytes with one bit flipped at offset
    /// `at % len` — silent at the storage layer, so only checksums
    /// can catch it.
    BitFlip {
        /// The byte offset (taken modulo the file length) to corrupt.
        at: usize,
    },
    /// The process writes `at` bytes of the payload and then aborts —
    /// a deterministic stand-in for SIGKILL mid-append. Only crash
    /// test *binaries* arm this; in-process tests never do (the test
    /// would die too).
    CrashAfter {
        /// How many bytes land before the process aborts.
        at: usize,
    },
}

impl StorageFaultKind {
    /// A short human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StorageFaultKind::Enospc => "enospc",
            StorageFaultKind::TornWrite { .. } => "torn-write",
            StorageFaultKind::SyncFailure => "sync-failure",
            StorageFaultKind::BitFlip { .. } => "bit-flip",
            StorageFaultKind::CrashAfter { .. } => "crash-after",
        }
    }
}

/// One armed fault: fires on the `nth` (0-based) occurrence of `op`,
/// once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageFault {
    /// The operation to perturb.
    pub op: StorageOp,
    /// Which occurrence of the operation (0-based) fires the fault.
    pub nth: u64,
    /// What happens when it fires.
    pub kind: StorageFaultKind,
}

/// A deterministic set of storage faults, mirroring
/// [`crate::faults::FaultPlan`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoragePlan {
    faults: Vec<StorageFault>,
}

impl StoragePlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> StoragePlan {
        StoragePlan::default()
    }

    /// Adds one armed fault.
    #[must_use]
    pub fn fault(mut self, fault: StorageFault) -> StoragePlan {
        self.faults.push(fault);
        self
    }

    /// Derives a single random fault from a seed (SplitMix64), for
    /// seeded chaos grids. `CrashAfter` is deliberately excluded —
    /// chaos runs in-process.
    #[must_use]
    pub fn chaos(seed: u64) -> StoragePlan {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let op = match next() % 3 {
            0 => StorageOp::AtomicWrite,
            1 => StorageOp::Append,
            _ => StorageOp::Read,
        };
        let at = (next() % 64) as usize;
        let kind = if op == StorageOp::Read {
            StorageFaultKind::BitFlip { at }
        } else {
            match next() % 3 {
                0 => StorageFaultKind::Enospc,
                1 => StorageFaultKind::TornWrite { at },
                _ => StorageFaultKind::SyncFailure,
            }
        };
        StoragePlan::new().fault(StorageFault {
            op,
            nth: next() % 4,
            kind,
        })
    }

    /// The armed faults.
    #[must_use]
    pub fn faults(&self) -> &[StorageFault] {
        &self.faults
    }
}

/// Why a storage operation failed. Every variant is a *typed*,
/// recoverable outcome: the caller keeps (or falls back to) an older
/// consistent state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// No space left on device (or an injected equivalent): nothing
    /// was written.
    Enospc {
        /// The file being written.
        path: PathBuf,
    },
    /// The write tore after `wrote` bytes; the torn prefix is on disk.
    TornWrite {
        /// The file being written.
        path: PathBuf,
        /// Bytes that landed before the tear.
        wrote: usize,
    },
    /// The data was written but could not be made durable.
    SyncFailure {
        /// The file being synced.
        path: PathBuf,
    },
    /// Any other I/O failure, with the OS error text.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The rendered OS error.
        what: String,
    },
}

impl StorageError {
    fn io(path: &Path, e: &std::io::Error) -> StorageError {
        StorageError::Io {
            path: path.to_path_buf(),
            what: e.to_string(),
        }
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Enospc { path } => {
                write!(f, "{}: no space left on device", path.display())
            }
            StorageError::TornWrite { path, wrote } => {
                write!(f, "{}: write torn after {wrote} bytes", path.display())
            }
            StorageError::SyncFailure { path } => {
                write!(f, "{}: fsync failed", path.display())
            }
            StorageError::Io { path, what } => write!(f, "{}: {what}", path.display()),
        }
    }
}

impl std::error::Error for StorageError {}

#[derive(Debug, Default)]
struct DiskState {
    plan: StoragePlan,
    /// Occurrence counters per op, indexed by [`StorageOp`] order.
    counts: [u64; 3],
    /// Parallel to `plan.faults`: whether each fault already fired.
    fired: Vec<bool>,
}

fn op_index(op: StorageOp) -> usize {
    match op {
        StorageOp::AtomicWrite => 0,
        StorageOp::Append => 1,
        StorageOp::Read => 2,
    }
}

/// The injectable storage backend. A fault-free `Disk` is the
/// production configuration; [`Disk::with_plan`] arms a deterministic
/// fault set for tests.
#[derive(Debug, Default)]
pub struct Disk {
    state: Mutex<DiskState>,
}

impl Disk {
    /// A disk with no faults armed.
    #[must_use]
    pub fn new() -> Disk {
        Disk::default()
    }

    /// A disk with the given fault plan armed.
    #[must_use]
    pub fn with_plan(plan: StoragePlan) -> Disk {
        let fired = vec![false; plan.faults.len()];
        Disk {
            state: Mutex::new(DiskState {
                plan,
                counts: [0; 3],
                fired,
            }),
        }
    }

    /// Consults the plan: does a fault fire on this occurrence of
    /// `op`? Each fault fires at most once.
    fn armed(&self, op: StorageOp) -> Option<StorageFaultKind> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let n = st.counts[op_index(op)];
        st.counts[op_index(op)] += 1;
        for (i, f) in st.plan.faults.iter().enumerate() {
            if !st.fired[i] && f.op == op && f.nth == n {
                let kind = f.kind;
                st.fired[i] = true;
                return Some(kind);
            }
        }
        None
    }

    /// Appends `bytes` to `path` (creating it if absent) and fsyncs.
    /// On success returns the file's *previous* length — the offset at
    /// which the record landed.
    ///
    /// On a torn write the torn prefix stays on disk, exactly like a
    /// real power cut; the caller either truncates back to the
    /// returned offset or relies on record checksums at read time.
    ///
    /// # Errors
    ///
    /// A typed [`StorageError`]; injected faults surface as their
    /// matching variant.
    pub fn append_sync(&self, path: &Path, bytes: &[u8]) -> Result<u64, StorageError> {
        let fault = self.armed(StorageOp::Append);
        if let Some(StorageFaultKind::Enospc) = fault {
            return Err(StorageError::Enospc {
                path: path.to_path_buf(),
            });
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StorageError::io(path, &e))?;
        let offset = file
            .metadata()
            .map_err(|e| StorageError::io(path, &e))?
            .len();
        match fault {
            Some(StorageFaultKind::TornWrite { at }) => {
                let at = at.min(bytes.len());
                file.write_all(&bytes[..at])
                    .map_err(|e| StorageError::io(path, &e))?;
                let _ = file.sync_all();
                return Err(StorageError::TornWrite {
                    path: path.to_path_buf(),
                    wrote: at,
                });
            }
            Some(StorageFaultKind::CrashAfter { at }) => {
                let at = at.min(bytes.len());
                let _ = file.write_all(&bytes[..at]);
                let _ = file.sync_all();
                // A deterministic stand-in for SIGKILL mid-append:
                // the process dies here, leaving the torn tail.
                std::process::abort();
            }
            _ => {}
        }
        file.write_all(bytes)
            .map_err(|e| StorageError::io(path, &e))?;
        if matches!(fault, Some(StorageFaultKind::SyncFailure)) {
            return Err(StorageError::SyncFailure {
                path: path.to_path_buf(),
            });
        }
        file.sync_all().map_err(|e| StorageError::io(path, &e))?;
        Ok(offset)
    }

    /// Writes `bytes` to `path` atomically: a `.tmp` sibling is
    /// written and fsynced, renamed over `path`, and the parent
    /// directory fsynced so the rename itself is durable. Any failure
    /// (real or injected) leaves the previous `path` contents intact.
    ///
    /// # Errors
    ///
    /// A typed [`StorageError`]; the target file is untouched.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
        let fault = self.armed(StorageOp::AtomicWrite);
        if let Some(StorageFaultKind::Enospc) = fault {
            return Err(StorageError::Enospc {
                path: path.to_path_buf(),
            });
        }
        let tmp = path.with_extension("tmp");
        let mut file = fs::File::create(&tmp).map_err(|e| StorageError::io(&tmp, &e))?;
        match fault {
            Some(StorageFaultKind::TornWrite { at }) => {
                let at = at.min(bytes.len());
                let _ = file.write_all(&bytes[..at]);
                drop(file);
                // The tear hit the tmp file; the target is intact.
                return Err(StorageError::TornWrite {
                    path: path.to_path_buf(),
                    wrote: at,
                });
            }
            Some(StorageFaultKind::CrashAfter { at }) => {
                let at = at.min(bytes.len());
                let _ = file.write_all(&bytes[..at]);
                let _ = file.sync_all();
                std::process::abort();
            }
            _ => {}
        }
        file.write_all(bytes)
            .map_err(|e| StorageError::io(&tmp, &e))?;
        if matches!(fault, Some(StorageFaultKind::SyncFailure)) {
            let _ = fs::remove_file(&tmp);
            return Err(StorageError::SyncFailure {
                path: path.to_path_buf(),
            });
        }
        file.sync_all().map_err(|e| StorageError::io(&tmp, &e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| StorageError::io(path, &e))?;
        // fsync the parent directory so the rename is durable too —
        // the discipline the postmortem writer pioneered, completed.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Reads the whole file. Injected [`StorageFaultKind::BitFlip`]s
    /// corrupt the returned bytes *silently* — by design, so the test
    /// grid proves the caller's checksums catch them.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] (including not-found).
    pub fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError> {
        let fault = self.armed(StorageOp::Read);
        let mut bytes = fs::read(path).map_err(|e| StorageError::io(path, &e))?;
        if let Some(StorageFaultKind::BitFlip { at }) = fault {
            if !bytes.is_empty() {
                let i = at % bytes.len();
                bytes[i] ^= 1 << (at % 8);
            }
        }
        Ok(bytes)
    }

    /// Truncates `path` to `len` bytes — used to cut a torn tail back
    /// to the last valid record boundary. Not fault-injectable: it
    /// runs during recovery, where the recovery ladder itself is the
    /// degradation path.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`].
    pub fn truncate(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io(path, &e))?;
        file.set_len(len).map_err(|e| StorageError::io(path, &e))?;
        file.sync_all().map_err(|e| StorageError::io(path, &e))?;
        Ok(())
    }

    /// Removes a file, best-effort (pruning old generations must
    /// never fail recovery).
    pub fn remove(&self, path: &Path) {
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bsml-storage-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_returns_offsets_and_persists() {
        let disk = Disk::new();
        let path = tmp("append.log");
        let _ = fs::remove_file(&path);
        assert_eq!(disk.append_sync(&path, b"abc").unwrap(), 0);
        assert_eq!(disk.append_sync(&path, b"defg").unwrap(), 3);
        assert_eq!(disk.read(&path).unwrap(), b"abcdefg");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let disk = Disk::new();
        let path = tmp("atomic.bin");
        disk.write_atomic(&path, b"first").unwrap();
        disk.write_atomic(&path, b"second").unwrap();
        assert_eq!(disk.read(&path).unwrap(), b"second");
        disk.remove(&path);
    }

    #[test]
    fn enospc_on_append_writes_nothing() {
        let disk = Disk::with_plan(StoragePlan::new().fault(StorageFault {
            op: StorageOp::Append,
            nth: 1,
            kind: StorageFaultKind::Enospc,
        }));
        let path = tmp("enospc.log");
        let _ = fs::remove_file(&path);
        disk.append_sync(&path, b"ok").unwrap();
        let err = disk.append_sync(&path, b"doomed").unwrap_err();
        assert!(matches!(err, StorageError::Enospc { .. }));
        assert_eq!(disk.read(&path).unwrap(), b"ok");
        // The fault fired once; later appends succeed.
        disk.append_sync(&path, b"!").unwrap();
        assert_eq!(disk.read(&path).unwrap(), b"ok!");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_append_leaves_the_torn_prefix() {
        let disk = Disk::with_plan(StoragePlan::new().fault(StorageFault {
            op: StorageOp::Append,
            nth: 0,
            kind: StorageFaultKind::TornWrite { at: 2 },
        }));
        let path = tmp("torn.log");
        let _ = fs::remove_file(&path);
        let err = disk.append_sync(&path, b"abcdef").unwrap_err();
        assert_eq!(
            err,
            StorageError::TornWrite {
                path: path.clone(),
                wrote: 2
            }
        );
        assert_eq!(disk.read(&path).unwrap(), b"ab");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn failed_atomic_write_keeps_the_old_contents() {
        let path = tmp("keep-old.bin");
        Disk::new().write_atomic(&path, b"old state").unwrap();
        for kind in [
            StorageFaultKind::Enospc,
            StorageFaultKind::TornWrite { at: 3 },
            StorageFaultKind::SyncFailure,
        ] {
            let disk = Disk::with_plan(StoragePlan::new().fault(StorageFault {
                op: StorageOp::AtomicWrite,
                nth: 0,
                kind,
            }));
            assert!(disk.write_atomic(&path, b"new state").is_err());
            assert_eq!(disk.read(&path).unwrap(), b"old state", "{kind:?}");
        }
        Disk::new().remove(&path);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let disk = Disk::with_plan(StoragePlan::new().fault(StorageFault {
            op: StorageOp::Read,
            nth: 0,
            kind: StorageFaultKind::BitFlip { at: 5 },
        }));
        let path = tmp("flip.bin");
        Disk::new().write_atomic(&path, b"0123456789").unwrap();
        let corrupt = disk.read(&path).unwrap();
        let clean = disk.read(&path).unwrap(); // fault fired once
        assert_eq!(clean, b"0123456789");
        let diffs: Vec<usize> = corrupt
            .iter()
            .zip(clean.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs, vec![5]);
        assert_eq!((corrupt[5] ^ clean[5]).count_ones(), 1);
        Disk::new().remove(&path);
    }

    #[test]
    fn truncate_cuts_tails() {
        let disk = Disk::new();
        let path = tmp("truncate.log");
        let _ = fs::remove_file(&path);
        disk.append_sync(&path, b"keep+torn").unwrap();
        disk.truncate(&path, 4).unwrap();
        assert_eq!(disk.read(&path).unwrap(), b"keep");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn chaos_plans_are_seeded_and_in_process_safe() {
        for seed in 0..64 {
            let plan = StoragePlan::chaos(seed);
            assert_eq!(plan, StoragePlan::chaos(seed));
            for f in plan.faults() {
                assert!(
                    !matches!(f.kind, StorageFaultKind::CrashAfter { .. }),
                    "chaos must stay in-process"
                );
                if f.op == StorageOp::Read {
                    assert!(matches!(f.kind, StorageFaultKind::BitFlip { .. }));
                }
            }
        }
        // Seeds disagree somewhere (not all identical).
        assert!((0..64).any(|s| StoragePlan::chaos(s) != StoragePlan::chaos(s + 64)));
    }
}
