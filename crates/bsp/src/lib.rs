//! A deterministic Bulk Synchronous Parallel machine simulator and
//! cost model (paper §2).
//!
//! The paper's BSMLlib ran on OCaml + MPI clusters; this crate is the
//! substitution documented in `DESIGN.md`: a simulator whose `p`
//! logical processors execute mini-BSML programs SPMD-style over the
//! `bsml-eval` big-step evaluator, charging exactly the BSP cost
//! expression
//!
//! ```text
//! Time(s) = max_i w_i^(s)  +  g · max_i h_i^(s)  +  l        per superstep
//! Total   = W + H·g + S·l
//! ```
//!
//! * local work `w_i` is counted in evaluator reduction steps,
//! * `h_i = max(h_i⁺, h_i⁻)` is measured in words
//!   ([`bsml_eval::Value::size_in_words`]) at every `put` and
//!   `if‥at‥` barrier,
//! * the machine parameters *(p, g, l)* come from a [`BspParams`]
//!   profile.
//!
//! [`formulas`] provides the closed-form costs the paper states —
//! equation (1) for `bcast` first — so experiments can compare
//! measured against predicted.
//!
//! ```
//! use bsml_bsp::{BspMachine, BspParams};
//! use bsml_syntax::parse;
//!
//! let machine = BspMachine::new(BspParams::new(4, 10, 200));
//! let report = machine.run(&parse(
//!     "let recv = put (mkpar (fun j -> fun i -> j)) in
//!      apply (recv, mkpar (fun i -> 0))")?)?;
//! assert_eq!(report.value.to_string(), "<|0, 0, 0, 0|>");
//! assert_eq!(report.cost.supersteps, 1); // one put barrier
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checkpoint;
pub mod cost;
pub mod distributed;
pub mod faults;
pub mod formulas;
pub mod hooks;
pub mod machine;
pub mod postmortem;
pub mod process;
pub mod storage;
pub mod supervisor;
pub mod symbolic;
pub mod trace;
pub mod transport;
pub mod wire;

pub use checkpoint::{
    CheckpointError, CheckpointPolicy, CheckpointStore, FileStore, MemoryStore, RankFrame,
    ResumePoint, SyncOutcome,
};
pub use cost::{Barrier, Cost, CostSummary, SuperstepRecord};
pub use distributed::{
    DistMachine, DistOutcome, Execution, BARRIER_TIMEOUT_ENV, FLIGHT_CAPACITY_ENV,
};
pub use faults::{Fault, FaultKind, FaultPlan, LinkFault, LinkFaultKind};
pub use hooks::BspCostHooks;
pub use machine::{BspMachine, BspParams, RunReport};
pub use postmortem::{
    Analysis, CausalViolation, FailureReport, FlightLog, PostmortemBundle, PostmortemError,
    RankFlightLog, SuperstepObservation,
};
pub use process::{
    validate_rejoin, KillSpec, ProcessConfig, HANDSHAKE_TIMEOUT_ENV, HEARTBEAT_MS_ENV,
    LINK_GRACE_MS_ENV, RANK_BIN_ENV, RANK_FINGERPRINT_ENV, RANK_ID_ENV, RANK_P_ENV,
    RANK_SOCKET_ENV,
};
pub use storage::{Disk, StorageError, StorageFault, StorageFaultKind, StorageOp, StoragePlan};
pub use supervisor::{
    backoff_delay, RecordingSleeper, Sleeper, SupervisedOutcome, Supervisor, ThreadSleeper,
    POSTMORTEM_DIR_ENV,
};
pub use transport::{Bind, Listener, LossyConfig, NetTuning, RankStream, TransportConfig};
pub use wire::{Frame, FramePayload, WireError};
