//! Symbolic BSP cost formulas.
//!
//! The whole point of the nesting restriction (paper §2.1) is that
//! program costs stay *compositional*: the cost of `e₁; e₂` is
//! `cost(e₁) + cost(e₂)`, written as closed formulas over the machine
//! parameters. This module makes those formulas first-class: the
//! paper's equation (1) is the value [`equation_1`], it prints as the
//! paper writes it, evaluates against concrete parameters, and
//! composes sequentially.
//!
//! ```
//! use bsml_bsp::symbolic::{equation_1, CostParams};
//!
//! let f = equation_1();
//! assert_eq!(f.to_string(), "p + (p - 1)·n·g + l");
//! let params = CostParams { p: 8, n: 100, g: 10, l: 1000 };
//! assert_eq!(f.eval(&params), 8 + 7 * 100 * 10 + 1000);
//! ```

use std::fmt;
use std::ops::{Add, Mul};

/// Concrete values for the formula variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CostParams {
    /// Number of processors `p`.
    pub p: u64,
    /// Problem size `n` (message words, list length, …).
    pub n: u64,
    /// Per-word gap `g`.
    pub g: u64,
    /// Barrier latency `l`.
    pub l: u64,
}

/// A symbolic cost expression over `p`, `n`, `g`, `l`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CostExpr {
    /// A literal constant.
    Const(u64),
    /// The machine size `p`.
    P,
    /// The problem size `n`.
    N,
    /// The gap `g`.
    G,
    /// The latency `l`.
    L,
    /// `⌈log₂ p⌉`.
    CeilLog2P,
    /// Sum.
    Sum(Box<CostExpr>, Box<CostExpr>),
    /// Product.
    Prod(Box<CostExpr>, Box<CostExpr>),
    /// Saturating difference (used for `p − 1`).
    Minus(Box<CostExpr>, Box<CostExpr>),
}

impl CostExpr {
    /// Evaluates the formula.
    #[must_use]
    pub fn eval(&self, params: &CostParams) -> u64 {
        match self {
            CostExpr::Const(k) => *k,
            CostExpr::P => params.p,
            CostExpr::N => params.n,
            CostExpr::G => params.g,
            CostExpr::L => params.l,
            CostExpr::CeilLog2P => crate::formulas::ceil_log2(params.p as usize),
            CostExpr::Sum(a, b) => a.eval(params) + b.eval(params),
            CostExpr::Prod(a, b) => a.eval(params) * b.eval(params),
            CostExpr::Minus(a, b) => a.eval(params).saturating_sub(b.eval(params)),
        }
    }

    /// Sequential (BSP) composition: costs of consecutive program
    /// phases add — the compositionality §2.1 fights for.
    #[must_use]
    pub fn then(self, other: CostExpr) -> CostExpr {
        self + other
    }

    /// Light constant folding (`0 + e = e`, `1·e = e`, `0·e = 0`,
    /// const⊕const folded).
    #[must_use]
    pub fn simplify(&self) -> CostExpr {
        use CostExpr::*;
        match self {
            Sum(a, b) => match (a.simplify(), b.simplify()) {
                (Const(0), e) | (e, Const(0)) => e,
                (Const(x), Const(y)) => Const(x + y),
                (a, b) => Sum(Box::new(a), Box::new(b)),
            },
            Prod(a, b) => match (a.simplify(), b.simplify()) {
                (Const(0), _) | (_, Const(0)) => Const(0),
                (Const(1), e) | (e, Const(1)) => e,
                (Const(x), Const(y)) => Const(x * y),
                (a, b) => Prod(Box::new(a), Box::new(b)),
            },
            Minus(a, b) => match (a.simplify(), b.simplify()) {
                (e, Const(0)) => e,
                (Const(x), Const(y)) => Const(x.saturating_sub(y)),
                (a, b) => Minus(Box::new(a), Box::new(b)),
            },
            other => other.clone(),
        }
    }
}

impl Add for CostExpr {
    type Output = CostExpr;
    fn add(self, rhs: CostExpr) -> CostExpr {
        CostExpr::Sum(Box::new(self), Box::new(rhs))
    }
}

impl Mul for CostExpr {
    type Output = CostExpr;
    fn mul(self, rhs: CostExpr) -> CostExpr {
        CostExpr::Prod(Box::new(self), Box::new(rhs))
    }
}

impl From<u64> for CostExpr {
    fn from(k: u64) -> CostExpr {
        CostExpr::Const(k)
    }
}

impl fmt::Display for CostExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: + (0) < − (1) < · (2) < atoms.
        fn go(f: &mut fmt::Formatter<'_>, e: &CostExpr, prec: u8) -> fmt::Result {
            match e {
                CostExpr::Const(k) => write!(f, "{k}"),
                CostExpr::P => f.write_str("p"),
                CostExpr::N => f.write_str("n"),
                CostExpr::G => f.write_str("g"),
                CostExpr::L => f.write_str("l"),
                CostExpr::CeilLog2P => f.write_str("⌈log₂ p⌉"),
                CostExpr::Sum(a, b) => {
                    if prec > 0 {
                        f.write_str("(")?;
                    }
                    go(f, a, 0)?;
                    f.write_str(" + ")?;
                    go(f, b, 1)?;
                    if prec > 0 {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
                CostExpr::Minus(a, b) => {
                    if prec > 1 {
                        f.write_str("(")?;
                    }
                    go(f, a, 1)?;
                    f.write_str(" - ")?;
                    go(f, b, 2)?;
                    if prec > 1 {
                        f.write_str(")")?;
                    }
                    Ok(())
                }
                CostExpr::Prod(a, b) => {
                    go(f, a, 2)?;
                    f.write_str("·")?;
                    go(f, b, 2)
                }
            }
        }
        go(f, self, 0)
    }
}

/// `p − 1` as a formula.
#[must_use]
pub fn p_minus_1() -> CostExpr {
    CostExpr::Minus(Box::new(CostExpr::P), Box::new(CostExpr::Const(1)))
}

/// The paper's **equation (1)**: `p + (p − 1)·n·g + l` — the cost of
/// the direct broadcast of an `n`-word value.
#[must_use]
pub fn equation_1() -> CostExpr {
    CostExpr::P + p_minus_1() * CostExpr::N * CostExpr::G + CostExpr::L
}

/// The logarithmic broadcast:
/// `⌈log₂ p⌉ + ⌈log₂ p⌉·n·g + ⌈log₂ p⌉·l`.
#[must_use]
pub fn log_bcast() -> CostExpr {
    CostExpr::CeilLog2P
        + CostExpr::CeilLog2P * CostExpr::N * CostExpr::G
        + CostExpr::CeilLog2P * CostExpr::L
}

/// The one-superstep cyclic shift: `1 + n·g + l`.
#[must_use]
pub fn shift() -> CostExpr {
    CostExpr::Const(1) + CostExpr::N * CostExpr::G + CostExpr::L
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas;

    fn params(p: u64, n: u64, g: u64, l: u64) -> CostParams {
        CostParams { p, n, g, l }
    }

    #[test]
    fn equation_1_prints_like_the_paper() {
        assert_eq!(equation_1().to_string(), "p + (p - 1)·n·g + l");
    }

    #[test]
    fn equation_1_agrees_with_the_concrete_formula() {
        for p in [2usize, 4, 16, 64] {
            for n in [1u64, 10, 1000] {
                for (g, l) in [(1u64, 1u64), (10, 1000), (160, 40_000)] {
                    let sym = equation_1().eval(&params(p as u64, n, g, l));
                    let conc = formulas::bcast_direct(p, n).time_gl(g, l);
                    assert_eq!(sym, conc, "p={p} n={n} g={g} l={l}");
                }
            }
        }
    }

    #[test]
    fn log_bcast_agrees_with_the_concrete_formula() {
        for p in [1usize, 2, 5, 16] {
            let sym = log_bcast().eval(&params(p as u64, 4, 7, 13));
            let conc = formulas::bcast_log(p, 4).time_gl(7, 13);
            assert_eq!(sym, conc, "p={p}");
        }
    }

    #[test]
    fn composition_is_additive() {
        // Two shifts cost twice one shift — symbolically.
        let twice = shift().then(shift());
        let p = params(4, 3, 10, 100);
        assert_eq!(twice.eval(&p), 2 * shift().eval(&p));
    }

    #[test]
    fn simplify_folds_constants() {
        use CostExpr::*;
        let e = Sum(
            Box::new(Const(0)),
            Box::new(Prod(Box::new(Const(1)), Box::new(P))),
        );
        assert_eq!(e.simplify(), P);
        let e = Prod(Box::new(Const(0)), Box::new(L));
        assert_eq!(e.simplify(), Const(0));
        let e = Minus(Box::new(Const(5)), Box::new(Const(9)));
        assert_eq!(e.simplify(), Const(0)); // saturating
    }

    #[test]
    fn display_precedence() {
        let e = (CostExpr::P + CostExpr::N) * CostExpr::G;
        assert_eq!(e.to_string(), "(p + n)·g");
        assert_eq!(shift().to_string(), "1 + n·g + l");
        assert_eq!(
            log_bcast().to_string(),
            "⌈log₂ p⌉ + ⌈log₂ p⌉·n·g + ⌈log₂ p⌉·l"
        );
    }

    #[test]
    fn eval_against_simulator_shapes() {
        // The symbolic H and S coefficients match the measured ones
        // (cost_model.rs verifies the measurements; this ties the
        // symbolic layer to the same constants).
        let p = 8u64;
        let n = 1u64;
        // eq (1) with g=1,l=0 minus work p equals H.
        let h = equation_1().eval(&params(p, n, 1, 0)) - p;
        assert_eq!(h, (p - 1) * n);
    }
}
