//! Closed-form BSP costs for the standard-library algorithms, the
//! paper's equation (1) first.
//!
//! The experiments in `EXPERIMENTS.md` compare these predictions with
//! the costs *measured* by the simulator. Work terms are stated in
//! the paper's abstract units (one unit per elementary local
//! operation); absolute `W` never matches evaluator step counts, but
//! the communication (`H`) and synchronization (`S`) terms are exact.

use crate::cost::Cost;

/// Equation (1): direct broadcast of a value of `s` words from one
/// process to the `p−1` others,
/// `p + (p−1)·s·g + l`.
#[must_use]
pub fn bcast_direct(p: usize, s: u64) -> Cost {
    Cost::new(p as u64, (p as u64 - 1) * s, 1)
}

/// Binary-tree broadcast: `⌈log₂ p⌉` supersteps; in step `k` every
/// holder forwards one copy, so `h = s` per step:
/// `log p + s·⌈log₂ p⌉·g + ⌈log₂ p⌉·l`.
#[must_use]
pub fn bcast_log(p: usize, s: u64) -> Cost {
    let rounds = ceil_log2(p);
    Cost::new(rounds, s * rounds, rounds)
}

/// Two-phase broadcast (scatter then all-gather), the classic
/// BSP-optimal broadcast for large `s`:
/// `2·(p−1)·⌈s/p⌉·g + 2·l` communication.
#[must_use]
pub fn bcast_two_phase(p: usize, s: u64) -> Cost {
    let p64 = p as u64;
    let piece = s.div_ceil(p64);
    Cost::new(2 * p64, 2 * (p64 - 1) * piece, 2)
}

/// Total exchange (`put` where everyone sends `s` words to everyone
/// else): one superstep of an `(p−1)·s`-relation.
#[must_use]
pub fn total_exchange(p: usize, s: u64) -> Cost {
    Cost::new(p as u64, (p as u64 - 1) * s, 1)
}

/// One-step shift (each processor sends `s` words to its right
/// neighbour): a 1-relation superstep.
#[must_use]
pub fn shift(p: usize, s: u64) -> Cost {
    let h = if p > 1 { s } else { 0 };
    Cost::new(1, h, u64::from(p > 1))
}

/// Direct parallel prefix (scan): one total-exchange superstep then
/// local folds: `p + (p−1)·s·g + l` like the direct broadcast.
#[must_use]
pub fn scan_direct(p: usize, s: u64) -> Cost {
    Cost::new(2 * p as u64, (p as u64 - 1) * s, 1)
}

/// Logarithmic parallel prefix: `⌈log₂ p⌉` supersteps of `s`-word
/// 1-relations.
#[must_use]
pub fn scan_log(p: usize, s: u64) -> Cost {
    let rounds = ceil_log2(p);
    Cost::new(rounds, s * rounds, rounds)
}

/// `⌈log₂ p⌉` (0 for `p ≤ 1`).
#[must_use]
pub fn ceil_log2(p: usize) -> u64 {
    if p <= 1 {
        0
    } else {
        u64::from(usize::BITS - (p - 1).leading_zeros())
    }
}

/// The message size above which the two-phase broadcast beats the
/// direct one on a machine `(p, g, l)` — the crossover the paper's
/// cost model predicts. Returns `None` when two-phase never wins
/// (e.g. `p < 3` or `l` dominating for all `s ≤ cap`).
#[must_use]
pub fn bcast_crossover(p: usize, g: u64, l: u64, cap: u64) -> Option<u64> {
    (1..=cap).find(|&s| bcast_two_phase(p, s).time_gl(g, l) < bcast_direct(p, s).time_gl(g, l))
}

impl Cost {
    /// Prices the cost with explicit `g` and `l` (helper for formula
    /// tables that sweep machine parameters).
    #[must_use]
    pub fn time_gl(&self, g: u64, l: u64) -> u64 {
        self.work + self.h_relation * g + self.supersteps * l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn equation_1_shape() {
        // p + (p−1)·s·g + l
        let c = bcast_direct(8, 100);
        assert_eq!(c.work, 8);
        assert_eq!(c.h_relation, 700);
        assert_eq!(c.supersteps, 1);
        assert_eq!(c.time_gl(10, 1000), 8 + 7000 + 1000);
    }

    #[test]
    fn log_bcast_trades_h_for_s() {
        let direct = bcast_direct(64, 1);
        let log = bcast_log(64, 1);
        // Tiny message: direct moves 63 words in 1 superstep, log
        // moves 6 words in 6 supersteps.
        assert_eq!(direct.h_relation, 63);
        assert_eq!(log.h_relation, 6);
        assert_eq!(log.supersteps, 6);
        // With expensive barriers direct wins; with expensive words
        // log wins.
        assert!(direct.time_gl(1, 100_000) < log.time_gl(1, 100_000));
        assert!(log.time_gl(1_000, 1) < direct.time_gl(1_000, 1));
    }

    #[test]
    fn two_phase_beats_direct_for_large_messages() {
        let p = 16;
        let (g, l) = (10, 10_000);
        let s = 100_000;
        assert!(bcast_two_phase(p, s).time_gl(g, l) < bcast_direct(p, s).time_gl(g, l));
        // And loses for tiny messages (pays the extra barrier).
        assert!(bcast_two_phase(p, 1).time_gl(g, l) > bcast_direct(p, 1).time_gl(g, l));
    }

    #[test]
    fn crossover_exists_and_is_consistent() {
        let p = 16;
        let (g, l) = (10, 10_000);
        let s0 = bcast_crossover(p, g, l, 1_000_000).expect("crossover");
        assert!(s0 > 1);
        // Below: direct wins (or ties); above: two-phase wins.
        assert!(bcast_two_phase(p, s0 - 1).time_gl(g, l) >= bcast_direct(p, s0 - 1).time_gl(g, l));
        assert!(bcast_two_phase(p, s0).time_gl(g, l) < bcast_direct(p, s0).time_gl(g, l));
    }

    #[test]
    fn single_processor_communicates_nothing() {
        assert_eq!(bcast_direct(1, 100).h_relation, 0);
        assert_eq!(shift(1, 5), Cost::new(1, 0, 0));
        assert_eq!(bcast_log(1, 100).supersteps, 0);
    }

    #[test]
    fn total_exchange_and_scan() {
        assert_eq!(total_exchange(4, 2).h_relation, 6);
        assert_eq!(scan_log(8, 1).supersteps, 3);
        assert_eq!(scan_direct(8, 1).supersteps, 1);
        assert_eq!(shift(4, 3), Cost::new(1, 3, 1));
    }
}
