//! Human-readable superstep traces.

use std::fmt::Write as _;

use crate::cost::{Barrier, SuperstepRecord};
use crate::machine::RunReport;

/// Renders a run report as a table of supersteps:
///
/// ```text
/// superstep | barrier |  max w |  max h | per-proc w
/// --------- + ------- + ------ + ------ + ----------
///         1 |     put |     42 |      3 | 42/40/39/41
///      tail |       — |     10 |      0 | 10/10/10/10
/// total: W = 52, H = 3 words, S = 1, time = 3092 on (p = 4, g = 10, l = 3000)
/// ```
#[must_use]
pub fn render_report(report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "superstep | barrier |  max w |  max h | per-proc w");
    let _ = writeln!(out, "--------- + ------- + ------ + ------ + ----------");
    for (i, r) in report.trace.iter().enumerate() {
        let _ = writeln!(out, "{}", render_row(i, r));
    }
    let _ = writeln!(
        out,
        "total: {}, time = {} on {}",
        report.cost,
        report.time(),
        report.params
    );
    out
}

/// Renders a per-processor timeline of the run: one row per
/// processor, one column block per superstep, each block scaled to
/// the superstep's slowest processor. `█` is computation, `·` is
/// time spent waiting for the barrier (the BSP idle time the cost
/// model charges via `max_i w_i`), `‖` is the barrier itself.
///
/// ```text
/// p0 █████████·‖██████████‖███
/// p1 ██████████‖████····· ‖███
/// ```
#[must_use]
pub fn render_timeline(report: &RunReport) -> String {
    const BLOCK: usize = 12;
    // The machine knows its width even when the trace is empty (or a
    // record is narrower than `p`).
    let p = report.params.p;
    // Width-align the rank labels so p ≥ 100 machines line up too.
    let label_width = (p.saturating_sub(1)).to_string().len();
    let mut rows: Vec<String> = (0..p).map(|i| format!("p{i:<label_width$} ")).collect();
    for r in &report.trace {
        let max = r.max_work().max(1);
        for (i, row) in rows.iter_mut().enumerate() {
            let w = r.work.get(i).copied().unwrap_or(0);
            let filled = (w as usize * BLOCK).div_ceil(max as usize);
            let filled = filled.min(BLOCK);
            row.push_str(&"█".repeat(filled));
            row.push_str(&"·".repeat(BLOCK - filled));
            row.push(match r.barrier {
                Barrier::ProgramEnd => ' ',
                _ => '‖',
            });
        }
    }
    let mut out = String::new();
    for row in rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

fn render_row(index: usize, r: &SuperstepRecord) -> String {
    let (label, barrier) = match r.barrier {
        Barrier::Put => (format!("{:>9}", index + 1), "put".to_string()),
        Barrier::IfAt => (format!("{:>9}", index + 1), "if-at".to_string()),
        Barrier::ProgramEnd => (format!("{:>9}", "tail"), "—".to_string()),
    };
    let per_proc = r
        .work
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join("/");
    format!(
        "{label} | {barrier:>7} | {:>6} | {:>6} | {per_proc}",
        r.max_work(),
        r.max_h()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{BspMachine, BspParams};
    use bsml_syntax::parse;

    #[test]
    fn timeline_shows_full_and_idle_bars() {
        let e = parse(
            "let rec spin n = if n = 0 then 0 else spin (n - 1) in
             let v = apply (mkpar (fun i -> fun x -> if x = 0 then spin 300 else 0),
                            mkpar (fun i -> i)) in
             put (apply (mkpar (fun i -> fun x -> fun d -> x), v))",
        )
        .unwrap();
        let report = BspMachine::new(BspParams::new(3, 1, 1)).run(&e).unwrap();
        let timeline = render_timeline(&report);
        let lines: Vec<&str> = timeline.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("p0"));
        // Processor 0 spins: its first block is solid; the others
        // show idle dots.
        assert!(lines[0].contains("████████████"), "{timeline}");
        assert!(lines[1].contains('·'), "{timeline}");
        assert!(timeline.contains('‖'), "{timeline}");
    }

    #[test]
    fn timeline_width_comes_from_params_not_trace() {
        use crate::cost::CostSummary;
        use bsml_eval::Value;

        // An empty trace must still produce one row per processor.
        let report = RunReport {
            value: Value::Unit,
            cost: CostSummary::default(),
            trace: vec![],
            params: BspParams::new(4, 1, 1),
        };
        let timeline = render_timeline(&report);
        assert_eq!(timeline.lines().count(), 4, "{timeline}");
    }

    #[test]
    fn timeline_labels_align_past_one_hundred_processors() {
        use crate::cost::CostSummary;
        use bsml_eval::Value;

        let p = 101;
        let report = RunReport {
            value: Value::Unit,
            cost: CostSummary::default(),
            trace: vec![SuperstepRecord {
                work: vec![1; p],
                sent: vec![0; p],
                received: vec![0; p],
                barrier: Barrier::ProgramEnd,
            }],
            params: BspParams::new(p, 1, 1),
        };
        let timeline = render_timeline(&report);
        let lines: Vec<&str> = timeline.lines().collect();
        assert_eq!(lines.len(), p);
        // Every label occupies the same width, so all bars start at
        // the same column.
        let bar_start = lines[0].find('█').expect("bar");
        assert!(lines.iter().all(|l| l.find('█') == Some(bar_start)));
        assert!(lines[100].starts_with("p100 "), "{:?}", lines[100]);
        assert!(lines[0].starts_with("p0   "), "{:?}", lines[0]);
    }

    #[test]
    fn render_contains_rows_and_totals() {
        let e = parse("let r = put (mkpar (fun j -> fun i -> j)) in apply (r, mkpar (fun i -> 0))")
            .unwrap();
        let report = BspMachine::new(BspParams::new(3, 10, 100)).run(&e).unwrap();
        let rendered = render_report(&report);
        assert!(rendered.contains("put"), "{rendered}");
        assert!(rendered.contains("tail"), "{rendered}");
        assert!(rendered.contains("total: W ="), "{rendered}");
        assert!(rendered.contains("(p = 3, g = 10, l = 100)"), "{rendered}");
        // One put row + the tail row + header rows + total.
        assert_eq!(rendered.lines().count(), 5);
    }
}
