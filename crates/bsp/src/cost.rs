//! BSP cost accounting: per-superstep records and whole-program
//! summaries (paper §2).

use std::fmt;

use crate::machine::BspParams;

/// An abstract BSP cost `W + H·g + S·l`, kept symbolic in the machine
/// parameters so the same cost can be priced on different machines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Cost {
    /// Total local work `W = Σ_s max_i w_i^(s)`.
    pub work: u64,
    /// Total communication volume `H = Σ_s max_i h_i^(s)` (words).
    pub h_relation: u64,
    /// Number of supersteps `S` (synchronization barriers).
    pub supersteps: u64,
}

impl Cost {
    /// A zero cost.
    #[must_use]
    pub fn zero() -> Cost {
        Cost::default()
    }

    /// Builds a cost from its three terms.
    #[must_use]
    pub fn new(work: u64, h_relation: u64, supersteps: u64) -> Cost {
        Cost {
            work,
            h_relation,
            supersteps,
        }
    }

    /// Prices the cost on a machine: `W + H·g + S·l`, in flop-time
    /// units.
    #[must_use]
    pub fn time(&self, params: &BspParams) -> u64 {
        self.work + self.h_relation * params.g + self.supersteps * params.l
    }

    /// Sequential (BSP) composition of two costs.
    #[must_use]
    pub fn then(&self, other: &Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            h_relation: self.h_relation + other.h_relation,
            supersteps: self.supersteps + other.supersteps,
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + {}·g + {}·l",
            self.work, self.h_relation, self.supersteps
        )
    }
}

/// What one superstep did, processor by processor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuperstepRecord {
    /// Local work per processor (evaluator reduction steps).
    pub work: Vec<u64>,
    /// Words sent per processor (`h⁺`).
    pub sent: Vec<u64>,
    /// Words received per processor (`h⁻`).
    pub received: Vec<u64>,
    /// What ended the superstep.
    pub barrier: Barrier,
}

/// The synchronization event ending a superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Barrier {
    /// A `put` exchange.
    #[default]
    Put,
    /// An `if‥at‥` broadcast of the deciding boolean.
    IfAt,
    /// End of program (no barrier; contributes work only).
    ProgramEnd,
}

impl SuperstepRecord {
    /// `max_i w_i` for this superstep.
    #[must_use]
    pub fn max_work(&self) -> u64 {
        self.work.iter().copied().max().unwrap_or(0)
    }

    /// `h_i = max(h_i⁺, h_i⁻)` for processor `i`.
    #[must_use]
    pub fn h_of(&self, i: usize) -> u64 {
        self.sent
            .get(i)
            .copied()
            .unwrap_or(0)
            .max(self.received.get(i).copied().unwrap_or(0))
    }

    /// `max_i h_i` for this superstep.
    #[must_use]
    pub fn max_h(&self) -> u64 {
        (0..self.work.len().max(self.sent.len()))
            .map(|i| self.h_of(i))
            .max()
            .unwrap_or(0)
    }

    /// The cost of this single superstep (`S` is 1 unless the record
    /// is the final, barrier-free tail).
    #[must_use]
    pub fn cost(&self) -> Cost {
        Cost {
            work: self.max_work(),
            h_relation: self.max_h(),
            supersteps: u64::from(!matches!(self.barrier, Barrier::ProgramEnd)),
        }
    }
}

/// The aggregated cost of a whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostSummary {
    /// `W`.
    pub work: u64,
    /// `H` in words.
    pub h_relation: u64,
    /// `S`.
    pub supersteps: u64,
}

impl CostSummary {
    /// Aggregates superstep records.
    #[must_use]
    pub fn from_records(records: &[SuperstepRecord]) -> CostSummary {
        let mut total = Cost::zero();
        for r in records {
            total = total.then(&r.cost());
        }
        CostSummary {
            work: total.work,
            h_relation: total.h_relation,
            supersteps: total.supersteps,
        }
    }

    /// The summary as an abstract [`Cost`].
    #[must_use]
    pub fn as_cost(&self) -> Cost {
        Cost::new(self.work, self.h_relation, self.supersteps)
    }

    /// Prices the run on a machine.
    #[must_use]
    pub fn time(&self, params: &BspParams) -> u64 {
        self.as_cost().time(params)
    }
}

impl fmt::Display for CostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "W = {}, H = {} words, S = {}",
            self.work, self.h_relation, self.supersteps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_pricing() {
        let c = Cost::new(100, 30, 2);
        let m = BspParams::new(4, 10, 1000);
        assert_eq!(c.time(&m), 100 + 300 + 2000);
        assert_eq!(c.to_string(), "100 + 30·g + 2·l");
    }

    #[test]
    fn cost_composition() {
        let a = Cost::new(1, 2, 3);
        let b = Cost::new(10, 20, 30);
        assert_eq!(a.then(&b), Cost::new(11, 22, 33));
        assert_eq!(Cost::zero().then(&a), a);
    }

    #[test]
    fn superstep_h_is_max_of_in_and_out() {
        let r = SuperstepRecord {
            work: vec![5, 9, 1],
            sent: vec![10, 0, 0],
            received: vec![0, 7, 3],
            barrier: Barrier::Put,
        };
        assert_eq!(r.max_work(), 9);
        assert_eq!(r.h_of(0), 10);
        assert_eq!(r.h_of(1), 7);
        assert_eq!(r.max_h(), 10);
        assert_eq!(r.cost(), Cost::new(9, 10, 1));
    }

    #[test]
    fn final_tail_has_no_barrier() {
        let r = SuperstepRecord {
            work: vec![4, 2],
            sent: vec![0, 0],
            received: vec![0, 0],
            barrier: Barrier::ProgramEnd,
        };
        assert_eq!(r.cost(), Cost::new(4, 0, 0));
    }

    #[test]
    fn summary_aggregates() {
        let records = vec![
            SuperstepRecord {
                work: vec![3, 5],
                sent: vec![2, 0],
                received: vec![0, 2],
                barrier: Barrier::Put,
            },
            SuperstepRecord {
                work: vec![1, 1],
                sent: vec![0, 0],
                received: vec![0, 0],
                barrier: Barrier::ProgramEnd,
            },
        ];
        let s = CostSummary::from_records(&records);
        assert_eq!(s.work, 6);
        assert_eq!(s.h_relation, 2);
        assert_eq!(s.supersteps, 1);
        assert_eq!(s.to_string(), "W = 6, H = 2 words, S = 1");
        let m = BspParams::new(2, 5, 50);
        assert_eq!(s.time(&m), 6 + 10 + 50);
    }
}
