//! The simulated BSP machine: parameters and the run entry point.

use std::fmt;
use std::sync::Arc;

use bsml_ast::Expr;
use bsml_eval::{EvalError, Evaluator, FuelCell, TeeHooks, TracingHooks, Value};
use bsml_obs::{FieldValue, Telemetry};

use crate::cost::{Barrier, CostSummary, SuperstepRecord};
use crate::hooks::BspCostHooks;

/// BSP machine parameters (paper §2): the number of processor-memory
/// pairs `p`, the per-word communication gap `g` and the barrier
/// latency `l`, both expressed as multiples of the local processing
/// speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BspParams {
    /// Number of processors.
    pub p: usize,
    /// Time to deliver one word of a 1-relation, in flop-times.
    pub g: u64,
    /// Barrier synchronization time, in flop-times.
    pub l: u64,
}

impl BspParams {
    /// Builds a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn new(p: usize, g: u64, l: u64) -> BspParams {
        assert!(p > 0, "a BSP machine needs at least one processor");
        BspParams { p, g, l }
    }

    /// A profile shaped like a commodity Ethernet cluster: cheap
    /// flops, expensive words, very expensive barriers.
    #[must_use]
    pub fn ethernet_cluster(p: usize) -> BspParams {
        BspParams::new(p, 160, 40_000)
    }

    /// A profile shaped like a tightly-coupled parallel machine
    /// (Cray T3E-class): low `g`, low `l`.
    #[must_use]
    pub fn tightly_coupled(p: usize) -> BspParams {
        BspParams::new(p, 3, 400)
    }

    /// A profile shaped like a shared-memory multicore: negligible
    /// `g`, small `l`.
    #[must_use]
    pub fn multicore(p: usize) -> BspParams {
        BspParams::new(p, 1, 60)
    }
}

impl fmt::Display for BspParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(p = {}, g = {}, l = {})", self.p, self.g, self.l)
    }
}

/// The result of running a program on the simulated machine.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The program's value.
    pub value: Value,
    /// Aggregated `W`, `H`, `S`.
    pub cost: CostSummary,
    /// Per-superstep details, in execution order. The last record is
    /// the barrier-free tail of the computation.
    pub trace: Vec<SuperstepRecord>,
    /// The machine the program ran on.
    pub params: BspParams,
}

impl RunReport {
    /// The priced execution time `W + H·g + S·l` on this machine.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.cost.time(&self.params)
    }
}

/// A simulated BSP machine.
///
/// # Example
///
/// ```
/// use bsml_bsp::{BspMachine, BspParams};
/// use bsml_syntax::parse;
///
/// let machine = BspMachine::new(BspParams::multicore(4));
/// let report = machine.run(&parse("mkpar (fun i -> i * i)")?)?;
/// assert_eq!(report.value.to_string(), "<|0, 1, 4, 9|>");
/// assert_eq!(report.cost.supersteps, 0); // mkpar is asynchronous
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct BspMachine {
    params: BspParams,
    fuel: u64,
    /// When set, every run draws its fuel from this shared cell in
    /// scheduler-granted slices instead of the flat `fuel` budget.
    fuel_cell: Option<Arc<FuelCell>>,
    telemetry: Telemetry,
}

impl BspMachine {
    /// A machine with the default evaluator fuel.
    #[must_use]
    pub fn new(params: BspParams) -> BspMachine {
        BspMachine {
            params,
            fuel: bsml_eval::bigstep::DEFAULT_FUEL,
            fuel_cell: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Overrides the evaluation fuel (step budget).
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> BspMachine {
        self.fuel = fuel;
        self
    }

    /// Makes every run draw fuel from a shared [`FuelCell`] in
    /// scheduler-granted slices (parking between grants) instead of
    /// the flat budget — the hosting side of `bsml-serve`'s
    /// fuel-sliced preemption. Cancellation through the cell surfaces
    /// as [`EvalError::Cancelled`].
    #[must_use]
    pub fn with_fuel_cell(mut self, cell: Arc<FuelCell>) -> BspMachine {
        self.fuel_cell = Some(cell);
        self
    }

    /// Attaches a telemetry handle. Each run then replays its
    /// superstep trace into the sink — one `superstep` span per
    /// processor per superstep, on per-processor tracks `p0…`, with
    /// `w` / `h_plus` / `h_minus` / `barrier` fields taken verbatim
    /// from the [`RunReport`] — and bumps the `bsp.supersteps`,
    /// `bsp.puts`, `bsp.ifats`, and `bsp.words_sent` counters.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> BspMachine {
        self.telemetry = telemetry;
        self
    }

    /// The machine parameters.
    #[must_use]
    pub fn params(&self) -> &BspParams {
        &self.params
    }

    /// Runs a closed mini-BSML program, measuring BSP costs.
    ///
    /// # Errors
    ///
    /// Propagates any [`EvalError`] from the evaluator (dynamic
    /// nesting, type errors in untyped input, fuel exhaustion, …).
    pub fn run(&self, e: &Expr) -> Result<RunReport, EvalError> {
        self.run_with_env(&bsml_eval::Env::new(), e)
    }

    /// Runs a program under an initial value environment (used by
    /// interactive sessions whose earlier declarations are bound).
    ///
    /// # Errors
    ///
    /// Same as [`BspMachine::run`].
    pub fn run_with_env(&self, env: &bsml_eval::Env, e: &Expr) -> Result<RunReport, EvalError> {
        let mut run_span = self.telemetry.span("bsp.run");
        let mut hooks = BspCostHooks::new(self.params.p);
        let value = if self.telemetry.is_enabled() {
            // One evaluator pass feeds both cost accounting and the
            // `eval.*` telemetry counters (flushed when `tracing`
            // drops).
            let mut tracing = TracingHooks::new(self.telemetry.clone());
            let mut tee = TeeHooks::new(&mut hooks, &mut tracing);
            let mut ev = Evaluator::with_fuel(self.params.p, &mut tee, self.fuel);
            if let Some(cell) = &self.fuel_cell {
                ev = ev.with_fuel_cell(Arc::clone(cell));
            }
            ev.eval_with_env(env, e)?
        } else {
            let mut ev = Evaluator::with_fuel(self.params.p, &mut hooks, self.fuel);
            if let Some(cell) = &self.fuel_cell {
                ev = ev.with_fuel_cell(Arc::clone(cell));
            }
            ev.eval_with_env(env, e)?
        };
        let trace = hooks.finish();
        let cost = CostSummary::from_records(&trace);
        if run_span.is_active() {
            run_span.set("w", cost.work);
            run_span.set("h", cost.h_relation);
            run_span.set("s", cost.supersteps);
            self.replay_trace(&trace);
        }
        Ok(RunReport {
            value,
            cost,
            trace,
            params: self.params,
        })
    }

    /// Replays a finished superstep trace into the telemetry sink on a
    /// logical BSP schedule: every processor enters superstep `s` at
    /// the same instant, works for its own `w_i`, and the next
    /// superstep starts after the full priced cost `w + h·g + l` of
    /// this one — so barrier imbalance is visible as the gap between a
    /// span's end and the next superstep's start.
    fn replay_trace(&self, trace: &[SuperstepRecord]) {
        let tracks: Vec<Telemetry> = (0..self.params.p)
            .map(|i| self.telemetry.track(&format!("p{i}")))
            .collect();
        let (mut puts, mut ifats, mut words_sent) = (0u64, 0u64, 0u64);
        let mut t = self.telemetry.now_us();
        for (s, rec) in trace.iter().enumerate() {
            for (i, track) in tracks.iter().enumerate() {
                let w = rec.work.get(i).copied().unwrap_or(0);
                let h_plus = rec.sent.get(i).copied().unwrap_or(0);
                let h_minus = rec.received.get(i).copied().unwrap_or(0);
                self.telemetry.record_span(
                    track.current_track(),
                    "superstep",
                    Some(s as u64),
                    t,
                    t + w,
                    vec![
                        ("w", FieldValue::U64(w)),
                        ("h_plus", FieldValue::U64(h_plus)),
                        ("h_minus", FieldValue::U64(h_minus)),
                        (
                            "barrier",
                            FieldValue::Str(barrier_name(rec.barrier).to_string()),
                        ),
                    ],
                );
            }
            match rec.barrier {
                Barrier::Put => puts += 1,
                Barrier::IfAt => ifats += 1,
                Barrier::ProgramEnd => {}
            }
            words_sent += rec.sent.iter().sum::<u64>();
            t += rec.cost().time(&self.params).max(1);
        }
        self.telemetry.counter_add("bsp.supersteps", puts + ifats);
        self.telemetry.counter_add("bsp.puts", puts);
        self.telemetry.counter_add("bsp.ifats", ifats);
        self.telemetry.counter_add("bsp.words_sent", words_sent);
    }
}

/// Display name of a barrier kind in telemetry fields.
fn barrier_name(b: Barrier) -> &'static str {
    match b {
        Barrier::Put => "put",
        Barrier::IfAt => "ifat",
        Barrier::ProgramEnd => "end",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_syntax::parse;

    fn run(src: &str, params: BspParams) -> RunReport {
        let e = parse(src).expect("parse");
        BspMachine::new(params)
            .run(&e)
            .unwrap_or_else(|err| panic!("run `{src}`: {err}"))
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = BspParams::new(0, 1, 1);
    }

    #[test]
    fn purely_local_program_has_no_communication() {
        let r = run("1 + 2 * 3", BspParams::new(4, 10, 100));
        assert_eq!(r.value.to_string(), "7");
        assert_eq!(r.cost.h_relation, 0);
        assert_eq!(r.cost.supersteps, 0);
        assert!(r.cost.work > 0);
        // Time is work only.
        assert_eq!(r.time(), r.cost.work);
    }

    #[test]
    fn mkpar_apply_are_asynchronous() {
        let r = run(
            "apply (mkpar (fun i -> fun x -> x + i), mkpar (fun i -> i))",
            BspParams::new(4, 10, 100),
        );
        assert_eq!(r.cost.supersteps, 0);
        assert_eq!(r.cost.h_relation, 0);
        assert_eq!(r.trace.len(), 1); // only the final tail
    }

    #[test]
    fn put_costs_one_superstep() {
        let r = run(
            "put (mkpar (fun j -> fun i -> j))",
            BspParams::new(4, 10, 100),
        );
        assert_eq!(r.cost.supersteps, 1);
        // Every processor sends one word to each of the p−1 others.
        assert_eq!(r.cost.h_relation, 3);
        assert_eq!(r.trace.len(), 2);
    }

    #[test]
    fn ifat_costs_one_superstep_with_a_broadcast() {
        let r = run(
            "if mkpar (fun i -> true) at 0 then mkpar (fun i -> 1) else mkpar (fun i -> 2)",
            BspParams::new(4, 10, 100),
        );
        assert_eq!(r.cost.supersteps, 1);
        // The deciding boolean travels to the p−1 other processors.
        assert_eq!(r.cost.h_relation, 3);
    }

    #[test]
    fn two_puts_are_two_supersteps() {
        let r = run(
            "let a = put (mkpar (fun j -> fun i -> j)) in
             let b = put (mkpar (fun j -> fun i -> j + 1)) in
             (a, b)",
            BspParams::new(2, 10, 100),
        );
        assert_eq!(r.cost.supersteps, 2);
    }

    #[test]
    fn pricing_uses_the_machine() {
        let fast = run("put (mkpar (fun j -> fun i -> j))", BspParams::multicore(4));
        let slow = run(
            "put (mkpar (fun j -> fun i -> j))",
            BspParams::ethernet_cluster(4),
        );
        // Same abstract cost, very different priced time.
        assert_eq!(fast.cost, slow.cost);
        assert!(slow.time() > fast.time());
    }

    #[test]
    fn profiles_are_ordered_sensibly() {
        let p = 8;
        assert!(BspParams::multicore(p).l < BspParams::tightly_coupled(p).l);
        assert!(BspParams::tightly_coupled(p).l < BspParams::ethernet_cluster(p).l);
        assert_eq!(
            BspParams::multicore(p).to_string(),
            "(p = 8, g = 1, l = 60)"
        );
    }

    #[test]
    fn work_counts_per_processor_asymmetry() {
        // Processor 3 does much more local work.
        let r = run(
            "let rec spin n = if n = 0 then 0 else spin (n - 1) in
             apply (mkpar (fun i -> fun x -> if x = 3 then spin 500 else 0),
                    mkpar (fun i -> i))",
            BspParams::new(4, 1, 1),
        );
        let tail = r.trace.last().unwrap();
        let w3 = tail.work[3];
        let w0 = tail.work[0];
        assert!(w3 > w0 + 400, "w3={w3} w0={w0}");
    }
}
