//! The cost-charging [`EvalHooks`] implementation.

use bsml_eval::{EvalHooks, Mode, Value};

use crate::cost::{Barrier, SuperstepRecord};

/// Evaluator hooks that segment execution into supersteps and measure
/// `w_i`, `h_i⁺`, `h_i⁻` per processor.
///
/// Global (replicated) reduction steps charge one unit of work to
/// *every* processor — BSML is SPMD: each processor evaluates the
/// global expression identically (paper §2). Local steps inside a
/// vector component charge only that component's processor.
#[derive(Clone, Debug)]
pub struct BspCostHooks {
    p: usize,
    current: SuperstepRecord,
    finished: Vec<SuperstepRecord>,
}

impl BspCostHooks {
    /// Hooks for a `p`-processor machine.
    #[must_use]
    pub fn new(p: usize) -> BspCostHooks {
        BspCostHooks {
            p,
            current: fresh_record(p),
            finished: Vec::new(),
        }
    }

    /// Closes the trailing (barrier-free) superstep and returns the
    /// full trace.
    #[must_use]
    pub fn finish(mut self) -> Vec<SuperstepRecord> {
        self.current.barrier = Barrier::ProgramEnd;
        self.finished.push(self.current);
        self.finished
    }

    fn close_superstep(&mut self, barrier: Barrier) {
        let mut done = std::mem::replace(&mut self.current, fresh_record(self.p));
        done.barrier = barrier;
        self.finished.push(done);
    }
}

fn fresh_record(p: usize) -> SuperstepRecord {
    SuperstepRecord {
        work: vec![0; p],
        sent: vec![0; p],
        received: vec![0; p],
        barrier: Barrier::ProgramEnd,
    }
}

impl EvalHooks for BspCostHooks {
    fn on_step(&mut self, mode: Mode) {
        match mode {
            // Replicated global work: every processor performs it.
            Mode::Global => {
                for w in &mut self.current.work {
                    *w += 1;
                }
            }
            Mode::OnProc(i) => {
                if let Some(w) = self.current.work.get_mut(i) {
                    *w += 1;
                }
            }
        }
    }

    fn on_put(&mut self, messages: &[Vec<Value>]) {
        // messages[j][i] is what j sends to i; self-messages stay in
        // local memory and do not count toward the h-relation.
        for (j, row) in messages.iter().enumerate() {
            for (i, v) in row.iter().enumerate() {
                if i == j {
                    continue;
                }
                let words = v.size_in_words();
                if words == 0 {
                    continue;
                }
                if let Some(out) = self.current.sent.get_mut(j) {
                    *out += words;
                }
                if let Some(inn) = self.current.received.get_mut(i) {
                    *inn += words;
                }
            }
        }
        self.close_superstep(Barrier::Put);
    }

    fn on_ifat(&mut self, at: usize, _chosen: bool) {
        // The deciding boolean (one word) is broadcast from `at` to
        // the other p−1 processors before the barrier.
        if let Some(out) = self.current.sent.get_mut(at) {
            *out += (self.p - 1) as u64;
        }
        for i in 0..self.p {
            if i != at {
                if let Some(inn) = self.current.received.get_mut(i) {
                    *inn += 1;
                }
            }
        }
        self.close_superstep(Barrier::IfAt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_steps_charge_everyone() {
        let mut h = BspCostHooks::new(3);
        h.on_step(Mode::Global);
        h.on_step(Mode::OnProc(1));
        let trace = h.finish();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].work, vec![1, 2, 1]);
        assert_eq!(trace[0].barrier, Barrier::ProgramEnd);
    }

    #[test]
    fn put_measures_words_and_skips_self_and_nc() {
        let mut h = BspCostHooks::new(2);
        // proc 0 sends an int to proc 1; proc 1 sends nothing.
        let messages = vec![
            vec![Value::Int(7), Value::Int(9)],
            vec![Value::NoComm, Value::NoComm],
        ];
        h.on_put(&messages);
        let trace = h.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].sent, vec![1, 0]); // self-message excluded
        assert_eq!(trace[0].received, vec![0, 1]);
        assert_eq!(trace[0].barrier, Barrier::Put);
    }

    #[test]
    fn ifat_broadcasts_one_word() {
        let mut h = BspCostHooks::new(4);
        h.on_ifat(2, true);
        let trace = h.finish();
        assert_eq!(trace[0].sent, vec![0, 0, 3, 0]);
        assert_eq!(trace[0].received, vec![1, 1, 0, 1]);
        assert_eq!(trace[0].barrier, Barrier::IfAt);
        assert_eq!(trace[0].max_h(), 3);
    }

    #[test]
    fn work_resets_per_superstep() {
        let mut h = BspCostHooks::new(1);
        h.on_step(Mode::Global);
        h.on_put(&[vec![Value::NoComm]]);
        h.on_step(Mode::Global);
        h.on_step(Mode::Global);
        let trace = h.finish();
        assert_eq!(trace[0].work, vec![1]);
        assert_eq!(trace[1].work, vec![2]);
    }
}
