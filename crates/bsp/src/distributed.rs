//! The **distributed** execution backend: one OS thread per BSP
//! processor, real message exchange, real synchronization barriers —
//! the execution model of the original BSMLlib over MPI (and of
//! Loulergue's "Distributed Evaluation of Functional BSP Programs",
//! the paper's reference [5]).
//!
//! Every processor runs the *same* program (SPMD). Replicated
//! (global) expressions are evaluated identically on every thread;
//! parallel vectors exist only as each thread's own component
//! (width-1 `Value::Vector`s). `put` and `if‥at‥` serialize values
//! into [`PortableValue`]s, exchange them through a shared mailbox,
//! and synchronize on a poisonable barrier (a failing processor
//! releases, rather than deadlocks, its peers).
//!
//! The lockstep simulator ([`crate::BspMachine`]) and this machine
//! are cross-checked in `tests/distributed.rs`: same values, same
//! per-superstep h-relations.
//!
//! ```
//! use bsml_bsp::distributed::DistMachine;
//! use bsml_syntax::parse;
//!
//! let machine = DistMachine::new(4);
//! let out = machine.run(&parse(
//!     "let recv = put (mkpar (fun j -> fun i -> j * j)) in
//!      apply (recv, mkpar (fun i -> (i + 1) mod (bsp_p ())))")?)?;
//! assert_eq!(out.value.to_string(), "<|1, 4, 9, 0|>");
//! assert_eq!(out.supersteps, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use bsml_ast::Expr;
use bsml_eval::{
    Applier, EvalError, Evaluator, Mode, NoHooks, ParallelDriver, PortableValue, Value,
};
use bsml_obs::Telemetry;

/// A synchronization barrier that can be *poisoned*: when one
/// processor fails, every processor waiting (now or later) is
/// released with [`EvalError::PeerFailure`] instead of deadlocking.
#[derive(Debug)]
struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct BarrierState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(n: usize) -> PoisonBarrier {
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<(), EvalError> {
        let mut st = self.state.lock().expect("barrier lock");
        if st.poisoned {
            return Err(EvalError::PeerFailure);
        }
        st.waiting += 1;
        if st.waiting == self.n {
            st.waiting = 0;
            st.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = self.cv.wait(st).expect("barrier wait");
        }
        if st.poisoned {
            Err(EvalError::PeerFailure)
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        let mut st = self.state.lock().expect("barrier lock");
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// Per-superstep communication statistics of one processor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct CommStats {
    sent_words: u64,
    received_words: u64,
    supersteps: u64,
    puts: u64,
    ifats: u64,
}

/// The shared "network": the message mailbox, the `if‥at‥` broadcast
/// slot, and the barrier.
#[derive(Debug)]
struct Network {
    p: usize,
    barrier: PoisonBarrier,
    /// `mailbox[j][i]`: message from j to i for the current
    /// superstep. Every sender rewrites its whole row each exchange,
    /// so no clearing is needed.
    mailbox: Mutex<Vec<Vec<PortableValue>>>,
    /// The broadcast boolean of the current `if‥at‥`.
    ifat_slot: Mutex<Option<bool>>,
}

impl Network {
    fn new(p: usize) -> Network {
        Network {
            p,
            barrier: PoisonBarrier::new(p),
            mailbox: Mutex::new(vec![vec![PortableValue::NoComm; p]; p]),
            ifat_slot: Mutex::new(None),
        }
    }
}

/// The SPMD driver for one processor (rank). Statistics are shared
/// out through a mutex so the thread can read them back after the
/// evaluator (which owns the boxed driver) is done.
struct SpmdDriver {
    rank: usize,
    net: Arc<Network>,
    stats: Arc<Mutex<CommStats>>,
    /// Per-rank telemetry handle (on track `p{rank}`); disabled by
    /// default.
    telemetry: Telemetry,
}

impl SpmdDriver {
    /// Waits on the shared barrier, recording how long this thread
    /// spent blocked into the `bsp.barrier_wait_us` histogram.
    fn barrier_wait(&self) -> Result<(), EvalError> {
        if !self.telemetry.is_enabled() {
            return self.net.barrier.wait();
        }
        let before = Instant::now();
        let result = self.net.barrier.wait();
        let waited = u64::try_from(before.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.telemetry
            .histogram_record("bsp.barrier_wait_us", waited);
        result
    }

    fn my_component<'v>(
        &self,
        comps: &'v [Value],
        what: &'static str,
    ) -> Result<&'v Value, EvalError> {
        if comps.len() == 1 {
            Ok(&comps[0])
        } else {
            Err(EvalError::ScrutineeMismatch(
                what,
                format!(
                    "SPMD vectors hold one component per processor, got width {}",
                    comps.len()
                ),
            ))
        }
    }
}

impl ParallelDriver for SpmdDriver {
    fn machine_width(&self) -> usize {
        self.net.p
    }

    // Vector *literals* are runtime-only global artifacts; the SPMD
    // machine runs source programs, which cannot contain them.
    fn literal_width(&self) -> Option<usize> {
        None
    }

    fn mkpar(&mut self, ev: &mut dyn Applier, f: &Value) -> Result<Value, EvalError> {
        ev.note_async();
        let v = ev.apply_fn(
            f.clone(),
            Value::Int(self.rank as i64),
            Mode::OnProc(self.rank),
        )?;
        ev.ensure_local(&v)?;
        Ok(Value::vector(vec![v]))
    }

    fn apply_par(
        &mut self,
        ev: &mut dyn Applier,
        fs: &[Value],
        vs: &[Value],
    ) -> Result<Value, EvalError> {
        ev.note_async();
        let f = self.my_component(fs, "apply")?.clone();
        let v = self.my_component(vs, "apply")?.clone();
        let out = ev.apply_fn(f, v, Mode::OnProc(self.rank))?;
        ev.ensure_local(&out)?;
        Ok(Value::vector(vec![out]))
    }

    fn put(&mut self, ev: &mut dyn Applier, fs: &[Value]) -> Result<Value, EvalError> {
        let p = self.net.p;
        let f = self.my_component(fs, "put")?.clone();
        // Local phase: evaluate my send function for every target and
        // serialize the messages.
        let mut row = Vec::with_capacity(p);
        for dst in 0..p {
            let v = ev.apply_fn(f.clone(), Value::Int(dst as i64), Mode::OnProc(self.rank))?;
            ev.ensure_local(&v)?;
            let words = v.size_in_words();
            if dst != self.rank {
                self.stats.lock().expect("stats lock").sent_words += words;
            }
            row.push(v.to_portable().inspect_err(|_| self.net.barrier.poison())?);
        }
        {
            let mut mailbox = self.net.mailbox.lock().expect("mailbox lock");
            mailbox[self.rank] = row;
        }
        // Communication phase + barrier.
        self.barrier_wait()?;
        let table: Vec<Value> = {
            let mailbox = self.net.mailbox.lock().expect("mailbox lock");
            (0..p).map(|j| mailbox[j][self.rank].to_value()).collect()
        };
        {
            let mut stats = self.stats.lock().expect("stats lock");
            for (j, v) in table.iter().enumerate() {
                if j != self.rank {
                    stats.received_words += v.size_in_words();
                }
            }
            stats.supersteps += 1;
            stats.puts += 1;
        }
        // Everyone must finish reading before anyone overwrites.
        self.barrier_wait()?;
        Ok(Value::vector(vec![Value::MsgTable(std::rc::Rc::new(
            table,
        ))]))
    }

    fn ifat(
        &mut self,
        ev: &mut dyn Applier,
        bools: &[Value],
        at: usize,
    ) -> Result<bool, EvalError> {
        let mine = match self.my_component(bools, "if‥at‥")? {
            Value::Bool(b) => *b,
            v => {
                self.net.barrier.poison();
                return Err(EvalError::ScrutineeMismatch("if‥at‥", v.to_string()));
            }
        };
        if self.rank == at {
            *self.net.ifat_slot.lock().expect("ifat lock") = Some(mine);
            self.stats.lock().expect("stats lock").sent_words += (self.net.p - 1) as u64;
        }
        self.barrier_wait()?;
        let chosen = self
            .net
            .ifat_slot
            .lock()
            .expect("ifat lock")
            .expect("broadcaster filled the slot");
        {
            let mut stats = self.stats.lock().expect("stats lock");
            if self.rank != at {
                stats.received_words += 1;
            }
            stats.supersteps += 1;
            stats.ifats += 1;
        }
        ev.note_ifat(at, chosen);
        self.barrier_wait()?;
        Ok(chosen)
    }
}

/// The result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistOutcome {
    /// The assembled result: per-rank width-1 vectors reassembled
    /// into one `p`-wide vector, or the (identical) replicated value.
    pub value: Value,
    /// Synchronization barriers observed (identical on every rank —
    /// that is asserted).
    pub supersteps: u64,
    /// Total words sent across all processors and supersteps
    /// (self-messages excluded).
    pub total_words_sent: u64,
    /// Per-rank evaluator steps (local work `w_i`).
    pub work: Vec<u64>,
}

/// A distributed BSP machine: `p` OS threads, shared-nothing except
/// the message mailbox.
#[derive(Clone, Debug)]
pub struct DistMachine {
    p: usize,
    fuel: u64,
    telemetry: Telemetry,
}

impl DistMachine {
    /// A machine of `p` processors.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn new(p: usize) -> DistMachine {
        assert!(p > 0, "a BSP machine needs at least one processor");
        DistMachine {
            p,
            fuel: bsml_eval::bigstep::DEFAULT_FUEL,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Overrides the per-processor fuel.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> DistMachine {
        self.fuel = fuel;
        self
    }

    /// Attaches a telemetry handle. Each processor thread then times
    /// its barrier waits into the `bsp.barrier_wait_us` histogram (on
    /// its own `p{rank}` track), and each run bumps the same
    /// `bsp.supersteps` / `bsp.puts` / `bsp.ifats` / `bsp.words_sent`
    /// counters as the lockstep [`crate::BspMachine`], so the two
    /// backends' telemetry totals can be compared directly.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> DistMachine {
        self.telemetry = telemetry;
        self
    }

    /// Runs a closed program SPMD on `p` threads.
    ///
    /// # Errors
    ///
    /// The first real [`EvalError`] raised by any processor
    /// ([`EvalError::PeerFailure`]s from released peers are
    /// discarded in its favour), or [`EvalError::NotSerializable`]
    /// if the final value cannot be gathered.
    pub fn run(&self, e: &Expr) -> Result<DistOutcome, EvalError> {
        let net = Arc::new(Network::new(self.p));
        let program = Arc::new(e.clone());
        let fuel = self.fuel;

        let results: Vec<Result<(PortableValue, CommStats, u64), EvalError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.p)
                    .map(|rank| {
                        let net = Arc::clone(&net);
                        let program = Arc::clone(&program);
                        let telemetry = self.telemetry.track(&format!("p{rank}"));
                        scope.spawn(move || run_rank(rank, net, &program, fuel, telemetry))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("processor thread panicked"))
                    .collect()
            });

        // Prefer a real error over PeerFailure echoes.
        if results.iter().any(|r| r.is_err()) {
            let mut first_peer_failure = None;
            for r in &results {
                match r {
                    Err(EvalError::PeerFailure) => {
                        first_peer_failure = Some(EvalError::PeerFailure);
                    }
                    Err(real) => return Err(real.clone()),
                    Ok(_) => {}
                }
            }
            return Err(first_peer_failure.expect("some error exists"));
        }

        let oks: Vec<(PortableValue, CommStats, u64)> =
            results.into_iter().map(|r| r.expect("checked")).collect();

        // Every rank must have seen the same number of barriers.
        let supersteps = oks[0].1.supersteps;
        assert!(
            oks.iter().all(|(_, s, _)| s.supersteps == supersteps),
            "ranks disagree on superstep count — SPMD replication broken"
        );
        let total_words_sent = oks.iter().map(|(_, s, _)| s.sent_words).sum();
        let work = oks.iter().map(|(_, _, w)| *w).collect();

        if self.telemetry.is_enabled() {
            // SPMD replication: barrier counts are identical on every
            // rank (asserted above), so charge them once, not p times —
            // matching the lockstep machine's accounting.
            let s = oks[0].1;
            self.telemetry.counter_add("bsp.supersteps", s.supersteps);
            self.telemetry.counter_add("bsp.puts", s.puts);
            self.telemetry.counter_add("bsp.ifats", s.ifats);
            self.telemetry
                .counter_add("bsp.words_sent", total_words_sent);
        }

        let value = assemble(oks.iter().map(|(v, _, _)| v))?;
        Ok(DistOutcome {
            value,
            supersteps,
            total_words_sent,
            work,
        })
    }
}

/// One processor's run.
fn run_rank(
    rank: usize,
    net: Arc<Network>,
    program: &Expr,
    fuel: u64,
    telemetry: Telemetry,
) -> Result<(PortableValue, CommStats, u64), EvalError> {
    let stats = Arc::new(Mutex::new(CommStats::default()));
    let driver = SpmdDriver {
        rank,
        net: Arc::clone(&net),
        stats: Arc::clone(&stats),
        telemetry,
    };
    let mut hooks = NoHooks;
    let mut ev = Evaluator::with_driver(&mut hooks, fuel, Box::new(driver));
    let result = ev.eval(program);
    let work = fuel - ev.fuel_left();
    match result {
        Ok(v) => {
            let portable = v.to_portable().inspect_err(|_| net.barrier.poison())?;
            let final_stats = *stats.lock().expect("stats lock");
            Ok((portable, final_stats, work))
        }
        Err(err) => {
            net.barrier.poison();
            Err(err)
        }
    }
}

/// Reassembles per-rank results: width-1 vectors become one `p`-wide
/// vector; identical replicated values pass through.
fn assemble<'a>(per_rank: impl Iterator<Item = &'a PortableValue>) -> Result<Value, EvalError> {
    let per_rank: Vec<&PortableValue> = per_rank.collect();
    let all_width1 = per_rank
        .iter()
        .all(|v| matches!(v, PortableValue::Vector(c) if c.len() == 1));
    if all_width1 {
        let comps: Vec<Value> = per_rank
            .iter()
            .map(|v| match v {
                PortableValue::Vector(c) => c[0].to_value(),
                _ => unreachable!(),
            })
            .collect();
        return Ok(Value::vector(comps));
    }
    // Replicated result: all ranks must agree.
    let first = per_rank[0];
    if per_rank.iter().all(|v| *v == first) {
        Ok(first.to_value())
    } else {
        Err(EvalError::ScrutineeMismatch(
            "distributed result",
            "ranks disagree on a replicated value".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_syntax::parse;

    #[test]
    fn poison_barrier_releases_waiters() {
        let barrier = Arc::new(PoisonBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || b2.wait());
        // Give the waiter time to block, then poison instead of join.
        std::thread::sleep(std::time::Duration::from_millis(20));
        barrier.poison();
        let r = waiter.join().expect("no panic");
        assert_eq!(r, Err(EvalError::PeerFailure));
        // Later arrivals see the poison immediately.
        assert_eq!(barrier.wait(), Err(EvalError::PeerFailure));
    }

    #[test]
    fn poison_barrier_synchronizes_generations() {
        let barrier = Arc::new(PoisonBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    b.wait()?;
                }
                Ok::<(), EvalError>(())
            }));
        }
        for h in handles {
            h.join().expect("no panic").expect("no poison");
        }
    }

    #[test]
    fn single_processor_machine() {
        let e = parse("mkpar (fun i -> i + 41)").unwrap();
        let out = DistMachine::new(1).run(&e).unwrap();
        assert_eq!(out.value.to_string(), "<|41|>");
        assert_eq!(out.total_words_sent, 0);
    }

    #[test]
    fn put_self_messages_cost_nothing() {
        let e = parse(
            "let r = put (mkpar (fun j -> fun d -> if d = j then j else nc ())) in
             apply (mkpar (fun i -> fun f -> f i), r)",
        )
        .unwrap();
        let out = DistMachine::new(4).run(&e).unwrap();
        // Everyone sends only to itself: nc() to others costs 0 words.
        assert_eq!(out.total_words_sent, 0);
        assert_eq!(out.supersteps, 1);
    }

    #[test]
    fn replicated_scalar_results_assemble() {
        let e = parse("1 + 2 + 3").unwrap();
        let out = DistMachine::new(3).run(&e).unwrap();
        assert_eq!(out.value.to_string(), "6");
        assert_eq!(out.supersteps, 0);
    }

    #[test]
    fn work_vector_has_one_entry_per_rank() {
        let e = parse("mkpar (fun i -> i)").unwrap();
        let out = DistMachine::new(5).run(&e).unwrap();
        assert_eq!(out.work.len(), 5);
        assert!(out.work.iter().all(|&w| w > 0));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = DistMachine::new(0);
    }
}
