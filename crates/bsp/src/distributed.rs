//! The **distributed** execution backend: one OS thread per BSP
//! processor, real message exchange, real synchronization barriers —
//! the execution model of the original BSMLlib over MPI (and of
//! Loulergue's "Distributed Evaluation of Functional BSP Programs",
//! the paper's reference [5]).
//!
//! Every processor runs the *same* program (SPMD). Replicated
//! (global) expressions are evaluated identically on every thread;
//! parallel vectors exist only as each thread's own component
//! (width-1 `Value::Vector`s). `put` and `if‥at‥` serialize values
//! into [`PortableValue`]s, frame them on the wire protocol of
//! [`crate::wire`], and exchange them through per-rank mailboxes
//! behind a [`crate::transport::Transport`] — reliably: every data
//! frame carries a per-link sequence number and is acknowledged, lost
//! or corrupted frames are retransmitted on an idle-poll deadline,
//! duplicates are suppressed, and a full mailbox exerts backpressure
//! instead of growing without bound (DESIGN.md §10). A superstep's
//! exchange completes only when **all** expected frames are acked on
//! every rank; the final barrier of the superstep is a poisonable
//! [`PoisonBarrier`] (a failing processor releases, rather than
//! deadlocks, its peers).
//!
//! **Robustness** (DESIGN.md §9): every barrier wait runs under a
//! wall-clock watchdog ([`DEFAULT_BARRIER_TIMEOUT`]), so a stalled or
//! deadlocked peer surfaces as [`EvalError::BarrierTimeout`] instead
//! of hanging `run()` forever; a *panicking* processor thread is
//! contained (unwind-caught, barrier poisoned) and reported as
//! [`EvalError::PeerFailure`] instead of aborting the runner; and a
//! seeded [`crate::faults::FaultPlan`] can deterministically inject
//! crashes, message drops and stalls for chaos testing — see
//! [`crate::supervisor::Supervisor`] for replay-based recovery.
//!
//! The lockstep simulator ([`crate::BspMachine`]) and this machine
//! are cross-checked in `tests/distributed.rs`: same values, same
//! per-superstep h-relations.
//!
//! ```
//! use bsml_bsp::distributed::DistMachine;
//! use bsml_syntax::parse;
//!
//! let machine = DistMachine::new(4);
//! let out = machine.run(&parse(
//!     "let recv = put (mkpar (fun j -> fun i -> j * j)) in
//!      apply (recv, mkpar (fun i -> (i + 1) mod (bsp_p ())))")?)?;
//! assert_eq!(out.value.to_string(), "<|1, 4, 9, 0|>");
//! assert_eq!(out.supersteps, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bsml_ast::Expr;
use bsml_eval::{
    Applier, EvalError, Evaluator, Mode, NoHooks, ParallelDriver, PortableValue, Value,
};
use bsml_obs::{FlightEvent, FlightRecorder, Telemetry};

use crate::checkpoint::{
    program_fingerprint, CheckpointPolicy, CheckpointStore, RankFrame, ResumePoint, SyncOutcome,
};
use crate::faults::{FaultKind, FaultPlan};
use crate::postmortem::{FlightLog, RankFlightLog};
use crate::process::RemoteHub;
use crate::supervisor::{Sleeper, ThreadSleeper};
use crate::transport::{LossyNet, NetTuning, SharedMem, Transport, TransportConfig};
use crate::wire::{CtlLedger, CtlStats, Frame, FramePayload};

/// Default per-processor fuel of a [`DistMachine`]: conservative
/// enough that a divergent SPMD program terminates with
/// [`EvalError::OutOfFuel`] in well under a second per thread instead
/// of spinning `p` threads indefinitely. Raise it with
/// [`DistMachine::with_fuel`] for genuinely long computations.
pub const DIST_DEFAULT_FUEL: u64 = 10_000_000;

/// Default watchdog timeout on every barrier wait (and on every
/// message exchange). Generous for a shared-memory machine (barriers
/// are microseconds); its job is to convert *pathological* states — a
/// deadlocked or runaway peer — into [`EvalError::BarrierTimeout`]
/// rather than a hang. Override with
/// [`DistMachine::with_barrier_timeout`] or the
/// `BSML_BARRIER_TIMEOUT_MS` environment variable (read at
/// [`DistMachine::new`]), or disable with
/// [`DistMachine::without_watchdog`].
pub const DEFAULT_BARRIER_TIMEOUT: Duration = Duration::from_secs(30);

/// The environment variable overriding [`DEFAULT_BARRIER_TIMEOUT`]
/// (milliseconds). Unparsable values fall back to the default; the
/// builder method still wins over the environment.
pub const BARRIER_TIMEOUT_ENV: &str = "BSML_BARRIER_TIMEOUT_MS";

/// The watchdog timeout [`DistMachine::new`] starts from: the
/// [`BARRIER_TIMEOUT_ENV`] override when set and parsable, else
/// [`DEFAULT_BARRIER_TIMEOUT`] (malformed values are counted under
/// `config.bad_env_values` by `bsml_obs::env`).
fn barrier_timeout_from_env() -> Duration {
    bsml_obs::env::duration_ms_knob(
        BARRIER_TIMEOUT_ENV,
        DEFAULT_BARRIER_TIMEOUT,
        &Telemetry::disabled(),
    )
}

/// The environment variable enabling the per-rank flight recorder and
/// setting its ring-buffer capacity (events per rank). Unset or
/// unparsable values leave the recorder off; builder methods
/// ([`DistMachine::with_flight_recorder`]) still win over the
/// environment.
pub const FLIGHT_CAPACITY_ENV: &str = "BSML_FLIGHT_CAPACITY";

/// The flight-recorder capacity the supervisor uses when a postmortem
/// directory is configured but no capacity was chosen explicitly.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// The flight capacity [`DistMachine::new`] starts from: the
/// [`FLIGHT_CAPACITY_ENV`] override when set and parsable, else off
/// (malformed values are counted under `config.bad_env_values`).
fn flight_capacity_from_env() -> Option<usize> {
    bsml_obs::env::parse_knob_opt(FLIGHT_CAPACITY_ENV, &Telemetry::disabled())
}

/// Locks a mutex whose protected data stays valid across a peer
/// panic (plain counters): poisoning is ignored, the guard recovered.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A synchronization barrier that can be *poisoned*: when one
/// processor fails, every processor waiting (now or later) is
/// released with [`EvalError::PeerFailure`] instead of deadlocking.
/// Waits may carry a watchdog timeout; a timed-out wait poisons the
/// barrier (so every peer is released too) and surfaces as
/// [`EvalError::BarrierTimeout`].
#[derive(Debug)]
pub(crate) struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct BarrierState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(n: usize) -> PoisonBarrier {
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
        }
    }

    /// Waits for all `n` processors, or until `timeout` elapses.
    ///
    /// The **last** arriver runs `on_complete` (if any) while still
    /// holding the barrier lock, *before* releasing anyone: whatever
    /// the closure observes or publishes is a consistent cut — every
    /// processor has arrived, none has moved on. This is how
    /// checkpoint generations are committed (DESIGN.md §9).
    ///
    /// A poisoned *mutex* (a peer panicked inside the critical
    /// section) is treated like a poisoned barrier: the state may be
    /// inconsistent, so the only safe report is a peer failure.
    fn wait(
        &self,
        timeout: Option<Duration>,
        on_complete: Option<&dyn Fn()>,
    ) -> Result<(), EvalError> {
        let Ok(mut st) = self.state.lock() else {
            return Err(EvalError::PeerFailure);
        };
        if st.poisoned {
            return Err(EvalError::PeerFailure);
        }
        st.waiting += 1;
        if st.waiting == self.n {
            st.waiting = 0;
            // Wrapping: generations only distinguish *adjacent*
            // barrier episodes, so reuse across u64 wraparound is
            // sound (and unit-tested).
            st.generation = st.generation.wrapping_add(1);
            if let Some(complete) = on_complete {
                complete();
            }
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        let deadline = timeout.map(|t| Instant::now() + t);
        while st.generation == gen && !st.poisoned {
            match deadline {
                None => {
                    st = match self.cv.wait(st) {
                        Ok(g) => g,
                        Err(_) => return Err(EvalError::PeerFailure),
                    };
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        let waiting = st.waiting;
                        st.poisoned = true;
                        self.cv.notify_all();
                        return Err(EvalError::BarrierTimeout {
                            superstep: gen,
                            waiting,
                        });
                    }
                    st = match self.cv.wait_timeout(st, d - now) {
                        Ok((g, _)) => g,
                        Err(_) => return Err(EvalError::PeerFailure),
                    };
                }
            }
        }
        if st.poisoned {
            Err(EvalError::PeerFailure)
        } else {
            Ok(())
        }
    }

    fn poison(&self) {
        let mut st = lock_ignore_poison(&self.state);
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// Whether a peer has failed. The exchange loop polls this so a
    /// crash surfaces mid-communication, not only at the next barrier.
    fn is_poisoned(&self) -> bool {
        lock_ignore_poison(&self.state).poisoned
    }
}

/// How one attempt's ranks synchronize: through a shared in-memory
/// [`PoisonBarrier`] (the thread-per-rank backend), or through the
/// parent coordinator's control stream (the process-per-rank backend,
/// DESIGN.md §13 — each rank is an OS process holding one end of a
/// Unix socket, and "poison" is a control message instead of a flag).
#[derive(Debug)]
pub(crate) enum SyncBackend {
    /// All ranks share one address space and one barrier.
    Local(PoisonBarrier),
    /// This rank is alone in its process; barriers, exchange
    /// completion and poison all travel through the hub's socket.
    Remote(Arc<RemoteHub>),
}

/// Per-superstep communication statistics of one processor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct CommStats {
    sent_words: u64,
    received_words: u64,
    supersteps: u64,
    puts: u64,
    ifats: u64,
}

/// Counters for everything the fault, checkpoint, and transport
/// layers did to one run; flushed into the `bsp.*` and `net.*`
/// telemetry counters whether the run succeeds or fails.
#[derive(Debug, Default)]
struct FaultLedger {
    faults_injected: AtomicU64,
    barrier_timeouts: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoint_bytes: AtomicU64,
    /// The highest superstep any rank completed (only maintained when
    /// checkpointing is enabled) — how the supervisor knows, even for
    /// errors that carry no coordinate (a peer panic), how much
    /// progress a failed attempt made and therefore how many
    /// supersteps a resume replays.
    furthest_superstep: AtomicU64,
    /// Frames handed to the transport (data + acks, retransmissions
    /// included).
    frames_sent: AtomicU64,
    /// Retransmissions of unacked data frames.
    retransmits: AtomicU64,
    /// Received frames suppressed by sequence number (duplicates and
    /// stale frames from a completed exchange).
    dups_dropped: AtomicU64,
    /// Received frames rejected by the wire decoder (checksum,
    /// truncation, bad tags) — each is treated as lost and repaired by
    /// retransmission.
    corrupt_frames: AtomicU64,
    /// `try_send` refusals: how often a full peer mailbox made a
    /// sender drain its own mail and retry.
    backpressure_waits: AtomicU64,
    /// Plan-injected in-flight losses swallowed by the reliable layer
    /// (lossy transports only; the substrate's own injected drops are
    /// counted by the transport itself).
    frames_lost: AtomicU64,
}

impl FaultLedger {
    /// A plain snapshot of the portable counters — the form a rank
    /// process ships home over the control stream, and the form
    /// [`flush_counters`] consumes.
    fn counters(&self) -> CtlLedger {
        CtlLedger {
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            barrier_timeouts: self.barrier_timeouts.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            dups_dropped: self.dups_dropped.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            frames_lost: self.frames_lost.load(Ordering::Relaxed),
        }
    }
}

/// Flushes one attempt's reliability and checkpoint counters into the
/// `bsp.*` / `net.*` telemetry counters — shared by the in-process
/// backend (from its own [`FaultLedger`]) and the multi-process parent
/// (from the [`CtlLedger`]s its rank processes shipped home), so both
/// backends account identically. `extra_frames_lost` carries the lossy
/// substrate's own injected drops.
pub(crate) fn flush_counters(
    telemetry: &Telemetry,
    counters: &CtlLedger,
    checkpoints_written: u64,
    checkpoint_bytes: u64,
    extra_frames_lost: u64,
) {
    if counters.faults_injected > 0 {
        telemetry.counter_add("bsp.faults_injected", counters.faults_injected);
    }
    if counters.barrier_timeouts > 0 {
        telemetry.counter_add("bsp.barrier_timeouts", counters.barrier_timeouts);
    }
    if checkpoints_written > 0 {
        telemetry.counter_add("bsp.checkpoints_written", checkpoints_written);
    }
    if checkpoint_bytes > 0 {
        telemetry.counter_add("bsp.checkpoint_bytes", checkpoint_bytes);
    }
    if counters.frames_sent > 0 {
        telemetry.counter_add("net.frames_sent", counters.frames_sent);
    }
    if counters.retransmits > 0 {
        telemetry.counter_add("net.retransmits", counters.retransmits);
    }
    if counters.dups_dropped > 0 {
        telemetry.counter_add("net.dups_dropped", counters.dups_dropped);
    }
    if counters.corrupt_frames > 0 {
        telemetry.counter_add("net.corrupt_frames", counters.corrupt_frames);
    }
    if counters.backpressure_waits > 0 {
        telemetry.counter_add("net.backpressure_waits", counters.backpressure_waits);
    }
    let frames_lost = counters.frames_lost + extra_frames_lost;
    if frames_lost > 0 {
        telemetry.counter_add("net.frames_lost", frames_lost);
    }
}

/// The checkpoint runtime shared by all ranks of one attempt.
#[derive(Debug)]
struct NetCheckpoint {
    /// Checkpoint every `interval` completed supersteps.
    interval: u64,
    /// Where frames are staged and committed.
    store: Arc<dyn CheckpointStore>,
    /// [`program_fingerprint`] of this (program, p) pair.
    fingerprint: u64,
}

/// The shared "network": the frame transport, the barrier, the
/// exchange-completion counter, and the (optional) fault plan
/// governing this attempt.
#[derive(Debug)]
struct Network {
    p: usize,
    /// How this rank synchronizes with its peers (in-memory barrier,
    /// or the parent coordinator's control stream).
    sync: SyncBackend,
    /// The substrate frames travel over (per-rank mailboxes).
    transport: Arc<dyn Transport>,
    /// Retransmission/backpressure knobs of the reliable layer.
    tuning: NetTuning,
    /// How idle exchange polls pause — injectable so chaos tests
    /// never depend on wall-clock sleeping.
    sleeper: Arc<dyn Sleeper>,
    /// Cumulative count of locally-completed exchanges across all
    /// ranks. Exchange `n` is globally complete when this reaches
    /// `p·(n+1)`; until then every locally-done rank keeps servicing
    /// its mailbox (re-acking duplicates), which is what makes a lost
    /// *ack* recoverable — the peer that needs it is still listening.
    exchanges_done: AtomicU64,
    /// Watchdog timeout applied to every barrier wait and exchange.
    barrier_timeout: Option<Duration>,
    /// Faults to inject into this attempt (`None` = zero-cost).
    faults: Option<Arc<FaultPlan>>,
    /// Which retry attempt this network serves (plans arm faults
    /// per-attempt).
    attempt: u32,
    ledger: FaultLedger,
    /// Checkpoint runtime (`None` = checkpointing disabled, which
    /// keeps the hot path free of any new work).
    checkpoint: Option<NetCheckpoint>,
    /// Per-rank flight recorders (`None` = recording disabled). They
    /// live here — not in the driver — so the attempt can drain every
    /// rank's ring after the threads are gone, including ranks that
    /// panicked.
    flight: Option<Vec<Arc<FlightRecorder>>>,
    /// Unique ids for telemetry flow arrows (one per delivered data
    /// frame).
    flow_ids: AtomicU64,
}

impl Network {
    // Private constructor mirroring the field list one-for-one; a
    // params struct would just restate it.
    #[allow(clippy::too_many_arguments)]
    fn new(
        p: usize,
        transport: Arc<dyn Transport>,
        tuning: NetTuning,
        sleeper: Arc<dyn Sleeper>,
        barrier_timeout: Option<Duration>,
        faults: Option<Arc<FaultPlan>>,
        attempt: u32,
        checkpoint: Option<NetCheckpoint>,
        flight: Option<Vec<Arc<FlightRecorder>>>,
    ) -> Network {
        Network {
            p,
            sync: SyncBackend::Local(PoisonBarrier::new(p)),
            transport,
            tuning,
            sleeper,
            exchanges_done: AtomicU64::new(0),
            barrier_timeout,
            faults,
            attempt,
            ledger: FaultLedger::default(),
            checkpoint,
            flight,
            flow_ids: AtomicU64::new(0),
        }
    }

    /// Marks the run as dead, releasing every waiter — a barrier flag
    /// locally, a control message through the hub remotely.
    fn poison(&self) {
        match &self.sync {
            SyncBackend::Local(barrier) => barrier.poison(),
            SyncBackend::Remote(hub) => hub.poison(),
        }
    }

    /// Whether a peer (or the parent) has declared the run dead.
    fn is_poisoned(&self) -> bool {
        match &self.sync {
            SyncBackend::Local(barrier) => barrier.is_poisoned(),
            SyncBackend::Remote(hub) => hub.is_poisoned(),
        }
    }

    /// Declares this rank's current exchange locally complete.
    fn declare_exchange_done(&self) {
        match &self.sync {
            SyncBackend::Local(_) => {
                self.exchanges_done.fetch_add(1, Ordering::AcqRel);
            }
            SyncBackend::Remote(hub) => hub.declare_exchange_done(),
        }
    }

    /// The machine-wide count of locally-completed exchanges (exchange
    /// `n` is globally complete at `p·(n+1)`).
    fn exchange_global_count(&self) -> u64 {
        match &self.sync {
            SyncBackend::Local(_) => self.exchanges_done.load(Ordering::Acquire),
            SyncBackend::Remote(hub) => hub.exchange_total(),
        }
    }
}

/// Replay state of a resumed rank: the checkpoint frame being
/// consumed and a cursor into its outcome log.
struct ReplayState {
    frame: RankFrame,
    next: usize,
}

/// One outbound data frame of an exchange and its delivery state —
/// an entry of the per-exchange send window.
struct OutFrame {
    dst: usize,
    seq: u64,
    bytes: Vec<u8>,
    /// Accepted by the transport at least once.
    sent: bool,
    /// The exchange-loop poll iteration of the first transmission —
    /// the zero point of the `net.ack_latency_polls` histogram.
    sent_at_poll: u64,
    /// Idle polls since the last (re)transmission.
    idle: u32,
    acked: bool,
    retransmits: u32,
    /// Plan-injected in-flight loss: the first transmission is
    /// swallowed before reaching the transport, so the retransmission
    /// machinery has to repair it (lossy substrates only).
    drop_first: bool,
}

/// The SPMD driver for one processor (rank). Statistics are shared
/// out through a mutex so the thread can read them back after the
/// evaluator (which owns the boxed driver) is done.
struct SpmdDriver {
    rank: usize,
    net: Arc<Network>,
    stats: Arc<Mutex<CommStats>>,
    /// Per-rank telemetry handle (on track `p{rank}`); disabled by
    /// default.
    telemetry: Telemetry,
    /// The outcome log recorded for checkpoint frames (`Some` iff
    /// checkpointing is enabled; grows by one entry per superstep).
    record: Option<Vec<SyncOutcome>>,
    /// Replay state when this attempt resumes from a checkpoint.
    replay: Option<ReplayState>,
    /// Next sequence number per `(self → dst)` link.
    send_seq: Vec<u64>,
    /// Next expected sequence number per `(src → self)` link; frames
    /// below it are duplicates.
    recv_seq: Vec<u64>,
    /// Exchanges completed by this rank this attempt (identical on
    /// every rank by SPMD replication — the exchange-completion
    /// counter's target derives from it).
    exchanges: u64,
    /// This rank's Lamport clock (DESIGN.md §12): advanced by one on
    /// every local protocol event (stamping a frame, entering or
    /// leaving a barrier), and to `max(local, remote) + 1` on every
    /// received frame — so a receive is always strictly after its
    /// send in Lamport order, across ranks. Shared (atomically) with
    /// the process-mode control hub, whose heartbeat and link events
    /// must interleave correctly with the driver's stamps.
    clock: Arc<AtomicU64>,
    /// This rank's flight recorder (`None` = recording disabled).
    flight: Option<Arc<FlightRecorder>>,
    /// Fuel remaining at the previous superstep boundary — the
    /// [`FlightEvent::SuperstepEnd`] work figure is the delta.
    fuel_mark: u64,
    /// `sent_words` at the previous superstep boundary.
    sent_mark: u64,
    /// `received_words` at the previous superstep boundary.
    recv_mark: u64,
}

impl SpmdDriver {
    /// The superstep this rank is currently entering (completed
    /// barriers so far) — the coordinate fault plans are keyed on.
    fn superstep(&self) -> u64 {
        lock_ignore_poison(&self.stats).supersteps
    }

    /// Advances the Lamport clock for a local event and returns the
    /// new stamp.
    fn tick(&mut self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Advances the Lamport clock past a received remote stamp
    /// (`max(local, remote) + 1`) and returns the new stamp.
    fn observe(&mut self, remote: u64) -> u64 {
        self.clock.fetch_max(remote, Ordering::AcqRel);
        self.tick()
    }

    /// Records one flight event at the given stamp (no-op when the
    /// recorder is off).
    fn flight_record(&self, lamport: u64, event: FlightEvent) {
        if let Some(rec) = &self.flight {
            rec.record(lamport, event);
        }
    }

    /// At every superstep boundary: one [`FlightEvent::SuperstepEnd`]
    /// carrying the per-superstep work (the fuel delta) and traffic
    /// (sent/received word deltas) since the previous boundary —
    /// the record the postmortem analyzer folds into observed BSP
    /// parameters. No-op when the recorder is off.
    fn note_superstep_end(&mut self, superstep: u64, fuel_left: u64) {
        if self.flight.is_none() {
            return;
        }
        let stats = *lock_ignore_poison(&self.stats);
        let work = self.fuel_mark.saturating_sub(fuel_left);
        let sent_words = stats.sent_words - self.sent_mark;
        let received_words = stats.received_words - self.recv_mark;
        self.fuel_mark = fuel_left;
        self.sent_mark = stats.sent_words;
        self.recv_mark = stats.received_words;
        let lamport = self.tick();
        self.flight_record(
            lamport,
            FlightEvent::SuperstepEnd {
                superstep,
                work,
                sent_words,
                received_words,
            },
        );
    }

    /// Injects any crash/panic/stall the fault plan schedules for
    /// this rank at the current superstep. Called once at the entry
    /// of each synchronizing primitive. Every firing lands in the
    /// flight recorder *before* its effect — a panicking rank's last
    /// recorded event is the panic that killed it.
    fn inject_entry_faults(&mut self) -> Result<u64, EvalError> {
        let superstep = self.superstep();
        let Some(plan) = &self.net.faults else {
            return Ok(superstep);
        };
        let plan = Arc::clone(plan);
        if let Some(delay) = plan.stall_before(self.rank, superstep, self.net.attempt) {
            self.net
                .ledger
                .faults_injected
                .fetch_add(1, Ordering::Relaxed);
            let lamport = self.tick();
            self.flight_record(lamport, FlightEvent::FaultFired { superstep, kind: 3 });
            std::thread::sleep(delay);
        }
        match plan.crash_at(self.rank, superstep, self.net.attempt) {
            Some(kind @ FaultKind::Panic { .. }) => {
                self.net
                    .ledger
                    .faults_injected
                    .fetch_add(1, Ordering::Relaxed);
                let lamport = self.tick();
                self.flight_record(
                    lamport,
                    FlightEvent::FaultFired {
                        superstep,
                        kind: kind.code(),
                    },
                );
                // Contained by `run_rank`'s unwind guard, which also
                // poisons the barrier on our behalf.
                panic!(
                    "injected panic: processor {} at superstep {superstep}",
                    self.rank
                );
            }
            Some(kind) => {
                self.net
                    .ledger
                    .faults_injected
                    .fetch_add(1, Ordering::Relaxed);
                let lamport = self.tick();
                self.flight_record(
                    lamport,
                    FlightEvent::FaultFired {
                        superstep,
                        kind: kind.code(),
                    },
                );
                self.net.poison();
                Err(EvalError::InjectedFault {
                    rank: self.rank,
                    superstep,
                })
            }
            None => Ok(superstep),
        }
    }

    /// Whether the fault plan drops this rank's message to `dst` in
    /// the given superstep (counting and recording the injection if
    /// so).
    fn drops_message(&mut self, dst: usize, superstep: u64) -> bool {
        let Some(plan) = &self.net.faults else {
            return false;
        };
        if plan.drops(self.rank, dst, superstep, self.net.attempt) {
            self.net
                .ledger
                .faults_injected
                .fetch_add(1, Ordering::Relaxed);
            let lamport = self.tick();
            self.flight_record(lamport, FlightEvent::FaultFired { superstep, kind: 2 });
            true
        } else {
            false
        }
    }

    /// Waits on the shared barrier under the watchdog, recording how
    /// long this thread spent blocked into the `bsp.barrier_wait_us`
    /// histogram. Timeouts are re-tagged with this rank's BSP
    /// superstep and counted.
    fn barrier_wait(&self) -> Result<(), EvalError> {
        self.barrier_wait_with(None)
    }

    fn barrier_wait_with(&self, on_complete: Option<&dyn Fn()>) -> Result<(), EvalError> {
        self.timed_barrier(|| match &self.net.sync {
            SyncBackend::Local(barrier) => barrier.wait(self.net.barrier_timeout, on_complete),
            // The remote backend synchronizes through the hub in
            // `superstep_exit_barrier`; a bare local wait has no
            // remote counterpart, so reaching one is a protocol bug
            // reported as a peer failure (never a hang).
            SyncBackend::Remote(_) => Err(EvalError::PeerFailure),
        })
    }

    /// Runs one barrier wait (any backend), timing it into the
    /// `bsp.barrier_wait_us` histogram and re-tagging timeouts with
    /// this rank's BSP superstep (counted in the ledger).
    fn timed_barrier(&self, wait: impl FnOnce() -> Result<(), EvalError>) -> Result<(), EvalError> {
        let result = if self.telemetry.is_enabled() {
            let before = Instant::now();
            let result = wait();
            let waited = u64::try_from(before.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.telemetry
                .histogram_record("bsp.barrier_wait_us", waited);
            result
        } else {
            wait()
        };
        match result {
            Err(EvalError::BarrierTimeout { waiting, .. }) => {
                self.net
                    .ledger
                    .barrier_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                Err(EvalError::BarrierTimeout {
                    superstep: self.superstep(),
                    waiting,
                })
            }
            other => other,
        }
    }

    fn my_component<'v>(
        &self,
        comps: &'v [Value],
        what: &'static str,
    ) -> Result<&'v Value, EvalError> {
        if comps.len() == 1 {
            Ok(&comps[0])
        } else {
            Err(EvalError::ScrutineeMismatch(
                what,
                format!(
                    "SPMD vectors hold one component per processor, got width {}",
                    comps.len()
                ),
            ))
        }
    }

    /// Runs one reliable exchange over the transport: transmits
    /// `sends` (this rank's window of data frames), collects and
    /// acknowledges the frames this rank `expect`s, retransmits
    /// unacked frames on an idle-poll deadline (lossy transports
    /// only — on a lossless substrate an unacked frame means the peer
    /// has not arrived yet, and the wall-clock watchdog owns that
    /// case), suppresses duplicates by per-link sequence number, and
    /// rejects frames the wire decoder refuses. The exchange is over
    /// only when **every** rank has declared itself done (all expected
    /// frames accepted, all own frames acked, all acks flushed): the
    /// shared completion counter keeps locally-done ranks servicing
    /// their mailboxes, which is what makes a lost *ack* recoverable —
    /// the peer that needs to resend is still being listened to
    /// (DESIGN.md §10).
    fn exchange(
        &mut self,
        superstep: u64,
        sends: Vec<(usize, FramePayload, bool)>,
        expect: &[bool],
    ) -> Result<Vec<Option<FramePayload>>, EvalError> {
        // The exchange doubles as the superstep's entry
        // synchronization (the old design's first barrier), so the
        // time a rank spends in it lands in the same histogram its
        // barrier waits do — the telemetry contract stays "two timed
        // sync phases per rank per superstep".
        if self.telemetry.is_enabled() {
            let before = Instant::now();
            let result = self.exchange_inner(superstep, sends, expect);
            let waited = u64::try_from(before.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.telemetry
                .histogram_record("bsp.barrier_wait_us", waited);
            result
        } else {
            self.exchange_inner(superstep, sends, expect)
        }
    }

    fn exchange_inner(
        &mut self,
        superstep: u64,
        sends: Vec<(usize, FramePayload, bool)>,
        expect: &[bool],
    ) -> Result<Vec<Option<FramePayload>>, EvalError> {
        let net = Arc::clone(&self.net);
        let p = net.p;
        let ledger = &net.ledger;
        let lossless = net.transport.is_lossless();
        let target = (self.exchanges + 1).saturating_mul(p as u64);
        let deadline = net.barrier_timeout.map(|t| Instant::now() + t);

        // Stamp each outbound frame with this rank's Lamport clock at
        // build time. A retransmission reuses these exact bytes: same
        // stamp, same logical message — which is what lets the
        // postmortem analyzer pair every receive with its send.
        let mut window: Vec<OutFrame> = Vec::with_capacity(sends.len());
        for (dst, payload, drop_first) in sends {
            let seq = self.send_seq[dst];
            self.send_seq[dst] += 1;
            let lamport = self.tick();
            let bytes = Frame {
                from: self.rank,
                superstep,
                seq,
                lamport,
                payload,
            }
            .encode();
            self.flight_record(
                lamport,
                FlightEvent::FrameSent {
                    to: dst as u64,
                    seq,
                    superstep,
                    bytes: bytes.len() as u64,
                },
            );
            window.push(OutFrame {
                dst,
                seq,
                bytes,
                sent: false,
                sent_at_poll: 0,
                idle: 0,
                acked: false,
                retransmits: 0,
                drop_first,
            });
        }

        let mut inbox: Vec<Option<FramePayload>> = vec![None; p];
        let mut awaiting = expect.iter().filter(|&&e| e).count();
        let mut acks_due: VecDeque<(usize, u64)> = VecDeque::new();
        let mut declared_done = false;
        let mut polls: u64 = 0;

        loop {
            polls += 1;
            let mut progressed = false;

            // Phase 1: (re)transmit the send window.
            let mut backpressured_to: Option<usize> = None;
            let mut retransmitted: Option<(usize, u64)> = None;
            for f in &mut window {
                if !f.sent {
                    if f.drop_first {
                        // Plan-injected in-flight loss: the frame
                        // vanishes before the transport ever sees it;
                        // the retransmission deadline repairs it.
                        f.drop_first = false;
                        f.sent = true;
                        f.sent_at_poll = polls;
                        ledger.frames_lost.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    } else if net.transport.try_send(self.rank, f.dst, &f.bytes) {
                        f.sent = true;
                        f.sent_at_poll = polls;
                        f.idle = 0;
                        ledger.frames_sent.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    } else {
                        ledger.backpressure_waits.fetch_add(1, Ordering::Relaxed);
                        backpressured_to = Some(f.dst);
                    }
                } else if !f.acked && !lossless && f.idle >= net.tuning.retransmit_after {
                    if f.retransmits >= net.tuning.retransmit_budget {
                        net.poison();
                        return Err(EvalError::TransportFailure {
                            rank: self.rank,
                            superstep,
                            detail: format!(
                                "message to rank {} (seq {}) unacknowledged after {} \
                                 retransmissions",
                                f.dst, f.seq, f.retransmits
                            ),
                        });
                    }
                    if net.transport.try_send(self.rank, f.dst, &f.bytes) {
                        f.retransmits += 1;
                        f.idle = 0;
                        ledger.retransmits.fetch_add(1, Ordering::Relaxed);
                        ledger.frames_sent.fetch_add(1, Ordering::Relaxed);
                        retransmitted = Some((f.dst, f.seq));
                        progressed = true;
                    } else {
                        ledger.backpressure_waits.fetch_add(1, Ordering::Relaxed);
                        backpressured_to = Some(f.dst);
                    }
                }
            }
            // Flight events are recorded outside the window borrow (at
            // most one of each per poll — enough for a postmortem, and
            // it keeps a spinning sender from flooding its own ring).
            if let Some((dst, seq)) = retransmitted {
                let lamport = self.tick();
                self.flight_record(
                    lamport,
                    FlightEvent::FrameRetransmitted {
                        to: dst as u64,
                        seq,
                    },
                );
            }
            if let Some(dst) = backpressured_to {
                let lamport = self.tick();
                self.flight_record(lamport, FlightEvent::BackpressureWait { to: dst as u64 });
            }

            // Phase 2: flush pending acks. A refusal re-queues the ack
            // and breaks — but the drain below keeps running either
            // way, so two ranks with mutually full mailboxes cannot
            // deadlock on each other.
            while let Some(&(dst, seq)) = acks_due.front() {
                let lamport = self.tick();
                let bytes = Frame {
                    from: self.rank,
                    superstep,
                    seq,
                    lamport,
                    payload: FramePayload::Ack,
                }
                .encode();
                if net.transport.try_send(self.rank, dst, &bytes) {
                    acks_due.pop_front();
                    ledger.frames_sent.fetch_add(1, Ordering::Relaxed);
                    self.flight_record(
                        lamport,
                        FlightEvent::AckSent {
                            to: dst as u64,
                            seq,
                        },
                    );
                    progressed = true;
                } else {
                    // The stamp is discarded with the frame — a fresh
                    // one is drawn when the ack is retried.
                    ledger.backpressure_waits.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }

            // Phase 3: drain this rank's mailbox.
            while let Some(bytes) = net.transport.recv(self.rank) {
                progressed = true;
                let frame = match Frame::decode(&bytes) {
                    Ok(f) => f,
                    Err(_) => {
                        // A frame the decoder rejects (bit corruption,
                        // truncation) is treated as lost: dropped here,
                        // repaired by the sender's retransmission.
                        ledger.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                        let lamport = self.tick();
                        self.flight_record(lamport, FlightEvent::CorruptRejected);
                        continue;
                    }
                };
                let src = frame.from;
                if src >= p || src == self.rank {
                    ledger.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    let lamport = self.tick();
                    self.flight_record(lamport, FlightEvent::CorruptRejected);
                    continue;
                }
                // Every received frame advances the Lamport clock past
                // the sender's stamp: the receive is strictly after
                // the send, machine-wide.
                let stamp = self.observe(frame.lamport);
                match frame.payload {
                    FramePayload::Ack => {
                        // A stale ack (no matching window entry) is
                        // ignored: its exchange already completed.
                        let mut round_trip = None;
                        if let Some(f) = window
                            .iter_mut()
                            .find(|f| f.dst == src && f.seq == frame.seq)
                        {
                            if !f.acked {
                                f.acked = true;
                                round_trip = Some(polls.saturating_sub(f.sent_at_poll));
                            }
                        }
                        if let Some(rt) = round_trip {
                            self.telemetry.histogram_record("net.ack_latency_polls", rt);
                            self.flight_record(
                                stamp,
                                FlightEvent::AckReceived {
                                    from: src as u64,
                                    seq: frame.seq,
                                    polls: rt,
                                },
                            );
                        }
                    }
                    payload => {
                        if frame.seq == self.recv_seq[src] && expect[src] && inbox[src].is_none() {
                            self.recv_seq[src] += 1;
                            inbox[src] = Some(payload);
                            awaiting -= 1;
                            acks_due.push_back((src, frame.seq));
                            self.flight_record(
                                stamp,
                                FlightEvent::FrameReceived {
                                    from: src as u64,
                                    seq: frame.seq,
                                    superstep: frame.superstep,
                                    sent_lamport: frame.lamport,
                                },
                            );
                            if self.telemetry.is_enabled() {
                                // A causal arrow from the sender's rank
                                // track to ours, at the delivery
                                // instant (the sender's wall clock is
                                // not observable here).
                                let now = self.telemetry.now_us();
                                let from_track =
                                    self.telemetry.track(&format!("p{src}")).current_track();
                                let id = net.flow_ids.fetch_add(1, Ordering::Relaxed);
                                self.telemetry.record_flow(
                                    id,
                                    match inbox[src] {
                                        Some(FramePayload::IfAt(_)) => "ifat",
                                        _ => "put",
                                    },
                                    from_track,
                                    self.telemetry.current_track(),
                                    now,
                                    now,
                                );
                            }
                        } else if frame.seq < self.recv_seq[src] {
                            // Duplicate (a retransmission whose
                            // original already arrived): suppress, but
                            // re-ack — the sender may have lost ours.
                            ledger.dups_dropped.fetch_add(1, Ordering::Relaxed);
                            acks_due.push_back((src, frame.seq));
                        } else {
                            // A data frame from the future, or on a
                            // link nothing was expected on: protocol
                            // noise — suppress without acking so the
                            // sender's budget eventually surfaces it.
                            ledger.dups_dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }

            if !declared_done
                && awaiting == 0
                && window.iter().all(|f| f.acked)
                && acks_due.is_empty()
            {
                declared_done = true;
                net.declare_exchange_done();
                progressed = true;
            }
            if declared_done && net.exchange_global_count() >= target {
                break;
            }

            // Liveness: a crashed peer surfaces mid-exchange, and a
            // stalled one trips the wall-clock watchdog.
            if net.is_poisoned() {
                return Err(EvalError::PeerFailure);
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    ledger.barrier_timeouts.fetch_add(1, Ordering::Relaxed);
                    net.poison();
                    let done = net.exchange_global_count();
                    let base = self.exchanges.saturating_mul(p as u64);
                    return Err(EvalError::BarrierTimeout {
                        superstep,
                        waiting: usize::try_from(done.saturating_sub(base)).unwrap_or(0),
                    });
                }
            }
            if !progressed {
                // Idle poll: age unacked frames toward their
                // retransmission deadline and pause through the
                // injectable sleeper (never a bare thread::sleep, so
                // tests control all wall-clock behavior).
                for f in &mut window {
                    if f.sent && !f.acked {
                        f.idle += 1;
                    }
                }
                net.sleeper.sleep(net.tuning.poll_sleep);
            }
        }
        self.exchanges += 1;
        Ok(inbox)
    }

    // --- checkpoint recording, staging and replay -------------------------

    /// Whether this rank is still consuming a checkpoint's outcome log
    /// (replay mode: no barriers, no faults, no staging).
    fn replaying(&self) -> bool {
        self.replay
            .as_ref()
            .is_some_and(|r| r.next < r.frame.outcomes.len())
    }

    /// Pops the next recorded outcome, also appending it to this
    /// attempt's own record log (so frames staged after going live
    /// carry the full history).
    fn take_replay_outcome(&mut self) -> SyncOutcome {
        let r = self.replay.as_mut().expect("checked by replaying()");
        let outcome = r.frame.outcomes[r.next].clone();
        r.next += 1;
        if let Some(rec) = &mut self.record {
            rec.push(outcome.clone());
        }
        outcome
    }

    /// A divergence between the replayed program and the checkpoint:
    /// poisons the barrier (peers may already be live and waiting) and
    /// reports the coordinate. The supervisor reacts by falling back
    /// to a full restart — a wrong checkpoint costs time, never
    /// correctness.
    fn diverged(&self, superstep: u64, detail: impl Into<String>) -> EvalError {
        self.net.poison();
        EvalError::CheckpointDiverged {
            rank: self.rank,
            superstep,
            detail: detail.into(),
        }
    }

    /// At the end of a *replayed* superstep: tracks progress and, at
    /// the replay boundary (log exhausted), verifies that the
    /// deterministic re-run landed exactly on the state the frame
    /// recorded — fuel and every statistic. Any mismatch means the
    /// checkpoint does not describe this program's execution.
    fn finish_replayed_superstep(&mut self, fuel_left: u64) -> Result<(), EvalError> {
        let stats = *lock_ignore_poison(&self.stats);
        self.net
            .ledger
            .furthest_superstep
            .fetch_max(stats.supersteps, Ordering::Relaxed);
        let r = self.replay.as_ref().expect("in replay");
        if r.next < r.frame.outcomes.len() {
            return Ok(());
        }
        let f = &r.frame;
        if stats.supersteps != f.superstep {
            return Err(self.diverged(
                stats.supersteps,
                format!(
                    "replay ended after {} supersteps, frame cut is at {}",
                    stats.supersteps, f.superstep
                ),
            ));
        }
        if fuel_left != f.fuel_left {
            return Err(self.diverged(
                stats.supersteps,
                format!(
                    "fuel fingerprint mismatch: replay has {fuel_left}, frame recorded {}",
                    f.fuel_left
                ),
            ));
        }
        if stats.sent_words != f.sent_words
            || stats.received_words != f.received_words
            || stats.puts != f.puts
            || stats.ifats != f.ifats
        {
            return Err(self.diverged(
                stats.supersteps,
                format!(
                    "statistics mismatch: replay {stats:?}, frame ({}, {}, {}, {})",
                    f.sent_words, f.received_words, f.puts, f.ifats
                ),
            ));
        }
        Ok(())
    }

    /// After a live superstep completes: appends the outcome to the
    /// record log, tracks progress, and stages a frame when the
    /// policy's interval divides the completed-superstep count.
    /// Returns the staged generation, to be committed at the final
    /// barrier. All of this is behind `net.checkpoint` — disabled
    /// machines do nothing here.
    fn record_and_stage(&mut self, outcome: SyncOutcome, fuel_left: u64) -> Option<u64> {
        let (interval, fingerprint, store) = {
            let ck = self.net.checkpoint.as_ref()?;
            (ck.interval, ck.fingerprint, Arc::clone(&ck.store))
        };
        let stats = *lock_ignore_poison(&self.stats);
        self.net
            .ledger
            .furthest_superstep
            .fetch_max(stats.supersteps, Ordering::Relaxed);
        let record = self.record.as_mut().expect("recording iff checkpointing");
        record.push(outcome);
        if !stats.supersteps.is_multiple_of(interval) {
            return None;
        }
        let frame = RankFrame {
            fingerprint,
            rank: self.rank,
            superstep: stats.supersteps,
            fuel_left,
            sent_words: stats.sent_words,
            received_words: stats.received_words,
            puts: stats.puts,
            ifats: stats.ifats,
            outcomes: record.clone(),
        };
        // A store that cannot stage simply skips this generation —
        // checkpointing is best-effort, never a reason to fail a run.
        let staged = store.stage(&frame).ok().map(|_| stats.supersteps);
        if let Some(generation) = staged {
            let lamport = self.tick();
            self.flight_record(lamport, FlightEvent::CheckpointStaged { generation });
        }
        staged
    }

    /// The final barrier of a superstep. If this rank staged a frame,
    /// the last arriver commits the generation while holding the
    /// barrier lock: at that instant every rank has staged its frame
    /// of the same cut and none has started the next superstep — the
    /// consistent-cut argument of DESIGN.md §9.
    fn superstep_exit_barrier(
        &mut self,
        staged: Option<u64>,
        superstep: u64,
    ) -> Result<(), EvalError> {
        let lamport = self.tick();
        self.flight_record(lamport, FlightEvent::BarrierEnter { superstep });
        let result = match &self.net.sync {
            // Process mode: the *parent* owns the commit — it collects
            // every rank's `BarrierEnter` (with its staged frame),
            // commits the generation at the quorum instant (the same
            // consistent cut: every rank has arrived, none has been
            // released), and broadcasts the release this rank waits
            // for here.
            SyncBackend::Remote(hub) => {
                let hub = Arc::clone(hub);
                let timeout = self.net.barrier_timeout;
                self.timed_barrier(move || hub.barrier_enter(superstep, timeout))
            }
            SyncBackend::Local(_) => match (staged, &self.net.checkpoint) {
                (Some(generation), Some(ck)) => {
                    let ledger = &self.net.ledger;
                    let store = Arc::clone(&ck.store);
                    let p = self.net.p;
                    let commit = move || {
                        if let Ok(bytes) = store.commit(generation, p) {
                            ledger.checkpoints_written.fetch_add(1, Ordering::Relaxed);
                            ledger.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
                        }
                    };
                    self.barrier_wait_with(Some(&commit))
                }
                _ => self.barrier_wait(),
            },
        };
        if result.is_ok() {
            let lamport = self.tick();
            self.flight_record(lamport, FlightEvent::BarrierExit { superstep });
            if let Some(generation) = staged {
                // Recorded on every rank, not just the committing
                // arriver: the commit is a property of the consistent
                // cut, and every rank passed through it.
                let lamport = self.tick();
                self.flight_record(lamport, FlightEvent::CheckpointCommitted { generation });
            }
        }
        result
    }

    /// The replayed counterpart of [`ParallelDriver::put`]: re-runs
    /// the local phase (so fuel and sent-word accounting advance
    /// exactly as in the original run) but takes the delivered table
    /// from the log instead of the network — no barrier, no mailbox,
    /// no faults.
    fn replay_put(&mut self, ev: &mut dyn Applier, fs: &[Value]) -> Result<Value, EvalError> {
        let p = self.net.p;
        let superstep = self.superstep();
        let SyncOutcome::Put { delivered } = self.take_replay_outcome() else {
            return Err(self.diverged(
                superstep,
                "program reaches a put where the log recorded an if‥at‥",
            ));
        };
        let f = self.my_component(fs, "put")?.clone();
        for dst in 0..p {
            let v = ev.apply_fn(f.clone(), Value::Int(dst as i64), Mode::OnProc(self.rank))?;
            ev.ensure_local(&v)?;
            if dst != self.rank {
                lock_ignore_poison(&self.stats).sent_words += v.size_in_words();
            }
        }
        if delivered.len() != p {
            return Err(self.diverged(
                superstep,
                format!(
                    "delivered table of width {} on a {p}-rank cut",
                    delivered.len()
                ),
            ));
        }
        let table: Vec<Value> = delivered.iter().map(PortableValue::to_value).collect();
        {
            let mut stats = lock_ignore_poison(&self.stats);
            for (j, v) in table.iter().enumerate() {
                if j != self.rank {
                    stats.received_words += v.size_in_words();
                }
            }
            stats.supersteps += 1;
            stats.puts += 1;
        }
        // Replayed supersteps land in the flight recorder too — the
        // postmortem timeline of a resumed attempt starts at the cut,
        // and these entries are its prefix.
        self.note_superstep_end(superstep, ev.fuel_left());
        self.finish_replayed_superstep(ev.fuel_left())?;
        Ok(Value::vector(vec![Value::MsgTable(std::rc::Rc::new(
            table,
        ))]))
    }

    /// The replayed counterpart of [`ParallelDriver::ifat`].
    fn replay_ifat(
        &mut self,
        ev: &mut dyn Applier,
        bools: &[Value],
        at: usize,
    ) -> Result<bool, EvalError> {
        let superstep = self.superstep();
        let SyncOutcome::IfAt { chosen } = self.take_replay_outcome() else {
            return Err(self.diverged(
                superstep,
                "program reaches an if‥at‥ where the log recorded a put",
            ));
        };
        match self.my_component(bools, "if‥at‥")? {
            Value::Bool(mine) => {
                // The deciding rank's own boolean must be the one the
                // log says was broadcast.
                if self.rank == at && *mine != chosen {
                    return Err(self.diverged(
                        superstep,
                        format!("deciding rank replayed {mine}, log recorded {chosen}"),
                    ));
                }
            }
            v => {
                let v = v.to_string();
                self.net.poison();
                return Err(EvalError::ScrutineeMismatch("if‥at‥", v));
            }
        }
        {
            let mut stats = lock_ignore_poison(&self.stats);
            if self.rank == at {
                stats.sent_words += (self.net.p - 1) as u64;
            } else {
                stats.received_words += 1;
            }
            stats.supersteps += 1;
            stats.ifats += 1;
        }
        ev.note_ifat(at, chosen);
        self.note_superstep_end(superstep, ev.fuel_left());
        self.finish_replayed_superstep(ev.fuel_left())?;
        Ok(chosen)
    }
}

impl ParallelDriver for SpmdDriver {
    fn machine_width(&self) -> usize {
        self.net.p
    }

    // Vector *literals* are runtime-only global artifacts; the SPMD
    // machine runs source programs, which cannot contain them.
    fn literal_width(&self) -> Option<usize> {
        None
    }

    fn mkpar(&mut self, ev: &mut dyn Applier, f: &Value) -> Result<Value, EvalError> {
        ev.note_async();
        let v = ev.apply_fn(
            f.clone(),
            Value::Int(self.rank as i64),
            Mode::OnProc(self.rank),
        )?;
        ev.ensure_local(&v)?;
        Ok(Value::vector(vec![v]))
    }

    fn apply_par(
        &mut self,
        ev: &mut dyn Applier,
        fs: &[Value],
        vs: &[Value],
    ) -> Result<Value, EvalError> {
        ev.note_async();
        let f = self.my_component(fs, "apply")?.clone();
        let v = self.my_component(vs, "apply")?.clone();
        let out = ev.apply_fn(f, v, Mode::OnProc(self.rank))?;
        ev.ensure_local(&out)?;
        Ok(Value::vector(vec![out]))
    }

    fn put(&mut self, ev: &mut dyn Applier, fs: &[Value]) -> Result<Value, EvalError> {
        if self.replaying() {
            return self.replay_put(ev, fs);
        }
        let p = self.net.p;
        let superstep = self.inject_entry_faults()?;
        let lossless = self.net.transport.is_lossless();
        let f = self.my_component(fs, "put")?.clone();
        // Local phase: evaluate my send function for every target and
        // serialize the messages into wire frames.
        let mut sends: Vec<(usize, FramePayload, bool)> = Vec::with_capacity(p.saturating_sub(1));
        let mut self_payload = PortableValue::NoComm;
        for dst in 0..p {
            let v = ev.apply_fn(f.clone(), Value::Int(dst as i64), Mode::OnProc(self.rank))?;
            ev.ensure_local(&v)?;
            let words = v.size_in_words();
            if dst != self.rank {
                lock_ignore_poison(&self.stats).sent_words += words;
            }
            let portable = v.to_portable().inspect_err(|_| self.net.poison())?;
            let plan_drop = self.drops_message(dst, superstep);
            if dst == self.rank {
                // A self-message never touches the wire; dropping one
                // can only be modelled as silent loss (`nc ()`), and
                // only a lossless substrate keeps that legacy reading.
                self_payload = if plan_drop && lossless {
                    PortableValue::NoComm
                } else {
                    portable
                };
            } else if lossless {
                // Legacy drop semantics: the message was *sent* (the
                // sender paid for it) but never arrives — the receiver
                // sees `nc ()`, and only the oracle cross-check can
                // tell. This is exactly what the reliable layer below
                // exists to fix.
                let payload = FramePayload::Put(if plan_drop {
                    PortableValue::NoComm
                } else {
                    portable
                });
                sends.push((dst, payload, false));
            } else {
                // On a lossy substrate the drop happens *in flight*:
                // the reliable layer detects the missing ack and
                // retransmits, so the receiver still gets the value.
                sends.push((dst, FramePayload::Put(portable), plan_drop));
            }
        }
        // Communication phase: the reliable exchange is also the
        // superstep's entry synchronization (it cannot complete before
        // every rank has arrived and delivered).
        let expect: Vec<bool> = (0..p).map(|j| j != self.rank).collect();
        let delivered = self.exchange(superstep, sends, &expect)?;
        let mut row: Vec<PortableValue> = Vec::with_capacity(p);
        for (j, slot) in delivered.into_iter().enumerate() {
            if j == self.rank {
                row.push(std::mem::replace(&mut self_payload, PortableValue::NoComm));
            } else {
                match slot {
                    Some(FramePayload::Put(v)) => row.push(v),
                    // A completed exchange delivered something other
                    // than a put payload: a peer ran a different
                    // primitive — SPMD replication is broken.
                    _ => {
                        self.net.poison();
                        return Err(EvalError::PeerFailure);
                    }
                }
            }
        }
        let table: Vec<Value> = row.iter().map(PortableValue::to_value).collect();
        {
            let mut stats = lock_ignore_poison(&self.stats);
            for (j, v) in table.iter().enumerate() {
                if j != self.rank {
                    stats.received_words += v.size_in_words();
                }
            }
            stats.supersteps += 1;
            stats.puts += 1;
        }
        self.note_superstep_end(superstep, ev.fuel_left());
        // The serialized delivered row is kept only when a checkpoint
        // frame will want it.
        let staged = if self.record.is_some() {
            self.record_and_stage(SyncOutcome::Put { delivered: row }, ev.fuel_left())
        } else {
            None
        };
        // The exit barrier separates supersteps — and the last arriver
        // commits this superstep's checkpoint, if any.
        self.superstep_exit_barrier(staged, superstep)?;
        Ok(Value::vector(vec![Value::MsgTable(std::rc::Rc::new(
            table,
        ))]))
    }

    fn ifat(
        &mut self,
        ev: &mut dyn Applier,
        bools: &[Value],
        at: usize,
    ) -> Result<bool, EvalError> {
        if self.replaying() {
            return self.replay_ifat(ev, bools, at);
        }
        let superstep = self.inject_entry_faults()?;
        let p = self.net.p;
        let mine = match self.my_component(bools, "if‥at‥")? {
            Value::Bool(b) => *b,
            v => {
                self.net.poison();
                return Err(EvalError::ScrutineeMismatch("if‥at‥", v.to_string()));
            }
        };
        // The deciding rank broadcasts its boolean as one wire frame
        // per peer; everyone else expects exactly one frame, from
        // `at`. (The plan's message drops target `put` h-relations;
        // the if‥at‥ broadcast is never plan-dropped.)
        let mut sends: Vec<(usize, FramePayload, bool)> = Vec::new();
        if self.rank == at {
            lock_ignore_poison(&self.stats).sent_words += (p - 1) as u64;
            sends.extend(
                (0..p)
                    .filter(|&dst| dst != self.rank)
                    .map(|dst| (dst, FramePayload::IfAt(mine), false)),
            );
        }
        let expect: Vec<bool> = (0..p).map(|j| j == at && self.rank != at).collect();
        let delivered = self.exchange(superstep, sends, &expect)?;
        let chosen = if self.rank == at {
            mine
        } else {
            match delivered[at] {
                Some(FramePayload::IfAt(b)) => b,
                // The broadcaster delivered something else (or the
                // completed exchange holds no frame at all): SPMD
                // replication is broken — a peer failure.
                _ => {
                    self.net.poison();
                    return Err(EvalError::PeerFailure);
                }
            }
        };
        {
            let mut stats = lock_ignore_poison(&self.stats);
            if self.rank != at {
                stats.received_words += 1;
            }
            stats.supersteps += 1;
            stats.ifats += 1;
        }
        ev.note_ifat(at, chosen);
        self.note_superstep_end(superstep, ev.fuel_left());
        let staged = self
            .record
            .is_some()
            .then(|| self.record_and_stage(SyncOutcome::IfAt { chosen }, ev.fuel_left()))
            .flatten();
        self.superstep_exit_barrier(staged, superstep)?;
        Ok(chosen)
    }
}

/// The result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistOutcome {
    /// The assembled result: per-rank width-1 vectors reassembled
    /// into one `p`-wide vector, or the (identical) replicated value.
    pub value: Value,
    /// Synchronization barriers observed (identical on every rank —
    /// that is asserted).
    pub supersteps: u64,
    /// Total words sent across all processors and supersteps
    /// (self-messages excluded).
    pub total_words_sent: u64,
    /// Per-rank evaluator steps (local work `w_i`).
    pub work: Vec<u64>,
    /// The checkpoint generation this attempt resumed from (`None` =
    /// the attempt ran from superstep 0).
    pub resumed_from: Option<u64>,
}

/// How a [`DistMachine`] places its `p` ranks.
///
/// One of these exists per machine, so the size gap between the
/// unit-like `InProcess` and the full [`ProcessConfig`] is not worth
/// boxing away at every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Default)]
pub enum Execution {
    /// One OS thread per rank inside this process (the default): the
    /// fastest substrate, with crashes *simulated* by `catch_unwind`.
    #[default]
    InProcess,
    /// One OS process per rank, each connected to this (parent)
    /// process over a Unix-domain socket — the paper's BSMLlib-over-MPI
    /// shape. Rank death is real (`SIGKILL` survives nothing) and is
    /// detected as socket EOF + `waitpid`, mapped to the failed
    /// (rank, superstep) coordinate.
    Processes(crate::process::ProcessConfig),
}

/// A distributed BSP machine: `p` OS threads (or, with
/// [`Execution::Processes`], `p` OS processes), shared-nothing except
/// the message transport's per-rank mailboxes.
#[derive(Clone, Debug)]
pub struct DistMachine {
    pub(crate) p: usize,
    pub(crate) fuel: u64,
    pub(crate) telemetry: Telemetry,
    pub(crate) barrier_timeout: Option<Duration>,
    pub(crate) faults: Option<Arc<FaultPlan>>,
    pub(crate) checkpoints: Option<(CheckpointPolicy, Arc<dyn CheckpointStore>)>,
    pub(crate) transport: TransportConfig,
    pub(crate) tuning: NetTuning,
    pub(crate) net_sleeper: Arc<dyn Sleeper>,
    pub(crate) flight: Option<usize>,
    pub(crate) execution: Execution,
}

impl DistMachine {
    /// A machine of `p` processors, with the conservative
    /// [`DIST_DEFAULT_FUEL`] per-processor fuel and the
    /// [`DEFAULT_BARRIER_TIMEOUT`] watchdog.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn new(p: usize) -> DistMachine {
        assert!(p > 0, "a BSP machine needs at least one processor");
        DistMachine {
            p,
            fuel: DIST_DEFAULT_FUEL,
            telemetry: Telemetry::disabled(),
            barrier_timeout: Some(barrier_timeout_from_env()),
            faults: None,
            checkpoints: None,
            transport: TransportConfig::SharedMem,
            tuning: NetTuning::default(),
            net_sleeper: Arc::new(ThreadSleeper),
            flight: flight_capacity_from_env(),
            execution: Execution::InProcess,
        }
    }

    /// Selects how ranks are placed: in-process threads (the default)
    /// or one OS process per rank over Unix-domain sockets
    /// ([`Execution::Processes`]).
    #[must_use]
    pub fn with_execution(mut self, execution: Execution) -> DistMachine {
        self.execution = execution;
        self
    }

    /// The configured rank placement.
    #[must_use]
    pub fn execution(&self) -> &Execution {
        &self.execution
    }

    /// The machine size.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// The per-processor fuel budget.
    #[must_use]
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Overrides the per-processor fuel (the default is the
    /// conservative [`DIST_DEFAULT_FUEL`], which bounds divergent
    /// programs; raise it for long-running computations).
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> DistMachine {
        self.fuel = fuel;
        self
    }

    /// Overrides the watchdog timeout applied to every barrier wait.
    #[must_use]
    pub fn with_barrier_timeout(mut self, timeout: Duration) -> DistMachine {
        self.barrier_timeout = Some(timeout);
        self
    }

    /// Disables the barrier watchdog entirely (waits may then hang on
    /// a truly stalled peer — only for environments with their own
    /// supervision).
    #[must_use]
    pub fn without_watchdog(mut self) -> DistMachine {
        self.barrier_timeout = None;
        self
    }

    /// Selects the message transport: the default
    /// [`TransportConfig::SharedMem`] fast path, or a seeded
    /// [`TransportConfig::Lossy`] substrate that drops, reorders,
    /// duplicates, delays and bit-corrupts frames for chaos testing.
    /// Lossy runs either complete with exactly the values a lossless
    /// run produces (the reliable layer repairs every injected
    /// perturbation) or fail with [`EvalError::TransportFailure`]
    /// once a frame exhausts its retransmission budget — never a hang,
    /// never a silently wrong answer.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportConfig) -> DistMachine {
        self.transport = transport;
        self
    }

    /// The configured message transport.
    #[must_use]
    pub fn transport(&self) -> &TransportConfig {
        &self.transport
    }

    /// Overrides the reliable layer's retransmission and backpressure
    /// knobs ([`NetTuning`]).
    #[must_use]
    pub fn with_net_tuning(mut self, tuning: NetTuning) -> DistMachine {
        self.tuning = tuning;
        self
    }

    /// The reliable layer's tuning knobs.
    #[must_use]
    pub fn net_tuning(&self) -> NetTuning {
        self.tuning
    }

    /// Overrides how idle exchange polls pause. Tests inject a
    /// [`crate::supervisor::RecordingSleeper`] (or a no-op) so chaos
    /// suites never depend on wall-clock sleeping.
    #[must_use]
    pub fn with_net_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> DistMachine {
        self.net_sleeper = sleeper;
        self
    }

    /// Attaches a deterministic fault-injection plan (chaos testing).
    /// Fault-free machines pay nothing: the plan is behind an
    /// `Option` checked once per synchronization.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> DistMachine {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Enables superstep-granularity checkpointing: every
    /// `policy.interval()` completed supersteps each rank stages a
    /// frame into `store`, committed atomically at the superstep's
    /// exit barrier. Disabled machines (the default) allocate no
    /// store and take no new locks in the superstep hot path.
    #[must_use]
    pub fn with_checkpoints(
        mut self,
        policy: CheckpointPolicy,
        store: Arc<dyn CheckpointStore>,
    ) -> DistMachine {
        self.checkpoints = Some((policy, store));
        self
    }

    /// The checkpoint policy and store, if checkpointing is enabled.
    #[must_use]
    pub fn checkpoints(&self) -> Option<(CheckpointPolicy, Arc<dyn CheckpointStore>)> {
        self.checkpoints
            .as_ref()
            .map(|(policy, store)| (*policy, Arc::clone(store)))
    }

    /// Enables the per-rank flight recorder: each attempt gives every
    /// rank a ring buffer of the last `capacity` protocol events
    /// ([`FlightEvent`]), Lamport-stamped, drained into a
    /// [`FlightLog`] when the attempt ends. Also enabled by setting
    /// the `BSML_FLIGHT_CAPACITY` environment variable; a builder
    /// call overrides the environment.
    #[must_use]
    pub fn with_flight_recorder(mut self, capacity: usize) -> DistMachine {
        self.flight = Some(capacity);
        self
    }

    /// Disables the flight recorder (overriding
    /// `BSML_FLIGHT_CAPACITY`).
    #[must_use]
    pub fn without_flight_recorder(mut self) -> DistMachine {
        self.flight = None;
        self
    }

    /// The flight-recorder ring capacity, if recording is enabled.
    #[must_use]
    pub fn flight_capacity(&self) -> Option<usize> {
        self.flight
    }

    /// Attaches a telemetry handle. Each processor thread then times
    /// its barrier waits into the `bsp.barrier_wait_us` histogram (on
    /// its own `p{rank}` track), and each run bumps the same
    /// `bsp.supersteps` / `bsp.puts` / `bsp.ifats` / `bsp.words_sent`
    /// counters as the lockstep [`crate::BspMachine`], so the two
    /// backends' telemetry totals can be compared directly. Failure
    /// paths additionally record `bsp.faults_injected` and
    /// `bsp.barrier_timeouts`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> DistMachine {
        self.telemetry = telemetry;
        self
    }

    /// Runs a closed program SPMD on `p` threads (attempt 0 of its
    /// fault plan, if any).
    ///
    /// # Errors
    ///
    /// The first real [`EvalError`] raised by any processor
    /// ([`EvalError::PeerFailure`]s from released peers are
    /// discarded in its favour), or [`EvalError::NotSerializable`]
    /// if the final value cannot be gathered.
    pub fn run(&self, e: &Expr) -> Result<DistOutcome, EvalError> {
        self.run_attempt(e, 0)
    }

    /// Like [`DistMachine::run`], but identifying which retry
    /// `attempt` this is — fault plans arm each fault for one
    /// specific attempt, which is how a supervised retry runs clean
    /// while the first attempt is perturbed.
    ///
    /// # Errors
    ///
    /// Same as [`DistMachine::run`].
    pub fn run_attempt(&self, e: &Expr, attempt: u32) -> Result<DistOutcome, EvalError> {
        self.run_attempt_with_resume(e, attempt, None).0
    }

    /// Like [`DistMachine::run_attempt`], but also returning the
    /// drained per-rank [`FlightLog`] (when the flight recorder is
    /// enabled) — for both failed *and* successful attempts, so clean
    /// runs can be analyzed against the lockstep cost model too.
    pub fn run_recorded(
        &self,
        e: &Expr,
        attempt: u32,
    ) -> (Result<DistOutcome, EvalError>, Option<FlightLog>) {
        let (result, _, log) = self.run_attempt_with_resume(e, attempt, None);
        (result, log)
    }

    /// The full-control entry point used by the supervisor: runs one
    /// attempt, optionally resuming from a checkpointed cut, and also
    /// reports how far the attempt got (the highest completed
    /// superstep any rank reached — maintained only when checkpointing
    /// is enabled) even when it fails, so resume accounting works for
    /// errors that carry no coordinate.
    pub(crate) fn run_attempt_with_resume(
        &self,
        e: &Expr,
        attempt: u32,
        resume: Option<ResumePoint>,
    ) -> (Result<DistOutcome, EvalError>, u64, Option<FlightLog>) {
        if let Execution::Processes(cfg) = &self.execution {
            return crate::process::run_process_attempt(self, cfg, e, attempt, resume);
        }
        let checkpoint = self
            .checkpoints
            .as_ref()
            .map(|(policy, store)| NetCheckpoint {
                interval: policy.interval(),
                store: Arc::clone(store),
                fingerprint: program_fingerprint(e, self.p),
            });
        let transport: Arc<dyn Transport> = match &self.transport {
            TransportConfig::SharedMem => {
                Arc::new(SharedMem::new(self.p, self.tuning.mailbox_capacity))
            }
            TransportConfig::Lossy(cfg) if attempt < cfg.armed_attempts => Arc::new(LossyNet::new(
                self.p,
                cfg.for_attempt(attempt),
                self.tuning.mailbox_capacity,
            )),
            // Chaos disarmed for this attempt: supervised retries past
            // the armed window run on the clean fast path.
            TransportConfig::Lossy(_) => {
                Arc::new(SharedMem::new(self.p, self.tuning.mailbox_capacity))
            }
        };
        let flight: Option<Vec<Arc<FlightRecorder>>> = self.flight.map(|capacity| {
            (0..self.p)
                .map(|_| Arc::new(FlightRecorder::new(capacity)))
                .collect()
        });
        let net = Arc::new(Network::new(
            self.p,
            transport,
            self.tuning,
            Arc::clone(&self.net_sleeper),
            self.barrier_timeout,
            self.faults.clone(),
            attempt,
            checkpoint,
            flight,
        ));
        let resumed_from = resume.as_ref().map(|rp| rp.superstep);
        let result = self.run_threads(e, &net, resume);

        // Account for the fault, checkpoint and transport layers
        // whether or not the run succeeded — chaos tests reconcile
        // these counters against the plan. `injected_drops` carries
        // the plan-injected in-flight losses plus the drops the lossy
        // substrate itself rolled.
        flush_counters(
            &self.telemetry,
            &net.ledger.counters(),
            net.ledger.checkpoints_written.load(Ordering::Relaxed),
            net.ledger.checkpoint_bytes.load(Ordering::Relaxed),
            net.transport.injected_drops(),
        );
        let furthest = net.ledger.furthest_superstep.load(Ordering::Relaxed);
        // Drain the recorders after every rank thread has exited —
        // crashed, panicked or finished, whatever each rank last
        // recorded is in its ring. Dropped counts are read first
        // (drain preserves them, but the order documents the intent).
        let flight_log = net.flight.as_ref().map(|recs| FlightLog {
            ranks: recs
                .iter()
                .enumerate()
                .map(|(rank, r)| RankFlightLog {
                    rank,
                    dropped: r.dropped(),
                    events: r.drain(),
                })
                .collect(),
        });
        (
            result.map(|mut out| {
                out.resumed_from = resumed_from;
                out
            }),
            furthest,
            flight_log,
        )
    }

    fn run_threads(
        &self,
        e: &Expr,
        net: &Arc<Network>,
        resume: Option<ResumePoint>,
    ) -> Result<DistOutcome, EvalError> {
        let program = Arc::new(e.clone());
        let fuel = self.fuel;
        let mut seeds: Vec<Option<RankFrame>> = match resume {
            Some(rp) => rp.frames.into_iter().map(Some).collect(),
            None => (0..self.p).map(|_| None).collect(),
        };

        let results: Vec<Result<(PortableValue, CommStats, u64), EvalError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.p)
                    .map(|rank| {
                        let net = Arc::clone(net);
                        let program = Arc::clone(&program);
                        let telemetry = self.telemetry.track(&format!("p{rank}"));
                        let seed = seeds[rank].take();
                        let flight = net.flight.as_ref().map(|recs| Arc::clone(&recs[rank]));
                        scope.spawn(move || {
                            run_rank(rank, net, &program, fuel, telemetry, seed, flight)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // A panic that somehow escaped the rank's unwind
                    // guard is still a peer failure, not our abort.
                    .map(|h| h.join().unwrap_or(Err(EvalError::PeerFailure)))
                    .collect()
            });

        // Prefer a real error over PeerFailure echoes.
        if results.iter().any(|r| r.is_err()) {
            let mut first_peer_failure = None;
            for r in &results {
                match r {
                    Err(EvalError::PeerFailure) => {
                        first_peer_failure = Some(EvalError::PeerFailure);
                    }
                    Err(real) => return Err(real.clone()),
                    Ok(_) => {}
                }
            }
            return Err(first_peer_failure.expect("some error exists"));
        }

        let oks: Vec<(PortableValue, CommStats, u64)> =
            results.into_iter().map(|r| r.expect("checked")).collect();

        // Every rank must have seen the same number of barriers.
        let supersteps = oks[0].1.supersteps;
        assert!(
            oks.iter().all(|(_, s, _)| s.supersteps == supersteps),
            "ranks disagree on superstep count — SPMD replication broken"
        );
        let total_words_sent = oks.iter().map(|(_, s, _)| s.sent_words).sum();
        let work = oks.iter().map(|(_, _, w)| *w).collect();

        if self.telemetry.is_enabled() {
            // SPMD replication: barrier counts are identical on every
            // rank (asserted above), so charge them once, not p times —
            // matching the lockstep machine's accounting.
            let s = oks[0].1;
            self.telemetry.counter_add("bsp.supersteps", s.supersteps);
            self.telemetry.counter_add("bsp.puts", s.puts);
            self.telemetry.counter_add("bsp.ifats", s.ifats);
            self.telemetry
                .counter_add("bsp.words_sent", total_words_sent);
        }

        let value = assemble(oks.iter().map(|(v, _, _)| v))?;
        Ok(DistOutcome {
            value,
            supersteps,
            total_words_sent,
            work,
            resumed_from: None,
        })
    }
}

/// One processor's run: the evaluation itself runs under an unwind
/// guard, so a panicking processor (an injected [`FaultKind::Panic`]
/// or a genuine bug) poisons the barrier — releasing its peers — and
/// comes home as [`EvalError::PeerFailure`] instead of killing the
/// whole runner.
fn run_rank(
    rank: usize,
    net: Arc<Network>,
    program: &Expr,
    fuel: u64,
    telemetry: Telemetry,
    replay: Option<RankFrame>,
    flight: Option<Arc<FlightRecorder>>,
) -> Result<(PortableValue, CommStats, u64), EvalError> {
    let guard_net = Arc::clone(&net);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_rank_inner(rank, net, program, fuel, telemetry, replay, flight)
    }));
    match result {
        Ok(r) => r,
        Err(_) => {
            guard_net.poison();
            Err(EvalError::PeerFailure)
        }
    }
}

fn run_rank_inner(
    rank: usize,
    net: Arc<Network>,
    program: &Expr,
    fuel: u64,
    telemetry: Telemetry,
    replay: Option<RankFrame>,
    flight: Option<Arc<FlightRecorder>>,
) -> Result<(PortableValue, CommStats, u64), EvalError> {
    let stats = Arc::new(Mutex::new(CommStats::default()));
    let record = net.checkpoint.as_ref().map(|_| Vec::new());
    let p = net.p;
    // Process mode shares the control hub's Lamport clock, so the
    // reader thread's heartbeat/link-event stamps and the driver's
    // protocol stamps form one causal order per rank.
    let clock = match &net.sync {
        SyncBackend::Remote(hub) => Arc::clone(&hub.lamport),
        SyncBackend::Local(_) => Arc::new(AtomicU64::new(0)),
    };
    let driver = SpmdDriver {
        rank,
        net: Arc::clone(&net),
        stats: Arc::clone(&stats),
        telemetry,
        record,
        replay: replay.map(|frame| ReplayState { frame, next: 0 }),
        send_seq: vec![0; p],
        recv_seq: vec![0; p],
        exchanges: 0,
        clock,
        flight,
        fuel_mark: fuel,
        sent_mark: 0,
        recv_mark: 0,
    };
    let mut hooks = NoHooks;
    let mut ev = Evaluator::with_driver(&mut hooks, fuel, Box::new(driver));
    let result = ev.eval(program);
    let work = fuel - ev.fuel_left();
    match result {
        Ok(v) => {
            let portable = v.to_portable().inspect_err(|_| net.poison())?;
            let final_stats = *lock_ignore_poison(&stats);
            Ok((portable, final_stats, work))
        }
        Err(err) => {
            net.poison();
            Err(err)
        }
    }
}

/// Runs one rank of a multi-process attempt inside a rank process:
/// builds a [`Network`] whose synchronization backend is the parent's
/// control stream (via `hub`) and whose data plane is `transport`,
/// then executes the ordinary [`run_rank`] loop. Returns wire-portable
/// statistics plus the rank's counter ledger so the child can ship
/// both home in its `Done`/`Fatal` control message.
///
/// Telemetry is disabled in rank processes — the parent owns the
/// session's [`Telemetry`] and flushes the shipped [`CtlLedger`]s
/// through [`flush_counters`], so counters still reconcile; only the
/// per-poll `net.ack_latency_polls` histogram is unavailable in
/// process mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_remote_rank(
    rank: usize,
    p: usize,
    hub: Arc<RemoteHub>,
    transport: Arc<dyn Transport>,
    program: &Expr,
    fuel: u64,
    tuning: NetTuning,
    barrier_timeout: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
    attempt: u32,
    checkpoint: Option<(u64, Arc<dyn CheckpointStore>, u64)>,
    flight: Option<Arc<FlightRecorder>>,
    replay: Option<RankFrame>,
) -> (Result<(PortableValue, CtlStats, u64), EvalError>, CtlLedger) {
    let net = Arc::new(Network {
        p,
        sync: SyncBackend::Remote(hub),
        transport,
        tuning,
        sleeper: Arc::new(ThreadSleeper),
        exchanges_done: AtomicU64::new(0),
        barrier_timeout,
        faults,
        attempt,
        ledger: FaultLedger::default(),
        checkpoint: checkpoint.map(|(interval, store, fingerprint)| NetCheckpoint {
            interval,
            store,
            fingerprint,
        }),
        // The ring is owned by the child's postmortem accumulator, not
        // the network: the parent cannot drain a SIGKILLed process, so
        // the child flushes its ring to disk itself (satellite: bundles
        // survive real process death).
        flight: None,
        flow_ids: AtomicU64::new(0),
    });
    let result = run_rank(
        rank,
        Arc::clone(&net),
        program,
        fuel,
        Telemetry::disabled(),
        replay,
        flight,
    );
    let ledger = net.ledger.counters();
    (
        result.map(|(v, stats, work)| {
            (
                v,
                CtlStats {
                    sent_words: stats.sent_words,
                    received_words: stats.received_words,
                    supersteps: stats.supersteps,
                    puts: stats.puts,
                    ifats: stats.ifats,
                },
                work,
            )
        }),
        ledger,
    )
}

/// Reassembles per-rank results: width-1 vectors become one `p`-wide
/// vector; identical replicated values pass through.
pub(crate) fn assemble<'a>(
    per_rank: impl Iterator<Item = &'a PortableValue>,
) -> Result<Value, EvalError> {
    let per_rank: Vec<&PortableValue> = per_rank.collect();
    let all_width1 = per_rank
        .iter()
        .all(|v| matches!(v, PortableValue::Vector(c) if c.len() == 1));
    if all_width1 {
        let comps: Vec<Value> = per_rank
            .iter()
            .map(|v| match v {
                PortableValue::Vector(c) => c[0].to_value(),
                _ => unreachable!(),
            })
            .collect();
        return Ok(Value::vector(comps));
    }
    // Replicated result: all ranks must agree.
    let first = per_rank[0];
    if per_rank.iter().all(|v| *v == first) {
        Ok(first.to_value())
    } else {
        Err(EvalError::ScrutineeMismatch(
            "distributed result",
            "ranks disagree on a replicated value".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsml_syntax::parse;

    #[test]
    fn poison_barrier_releases_waiters() {
        let barrier = Arc::new(PoisonBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || b2.wait(None, None));
        // Give the waiter time to block, then poison instead of join.
        std::thread::sleep(std::time::Duration::from_millis(20));
        barrier.poison();
        let r = waiter.join().expect("no panic");
        assert_eq!(r, Err(EvalError::PeerFailure));
    }

    #[test]
    fn poison_barrier_rejects_late_arrivals() {
        // A waiter arriving *after* the poisoning must not hang (or
        // disturb the waiting count): it sees the poison immediately.
        let barrier = PoisonBarrier::new(3);
        barrier.poison();
        assert_eq!(barrier.wait(None, None), Err(EvalError::PeerFailure));
        assert_eq!(
            barrier.wait(Some(Duration::from_secs(5)), None),
            Err(EvalError::PeerFailure)
        );
        assert_eq!(lock_ignore_poison(&barrier.state).waiting, 0);
    }

    #[test]
    fn poison_barrier_survives_concurrent_poisoning() {
        // Two processors fail at the same time: both poisons must be
        // idempotent, and every innocent waiter must be released with
        // PeerFailure (no deadlock, no panic).
        for _ in 0..50 {
            let barrier = Arc::new(PoisonBarrier::new(4));
            std::thread::scope(|scope| {
                let waiters: Vec<_> = (0..2)
                    .map(|_| {
                        let b = Arc::clone(&barrier);
                        scope.spawn(move || b.wait(Some(Duration::from_secs(5)), None))
                    })
                    .collect();
                for _ in 0..2 {
                    let b = Arc::clone(&barrier);
                    scope.spawn(move || b.poison());
                }
                for w in waiters {
                    assert_eq!(w.join().expect("no panic"), Err(EvalError::PeerFailure));
                }
            });
        }
    }

    #[test]
    fn poison_barrier_generation_wraps_around() {
        // Generations only distinguish adjacent episodes; reuse
        // across u64 wraparound must keep synchronizing correctly.
        let barrier = Arc::new(PoisonBarrier::new(2));
        lock_ignore_poison(&barrier.state).generation = u64::MAX - 1;
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let b = Arc::clone(&barrier);
                scope.spawn(move || {
                    for _ in 0..4 {
                        b.wait(Some(Duration::from_secs(5)), None)
                            .expect("no poison");
                    }
                });
            }
        });
        // 4 episodes from u64::MAX - 1: wrapped past 0 to 3.
        let st = lock_ignore_poison(&barrier.state);
        assert_eq!(st.generation, 2);
        assert!(!st.poisoned);
    }

    #[test]
    fn poison_barrier_timeout_surfaces_and_poisons() {
        let barrier = PoisonBarrier::new(2);
        let err = barrier
            .wait(Some(Duration::from_millis(10)), None)
            .expect_err("nobody else is coming");
        assert!(
            matches!(err, EvalError::BarrierTimeout { waiting: 1, .. }),
            "got {err:?}"
        );
        // The timeout poisoned the barrier: everyone else is released.
        assert_eq!(barrier.wait(None, None), Err(EvalError::PeerFailure));
    }

    #[test]
    fn poison_barrier_synchronizes_generations() {
        let barrier = Arc::new(PoisonBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let b = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    b.wait(None, None)?;
                }
                Ok::<(), EvalError>(())
            }));
        }
        for h in handles {
            h.join().expect("no panic").expect("no poison");
        }
    }

    #[test]
    fn single_processor_machine() {
        let e = parse("mkpar (fun i -> i + 41)").unwrap();
        let out = DistMachine::new(1).run(&e).unwrap();
        assert_eq!(out.value.to_string(), "<|41|>");
        assert_eq!(out.total_words_sent, 0);
    }

    #[test]
    fn put_self_messages_cost_nothing() {
        let e = parse(
            "let r = put (mkpar (fun j -> fun d -> if d = j then j else nc ())) in
             apply (mkpar (fun i -> fun f -> f i), r)",
        )
        .unwrap();
        let out = DistMachine::new(4).run(&e).unwrap();
        // Everyone sends only to itself: nc() to others costs 0 words.
        assert_eq!(out.total_words_sent, 0);
        assert_eq!(out.supersteps, 1);
    }

    #[test]
    fn replicated_scalar_results_assemble() {
        let e = parse("1 + 2 + 3").unwrap();
        let out = DistMachine::new(3).run(&e).unwrap();
        assert_eq!(out.value.to_string(), "6");
        assert_eq!(out.supersteps, 0);
    }

    #[test]
    fn work_vector_has_one_entry_per_rank() {
        let e = parse("mkpar (fun i -> i)").unwrap();
        let out = DistMachine::new(5).run(&e).unwrap();
        assert_eq!(out.work.len(), 5);
        assert!(out.work.iter().all(|&w| w > 0));
    }

    #[test]
    fn default_fuel_bounds_divergent_programs() {
        // An infinite SPMD loop terminates with OutOfFuel under the
        // conservative default instead of spinning p threads forever.
        let e = parse("let rec forever n = forever (n + 1) in forever 0").unwrap();
        let err = DistMachine::new(2).run(&e).unwrap_err();
        assert_eq!(err, EvalError::OutOfFuel);
    }

    #[test]
    fn injected_crash_surfaces_without_deadlock() {
        let e = parse(
            "let r = put (mkpar (fun j -> fun i -> j)) in
             apply (mkpar (fun i -> fun t -> t i), r)",
        )
        .unwrap();
        let machine = DistMachine::new(4).with_faults(FaultPlan::new().crash(2, 0));
        let err = machine.run(&e).unwrap_err();
        assert_eq!(
            err,
            EvalError::InjectedFault {
                rank: 2,
                superstep: 0
            }
        );
        // The same machine on attempt 1 (fault disarmed) succeeds.
        let out = machine.run_attempt(&e, 1).unwrap();
        assert_eq!(out.value.to_string(), "<|0, 1, 2, 3|>");
    }

    #[test]
    fn injected_panic_is_contained() {
        let e = parse("put (mkpar (fun j -> fun i -> j))").unwrap();
        let machine = DistMachine::new(3).with_faults(FaultPlan::new().panic(1, 0));
        // The panicking thread is caught, the barrier poisoned, every
        // peer released: the run *returns* (PeerFailure) rather than
        // aborting or hanging.
        let err = machine.run(&e).unwrap_err();
        assert_eq!(err, EvalError::PeerFailure);
    }

    #[test]
    fn long_stall_trips_the_watchdog() {
        let e = parse("put (mkpar (fun j -> fun i -> j))").unwrap();
        let machine = DistMachine::new(2)
            .with_barrier_timeout(Duration::from_millis(50))
            .with_faults(FaultPlan::new().stall(0, 0, Duration::from_millis(400)));
        let start = Instant::now();
        let err = machine.run(&e).unwrap_err();
        assert!(
            matches!(err, EvalError::BarrierTimeout { .. }),
            "got {err:?}"
        );
        // Every thread exited within the stall + some slack — no hang.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = DistMachine::new(0);
    }

    #[test]
    fn barrier_timeout_env_knob() {
        // Exercise the parser directly (the machine constructor just
        // calls it), restoring the environment either way.
        std::env::set_var(BARRIER_TIMEOUT_ENV, "45000");
        assert_eq!(barrier_timeout_from_env(), Duration::from_millis(45000));
        std::env::set_var(BARRIER_TIMEOUT_ENV, " 250 ");
        assert_eq!(barrier_timeout_from_env(), Duration::from_millis(250));
        std::env::set_var(BARRIER_TIMEOUT_ENV, "soon");
        assert_eq!(barrier_timeout_from_env(), DEFAULT_BARRIER_TIMEOUT);
        std::env::remove_var(BARRIER_TIMEOUT_ENV);
        assert_eq!(barrier_timeout_from_env(), DEFAULT_BARRIER_TIMEOUT);
    }

    #[test]
    fn lossy_transport_delivers_oracle_identical() {
        let e = parse(
            "let r = put (mkpar (fun j -> fun i -> j * 10 + i)) in
             apply (mkpar (fun i -> fun t -> t ((i + 1) mod (bsp_p ()))), r)",
        )
        .unwrap();
        let oracle = DistMachine::new(4).run(&e).unwrap();
        let lossy = DistMachine::new(4)
            .with_transport(TransportConfig::Lossy(
                crate::transport::LossyConfig::new(0xB5F1)
                    .drop(150)
                    .reorder(150)
                    .duplicate(150)
                    .corrupt(150)
                    .delay(150),
            ))
            .with_barrier_timeout(Duration::from_secs(20))
            .run(&e)
            .unwrap();
        assert_eq!(lossy.value.to_string(), oracle.value.to_string());
        assert_eq!(lossy.supersteps, oracle.supersteps);
        assert_eq!(lossy.total_words_sent, oracle.total_words_sent);
    }

    #[test]
    fn transport_budget_exhaustion_surfaces_failure() {
        // Total loss: every transmission is swallowed, so acks never
        // arrive, the retransmit budget runs out, and the failure is
        // *reported* — never a hang, never a wrong answer.
        let e = parse("put (mkpar (fun j -> fun i -> j))").unwrap();
        let machine = DistMachine::new(2)
            .with_transport(TransportConfig::Lossy(
                crate::transport::LossyConfig::new(7).drop(1000),
            ))
            .with_net_tuning(NetTuning {
                retransmit_after: 2,
                retransmit_budget: 3,
                poll_sleep: Duration::ZERO,
                ..NetTuning::default()
            })
            .with_barrier_timeout(Duration::from_secs(30));
        let start = Instant::now();
        let err = machine.run(&e).unwrap_err();
        assert!(
            matches!(err, EvalError::TransportFailure { superstep: 0, .. }),
            "got {err:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn plan_drop_is_healed_on_lossy() {
        // On the lossless transport a FaultPlan message drop silently
        // replaces the payload with `nc ()` (only the oracle
        // cross-check can tell). On a lossy transport the same drop
        // happens *in flight* — and the reliable layer repairs it.
        let e = parse(
            "let r = put (mkpar (fun j -> fun i -> j + 100)) in
             apply (mkpar (fun i -> fun t -> t ((i + 1) mod (bsp_p ()))), r)",
        )
        .unwrap();
        let telemetry = Telemetry::enabled_logical();
        let machine = DistMachine::new(2)
            .with_faults(FaultPlan::new().drop_message(0, 1, 0))
            .with_transport(TransportConfig::Lossy(crate::transport::LossyConfig::new(
                3,
            )))
            .with_telemetry(telemetry.clone());
        let out = machine.run(&e).unwrap();
        assert_eq!(out.value.to_string(), "<|101, 100|>");
        assert!(telemetry.counter_value("net.frames_lost") >= 1);
        assert!(telemetry.counter_value("net.retransmits") >= 1);
    }
}
