//! The message-passing substrate of the distributed backend: per-rank
//! mailboxes behind a small [`Transport`] trait, with two
//! implementations.
//!
//! * [`SharedMem`] — the fast path: bounded in-process queues that
//!   never lose, reorder, duplicate, or corrupt a frame. The default.
//! * [`LossyNet`] — a simulated unreliable network that drops,
//!   reorders, duplicates, delays, and bit-corrupts frames under a
//!   seeded SplitMix64 schedule, for chaos-testing the reliable
//!   delivery protocol that [`crate::distributed`] builds on top
//!   (acks, retransmission, duplicate suppression — DESIGN.md §10).
//!
//! A transport moves opaque *bytes*; framing, checksums, and
//! sequencing belong to [`crate::wire`] and the exchange loop. This
//! split is what a later real-network backend (sockets, multi-process
//! ranks) plugs into: implement these three methods and the whole
//! reliable-delivery layer comes for free.
//!
//! Every mailbox is bounded ([`NetTuning::mailbox_capacity`]):
//! [`Transport::try_send`] refuses rather than queues unboundedly, and
//! the caller is expected to drain its *own* mailbox while retrying —
//! the backpressure discipline that keeps a fast sender from overrunning
//! a stalled peer without ever deadlocking.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::faults::SplitMix64;

/// Locks a mutex, recovering from a peer's panic (the protected data
/// are plain queues/counters, valid regardless).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A point-to-point byte-frame carrier between `p` ranks.
///
/// Implementations may drop, reorder, duplicate, delay, or corrupt
/// frames — the reliable layer above repairs all of that — but must
/// never *invent* bytes that pass a [`crate::wire::Frame`] checksum,
/// and must be safe to call concurrently from all ranks.
pub trait Transport: fmt::Debug + Send + Sync {
    /// Offers one frame to `dst`'s mailbox. Returns `false` when the
    /// mailbox is full (backpressure): the caller should drain its own
    /// mailbox and retry. A `true` from an unreliable transport means
    /// "accepted", not "delivered".
    fn try_send(&self, src: usize, dst: usize, bytes: &[u8]) -> bool;

    /// Pops the next frame from `rank`'s mailbox, if any.
    fn recv(&self, rank: usize) -> Option<Vec<u8>>;

    /// Whether the substrate can never lose, corrupt, or duplicate an
    /// accepted frame. On lossless transports the reliable layer
    /// disables its retransmission timer: an unacked frame there means
    /// a peer that has not arrived yet, never a lost one.
    fn is_lossless(&self) -> bool;

    /// Frames the substrate deliberately discarded so far (lossy
    /// transports only).
    fn injected_drops(&self) -> u64 {
        0
    }

    /// Frames the substrate deliberately bit-flipped so far.
    fn injected_corruptions(&self) -> u64 {
        0
    }

    /// Extra copies the substrate deliberately enqueued so far.
    fn injected_duplicates(&self) -> u64 {
        0
    }
}

/// Tuning knobs of the reliable exchange loop (DESIGN.md §10). The
/// defaults suit in-process testing; they are deliberately orthogonal
/// to [`TransportConfig`] so the same tuning applies to any substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetTuning {
    /// Frames one mailbox holds before `try_send` refuses
    /// (backpressure).
    pub mailbox_capacity: usize,
    /// Idle polls (loop iterations that received nothing) before an
    /// unacked frame is retransmitted. Only consulted on lossy
    /// transports.
    pub retransmit_after: u32,
    /// Retransmissions of one frame before the exchange gives up with
    /// [`bsml_eval::EvalError::TransportFailure`]. The tolerated
    /// unacked silence is roughly `retransmit_after ·
    /// retransmit_budget · poll_sleep`, so keep the product well above
    /// the expected compute skew between ranks.
    pub retransmit_budget: u32,
    /// How long an idle poll sleeps (through the machine's injectable
    /// [`crate::supervisor::Sleeper`], so tests can virtualize it).
    pub poll_sleep: Duration,
}

impl Default for NetTuning {
    fn default() -> NetTuning {
        NetTuning {
            mailbox_capacity: 256,
            retransmit_after: 25,
            retransmit_budget: 600,
            poll_sleep: Duration::from_micros(100),
        }
    }
}

/// Which substrate a [`crate::DistMachine`] exchanges frames over.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TransportConfig {
    /// Reliable in-process queues (the default).
    #[default]
    SharedMem,
    /// The seeded unreliable network simulator.
    Lossy(LossyConfig),
}

/// The perturbation schedule of a [`LossyNet`], in permille (so 200 =
/// 20%, the ceiling the chaos suites sweep to). All rates default to
/// zero; a `LossyConfig` with all-zero rates behaves like
/// [`SharedMem`] but still exercises the ack machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossyConfig {
    /// Seed of the per-link SplitMix64 schedules.
    pub seed: u64,
    /// Probability (‰) that an offered frame is silently discarded.
    pub drop_permille: u16,
    /// Probability (‰) that a frame is inserted at a random queue
    /// position instead of the back.
    pub reorder_permille: u16,
    /// Probability (‰) that a frame is enqueued twice.
    pub duplicate_permille: u16,
    /// Probability (‰) that one random bit of the frame is flipped.
    pub corrupt_permille: u16,
    /// Probability (‰) that a frame is held back for a few of the
    /// receiver's polls before becoming visible.
    pub delay_permille: u16,
    /// Chaos is active only for attempts `< armed_attempts`; later
    /// (supervised retry) attempts run on [`SharedMem`]. The default,
    /// `u32::MAX`, keeps every attempt lossy — reliable delivery is
    /// expected to cope without burning retries.
    pub armed_attempts: u32,
}

impl LossyConfig {
    /// A schedule with the given seed and all rates zero.
    #[must_use]
    pub fn new(seed: u64) -> LossyConfig {
        LossyConfig {
            seed,
            drop_permille: 0,
            reorder_permille: 0,
            duplicate_permille: 0,
            corrupt_permille: 0,
            delay_permille: 0,
            armed_attempts: u32::MAX,
        }
    }

    fn permille(rate: u16) -> u16 {
        assert!(rate <= 1000, "a permille rate cannot exceed 1000");
        rate
    }

    /// Sets the drop rate (‰).
    #[must_use]
    pub fn drop(mut self, permille: u16) -> LossyConfig {
        self.drop_permille = LossyConfig::permille(permille);
        self
    }

    /// Sets the reorder rate (‰).
    #[must_use]
    pub fn reorder(mut self, permille: u16) -> LossyConfig {
        self.reorder_permille = LossyConfig::permille(permille);
        self
    }

    /// Sets the duplication rate (‰).
    #[must_use]
    pub fn duplicate(mut self, permille: u16) -> LossyConfig {
        self.duplicate_permille = LossyConfig::permille(permille);
        self
    }

    /// Sets the bit-corruption rate (‰).
    #[must_use]
    pub fn corrupt(mut self, permille: u16) -> LossyConfig {
        self.corrupt_permille = LossyConfig::permille(permille);
        self
    }

    /// Sets the delay rate (‰).
    #[must_use]
    pub fn delay(mut self, permille: u16) -> LossyConfig {
        self.delay_permille = LossyConfig::permille(permille);
        self
    }

    /// Limits chaos to the first `n` attempts (see
    /// [`LossyConfig::armed_attempts`]).
    #[must_use]
    pub fn armed_attempts(mut self, n: u32) -> LossyConfig {
        self.armed_attempts = n;
        self
    }

    /// The same schedule reseeded for one retry attempt, so each
    /// attempt perturbs differently but deterministically.
    #[must_use]
    pub(crate) fn for_attempt(&self, attempt: u32) -> LossyConfig {
        LossyConfig {
            seed: self
                .seed
                .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..*self
        }
    }
}

// ---------------------------------------------------------------------------
// SharedMem
// ---------------------------------------------------------------------------

/// The reliable in-process transport: one bounded FIFO per rank.
#[derive(Debug)]
pub struct SharedMem {
    boxes: Vec<Mutex<VecDeque<Vec<u8>>>>,
    capacity: usize,
}

impl SharedMem {
    /// Mailboxes for `p` ranks, each holding at most `capacity`
    /// frames.
    #[must_use]
    pub fn new(p: usize, capacity: usize) -> SharedMem {
        SharedMem {
            boxes: (0..p).map(|_| Mutex::new(VecDeque::new())).collect(),
            capacity: capacity.max(1),
        }
    }
}

impl Transport for SharedMem {
    fn try_send(&self, _src: usize, dst: usize, bytes: &[u8]) -> bool {
        let mut q = lock(&self.boxes[dst]);
        if q.len() >= self.capacity {
            return false;
        }
        q.push_back(bytes.to_vec());
        true
    }

    fn recv(&self, rank: usize) -> Option<Vec<u8>> {
        lock(&self.boxes[rank]).pop_front()
    }

    fn is_lossless(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// LossyNet
// ---------------------------------------------------------------------------

/// One rank's mailbox on the lossy network: the visible queue plus
/// frames held back by an injected delay (released after a few of the
/// receiver's polls).
#[derive(Debug, Default)]
struct LossyBox {
    queue: VecDeque<Vec<u8>>,
    delayed: Vec<(u32, Vec<u8>)>,
}

/// The seeded unreliable network: every `(src, dst)` link carries its
/// own SplitMix64 schedule, so the perturbations a link applies are a
/// pure function of the seed and that link's send sequence — chaos
/// tests iterate seeds, not reruns.
#[derive(Debug)]
pub struct LossyNet {
    p: usize,
    cfg: LossyConfig,
    capacity: usize,
    boxes: Vec<Mutex<LossyBox>>,
    links: Vec<Mutex<SplitMix64>>,
    drops: AtomicU64,
    corruptions: AtomicU64,
    duplicates: AtomicU64,
}

impl LossyNet {
    /// A lossy network over `p` ranks with `capacity`-bounded
    /// mailboxes.
    #[must_use]
    pub fn new(p: usize, cfg: LossyConfig, capacity: usize) -> LossyNet {
        LossyNet {
            p,
            cfg,
            capacity: capacity.max(1),
            boxes: (0..p).map(|_| Mutex::new(LossyBox::default())).collect(),
            links: (0..p * p)
                .map(|link| {
                    // A distinct, seed-derived stream per directed link.
                    Mutex::new(SplitMix64::new(
                        cfg.seed ^ (link as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                    ))
                })
                .collect(),
            drops: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
        }
    }
}

fn roll(rng: &mut SplitMix64, permille: u16) -> bool {
    permille > 0 && rng.next() % 1000 < u64::from(permille)
}

impl Transport for LossyNet {
    fn try_send(&self, src: usize, dst: usize, bytes: &[u8]) -> bool {
        let mut rng = lock(&self.links[src * self.p + dst]);
        if roll(&mut rng, self.cfg.drop_permille) {
            // Dropped frames bypass capacity: the network "accepted"
            // them, they just never arrive.
            self.drops.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let mut frame = bytes.to_vec();
        if roll(&mut rng, self.cfg.corrupt_permille) && !frame.is_empty() {
            let bit = rng.next() as usize % (frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            self.corruptions.fetch_add(1, Ordering::Relaxed);
        }
        let copies = if roll(&mut rng, self.cfg.duplicate_permille) {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            2
        } else {
            1
        };
        let delayed = roll(&mut rng, self.cfg.delay_permille);
        let hold = if delayed {
            1 + (rng.next() % 3) as u32
        } else {
            0
        };
        let reordered = roll(&mut rng, self.cfg.reorder_permille);
        let position_roll = rng.next();
        drop(rng);

        let mut b = lock(&self.boxes[dst]);
        if b.queue.len() >= self.capacity {
            return false;
        }
        for copy in 0..copies {
            if copy > 0 && b.queue.len() >= self.capacity {
                // The duplicate is best-effort; losing it is just the
                // network failing to misbehave.
                break;
            }
            if delayed {
                b.delayed.push((hold, frame.clone()));
            } else if reordered && !b.queue.is_empty() {
                let at = position_roll as usize % (b.queue.len() + 1);
                b.queue.insert(at, frame.clone());
            } else {
                b.queue.push_back(frame.clone());
            }
        }
        true
    }

    fn recv(&self, rank: usize) -> Option<Vec<u8>> {
        let mut b = lock(&self.boxes[rank]);
        // Each poll ages the delayed frames; due ones become visible.
        if !b.delayed.is_empty() {
            let mut due = Vec::new();
            b.delayed.retain_mut(|(hold, frame)| {
                *hold = hold.saturating_sub(1);
                if *hold == 0 {
                    due.push(std::mem::take(frame));
                    false
                } else {
                    true
                }
            });
            for frame in due {
                b.queue.push_back(frame);
            }
        }
        b.queue.pop_front()
    }

    fn is_lossless(&self) -> bool {
        false
    }

    fn injected_drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    fn injected_corruptions(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
    }

    fn injected_duplicates(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed)
    }
}

/// A rank *process*'s view of the machine: every frame rides the
/// control stream to the parent, which routes it to the destination
/// rank's stream ([`crate::process`]). Sockets are stream-oriented and
/// lossless, so the reliable layer runs with retransmission disabled —
/// exactly like [`SharedMem`]. Mailbox depth is bounded by the kernel
/// socket buffers rather than [`NetTuning::mailbox_capacity`], so
/// `try_send` never reports backpressure.
#[derive(Debug)]
pub(crate) struct SocketTransport {
    hub: std::sync::Arc<crate::process::RemoteHub>,
}

impl SocketTransport {
    pub(crate) fn new(hub: std::sync::Arc<crate::process::RemoteHub>) -> SocketTransport {
        SocketTransport { hub }
    }
}

impl Transport for SocketTransport {
    fn try_send(&self, _src: usize, dst: usize, bytes: &[u8]) -> bool {
        self.hub.send_data(dst, bytes);
        true
    }

    fn recv(&self, _rank: usize) -> Option<Vec<u8>> {
        self.hub.recv_data()
    }

    fn is_lossless(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// The coordinator's listener seam: Unix-domain or TCP (DESIGN.md §16).
// ---------------------------------------------------------------------------

/// Where the multi-process coordinator listens for its ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bind {
    /// A Unix-domain socket at this path (the default; the launcher
    /// picks a fresh path under the socket directory).
    Unix(std::path::PathBuf),
    /// A TCP address like `"127.0.0.1:0"` (port 0 = kernel-assigned).
    /// This is what lets rank processes live on other hosts.
    Tcp(String),
}

/// One accepted (or dialed) rank⇄coordinator control stream,
/// abstracting over the two socket families. TCP streams run with
/// `TCP_NODELAY`: control frames are small and latency-critical
/// (barrier releases, heartbeats), so Nagle batching only hurts.
#[derive(Debug)]
pub enum RankStream {
    /// A Unix-domain stream.
    Unix(std::os::unix::net::UnixStream),
    /// A TCP stream.
    Tcp(std::net::TcpStream),
}

/// Dispatches one `&self` method over both stream families.
macro_rules! on_stream {
    ($self:ident, $s:ident => $body:expr) => {
        match $self {
            RankStream::Unix($s) => $body,
            RankStream::Tcp($s) => $body,
        }
    };
}

impl RankStream {
    /// Connects to a coordinator endpoint string as published in
    /// `BSML_RANK_SOCKET`: `tcp://host:port` dials TCP, anything else
    /// is a Unix socket path.
    pub fn connect(endpoint: &str) -> std::io::Result<RankStream> {
        if let Some(addr) = endpoint.strip_prefix("tcp://") {
            let stream = std::net::TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Ok(RankStream::Tcp(stream))
        } else {
            Ok(RankStream::Unix(std::os::unix::net::UnixStream::connect(
                endpoint,
            )?))
        }
    }

    /// An independently-owned handle to the same stream.
    pub fn try_clone(&self) -> std::io::Result<RankStream> {
        match self {
            RankStream::Unix(s) => s.try_clone().map(RankStream::Unix),
            RankStream::Tcp(s) => s.try_clone().map(RankStream::Tcp),
        }
    }

    /// Read-timeout passthrough (`None` = block forever).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        on_stream!(self, s => s.set_read_timeout(dur))
    }

    /// Nonblocking-mode passthrough.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        on_stream!(self, s => s.set_nonblocking(nonblocking))
    }

    /// Shutdown passthrough — how link faults sever a live wire.
    pub fn shutdown(&self, how: std::net::Shutdown) -> std::io::Result<()> {
        on_stream!(self, s => s.shutdown(how))
    }
}

impl std::io::Read for RankStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        on_stream!(self, s => s.read(buf))
    }
}

impl std::io::Write for RankStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        on_stream!(self, s => s.write(buf))
    }

    fn flush(&mut self) -> std::io::Result<()> {
        on_stream!(self, s => s.flush())
    }
}

/// The coordinator's accept side, behind a seam so the launcher and
/// the rejoin acceptor are family-agnostic.
pub trait Listener: fmt::Debug + Send + Sync {
    /// Accepts one rank connection.
    ///
    /// # Errors
    ///
    /// The underlying `accept` error — `WouldBlock` included, when the
    /// listener is nonblocking.
    fn accept(&self) -> std::io::Result<RankStream>;

    /// Switches the listener between blocking and polling mode.
    ///
    /// # Errors
    ///
    /// The underlying socket error.
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()>;

    /// The endpoint string rank processes should connect to — a Unix
    /// path verbatim, or `tcp://host:port`.
    fn endpoint(&self) -> String;
}

/// [`Listener`] over a Unix-domain socket.
#[derive(Debug)]
pub struct UnixSeam {
    listener: std::os::unix::net::UnixListener,
    path: std::path::PathBuf,
}

impl Drop for UnixSeam {
    fn drop(&mut self) {
        // The seam bound this path, so the file is ours to reclaim —
        // a later coordinator then finds a clean address instead of a
        // stale socket it has to probe.
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Listener for UnixSeam {
    fn accept(&self) -> std::io::Result<RankStream> {
        self.listener.accept().map(|(s, _)| RankStream::Unix(s))
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.listener.set_nonblocking(nonblocking)
    }

    fn endpoint(&self) -> String {
        self.path.display().to_string()
    }
}

/// [`Listener`] over TCP.
#[derive(Debug)]
pub struct TcpSeam {
    listener: std::net::TcpListener,
}

impl Listener for TcpSeam {
    fn accept(&self) -> std::io::Result<RankStream> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(RankStream::Tcp(stream))
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        self.listener.set_nonblocking(nonblocking)
    }

    fn endpoint(&self) -> String {
        match self.listener.local_addr() {
            Ok(addr) => format!("tcp://{addr}"),
            Err(_) => "tcp://<unknown>".to_string(),
        }
    }
}

impl Bind {
    /// Binds the coordinator listener.
    ///
    /// For a Unix bind, a leftover socket file from a killed
    /// coordinator is handled by *probing*: the path is connected to
    /// first, and only a **refused** probe (nobody listening) licenses
    /// unlinking it. A live listener on the path is a real conflict
    /// and comes back as a typed `AddrInUse` error — never a silent
    /// unlink of someone else's socket, never a hang.
    ///
    /// # Errors
    ///
    /// `AddrInUse` when the address has a live listener; otherwise the
    /// underlying bind error.
    pub fn listen(&self) -> std::io::Result<Box<dyn Listener>> {
        match self {
            Bind::Unix(path) => {
                if path.exists() {
                    match std::os::unix::net::UnixStream::connect(path) {
                        Ok(_) => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::AddrInUse,
                                format!(
                                    "coordinator socket {} is in use by a live listener",
                                    path.display()
                                ),
                            ));
                        }
                        Err(_) => {
                            // Stale: a dead coordinator's leftover.
                            std::fs::remove_file(path)?;
                        }
                    }
                }
                let listener = std::os::unix::net::UnixListener::bind(path)?;
                Ok(Box::new(UnixSeam {
                    listener,
                    path: path.clone(),
                }))
            }
            Bind::Tcp(addr) => {
                let listener = std::net::TcpListener::bind(addr)?;
                Ok(Box::new(TcpSeam { listener }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_mem_is_fifo_and_bounded() {
        let t = SharedMem::new(2, 2);
        assert!(t.try_send(0, 1, b"a"));
        assert!(t.try_send(0, 1, b"b"));
        // Mailbox full: backpressure, not queue growth.
        assert!(!t.try_send(0, 1, b"c"));
        assert_eq!(t.recv(1).as_deref(), Some(b"a".as_slice()));
        assert!(t.try_send(0, 1, b"c"));
        assert_eq!(t.recv(1).as_deref(), Some(b"b".as_slice()));
        assert_eq!(t.recv(1).as_deref(), Some(b"c".as_slice()));
        assert_eq!(t.recv(1), None);
        // The other mailbox is untouched.
        assert_eq!(t.recv(0), None);
        assert!(t.is_lossless());
        assert_eq!(t.injected_drops(), 0);
    }

    #[test]
    fn zero_rate_lossy_net_delivers_everything_in_order() {
        let t = LossyNet::new(2, LossyConfig::new(7), 64);
        for i in 0..10u8 {
            assert!(t.try_send(0, 1, &[i]));
        }
        for i in 0..10u8 {
            assert_eq!(t.recv(1).as_deref(), Some([i].as_slice()));
        }
        assert_eq!(t.recv(1), None);
        assert_eq!(t.injected_drops(), 0);
        assert_eq!(t.injected_corruptions(), 0);
        assert_eq!(t.injected_duplicates(), 0);
        assert!(!t.is_lossless());
    }

    #[test]
    fn full_loss_drops_every_frame_but_accepts_them() {
        let t = LossyNet::new(2, LossyConfig::new(1).drop(1000), 4);
        for _ in 0..50 {
            // Dropped frames never fill the mailbox.
            assert!(t.try_send(0, 1, b"x"));
        }
        assert_eq!(t.recv(1), None);
        assert_eq!(t.injected_drops(), 50);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let t = LossyNet::new(2, LossyConfig::new(3).corrupt(1000), 64);
        let original = [0u8; 16];
        assert!(t.try_send(0, 1, &original));
        let got = t.recv(1).unwrap();
        let flipped: u32 = got
            .iter()
            .zip(original.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
        assert_eq!(t.injected_corruptions(), 1);
    }

    #[test]
    fn duplication_enqueues_two_copies() {
        let t = LossyNet::new(2, LossyConfig::new(5).duplicate(1000), 64);
        assert!(t.try_send(0, 1, b"dup"));
        assert_eq!(t.recv(1).as_deref(), Some(b"dup".as_slice()));
        assert_eq!(t.recv(1).as_deref(), Some(b"dup".as_slice()));
        assert_eq!(t.recv(1), None);
        assert_eq!(t.injected_duplicates(), 1);
    }

    #[test]
    fn delayed_frames_surface_after_a_few_polls() {
        let t = LossyNet::new(2, LossyConfig::new(11).delay(1000), 64);
        assert!(t.try_send(0, 1, b"late"));
        // The frame is held back, but only for a bounded number of
        // polls (at most 3 by construction).
        let mut polls = 0;
        let got = loop {
            match t.recv(1) {
                Some(f) => break f,
                None => {
                    polls += 1;
                    assert!(polls <= 3, "delay must be bounded");
                }
            }
        };
        assert_eq!(got, b"late");
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let t = LossyNet::new(2, LossyConfig::new(seed).drop(300).duplicate(300), 256);
            for i in 0..100u8 {
                assert!(t.try_send(0, 1, &[i]));
            }
            let mut got = Vec::new();
            while let Some(f) = t.recv(1) {
                got.push(f[0]);
            }
            (got, t.injected_drops(), t.injected_duplicates())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds should differ");
    }

    #[test]
    fn for_attempt_reseeds_deterministically() {
        let cfg = LossyConfig::new(9).drop(100);
        assert_eq!(cfg.for_attempt(0).seed, cfg.seed);
        assert_ne!(cfg.for_attempt(1).seed, cfg.seed);
        assert_eq!(cfg.for_attempt(2), cfg.for_attempt(2));
        assert_eq!(cfg.for_attempt(1).drop_permille, 100);
    }

    #[test]
    #[should_panic(expected = "cannot exceed 1000")]
    fn permille_over_1000_rejected() {
        let _ = LossyConfig::new(0).drop(1001);
    }

    #[test]
    fn default_config_is_shared_mem() {
        assert_eq!(TransportConfig::default(), TransportConfig::SharedMem);
    }

    fn scratch_socket(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bsml-seam-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("coord.sock")
    }

    #[test]
    fn stale_unix_socket_is_probed_and_rebound() {
        let path = scratch_socket("stale");
        // A dead coordinator's leftover: bind, then drop the listener.
        // The file stays behind.
        drop(Bind::Unix(path.clone()).listen().expect("first bind"));
        assert!(path.exists(), "the socket file must be left behind");
        // A naive re-bind would fail with AddrInUse forever; the probe
        // sees the refused connect and unlinks the corpse.
        let seam = Bind::Unix(path.clone())
            .listen()
            .expect("rebind over stale");
        assert_eq!(seam.endpoint(), path.display().to_string());
    }

    #[test]
    fn live_unix_listener_is_a_typed_conflict_not_a_hang() {
        let path = scratch_socket("live");
        let _holder = Bind::Unix(path.clone()).listen().expect("first bind");
        let err = Bind::Unix(path)
            .listen()
            .expect_err("second bind must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        assert!(err.to_string().contains("in use"), "got: {err}");
    }

    #[test]
    fn tcp_seam_binds_accepts_and_round_trips() {
        use std::io::{Read, Write};
        let seam = Bind::Tcp("127.0.0.1:0".to_string())
            .listen()
            .expect("tcp bind");
        let endpoint = seam.endpoint();
        assert!(endpoint.starts_with("tcp://127.0.0.1:"), "got {endpoint}");
        let dialer = std::thread::spawn(move || {
            let mut s = RankStream::connect(&endpoint).expect("dial");
            s.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf).unwrap();
            buf
        });
        let mut accepted = seam.accept().expect("accept");
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        accepted.write_all(b"pong").unwrap();
        assert_eq!(&dialer.join().unwrap(), b"pong");
    }

    #[test]
    fn unix_endpoint_strings_dial_as_paths() {
        let path = scratch_socket("dial");
        let seam = Bind::Unix(path.clone()).listen().expect("bind");
        let endpoint = seam.endpoint();
        let dialer = std::thread::spawn(move || RankStream::connect(&endpoint).is_ok());
        let _accepted = seam.accept().expect("accept");
        assert!(dialer.join().unwrap());
    }
}
