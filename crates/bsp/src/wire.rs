//! The wire protocol of the distributed backend: length-prefixed,
//! checksummed frames carrying one `put` message, one `if‥at‥`
//! broadcast, or one acknowledgement between two ranks.
//!
//! This is the layer every transport speaks (see [`crate::transport`])
//! and the layer the reliable-delivery protocol reasons about
//! (DESIGN.md §10). A frame is self-delimiting and self-validating:
//!
//! ```text
//! frame :=
//!     len       u32   bytes following this prefix (header + payload + trailer)
//!     kind      u8    0 = Put data, 1 = IfAt data, 2 = Ack
//!     from      u32   sending rank
//!     superstep u64   the sender's superstep when the frame was built
//!     seq       u64   per-(sender → receiver)-link sequence number
//!     lamport   u64   the sender's Lamport clock when the frame was stamped
//!     payload         Put: one encoded PortableValue · IfAt: u8 bool · Ack: empty
//!     checksum  u64   FNV-1a over every preceding byte (prefix included)
//! ```
//!
//! All integers are little-endian. The decoder rejects — with an error,
//! never a panic — truncated frames, length-prefix mismatches, checksum
//! mismatches (any single bit flip is caught), unknown tags and
//! trailing garbage; the reliable layer treats every rejection as a
//! lost frame, so corruption degrades into retransmission.
//!
//! The [`PortableValue`] codec here is also the one checkpoint frames
//! embed ([`crate::checkpoint`]) — one serialized form on the wire and
//! at rest.
//!
//! ```
//! use bsml_bsp::wire::{Frame, FramePayload};
//! use bsml_eval::PortableValue;
//!
//! let f = Frame {
//!     from: 2,
//!     superstep: 7,
//!     seq: 42,
//!     lamport: 19,
//!     payload: FramePayload::Put(PortableValue::Int(-3)),
//! };
//! assert_eq!(Frame::decode(&f.encode()), Ok(f));
//! ```

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use bsml_eval::{EvalError, PortableValue};
use bsml_obs::TimedFlightEvent;

use crate::faults::{Fault, FaultKind};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the checksum of wire and checkpoint
/// frames.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a frame (or an embedded value) failed to decode. Every variant
/// is a *rejection*: the decoder never panics on hostile bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The bytes end before the structure does.
    Truncated,
    /// The length prefix disagrees with the actual byte count — a
    /// truncated tail or a corrupted prefix.
    LengthMismatch {
        /// Bytes the prefix claims follow it.
        claimed: u64,
        /// Bytes actually present after the prefix.
        actual: u64,
    },
    /// The FNV-1a trailer does not match the frame's contents.
    ChecksumMismatch,
    /// An unknown frame-kind or value tag.
    UnknownTag(u8),
    /// Well-formed structure followed by garbage.
    TrailingBytes(usize),
    /// An embedded count larger than the bytes that could back it.
    CountOverflow(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::LengthMismatch { claimed, actual } => {
                write!(f, "length prefix claims {claimed} byte(s), found {actual}")
            }
            WireError::ChecksumMismatch => f.write_str("frame checksum mismatch"),
            WireError::UnknownTag(tag) => write!(f, "unknown wire tag {tag}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after frame"),
            WireError::CountOverflow(n) => {
                write!(f, "count {n} exceeds the remaining frame bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked little-endian reader over a byte slice — shared by
/// the frame decoder and the checkpoint loader.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of input.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.pos + 4;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of input.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos + 8;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of input.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// A count that must plausibly fit in the remaining bytes (each
    /// counted item takes ≥ 1 byte) — rejects corrupted lengths before
    /// they become giant allocations.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::CountOverflow`].
    pub fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n as usize > self.remaining() {
            return Err(WireError::CountOverflow(n));
        }
        Ok(n as usize)
    }

    /// Consumes and returns the next `len` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }
}

/// Appends a little-endian `u64`.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes one [`PortableValue`] (the message codec of both wire
/// frames and checkpoint frames).
pub fn encode_value(out: &mut Vec<u8>, v: &PortableValue) {
    match v {
        PortableValue::Int(n) => {
            out.push(0);
            out.extend_from_slice(&n.to_le_bytes());
        }
        PortableValue::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        PortableValue::Unit => out.push(2),
        PortableValue::NoComm => out.push(3),
        PortableValue::Pair(a, b) => {
            out.push(4);
            encode_value(out, a);
            encode_value(out, b);
        }
        PortableValue::Inl(inner) => {
            out.push(5);
            encode_value(out, inner);
        }
        PortableValue::Inr(inner) => {
            out.push(6);
            encode_value(out, inner);
        }
        PortableValue::Nil => out.push(7),
        PortableValue::Cons(h, t) => {
            out.push(8);
            encode_value(out, h);
            encode_value(out, t);
        }
        PortableValue::Vector(vs) => {
            out.push(9);
            put_u64(out, vs.len() as u64);
            for c in vs {
                encode_value(out, c);
            }
        }
    }
}

/// Deserializes one [`PortableValue`].
///
/// # Errors
///
/// Any [`WireError`] on truncated or malformed input — never a panic.
pub fn decode_value(r: &mut Reader<'_>) -> Result<PortableValue, WireError> {
    match r.u8()? {
        0 => Ok(PortableValue::Int(r.i64()?)),
        1 => Ok(PortableValue::Bool(r.u8()? != 0)),
        2 => Ok(PortableValue::Unit),
        3 => Ok(PortableValue::NoComm),
        4 => Ok(PortableValue::Pair(
            Box::new(decode_value(r)?),
            Box::new(decode_value(r)?),
        )),
        5 => Ok(PortableValue::Inl(Box::new(decode_value(r)?))),
        6 => Ok(PortableValue::Inr(Box::new(decode_value(r)?))),
        7 => Ok(PortableValue::Nil),
        8 => Ok(PortableValue::Cons(
            Box::new(decode_value(r)?),
            Box::new(decode_value(r)?),
        )),
        9 => {
            let n = r.count()?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(r)?);
            }
            Ok(PortableValue::Vector(vs))
        }
        tag => Err(WireError::UnknownTag(tag)),
    }
}

/// What a frame carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramePayload {
    /// One `put` message (already serialized by the sender's local
    /// phase).
    Put(PortableValue),
    /// The broadcast boolean of an `if‥at‥`.
    IfAt(bool),
    /// An acknowledgement of the data frame with the same `seq` on the
    /// reverse link; `from` is the *acknowledging* rank.
    Ack,
}

const KIND_PUT: u8 = 0;
const KIND_IFAT: u8 = 1;
const KIND_ACK: u8 = 2;

/// One unit of communication between two ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The sending rank.
    pub from: usize,
    /// The sender's superstep when the frame was built (diagnostic —
    /// delivery and duplicate suppression key on `seq`).
    pub superstep: u64,
    /// Per-(sender → receiver)-link sequence number. Data frames use
    /// the sender's counter for that link; an ack echoes the sequence
    /// number it acknowledges.
    pub seq: u64,
    /// The sender's Lamport clock when the frame was *stamped* (built).
    /// A retransmission reuses the original bytes — same stamp, same
    /// logical message — so cross-rank causality (every receive
    /// happens-after its send) is reconstructable from a trace of
    /// stamps alone (DESIGN.md §12).
    pub lamport: u64,
    /// The payload.
    pub payload: FramePayload,
}

impl Frame {
    /// Serializes the frame (see the module docs for the layout).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(&0u32.to_le_bytes()); // patched below
        match &self.payload {
            FramePayload::Put(_) => out.push(KIND_PUT),
            FramePayload::IfAt(_) => out.push(KIND_IFAT),
            FramePayload::Ack => out.push(KIND_ACK),
        }
        out.extend_from_slice(&u32::try_from(self.from).unwrap_or(u32::MAX).to_le_bytes());
        put_u64(&mut out, self.superstep);
        put_u64(&mut out, self.seq);
        put_u64(&mut out, self.lamport);
        match &self.payload {
            FramePayload::Put(v) => encode_value(&mut out, v),
            FramePayload::IfAt(b) => out.push(u8::from(*b)),
            FramePayload::Ack => {}
        }
        let len = u32::try_from(out.len() - 4 + 8).expect("frames fit in u32");
        out[0..4].copy_from_slice(&len.to_le_bytes());
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses and verifies one frame.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the caller treats the frame as lost (the
    /// sender's retransmission repairs it).
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(bytes);
        let claimed = u64::from(r.u32()?);
        let actual = (bytes.len() - 4) as u64;
        if claimed != actual {
            return Err(WireError::LengthMismatch { claimed, actual });
        }
        if bytes.len() < 4 + 1 + 4 + 8 + 8 + 8 + 8 {
            return Err(WireError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        if fnv1a(body) != u64::from_le_bytes(trailer.try_into().expect("8 bytes")) {
            return Err(WireError::ChecksumMismatch);
        }
        let mut r = Reader::new(&body[4..]);
        let kind = r.u8()?;
        let from = r.u32()? as usize;
        let superstep = r.u64()?;
        let seq = r.u64()?;
        let lamport = r.u64()?;
        let payload = match kind {
            KIND_PUT => FramePayload::Put(decode_value(&mut r)?),
            KIND_IFAT => FramePayload::IfAt(r.u8()? != 0),
            KIND_ACK => FramePayload::Ack,
            tag => return Err(WireError::UnknownTag(tag)),
        };
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(Frame {
            from,
            superstep,
            seq,
            lamport,
            payload,
        })
    }
}

// ---------------------------------------------------------------------------
// Control-plane messages of the multi-process backend (DESIGN.md §13).
// ---------------------------------------------------------------------------

/// Magic prefix of a control-stream [`CtlMsg::Hello`] (`"BSMLCTL1"`).
/// A connection that does not open with it is not a BSML rank.
pub const CTL_MAGIC: u64 = u64::from_le_bytes(*b"BSMLCTL1");

/// Version of the control protocol. A `Hello` carrying any other
/// version is rejected during the handshake — never negotiated.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one control frame (64 MiB). A stream reader rejects
/// a larger length prefix *before* allocating, so a corrupt or hostile
/// prefix cannot become a giant allocation.
pub const MAX_CTL_FRAME: usize = 1 << 26;

/// Per-rank communication totals shipped home in a [`CtlMsg::Done`] —
/// the process-mode mirror of the in-process backend's private
/// per-rank stats, so the parent can charge telemetry identically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtlStats {
    /// Words this rank sent across all supersteps.
    pub sent_words: u64,
    /// Words this rank received.
    pub received_words: u64,
    /// Supersteps this rank completed.
    pub supersteps: u64,
    /// `put` operations performed.
    pub puts: u64,
    /// `if‥at‥` operations performed.
    pub ifats: u64,
}

/// A snapshot of one rank's fault ledger, shipped home in a
/// [`CtlMsg::Done`] or [`CtlMsg::Fatal`] so process-mode runs report
/// the same reliability counters (`net.frames_sent`, `net.retransmits`,
/// …) as in-process runs. Checkpoint counters are absent: in process
/// mode the *parent* stages and commits cuts, and counts them itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtlLedger {
    /// Plan faults this rank fired.
    pub faults_injected: u64,
    /// Barrier/exchange deadlines this rank hit.
    pub barrier_timeouts: u64,
    /// Frames handed to the transport (data + acks + retransmissions).
    pub frames_sent: u64,
    /// Retransmissions of unacked data frames.
    pub retransmits: u64,
    /// Received frames suppressed by sequence number.
    pub dups_dropped: u64,
    /// Received frames rejected by the wire decoder.
    pub corrupt_frames: u64,
    /// `try_send` refusals that made the sender drain and retry.
    pub backpressure_waits: u64,
    /// Plan-injected in-flight losses swallowed by the reliable layer.
    pub frames_lost: u64,
}

/// One message on a parent⇄child control stream.
///
/// The stream framing reuses the data-plane discipline: a `u32`
/// little-endian length prefix, a tagged body, and an FNV-1a trailer
/// over everything before it ([`write_ctl`] / [`read_ctl`]). Like
/// [`Frame::decode`], [`CtlMsg::decode`] rejects — never panics on —
/// truncation, length mismatches, checksum mismatches, unknown tags
/// and trailing garbage.
///
/// Direction conventions: `Hello`/`Data`/`ExchangeDone`/`BarrierEnter`
/// /`Fatal`/`Done`/`Pong`/`Rejoin` flow child → parent; `Welcome`/
/// `Reject`/`Deliver`/`ExchangeTotal`/`BarrierRelease`/`Ping`/
/// `RejoinOk` flow parent → child; `Poison` flows both ways.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtlMsg {
    /// First message on a new connection: the child identifies itself.
    /// The parent validates every field against what it expects from
    /// the rank it spawned and answers `Welcome` or `Reject`.
    Hello {
        /// Must be [`CTL_MAGIC`].
        magic: u64,
        /// Must be [`PROTOCOL_VERSION`].
        version: u32,
        /// The program fingerprint the child was told to expect
        /// (`checkpoint::program_fingerprint`).
        fingerprint: u64,
        /// The rank id the child was spawned as.
        rank: usize,
        /// The machine width the child was spawned for.
        p: usize,
    },
    /// The parent accepts the rank and ships it everything it needs to
    /// run: the program text and the full execution configuration.
    Welcome {
        /// The program, pretty-printed; the child re-parses it and
        /// verifies the fingerprint round-trips.
        program: String,
        /// Fuel for this rank's evaluator.
        fuel: u64,
        /// Barrier/exchange deadline in milliseconds; `0` = none.
        barrier_timeout_ms: u64,
        /// Reliable-exchange tuning: per-peer mailbox capacity.
        mailbox_capacity: u64,
        /// Polls before an unacked frame is retransmitted.
        retransmit_after: u64,
        /// Retransmissions allowed per exchange.
        retransmit_budget: u64,
        /// Idle-poll sleep in microseconds.
        poll_sleep_us: u64,
        /// Checkpoint every k supersteps; `0` = checkpointing off.
        checkpoint_interval: u64,
        /// Flight-recorder ring capacity; `0` = recorder off.
        flight_capacity: u64,
        /// Heartbeat (`Ping`) period in milliseconds.
        heartbeat_ms: u64,
        /// Grace window for healing a severed link before the rank is
        /// given up on, milliseconds.
        link_grace_ms: u64,
        /// Which attempt this is (faults arm per attempt).
        attempt: u32,
        /// The fault plan, so seeded chaos reproduces identically in
        /// process mode.
        faults: Vec<Fault>,
        /// This rank's committed `RankFrame` bytes when resuming from
        /// a checkpoint; `None` on a cold start.
        resume_frame: Option<Vec<u8>>,
    },
    /// The parent refuses the connection (bad magic, version skew,
    /// fingerprint mismatch, duplicate or out-of-range rank).
    Reject {
        /// Human-readable refusal, surfaced in the child's error.
        reason: String,
    },
    /// Child → parent: route one data-plane [`Frame`] to `dst`.
    Data {
        /// Destination rank.
        dst: usize,
        /// The encoded frame, shipped opaquely.
        frame: Vec<u8>,
    },
    /// Parent → child: a routed data-plane frame for this rank.
    Deliver {
        /// The encoded frame.
        frame: Vec<u8>,
    },
    /// Child → parent: this rank finished draining an exchange (the
    /// socket-mode carrier of the in-process `exchanges_done` counter).
    ExchangeDone,
    /// Parent → child: the global count of finished exchange phases.
    ExchangeTotal {
        /// Total `ExchangeDone`s the parent has seen.
        total: u64,
    },
    /// Child → parent: this rank reached the superstep exit barrier.
    BarrierEnter {
        /// The superstep being exited.
        superstep: u64,
        /// The `RankFrame` bytes this rank staged at this barrier, if
        /// checkpointing is on and the interval divides the count.
        staged: Option<Vec<u8>>,
    },
    /// Parent → child: all `p` ranks entered; proceed.
    BarrierRelease {
        /// The superstep being released.
        superstep: u64,
    },
    /// Either direction: the run is dead; stop waiting and unwind.
    Poison,
    /// Child → parent: this rank failed. Carries the structured error
    /// plus the ledger and flight-recorder tail so postmortems survive
    /// the process boundary.
    Fatal {
        /// The rank's structured error.
        error: EvalError,
        /// Final reliability counters.
        ledger: CtlLedger,
        /// Events the bounded recorder discarded.
        flight_dropped: u64,
        /// The recorded tail, oldest first.
        flight: Vec<TimedFlightEvent>,
    },
    /// Child → parent: this rank finished.
    Done {
        /// The rank's local result (already portable).
        value: PortableValue,
        /// Communication totals for telemetry.
        stats: CtlStats,
        /// Fuel consumed.
        work: u64,
        /// Final reliability counters.
        ledger: CtlLedger,
        /// Events the bounded recorder discarded.
        flight_dropped: u64,
        /// The recorded tail, oldest first.
        flight: Vec<TimedFlightEvent>,
    },
    /// Parent → child: an application-level heartbeat. The child
    /// answers `Pong` even while its driver is parked at a barrier,
    /// so a live-but-idle rank is distinguishable from a partitioned
    /// one in bounded time.
    Ping {
        /// The parent's Lamport clock at the send.
        lamport: u64,
    },
    /// Child → parent: the heartbeat answer.
    Pong {
        /// The child's Lamport clock at the send.
        lamport: u64,
    },
    /// Child → parent, first message on a *re*-connection: the rank
    /// lost its control stream but its process (and in-memory state)
    /// survived, and it wants the link healed rather than the fleet
    /// respawned. The parent validates the identity fields against the
    /// original handshake and answers `RejoinOk` or `Reject`.
    Rejoin {
        /// The rank id reconnecting.
        rank: usize,
        /// The program fingerprint it was welcomed under.
        fingerprint: u64,
        /// Supersteps this rank has completed (barrier releases seen).
        completed_superstep: u64,
        /// Count of session frames this rank had *received* on the old
        /// stream — the parent replays its egress buffer from here.
        resume_token: u64,
    },
    /// Parent → child: the rejoin is accepted. Frames the child sent
    /// but the parent never received follow `resume_token` in the
    /// other direction: the child replays its own egress buffer from
    /// the parent's count.
    RejoinOk {
        /// Count of session frames the parent had received from this
        /// rank on the old stream.
        resume_token: u64,
    },
}

const CTL_HELLO: u8 = 0;
const CTL_WELCOME: u8 = 1;
const CTL_REJECT: u8 = 2;
const CTL_DATA: u8 = 3;
const CTL_DELIVER: u8 = 4;
const CTL_EXCHANGE_DONE: u8 = 5;
const CTL_EXCHANGE_TOTAL: u8 = 6;
const CTL_BARRIER_ENTER: u8 = 7;
const CTL_BARRIER_RELEASE: u8 = 8;
const CTL_POISON: u8 = 9;
const CTL_FATAL: u8 = 10;
const CTL_DONE: u8 = 11;
const CTL_PING: u8 = 12;
const CTL_PONG: u8 = 13;
const CTL_REJOIN: u8 = 14;
const CTL_REJOIN_OK: u8 = 15;

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn read_bytes<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], WireError> {
    let n = r.count()?;
    r.take(n)
}

fn read_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    Ok(String::from_utf8_lossy(read_bytes(r)?).into_owned())
}

// Errors cross the process boundary structurally: every variant the
// distributed runtime can actually produce has a precise tag, so the
// parent's supervisor sees the *same* error it would have seen from an
// in-process rank (its recovery ladder keys on variants like
// `CheckpointDiverged`). Program-level errors that embed unserializable
// structure fall back to their rendered form — sound, because the
// supervisor's oracle pre-filters deterministic program errors before
// any distributed attempt.
const ERR_PEER_FAILURE: u8 = 0;
const ERR_OUT_OF_FUEL: u8 = 1;
const ERR_BARRIER_TIMEOUT: u8 = 2;
const ERR_INJECTED_FAULT: u8 = 3;
const ERR_TRANSPORT_FAILURE: u8 = 4;
const ERR_CHECKPOINT_DIVERGED: u8 = 5;
const ERR_NOT_SERIALIZABLE: u8 = 6;
const ERR_DIVISION_BY_ZERO: u8 = 7;
const ERR_RECURSION_LIMIT: u8 = 8;
const ERR_NESTED_PARALLELISM: u8 = 9;
const ERR_RENDERED: u8 = 10;

fn encode_error(out: &mut Vec<u8>, err: &EvalError) {
    match err {
        EvalError::PeerFailure => out.push(ERR_PEER_FAILURE),
        EvalError::OutOfFuel => out.push(ERR_OUT_OF_FUEL),
        EvalError::BarrierTimeout { superstep, waiting } => {
            out.push(ERR_BARRIER_TIMEOUT);
            put_u64(out, *superstep);
            put_u64(out, *waiting as u64);
        }
        EvalError::InjectedFault { rank, superstep } => {
            out.push(ERR_INJECTED_FAULT);
            put_u64(out, *rank as u64);
            put_u64(out, *superstep);
        }
        EvalError::TransportFailure {
            rank,
            superstep,
            detail,
        } => {
            out.push(ERR_TRANSPORT_FAILURE);
            put_u64(out, *rank as u64);
            put_u64(out, *superstep);
            put_bytes(out, detail.as_bytes());
        }
        EvalError::CheckpointDiverged {
            rank,
            superstep,
            detail,
        } => {
            out.push(ERR_CHECKPOINT_DIVERGED);
            put_u64(out, *rank as u64);
            put_u64(out, *superstep);
            put_bytes(out, detail.as_bytes());
        }
        EvalError::NotSerializable(what) => {
            out.push(ERR_NOT_SERIALIZABLE);
            put_bytes(out, what.as_bytes());
        }
        EvalError::DivisionByZero => out.push(ERR_DIVISION_BY_ZERO),
        EvalError::RecursionLimit => out.push(ERR_RECURSION_LIMIT),
        EvalError::NestedParallelism => out.push(ERR_NESTED_PARALLELISM),
        other => {
            out.push(ERR_RENDERED);
            put_bytes(out, other.to_string().as_bytes());
        }
    }
}

fn decode_error(r: &mut Reader<'_>) -> Result<EvalError, WireError> {
    match r.u8()? {
        ERR_PEER_FAILURE => Ok(EvalError::PeerFailure),
        ERR_OUT_OF_FUEL => Ok(EvalError::OutOfFuel),
        ERR_BARRIER_TIMEOUT => Ok(EvalError::BarrierTimeout {
            superstep: r.u64()?,
            waiting: r.u64()? as usize,
        }),
        ERR_INJECTED_FAULT => Ok(EvalError::InjectedFault {
            rank: r.u64()? as usize,
            superstep: r.u64()?,
        }),
        ERR_TRANSPORT_FAILURE => Ok(EvalError::TransportFailure {
            rank: r.u64()? as usize,
            superstep: r.u64()?,
            detail: read_string(r)?,
        }),
        ERR_CHECKPOINT_DIVERGED => Ok(EvalError::CheckpointDiverged {
            rank: r.u64()? as usize,
            superstep: r.u64()?,
            detail: read_string(r)?,
        }),
        ERR_NOT_SERIALIZABLE => Ok(EvalError::NotSerializable(read_string(r)?)),
        ERR_DIVISION_BY_ZERO => Ok(EvalError::DivisionByZero),
        ERR_RECURSION_LIMIT => Ok(EvalError::RecursionLimit),
        ERR_NESTED_PARALLELISM => Ok(EvalError::NestedParallelism),
        ERR_RENDERED => Ok(EvalError::ScrutineeMismatch("remote rank", read_string(r)?)),
        tag => Err(WireError::UnknownTag(tag)),
    }
}

fn encode_fault(out: &mut Vec<u8>, f: &Fault) {
    out.push(f.kind.code() as u8);
    match &f.kind {
        FaultKind::Crash { rank, superstep } | FaultKind::Panic { rank, superstep } => {
            put_u64(out, *rank as u64);
            put_u64(out, *superstep);
        }
        FaultKind::DropMessage {
            from,
            to,
            superstep,
        } => {
            put_u64(out, *from as u64);
            put_u64(out, *to as u64);
            put_u64(out, *superstep);
        }
        FaultKind::Stall {
            rank,
            superstep,
            delay,
        } => {
            put_u64(out, *rank as u64);
            put_u64(out, *superstep);
            put_u64(out, u64::try_from(delay.as_millis()).unwrap_or(u64::MAX));
        }
    }
    out.extend_from_slice(&f.attempt.to_le_bytes());
}

fn decode_fault(r: &mut Reader<'_>) -> Result<Fault, WireError> {
    let kind = match r.u8()? {
        0 => FaultKind::Crash {
            rank: r.u64()? as usize,
            superstep: r.u64()?,
        },
        1 => FaultKind::Panic {
            rank: r.u64()? as usize,
            superstep: r.u64()?,
        },
        2 => FaultKind::DropMessage {
            from: r.u64()? as usize,
            to: r.u64()? as usize,
            superstep: r.u64()?,
        },
        3 => FaultKind::Stall {
            rank: r.u64()? as usize,
            superstep: r.u64()?,
            delay: Duration::from_millis(r.u64()?),
        },
        tag => return Err(WireError::UnknownTag(tag)),
    };
    Ok(Fault {
        kind,
        attempt: r.u32()?,
    })
}

fn encode_ledger(out: &mut Vec<u8>, l: &CtlLedger) {
    for v in [
        l.faults_injected,
        l.barrier_timeouts,
        l.frames_sent,
        l.retransmits,
        l.dups_dropped,
        l.corrupt_frames,
        l.backpressure_waits,
        l.frames_lost,
    ] {
        put_u64(out, v);
    }
}

fn decode_ledger(r: &mut Reader<'_>) -> Result<CtlLedger, WireError> {
    Ok(CtlLedger {
        faults_injected: r.u64()?,
        barrier_timeouts: r.u64()?,
        frames_sent: r.u64()?,
        retransmits: r.u64()?,
        dups_dropped: r.u64()?,
        corrupt_frames: r.u64()?,
        backpressure_waits: r.u64()?,
        frames_lost: r.u64()?,
    })
}

fn encode_flight(out: &mut Vec<u8>, events: &[TimedFlightEvent]) {
    put_u64(out, events.len() as u64);
    for ev in events {
        crate::postmortem::encode_event(out, ev);
    }
}

fn decode_flight(r: &mut Reader<'_>) -> Result<Vec<TimedFlightEvent>, WireError> {
    let n = r.count()?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        // The event codec reports through the postmortem error type;
        // at this layer any malformed event is simply a bad frame.
        events.push(crate::postmortem::decode_event(r).map_err(|_| WireError::Truncated)?);
    }
    Ok(events)
}

impl CtlMsg {
    /// A well-formed `Hello` for `rank` of `p` under `fingerprint`.
    #[must_use]
    pub fn hello(fingerprint: u64, rank: usize, p: usize) -> CtlMsg {
        CtlMsg::Hello {
            magic: CTL_MAGIC,
            version: PROTOCOL_VERSION,
            fingerprint,
            rank,
            p,
        }
    }

    /// Serializes the message: `u32` length prefix, tagged body,
    /// FNV-1a trailer over everything before it.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&0u32.to_le_bytes()); // patched below
        match self {
            CtlMsg::Hello {
                magic,
                version,
                fingerprint,
                rank,
                p,
            } => {
                out.push(CTL_HELLO);
                put_u64(&mut out, *magic);
                out.extend_from_slice(&version.to_le_bytes());
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, *rank as u64);
                put_u64(&mut out, *p as u64);
            }
            CtlMsg::Welcome {
                program,
                fuel,
                barrier_timeout_ms,
                mailbox_capacity,
                retransmit_after,
                retransmit_budget,
                poll_sleep_us,
                checkpoint_interval,
                flight_capacity,
                heartbeat_ms,
                link_grace_ms,
                attempt,
                faults,
                resume_frame,
            } => {
                out.push(CTL_WELCOME);
                put_bytes(&mut out, program.as_bytes());
                for v in [
                    *fuel,
                    *barrier_timeout_ms,
                    *mailbox_capacity,
                    *retransmit_after,
                    *retransmit_budget,
                    *poll_sleep_us,
                    *checkpoint_interval,
                    *flight_capacity,
                    *heartbeat_ms,
                    *link_grace_ms,
                ] {
                    put_u64(&mut out, v);
                }
                out.extend_from_slice(&attempt.to_le_bytes());
                put_u64(&mut out, faults.len() as u64);
                for f in faults {
                    encode_fault(&mut out, f);
                }
                match resume_frame {
                    None => out.push(0),
                    Some(bytes) => {
                        out.push(1);
                        put_bytes(&mut out, bytes);
                    }
                }
            }
            CtlMsg::Reject { reason } => {
                out.push(CTL_REJECT);
                put_bytes(&mut out, reason.as_bytes());
            }
            CtlMsg::Data { dst, frame } => {
                out.push(CTL_DATA);
                put_u64(&mut out, *dst as u64);
                put_bytes(&mut out, frame);
            }
            CtlMsg::Deliver { frame } => {
                out.push(CTL_DELIVER);
                put_bytes(&mut out, frame);
            }
            CtlMsg::ExchangeDone => out.push(CTL_EXCHANGE_DONE),
            CtlMsg::ExchangeTotal { total } => {
                out.push(CTL_EXCHANGE_TOTAL);
                put_u64(&mut out, *total);
            }
            CtlMsg::BarrierEnter { superstep, staged } => {
                out.push(CTL_BARRIER_ENTER);
                put_u64(&mut out, *superstep);
                match staged {
                    None => out.push(0),
                    Some(bytes) => {
                        out.push(1);
                        put_bytes(&mut out, bytes);
                    }
                }
            }
            CtlMsg::BarrierRelease { superstep } => {
                out.push(CTL_BARRIER_RELEASE);
                put_u64(&mut out, *superstep);
            }
            CtlMsg::Poison => out.push(CTL_POISON),
            CtlMsg::Fatal {
                error,
                ledger,
                flight_dropped,
                flight,
            } => {
                out.push(CTL_FATAL);
                encode_error(&mut out, error);
                encode_ledger(&mut out, ledger);
                put_u64(&mut out, *flight_dropped);
                encode_flight(&mut out, flight);
            }
            CtlMsg::Done {
                value,
                stats,
                work,
                ledger,
                flight_dropped,
                flight,
            } => {
                out.push(CTL_DONE);
                encode_value(&mut out, value);
                for v in [
                    stats.sent_words,
                    stats.received_words,
                    stats.supersteps,
                    stats.puts,
                    stats.ifats,
                ] {
                    put_u64(&mut out, v);
                }
                put_u64(&mut out, *work);
                encode_ledger(&mut out, ledger);
                put_u64(&mut out, *flight_dropped);
                encode_flight(&mut out, flight);
            }
            CtlMsg::Ping { lamport } => {
                out.push(CTL_PING);
                put_u64(&mut out, *lamport);
            }
            CtlMsg::Pong { lamport } => {
                out.push(CTL_PONG);
                put_u64(&mut out, *lamport);
            }
            CtlMsg::Rejoin {
                rank,
                fingerprint,
                completed_superstep,
                resume_token,
            } => {
                out.push(CTL_REJOIN);
                put_u64(&mut out, *rank as u64);
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, *completed_superstep);
                put_u64(&mut out, *resume_token);
            }
            CtlMsg::RejoinOk { resume_token } => {
                out.push(CTL_REJOIN_OK);
                put_u64(&mut out, *resume_token);
            }
        }
        let len = u32::try_from(out.len() - 4 + 8).expect("control frames fit in u32");
        out[0..4].copy_from_slice(&len.to_le_bytes());
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses and verifies one control message.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] — truncation, length-prefix or checksum
    /// mismatch, unknown tags, trailing garbage. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<CtlMsg, WireError> {
        let mut r = Reader::new(bytes);
        let claimed = u64::from(r.u32()?);
        let actual = (bytes.len() - 4) as u64;
        if claimed != actual {
            return Err(WireError::LengthMismatch { claimed, actual });
        }
        if bytes.len() < 4 + 1 + 8 {
            return Err(WireError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        if fnv1a(body) != u64::from_le_bytes(trailer.try_into().expect("8 bytes")) {
            return Err(WireError::ChecksumMismatch);
        }
        let mut r = Reader::new(&body[4..]);
        let msg = match r.u8()? {
            CTL_HELLO => CtlMsg::Hello {
                magic: r.u64()?,
                version: r.u32()?,
                fingerprint: r.u64()?,
                rank: r.u64()? as usize,
                p: r.u64()? as usize,
            },
            CTL_WELCOME => {
                let program = read_string(&mut r)?;
                let fuel = r.u64()?;
                let barrier_timeout_ms = r.u64()?;
                let mailbox_capacity = r.u64()?;
                let retransmit_after = r.u64()?;
                let retransmit_budget = r.u64()?;
                let poll_sleep_us = r.u64()?;
                let checkpoint_interval = r.u64()?;
                let flight_capacity = r.u64()?;
                let heartbeat_ms = r.u64()?;
                let link_grace_ms = r.u64()?;
                let attempt = r.u32()?;
                let n = r.count()?;
                let mut faults = Vec::with_capacity(n);
                for _ in 0..n {
                    faults.push(decode_fault(&mut r)?);
                }
                let resume_frame = match r.u8()? {
                    0 => None,
                    1 => Some(read_bytes(&mut r)?.to_vec()),
                    tag => return Err(WireError::UnknownTag(tag)),
                };
                CtlMsg::Welcome {
                    program,
                    fuel,
                    barrier_timeout_ms,
                    mailbox_capacity,
                    retransmit_after,
                    retransmit_budget,
                    poll_sleep_us,
                    checkpoint_interval,
                    flight_capacity,
                    heartbeat_ms,
                    link_grace_ms,
                    attempt,
                    faults,
                    resume_frame,
                }
            }
            CTL_REJECT => CtlMsg::Reject {
                reason: read_string(&mut r)?,
            },
            CTL_DATA => CtlMsg::Data {
                dst: r.u64()? as usize,
                frame: read_bytes(&mut r)?.to_vec(),
            },
            CTL_DELIVER => CtlMsg::Deliver {
                frame: read_bytes(&mut r)?.to_vec(),
            },
            CTL_EXCHANGE_DONE => CtlMsg::ExchangeDone,
            CTL_EXCHANGE_TOTAL => CtlMsg::ExchangeTotal { total: r.u64()? },
            CTL_BARRIER_ENTER => CtlMsg::BarrierEnter {
                superstep: r.u64()?,
                staged: match r.u8()? {
                    0 => None,
                    1 => Some(read_bytes(&mut r)?.to_vec()),
                    tag => return Err(WireError::UnknownTag(tag)),
                },
            },
            CTL_BARRIER_RELEASE => CtlMsg::BarrierRelease {
                superstep: r.u64()?,
            },
            CTL_POISON => CtlMsg::Poison,
            CTL_FATAL => CtlMsg::Fatal {
                error: decode_error(&mut r)?,
                ledger: decode_ledger(&mut r)?,
                flight_dropped: r.u64()?,
                flight: decode_flight(&mut r)?,
            },
            CTL_DONE => CtlMsg::Done {
                value: decode_value(&mut r)?,
                stats: CtlStats {
                    sent_words: r.u64()?,
                    received_words: r.u64()?,
                    supersteps: r.u64()?,
                    puts: r.u64()?,
                    ifats: r.u64()?,
                },
                work: r.u64()?,
                ledger: decode_ledger(&mut r)?,
                flight_dropped: r.u64()?,
                flight: decode_flight(&mut r)?,
            },
            CTL_PING => CtlMsg::Ping { lamport: r.u64()? },
            CTL_PONG => CtlMsg::Pong { lamport: r.u64()? },
            CTL_REJOIN => CtlMsg::Rejoin {
                rank: r.u64()? as usize,
                fingerprint: r.u64()?,
                completed_superstep: r.u64()?,
                resume_token: r.u64()?,
            },
            CTL_REJOIN_OK => CtlMsg::RejoinOk {
                resume_token: r.u64()?,
            },
            tag => return Err(WireError::UnknownTag(tag)),
        };
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(msg)
    }
}

/// Writes one control message to a stream (partial writes are retried
/// by `write_all`).
///
/// # Errors
///
/// Propagates the underlying I/O error — `EPIPE` included; the caller
/// maps stream failures to `TransportFailure`.
pub fn write_ctl<W: Write>(w: &mut W, msg: &CtlMsg) -> io::Result<()> {
    w.write_all(&msg.encode())
}

/// Reads one control message from a stream. Partial reads are
/// absorbed by `read_exact` loops; frames split at arbitrary byte
/// boundaries across `read` calls reassemble exactly.
///
/// # Errors
///
/// `UnexpectedEof` when the stream ends mid-frame (a clean EOF before
/// any prefix byte also surfaces as `UnexpectedEof`), `InvalidData`
/// when the frame is oversized or fails [`CtlMsg::decode`], and any
/// underlying I/O error otherwise.
pub fn read_ctl<R: Read>(r: &mut R) -> io::Result<CtlMsg> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_CTL_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("control frame of {len} byte(s) exceeds the {MAX_CTL_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut bytes = Vec::with_capacity(4 + len);
    bytes.extend_from_slice(&prefix);
    bytes.extend_from_slice(&body);
    CtlMsg::decode(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            from: 3,
            superstep: 11,
            seq: 207,
            lamport: 1009,
            payload: FramePayload::Put(PortableValue::Pair(
                Box::new(PortableValue::Int(-42)),
                Box::new(PortableValue::Cons(
                    Box::new(PortableValue::NoComm),
                    Box::new(PortableValue::Nil),
                )),
            )),
        }
    }

    #[test]
    fn frames_roundtrip() {
        for f in [
            sample(),
            Frame {
                from: 0,
                superstep: 0,
                seq: 0,
                lamport: 0,
                payload: FramePayload::IfAt(true),
            },
            Frame {
                from: 15,
                superstep: u64::MAX,
                seq: u64::MAX,
                lamport: u64::MAX,
                payload: FramePayload::Ack,
            },
        ] {
            assert_eq!(Frame::decode(&f.encode()), Ok(f));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let f = sample();
        let bytes = f.encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    Frame::decode(&corrupt).is_err(),
                    "flip of bit {bit} at byte {i} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        // The length prefix no longer matches.
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn count_overflow_does_not_allocate() {
        // A Vector claiming u64::MAX components must be rejected by
        // the count guard, not by the allocator.
        let f = Frame {
            from: 1,
            superstep: 0,
            seq: 0,
            lamport: 0,
            payload: FramePayload::Put(PortableValue::Vector(vec![PortableValue::Unit])),
        };
        let mut bytes = f.encode();
        // The vector count sits after prefix(4) + kind(1) + from(4) +
        // superstep(8) + seq(8) + lamport(8) + value tag(1).
        let at = 4 + 1 + 4 + 8 + 8 + 8 + 1;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // Re-seal the checksum so the corruption reaches the decoder.
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::CountOverflow(u64::MAX))
        );
    }

    fn sample_ctl_msgs() -> Vec<CtlMsg> {
        use bsml_obs::FlightEvent;
        vec![
            CtlMsg::hello(0xdead_beef, 3, 8),
            CtlMsg::Welcome {
                program: "put (mkpar (fun i -> fun d -> i))".to_string(),
                fuel: 1_000_000,
                barrier_timeout_ms: 30_000,
                mailbox_capacity: 256,
                retransmit_after: 25,
                retransmit_budget: 600,
                poll_sleep_us: 100,
                checkpoint_interval: 2,
                flight_capacity: 4096,
                heartbeat_ms: 500,
                link_grace_ms: 5000,
                attempt: 1,
                faults: vec![
                    Fault {
                        kind: FaultKind::Crash {
                            rank: 1,
                            superstep: 3,
                        },
                        attempt: 0,
                    },
                    Fault {
                        kind: FaultKind::Stall {
                            rank: 0,
                            superstep: 2,
                            delay: Duration::from_millis(7),
                        },
                        attempt: 2,
                    },
                    Fault {
                        kind: FaultKind::DropMessage {
                            from: 2,
                            to: 0,
                            superstep: 1,
                        },
                        attempt: 0,
                    },
                ],
                resume_frame: Some(vec![1, 2, 3, 4]),
            },
            CtlMsg::Reject {
                reason: "program fingerprint mismatch".to_string(),
            },
            CtlMsg::Data {
                dst: 5,
                frame: sample().encode(),
            },
            CtlMsg::Deliver {
                frame: sample().encode(),
            },
            CtlMsg::ExchangeDone,
            CtlMsg::ExchangeTotal { total: 42 },
            CtlMsg::BarrierEnter {
                superstep: 9,
                staged: Some(vec![9, 9, 9]),
            },
            CtlMsg::BarrierRelease { superstep: 9 },
            CtlMsg::Poison,
            CtlMsg::Fatal {
                error: EvalError::TransportFailure {
                    rank: 2,
                    superstep: 4,
                    detail: "socket closed".to_string(),
                },
                ledger: CtlLedger {
                    faults_injected: 1,
                    frames_sent: 12,
                    ..CtlLedger::default()
                },
                flight_dropped: 3,
                flight: vec![TimedFlightEvent {
                    lamport: 17,
                    event: FlightEvent::BarrierEnter { superstep: 4 },
                }],
            },
            CtlMsg::Done {
                value: PortableValue::Pair(
                    Box::new(PortableValue::Int(-7)),
                    Box::new(PortableValue::Bool(true)),
                ),
                stats: CtlStats {
                    sent_words: 10,
                    received_words: 10,
                    supersteps: 5,
                    puts: 5,
                    ifats: 0,
                },
                work: 12_345,
                ledger: CtlLedger::default(),
                flight_dropped: 0,
                flight: vec![],
            },
            CtlMsg::Ping { lamport: 99 },
            CtlMsg::Pong { lamport: 100 },
            CtlMsg::Rejoin {
                rank: 3,
                fingerprint: 0xdead_beef,
                completed_superstep: 7,
                resume_token: 31,
            },
            CtlMsg::RejoinOk { resume_token: 28 },
        ]
    }

    #[test]
    fn ctl_messages_roundtrip() {
        for msg in sample_ctl_msgs() {
            assert_eq!(CtlMsg::decode(&msg.encode()), Ok(msg));
        }
    }

    #[test]
    fn every_ctl_truncation_is_rejected() {
        for msg in sample_ctl_msgs() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    CtlMsg::decode(&bytes[..cut]).is_err(),
                    "{msg:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn every_ctl_bit_flip_is_rejected() {
        // One representative per direction keeps the quadratic scan
        // affordable; the checksum argument is the same for all tags.
        for msg in [CtlMsg::hello(7, 0, 4), CtlMsg::ExchangeTotal { total: 9 }] {
            let bytes = msg.encode();
            for i in 0..bytes.len() {
                for bit in 0..8 {
                    let mut corrupt = bytes.clone();
                    corrupt[i] ^= 1 << bit;
                    assert!(
                        CtlMsg::decode(&corrupt).is_err(),
                        "flip of bit {bit} at byte {i} went unnoticed"
                    );
                }
            }
        }
    }

    #[test]
    fn remote_errors_roundtrip_structurally() {
        let precise = [
            EvalError::PeerFailure,
            EvalError::OutOfFuel,
            EvalError::BarrierTimeout {
                superstep: 3,
                waiting: 2,
            },
            EvalError::InjectedFault {
                rank: 1,
                superstep: 2,
            },
            EvalError::TransportFailure {
                rank: 0,
                superstep: 5,
                detail: "EOF".to_string(),
            },
            EvalError::CheckpointDiverged {
                rank: 2,
                superstep: 4,
                detail: "value mismatch".to_string(),
            },
            EvalError::NotSerializable("<fun>".to_string()),
            EvalError::DivisionByZero,
            EvalError::RecursionLimit,
            EvalError::NestedParallelism,
        ];
        for err in precise {
            let mut out = Vec::new();
            encode_error(&mut out, &err);
            assert_eq!(decode_error(&mut Reader::new(&out)), Ok(err));
        }
        // Everything else degrades to its rendered form, never panics.
        let odd = EvalError::Unbound(bsml_ast::Ident::new("x"));
        let mut out = Vec::new();
        encode_error(&mut out, &odd);
        assert_eq!(
            decode_error(&mut Reader::new(&out)),
            Ok(EvalError::ScrutineeMismatch("remote rank", odd.to_string()))
        );
    }

    #[test]
    fn ctl_stream_reassembles_across_arbitrary_splits() {
        // A reader that returns ONE byte per `read` call: the worst
        // possible fragmentation a socket can produce. `read_ctl` must
        // reassemble the frame exactly.
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.0.split_first() {
                    Some((b, rest)) => {
                        buf[0] = *b;
                        self.0 = rest;
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
        }
        for msg in sample_ctl_msgs() {
            let bytes = msg.encode();
            let mut stream = OneByte(&bytes);
            assert_eq!(read_ctl(&mut stream).unwrap(), msg);
        }
        // A stream that dies mid-frame surfaces as UnexpectedEof.
        let bytes = CtlMsg::Poison.encode();
        let mut short = OneByte(&bytes[..bytes.len() - 1]);
        let err = read_ctl(&mut short).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_ctl_prefix_is_rejected_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 64]);
        let err = read_ctl(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
