//! The wire protocol of the distributed backend: length-prefixed,
//! checksummed frames carrying one `put` message, one `if‥at‥`
//! broadcast, or one acknowledgement between two ranks.
//!
//! This is the layer every transport speaks (see [`crate::transport`])
//! and the layer the reliable-delivery protocol reasons about
//! (DESIGN.md §10). A frame is self-delimiting and self-validating:
//!
//! ```text
//! frame :=
//!     len       u32   bytes following this prefix (header + payload + trailer)
//!     kind      u8    0 = Put data, 1 = IfAt data, 2 = Ack
//!     from      u32   sending rank
//!     superstep u64   the sender's superstep when the frame was built
//!     seq       u64   per-(sender → receiver)-link sequence number
//!     lamport   u64   the sender's Lamport clock when the frame was stamped
//!     payload         Put: one encoded PortableValue · IfAt: u8 bool · Ack: empty
//!     checksum  u64   FNV-1a over every preceding byte (prefix included)
//! ```
//!
//! All integers are little-endian. The decoder rejects — with an error,
//! never a panic — truncated frames, length-prefix mismatches, checksum
//! mismatches (any single bit flip is caught), unknown tags and
//! trailing garbage; the reliable layer treats every rejection as a
//! lost frame, so corruption degrades into retransmission.
//!
//! The [`PortableValue`] codec here is also the one checkpoint frames
//! embed ([`crate::checkpoint`]) — one serialized form on the wire and
//! at rest.
//!
//! ```
//! use bsml_bsp::wire::{Frame, FramePayload};
//! use bsml_eval::PortableValue;
//!
//! let f = Frame {
//!     from: 2,
//!     superstep: 7,
//!     seq: 42,
//!     lamport: 19,
//!     payload: FramePayload::Put(PortableValue::Int(-3)),
//! };
//! assert_eq!(Frame::decode(&f.encode()), Ok(f));
//! ```

use std::fmt;

use bsml_eval::PortableValue;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the checksum of wire and checkpoint
/// frames.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a frame (or an embedded value) failed to decode. Every variant
/// is a *rejection*: the decoder never panics on hostile bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The bytes end before the structure does.
    Truncated,
    /// The length prefix disagrees with the actual byte count — a
    /// truncated tail or a corrupted prefix.
    LengthMismatch {
        /// Bytes the prefix claims follow it.
        claimed: u64,
        /// Bytes actually present after the prefix.
        actual: u64,
    },
    /// The FNV-1a trailer does not match the frame's contents.
    ChecksumMismatch,
    /// An unknown frame-kind or value tag.
    UnknownTag(u8),
    /// Well-formed structure followed by garbage.
    TrailingBytes(usize),
    /// An embedded count larger than the bytes that could back it.
    CountOverflow(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::LengthMismatch { claimed, actual } => {
                write!(f, "length prefix claims {claimed} byte(s), found {actual}")
            }
            WireError::ChecksumMismatch => f.write_str("frame checksum mismatch"),
            WireError::UnknownTag(tag) => write!(f, "unknown wire tag {tag}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after frame"),
            WireError::CountOverflow(n) => {
                write!(f, "count {n} exceeds the remaining frame bytes")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked little-endian reader over a byte slice — shared by
/// the frame decoder and the checkpoint loader.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader at the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of input.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.pos + 4;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of input.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos + 8;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of input.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// A count that must plausibly fit in the remaining bytes (each
    /// counted item takes ≥ 1 byte) — rejects corrupted lengths before
    /// they become giant allocations.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::CountOverflow`].
    pub fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n as usize > self.remaining() {
            return Err(WireError::CountOverflow(n));
        }
        Ok(n as usize)
    }

    /// Consumes and returns the next `len` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }
}

/// Appends a little-endian `u64`.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes one [`PortableValue`] (the message codec of both wire
/// frames and checkpoint frames).
pub fn encode_value(out: &mut Vec<u8>, v: &PortableValue) {
    match v {
        PortableValue::Int(n) => {
            out.push(0);
            out.extend_from_slice(&n.to_le_bytes());
        }
        PortableValue::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        PortableValue::Unit => out.push(2),
        PortableValue::NoComm => out.push(3),
        PortableValue::Pair(a, b) => {
            out.push(4);
            encode_value(out, a);
            encode_value(out, b);
        }
        PortableValue::Inl(inner) => {
            out.push(5);
            encode_value(out, inner);
        }
        PortableValue::Inr(inner) => {
            out.push(6);
            encode_value(out, inner);
        }
        PortableValue::Nil => out.push(7),
        PortableValue::Cons(h, t) => {
            out.push(8);
            encode_value(out, h);
            encode_value(out, t);
        }
        PortableValue::Vector(vs) => {
            out.push(9);
            put_u64(out, vs.len() as u64);
            for c in vs {
                encode_value(out, c);
            }
        }
    }
}

/// Deserializes one [`PortableValue`].
///
/// # Errors
///
/// Any [`WireError`] on truncated or malformed input — never a panic.
pub fn decode_value(r: &mut Reader<'_>) -> Result<PortableValue, WireError> {
    match r.u8()? {
        0 => Ok(PortableValue::Int(r.i64()?)),
        1 => Ok(PortableValue::Bool(r.u8()? != 0)),
        2 => Ok(PortableValue::Unit),
        3 => Ok(PortableValue::NoComm),
        4 => Ok(PortableValue::Pair(
            Box::new(decode_value(r)?),
            Box::new(decode_value(r)?),
        )),
        5 => Ok(PortableValue::Inl(Box::new(decode_value(r)?))),
        6 => Ok(PortableValue::Inr(Box::new(decode_value(r)?))),
        7 => Ok(PortableValue::Nil),
        8 => Ok(PortableValue::Cons(
            Box::new(decode_value(r)?),
            Box::new(decode_value(r)?),
        )),
        9 => {
            let n = r.count()?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(r)?);
            }
            Ok(PortableValue::Vector(vs))
        }
        tag => Err(WireError::UnknownTag(tag)),
    }
}

/// What a frame carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramePayload {
    /// One `put` message (already serialized by the sender's local
    /// phase).
    Put(PortableValue),
    /// The broadcast boolean of an `if‥at‥`.
    IfAt(bool),
    /// An acknowledgement of the data frame with the same `seq` on the
    /// reverse link; `from` is the *acknowledging* rank.
    Ack,
}

const KIND_PUT: u8 = 0;
const KIND_IFAT: u8 = 1;
const KIND_ACK: u8 = 2;

/// One unit of communication between two ranks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The sending rank.
    pub from: usize,
    /// The sender's superstep when the frame was built (diagnostic —
    /// delivery and duplicate suppression key on `seq`).
    pub superstep: u64,
    /// Per-(sender → receiver)-link sequence number. Data frames use
    /// the sender's counter for that link; an ack echoes the sequence
    /// number it acknowledges.
    pub seq: u64,
    /// The sender's Lamport clock when the frame was *stamped* (built).
    /// A retransmission reuses the original bytes — same stamp, same
    /// logical message — so cross-rank causality (every receive
    /// happens-after its send) is reconstructable from a trace of
    /// stamps alone (DESIGN.md §12).
    pub lamport: u64,
    /// The payload.
    pub payload: FramePayload,
}

impl Frame {
    /// Serializes the frame (see the module docs for the layout).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(&0u32.to_le_bytes()); // patched below
        match &self.payload {
            FramePayload::Put(_) => out.push(KIND_PUT),
            FramePayload::IfAt(_) => out.push(KIND_IFAT),
            FramePayload::Ack => out.push(KIND_ACK),
        }
        out.extend_from_slice(&u32::try_from(self.from).unwrap_or(u32::MAX).to_le_bytes());
        put_u64(&mut out, self.superstep);
        put_u64(&mut out, self.seq);
        put_u64(&mut out, self.lamport);
        match &self.payload {
            FramePayload::Put(v) => encode_value(&mut out, v),
            FramePayload::IfAt(b) => out.push(u8::from(*b)),
            FramePayload::Ack => {}
        }
        let len = u32::try_from(out.len() - 4 + 8).expect("frames fit in u32");
        out[0..4].copy_from_slice(&len.to_le_bytes());
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Parses and verifies one frame.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the caller treats the frame as lost (the
    /// sender's retransmission repairs it).
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(bytes);
        let claimed = u64::from(r.u32()?);
        let actual = (bytes.len() - 4) as u64;
        if claimed != actual {
            return Err(WireError::LengthMismatch { claimed, actual });
        }
        if bytes.len() < 4 + 1 + 4 + 8 + 8 + 8 + 8 {
            return Err(WireError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        if fnv1a(body) != u64::from_le_bytes(trailer.try_into().expect("8 bytes")) {
            return Err(WireError::ChecksumMismatch);
        }
        let mut r = Reader::new(&body[4..]);
        let kind = r.u8()?;
        let from = r.u32()? as usize;
        let superstep = r.u64()?;
        let seq = r.u64()?;
        let lamport = r.u64()?;
        let payload = match kind {
            KIND_PUT => FramePayload::Put(decode_value(&mut r)?),
            KIND_IFAT => FramePayload::IfAt(r.u8()? != 0),
            KIND_ACK => FramePayload::Ack,
            tag => return Err(WireError::UnknownTag(tag)),
        };
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(Frame {
            from,
            superstep,
            seq,
            lamport,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            from: 3,
            superstep: 11,
            seq: 207,
            lamport: 1009,
            payload: FramePayload::Put(PortableValue::Pair(
                Box::new(PortableValue::Int(-42)),
                Box::new(PortableValue::Cons(
                    Box::new(PortableValue::NoComm),
                    Box::new(PortableValue::Nil),
                )),
            )),
        }
    }

    #[test]
    fn frames_roundtrip() {
        for f in [
            sample(),
            Frame {
                from: 0,
                superstep: 0,
                seq: 0,
                lamport: 0,
                payload: FramePayload::IfAt(true),
            },
            Frame {
                from: 15,
                superstep: u64::MAX,
                seq: u64::MAX,
                lamport: u64::MAX,
                payload: FramePayload::Ack,
            },
        ] {
            assert_eq!(Frame::decode(&f.encode()), Ok(f));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let f = sample();
        let bytes = f.encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    Frame::decode(&corrupt).is_err(),
                    "flip of bit {bit} at byte {i} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        // The length prefix no longer matches.
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn count_overflow_does_not_allocate() {
        // A Vector claiming u64::MAX components must be rejected by
        // the count guard, not by the allocator.
        let f = Frame {
            from: 1,
            superstep: 0,
            seq: 0,
            lamport: 0,
            payload: FramePayload::Put(PortableValue::Vector(vec![PortableValue::Unit])),
        };
        let mut bytes = f.encode();
        // The vector count sits after prefix(4) + kind(1) + from(4) +
        // superstep(8) + seq(8) + lamport(8) + value tag(1).
        let at = 4 + 1 + 4 + 8 + 8 + 8 + 1;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // Re-seal the checksum so the corruption reaches the decoder.
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::CountOverflow(u64::MAX))
        );
    }
}
