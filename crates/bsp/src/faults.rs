//! Deterministic fault injection for the distributed machine.
//!
//! The paper's semantics are confluent (§5): a mini-BSML program's
//! value and per-superstep h-relations are a pure function of the
//! program and `p`. That determinism is what makes *replay* a sound
//! recovery strategy — and what makes fault injection testable: a
//! seeded [`FaultPlan`] perturbs one distributed attempt in a
//! reproducible way, and the supervised retry must converge back to
//! the lockstep oracle's answer.
//!
//! A plan is a list of [`Fault`]s, each armed for one *attempt*
//! (retry index). The [`crate::distributed::DistMachine`] consults
//! the plan — behind an `Option`, so fault-free runs pay nothing — at
//! the entry of every `put`/`if‥at‥` and at every mailbox write:
//!
//! * [`FaultKind::Crash`] — the processor fails cleanly with
//!   [`bsml_eval::EvalError::InjectedFault`] and poisons the barrier.
//! * [`FaultKind::Panic`] — the processor thread panics mid-superstep
//!   (exercising the machine's unwind containment).
//! * [`FaultKind::DropMessage`] — one `put` message is lost in
//!   flight. On the lossless shared-memory transport it is silently
//!   replaced with `nc ()` (caught only by the supervisor's oracle
//!   cross-check); on a lossy transport
//!   ([`crate::transport::TransportConfig::Lossy`]) the reliable
//!   delivery layer detects the missing acknowledgement and
//!   retransmits, so the drop is *tolerated* — counted in
//!   `net.frames_lost`/`net.retransmits`, never corrupting the value.
//! * [`FaultKind::Stall`] — the processor sleeps before a barrier
//!   (long stalls trip the watchdog as
//!   [`bsml_eval::EvalError::BarrierTimeout`]).
//!
//! ```
//! use bsml_bsp::faults::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new().crash(2, 0); // rank 2 dies in superstep 0
//! assert!(plan.crash_at(2, 0, 0).is_some());
//! assert!(plan.crash_at(2, 0, 1).is_none()); // disarmed on the retry
//! ```

use std::time::Duration;

/// One injectable fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Rank `rank` fails with a clean
    /// [`bsml_eval::EvalError::InjectedFault`] when it reaches
    /// superstep `superstep`.
    Crash {
        /// The processor to crash.
        rank: usize,
        /// The superstep (count of completed barriers on that rank)
        /// at which to crash.
        superstep: u64,
    },
    /// Rank `rank` *panics* (unwinds) when it reaches superstep
    /// `superstep` — the ill-behaved cousin of [`FaultKind::Crash`],
    /// testing that a panicking processor thread is contained and
    /// converted into a peer failure instead of aborting the runner.
    Panic {
        /// The processor to panic.
        rank: usize,
        /// The superstep at which to panic.
        superstep: u64,
    },
    /// The `put` message from `from` to `to` in superstep `superstep`
    /// is lost in flight. On the lossless transport it is silently
    /// replaced by `nc ()` — a loss the receiver cannot distinguish
    /// from "nothing was sent"; on a lossy transport the reliable
    /// layer retransmits it, so the loss costs retries, not
    /// correctness.
    DropMessage {
        /// The sending processor.
        from: usize,
        /// The receiving processor.
        to: usize,
        /// The superstep whose exchange loses the message.
        superstep: u64,
    },
    /// Rank `rank` sleeps for `delay` before entering the barrier of
    /// superstep `superstep`. Delays longer than the machine's
    /// watchdog timeout surface as
    /// [`bsml_eval::EvalError::BarrierTimeout`] on the peers.
    Stall {
        /// The processor to stall.
        rank: usize,
        /// The superstep whose barrier entry is delayed.
        superstep: u64,
        /// How long to sleep.
        delay: Duration,
    },
}

impl FaultKind {
    /// The kind's stable wire code, as recorded in flight-recorder
    /// [`bsml_obs::FlightEvent::FaultFired`] events and postmortem
    /// bundles: 0 crash, 1 panic, 2 drop, 3 stall. Matches the codes
    /// [`FaultPlan::chaos`] derives kinds from.
    #[must_use]
    pub fn code(&self) -> u64 {
        match self {
            FaultKind::Crash { .. } => 0,
            FaultKind::Panic { .. } => 1,
            FaultKind::DropMessage { .. } => 2,
            FaultKind::Stall { .. } => 3,
        }
    }

    /// A short human-readable label for the kind.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Panic { .. } => "panic",
            FaultKind::DropMessage { .. } => "drop",
            FaultKind::Stall { .. } => "stall",
        }
    }
}

/// A fault armed for one specific attempt (retry index). Faults on
/// attempt 0 perturb the first run; the supervisor's retries run with
/// progressively fewer (typically zero) armed faults, which is what
/// lets replay recover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// The attempt (0-based) on which this fault fires.
    pub attempt: u32,
}

/// A seeded, deterministic set of faults to inject into one
/// distributed run. Construction is by builder methods (each arms the
/// fault for attempt 0 unless re-armed with [`FaultPlan::on_attempt`])
/// or by [`FaultPlan::chaos`], which derives a single random fault
/// from a seed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Reassembles a plan from already-armed faults — how a rank
    /// process reconstructs the plan the parent shipped it over the
    /// control stream (`wire::CtlMsg::Welcome`).
    #[must_use]
    pub(crate) fn from_faults(faults: Vec<Fault>) -> FaultPlan {
        FaultPlan { faults }
    }

    /// Adds a clean crash of `rank` at `superstep` (attempt 0).
    #[must_use]
    pub fn crash(mut self, rank: usize, superstep: u64) -> FaultPlan {
        self.faults.push(Fault {
            kind: FaultKind::Crash { rank, superstep },
            attempt: 0,
        });
        self
    }

    /// Adds a panic of `rank` at `superstep` (attempt 0).
    #[must_use]
    pub fn panic(mut self, rank: usize, superstep: u64) -> FaultPlan {
        self.faults.push(Fault {
            kind: FaultKind::Panic { rank, superstep },
            attempt: 0,
        });
        self
    }

    /// Adds a message drop `from → to` at `superstep` (attempt 0).
    #[must_use]
    pub fn drop_message(mut self, from: usize, to: usize, superstep: u64) -> FaultPlan {
        self.faults.push(Fault {
            kind: FaultKind::DropMessage {
                from,
                to,
                superstep,
            },
            attempt: 0,
        });
        self
    }

    /// Adds a pre-barrier stall of `rank` at `superstep` (attempt 0).
    #[must_use]
    pub fn stall(mut self, rank: usize, superstep: u64, delay: Duration) -> FaultPlan {
        self.faults.push(Fault {
            kind: FaultKind::Stall {
                rank,
                superstep,
                delay,
            },
            attempt: 0,
        });
        self
    }

    /// Re-arms the most recently added fault for `attempt` instead of
    /// attempt 0 (no-op on an empty plan).
    #[must_use]
    pub fn on_attempt(mut self, attempt: u32) -> FaultPlan {
        if let Some(last) = self.faults.last_mut() {
            last.attempt = attempt;
        }
        self
    }

    /// Derives a plan with exactly **one** random fault from `seed`,
    /// targeting a machine of `p` processors and a program of
    /// `supersteps` supersteps (the fault lands inside `0..supersteps`
    /// so it always fires). The same seed always yields the same
    /// fault — chaos tests iterate seeds, not reruns.
    #[must_use]
    pub fn chaos(seed: u64, p: usize, supersteps: u64) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let rank = (rng.next() % p as u64) as usize;
        let superstep = if supersteps == 0 {
            0
        } else {
            rng.next() % supersteps
        };
        let kind = match rng.next() % 4 {
            0 => FaultKind::Crash { rank, superstep },
            1 => FaultKind::Panic { rank, superstep },
            2 => FaultKind::DropMessage {
                from: rank,
                to: (rng.next() % p as u64) as usize,
                superstep,
            },
            _ => FaultKind::Stall {
                rank,
                superstep,
                delay: Duration::from_millis(1 + rng.next() % 3),
            },
        };
        FaultPlan {
            faults: vec![Fault { kind, attempt: 0 }],
        }
    }

    /// The planned faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The crash **or panic** scheduled for `(rank, superstep)` on
    /// `attempt`, if any. Panics win ties (they are the harsher
    /// failure).
    #[must_use]
    pub fn crash_at(&self, rank: usize, superstep: u64, attempt: u32) -> Option<&FaultKind> {
        let mut found = None;
        for f in &self.faults {
            if f.attempt != attempt {
                continue;
            }
            match &f.kind {
                FaultKind::Panic {
                    rank: r,
                    superstep: s,
                } if *r == rank && *s == superstep => {
                    return Some(&f.kind);
                }
                FaultKind::Crash {
                    rank: r,
                    superstep: s,
                } if *r == rank && *s == superstep => {
                    found = Some(&f.kind);
                }
                _ => {}
            }
        }
        found
    }

    /// Whether the `put` message `from → to` of `superstep` is
    /// dropped on `attempt`.
    #[must_use]
    pub fn drops(&self, from: usize, to: usize, superstep: u64, attempt: u32) -> bool {
        self.faults.iter().any(|f| {
            f.attempt == attempt
                && matches!(
                    &f.kind,
                    FaultKind::DropMessage { from: ff, to: tt, superstep: s }
                        if *ff == from && *tt == to && *s == superstep
                )
        })
    }

    /// The total stall scheduled before `(rank, superstep)`'s barrier
    /// on `attempt` (`None` if no stall applies).
    #[must_use]
    pub fn stall_before(&self, rank: usize, superstep: u64, attempt: u32) -> Option<Duration> {
        let mut total = None;
        for f in &self.faults {
            if f.attempt != attempt {
                continue;
            }
            if let FaultKind::Stall {
                rank: r,
                superstep: s,
                delay,
            } = &f.kind
            {
                if *r == rank && *s == superstep {
                    total = Some(total.unwrap_or(Duration::ZERO) + *delay);
                }
            }
        }
        total
    }
}

/// What a [`LinkFault`] does to a live rank↔coordinator control
/// stream. Unlike [`FaultKind`], which kills or perturbs the *rank*,
/// a link fault perturbs only the *wire*: the rank process stays
/// alive with its in-memory state intact, and the cheapest recovery
/// rung — reconnect and replay from the egress buffers — applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// Half-open: the coordinator shuts down its *write* side only.
    /// The child reads EOF and reconnects; the parent keeps reading
    /// whatever was in flight.
    Drop,
    /// The coordinator stops writing to the link without closing it —
    /// a silent partition. The child's silence detector (no traffic
    /// within the grace window) triggers the reconnect.
    Freeze,
    /// Both directions are shut down at once — what a TCP RST or a
    /// dead middlebox looks like to the application.
    Reset,
    /// `n` consecutive severs: the initial one plus `n − 1` re-severs
    /// of the child's reconnection attempts before one is finally
    /// allowed to complete. Large `n` against a small rejoin budget is
    /// how tests force demotion to the checkpoint-respawn rung.
    Flap(u32),
}

impl LinkFaultKind {
    /// The kind's stable wire code: 0 drop, 1 freeze, 2 reset, 3 flap.
    #[must_use]
    pub fn code(&self) -> u64 {
        match self {
            LinkFaultKind::Drop => 0,
            LinkFaultKind::Freeze => 1,
            LinkFaultKind::Reset => 2,
            LinkFaultKind::Flap(_) => 3,
        }
    }

    /// A short human-readable label for the kind.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            LinkFaultKind::Drop => "link-drop",
            LinkFaultKind::Freeze => "link-freeze",
            LinkFaultKind::Reset => "link-reset",
            LinkFaultKind::Flap(_) => "link-flap",
        }
    }
}

/// One deterministic link sever: when the coordinator finishes the
/// barrier of `superstep` on `attempt`, rank `rank`'s control stream
/// suffers `kind` instead of (before) receiving its release. Carried
/// in [`crate::process::ProcessConfig::link_faults`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFault {
    /// The rank whose link is severed.
    pub rank: usize,
    /// The superstep whose barrier release the sever lands on
    /// (`0` severs right after launch, before any barrier).
    pub superstep: u64,
    /// What happens to the wire.
    pub kind: LinkFaultKind,
    /// The attempt (0-based) on which this fault fires.
    pub attempt: u32,
}

/// Sebastiano Vigna's SplitMix64 — tiny, seedable, and good enough to
/// scatter faults, jitter supervisor backoff, and schedule the lossy
/// transport's perturbations; avoids any external RNG dependency.
#[derive(Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.crash_at(0, 0, 0).is_none());
        assert!(!plan.drops(0, 1, 0, 0));
        assert!(plan.stall_before(0, 0, 0).is_none());
    }

    #[test]
    fn builder_faults_fire_only_on_their_attempt() {
        let plan = FaultPlan::new()
            .crash(1, 2)
            .drop_message(0, 3, 1)
            .on_attempt(1)
            .stall(2, 0, Duration::from_millis(5));
        assert_eq!(plan.faults().len(), 3);
        assert!(matches!(
            plan.crash_at(1, 2, 0),
            Some(FaultKind::Crash {
                rank: 1,
                superstep: 2
            })
        ));
        assert!(plan.crash_at(1, 2, 1).is_none());
        // The drop was re-armed for attempt 1.
        assert!(!plan.drops(0, 3, 1, 0));
        assert!(plan.drops(0, 3, 1, 1));
        assert_eq!(plan.stall_before(2, 0, 0), Some(Duration::from_millis(5)));
    }

    #[test]
    fn panics_shadow_crashes_at_the_same_site() {
        let plan = FaultPlan::new().crash(0, 0).panic(0, 0);
        assert!(matches!(
            plan.crash_at(0, 0, 0),
            Some(FaultKind::Panic { .. })
        ));
    }

    #[test]
    fn stalls_at_the_same_site_accumulate() {
        let plan = FaultPlan::new()
            .stall(0, 1, Duration::from_millis(2))
            .stall(0, 1, Duration::from_millis(3));
        assert_eq!(plan.stall_before(0, 1, 0), Some(Duration::from_millis(5)));
    }

    #[test]
    fn chaos_is_deterministic_and_in_range() {
        for seed in 0..200 {
            let (p, s) = (4, 2);
            let a = FaultPlan::chaos(seed, p, s);
            let b = FaultPlan::chaos(seed, p, s);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(a.faults().len(), 1);
            let in_range = |rank: usize, superstep: u64| rank < p && superstep < s;
            match &a.faults()[0].kind {
                FaultKind::Crash { rank, superstep }
                | FaultKind::Panic { rank, superstep }
                | FaultKind::Stall {
                    rank, superstep, ..
                } => {
                    assert!(in_range(*rank, *superstep));
                }
                FaultKind::DropMessage {
                    from,
                    to,
                    superstep,
                } => {
                    assert!(in_range(*from, *superstep) && *to < p);
                }
            }
        }
    }

    #[test]
    fn chaos_covers_every_fault_kind() {
        let mut kinds = [false; 4];
        for seed in 0..64 {
            match FaultPlan::chaos(seed, 4, 2).faults()[0].kind {
                FaultKind::Crash { .. } => kinds[0] = true,
                FaultKind::Panic { .. } => kinds[1] = true,
                FaultKind::DropMessage { .. } => kinds[2] = true,
                FaultKind::Stall { .. } => kinds[3] = true,
            }
        }
        assert_eq!(kinds, [true; 4], "64 seeds should hit all kinds");
    }

    #[test]
    fn link_fault_kinds_have_stable_codes_and_labels() {
        let kinds = [
            LinkFaultKind::Drop,
            LinkFaultKind::Freeze,
            LinkFaultKind::Reset,
            LinkFaultKind::Flap(3),
        ];
        assert_eq!(
            kinds.iter().map(LinkFaultKind::code).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        for k in kinds {
            assert!(k.label().starts_with("link-"));
        }
        let f = LinkFault {
            rank: 1,
            superstep: 2,
            kind: LinkFaultKind::Flap(5),
            attempt: 0,
        };
        assert_eq!(f.kind, LinkFaultKind::Flap(5));
    }
}
