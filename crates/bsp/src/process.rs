//! Process-per-rank execution (DESIGN.md §13): the paper's
//! BSMLlib-over-MPI shape, where each rank is one OS process that can
//! genuinely die.
//!
//! Topology is a star: the parent binds a listener (Unix-domain by
//! default, TCP via [`ProcessConfig::bind`]), spawns `p` copies of the
//! `bsml-rank` binary, handshakes each connection (magic + protocol
//! version + program fingerprint + rank id + `p`, under
//! [`HANDSHAKE_TIMEOUT_ENV`]), and then routes every data-plane frame
//! and every synchronization message over the per-child control
//! streams ([`crate::wire::CtlMsg`]). Rank death is detected as
//! socket EOF and confirmed with `waitpid` ([`std::process::Child`]),
//! then mapped to the failed (rank, superstep) coordinate as
//! [`EvalError::TransportFailure`] — which is exactly the error class
//! the [`crate::Supervisor`] already retries with
//! checkpoint resume, so respawn-and-resume needs no new supervisor
//! machinery: the whole fleet is respawned and resumed from the
//! newest committed generation, demoting to a full restart on
//! [`EvalError::CheckpointDiverged`] like the in-process ladder.
//!
//! Links themselves are *supervised* resources (DESIGN.md §16): every
//! rank↔coordinator stream carries application heartbeats
//! ([`CtlMsg::Ping`]/[`CtlMsg::Pong`] under [`HEARTBEAT_MS_ENV`]) and
//! walks a per-link state machine `Healthy → Suspect → Disconnected →
//! Rejoining`. A rank whose *socket* dies while its *process* lives
//! reconnects within [`LINK_GRACE_MS_ENV`], re-handshakes with
//! [`CtlMsg::Rejoin`], and both sides replay the frames the other
//! never received from bounded per-link egress buffers — healing a
//! transient partition without discarding a single superstep. Only
//! when the grace window or the rejoin budget is exhausted does the
//! link failure escalate to the rank-death path above.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::Shutdown;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bsml_ast::Expr;
use bsml_eval::{EvalError, PortableValue};
use bsml_obs::{FlightEvent, FlightRecorder, TimedFlightEvent};

use crate::checkpoint::{
    program_fingerprint, CheckpointError, CheckpointStore, RankFrame, ResumePoint,
};
use crate::distributed::{
    assemble, flush_counters, run_remote_rank, DistMachine, DistOutcome, DEFAULT_FLIGHT_CAPACITY,
};
use crate::faults::{FaultPlan, LinkFault, LinkFaultKind};
use crate::postmortem::{error_coordinate, FlightLog, PostmortemBundle, RankFlightLog};
use crate::supervisor::POSTMORTEM_DIR_ENV;
use crate::transport::{Bind, Listener, NetTuning, RankStream, SocketTransport, Transport};
use crate::wire::{
    read_ctl, write_ctl, CtlLedger, CtlMsg, CtlStats, CTL_MAGIC, MAX_CTL_FRAME, PROTOCOL_VERSION,
};

/// The environment variable overriding the connect/handshake deadline
/// (milliseconds). The companion of
/// [`crate::distributed::BARRIER_TIMEOUT_ENV`]: that knob bounds how
/// long a *running* rank waits at a barrier, this one bounds how long
/// the parent waits for a spawned rank to connect and identify itself.
/// Unset or unparsable values fall back to
/// [`DEFAULT_HANDSHAKE_TIMEOUT`]; a never-connecting rank therefore
/// always fails with [`EvalError::TransportFailure`], never a hang.
pub const HANDSHAKE_TIMEOUT_ENV: &str = "BSML_HANDSHAKE_TIMEOUT_MS";

/// Handshake deadline when [`HANDSHAKE_TIMEOUT_ENV`] is unset:
/// generous against a loaded CI machine, far below any test timeout.
pub const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// The handshake deadline: the [`HANDSHAKE_TIMEOUT_ENV`] override when
/// set and parsable, else [`DEFAULT_HANDSHAKE_TIMEOUT`] (malformed
/// values are counted under `config.bad_env_values`).
fn handshake_timeout_from_env() -> Duration {
    bsml_obs::env::duration_ms_knob(
        HANDSHAKE_TIMEOUT_ENV,
        DEFAULT_HANDSHAKE_TIMEOUT,
        &bsml_obs::Telemetry::disabled(),
    )
}

/// The environment variable setting the link heartbeat period
/// (milliseconds): how often the parent pings every live rank link
/// ([`CtlMsg::Ping`]/[`CtlMsg::Pong`]). `0` disables heartbeats *and*
/// the silence detection that depends on them — links then fail only
/// on hard socket errors. Unset or unparsable values fall back to
/// [`DEFAULT_HEARTBEAT`].
pub const HEARTBEAT_MS_ENV: &str = "BSML_HEARTBEAT_MS";

/// Heartbeat period when [`HEARTBEAT_MS_ENV`] is unset.
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(500);

/// The environment variable setting the link grace window
/// (milliseconds): how long a severed link may stay down before the
/// parent gives up on a rejoin and escalates to the rank-death path
/// (and how long a silent link may go without traffic before the child
/// treats it as severed). `0` disables link healing entirely: the
/// first socket error is final, exactly the pre-supervision behavior.
/// Unset or unparsable values fall back to [`DEFAULT_LINK_GRACE`].
pub const LINK_GRACE_MS_ENV: &str = "BSML_LINK_GRACE_MS";

/// Grace window when [`LINK_GRACE_MS_ENV`] is unset.
pub const DEFAULT_LINK_GRACE: Duration = Duration::from_millis(5000);

/// Rejoin attempts the parent accepts per link per attempt before it
/// answers [`CtlMsg::Reject`] (see [`ProcessConfig::rejoin_budget`]).
pub const DEFAULT_REJOIN_BUDGET: u32 = 16;

fn heartbeat_from_env() -> Duration {
    bsml_obs::env::duration_ms_knob(
        HEARTBEAT_MS_ENV,
        DEFAULT_HEARTBEAT,
        &bsml_obs::Telemetry::disabled(),
    )
}

fn link_grace_from_env() -> Duration {
    bsml_obs::env::duration_ms_knob(
        LINK_GRACE_MS_ENV,
        DEFAULT_LINK_GRACE,
        &bsml_obs::Telemetry::disabled(),
    )
}

/// Overrides where the parent looks for the rank-runner binary when
/// [`ProcessConfig::rank_binary`] is unset (the last resort is a
/// `bsml-rank` sibling of the current executable).
pub const RANK_BIN_ENV: &str = "BSML_RANK_BIN";

/// Child environment: path of the parent's coordination socket.
pub const RANK_SOCKET_ENV: &str = "BSML_RANK_SOCKET";
/// Child environment: this process's rank id.
pub const RANK_ID_ENV: &str = "BSML_RANK_ID";
/// Child environment: the machine width `p`.
pub const RANK_P_ENV: &str = "BSML_RANK_P";
/// Child environment: the [`program_fingerprint`] the child must echo
/// in its `Hello` and re-verify against the welcomed program text.
pub const RANK_FINGERPRINT_ENV: &str = "BSML_RANK_FINGERPRINT";

/// Deterministically SIGKILL one rank process — the chaos grid's
/// process-mode fault. `superstep = s` kills the rank as it *enters*
/// superstep `s` (it is withheld the barrier release that would let it
/// proceed past superstep `s - 1`; `s = 0` kills right after the
/// handshake), which mirrors the in-process crash fault's coordinate:
/// the newest committed checkpoint generation is `⌊s/k⌋·k`, so a
/// supervised resume replays exactly `s mod k` supersteps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// The rank to kill.
    pub rank: usize,
    /// The superstep whose entry the kill lands on.
    pub superstep: u64,
    /// The attempt the kill is armed for, 0-based like
    /// [`crate::faults::Fault::attempt`] (`0` = the first attempt;
    /// retries run clean unless armed separately).
    pub attempt: u32,
}

/// Configuration of [`crate::Execution::Processes`].
#[derive(Clone, Debug, Default)]
pub struct ProcessConfig {
    /// Where the coordination socket lives. `None` creates (and
    /// removes) a fresh directory under the system temp dir — socket
    /// paths have a ~100-byte limit, so deep workspaces should leave
    /// this unset.
    pub socket_dir: Option<PathBuf>,
    /// The rank-runner binary. `None` falls back to [`RANK_BIN_ENV`],
    /// then to a `bsml-rank` sibling of the current executable.
    pub rank_binary: Option<PathBuf>,
    /// Connect/handshake deadline. `None` reads
    /// [`HANDSHAKE_TIMEOUT_ENV`] (default
    /// [`DEFAULT_HANDSHAKE_TIMEOUT`]).
    pub handshake_timeout: Option<Duration>,
    /// Ranks to SIGKILL at specific (superstep, attempt) coordinates.
    pub kills: Vec<KillSpec>,
    /// Where rank processes write their `.bsmlpm` flight-recorder
    /// bundles (exported to children as `BSML_POSTMORTEM_DIR`). `None`
    /// lets children inherit the parent's environment.
    pub postmortem_dir: Option<PathBuf>,
    /// Where the coordinator listens: a Unix-domain path or a TCP
    /// address. `None` binds `coord.sock` inside the socket directory,
    /// the pre-TCP behavior.
    pub bind: Option<Bind>,
    /// Link severs to inject at specific (rank, superstep, attempt)
    /// coordinates — the partition-chaos counterpart of `kills`.
    pub link_faults: Vec<LinkFault>,
    /// Heartbeat period. `None` reads [`HEARTBEAT_MS_ENV`] (default
    /// [`DEFAULT_HEARTBEAT`]).
    pub heartbeat: Option<Duration>,
    /// Link grace window. `None` reads [`LINK_GRACE_MS_ENV`] (default
    /// [`DEFAULT_LINK_GRACE`]).
    pub link_grace: Option<Duration>,
    /// Accepted rejoin attempts per link per attempt before the parent
    /// rejects further reconnects and lets the rank die (demoting the
    /// failure to a respawn-from-checkpoint). `None` means
    /// [`DEFAULT_REJOIN_BUDGET`].
    pub rejoin_budget: Option<u32>,
}

impl ProcessConfig {
    /// Sets where the coordinator listens (builder-style).
    #[must_use]
    pub fn bind(mut self, bind: Bind) -> ProcessConfig {
        self.bind = Some(bind);
        self
    }
}

/// Locks a mutex, recovering the guard if a holder panicked (all
/// protected data here are plain counters and queues).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Child side: postmortem accumulator, control hub, relay store
// ---------------------------------------------------------------------------

/// Accumulated flight events of a rank process. The ring's `drain` is
/// destructive, so periodic disk flushes (one per barrier release)
/// move events into this bounded accumulator — at SIGKILL time the
/// last flushed bundle survives on disk, which is what makes process
/// death postmortem-analyzable.
#[derive(Debug, Default)]
struct Accum {
    events: Vec<TimedFlightEvent>,
    /// Events the accumulator itself evicted to stay bounded (on top
    /// of what the ring dropped).
    evicted: u64,
}

/// A rank process's own postmortem writer: single-rank
/// [`PostmortemBundle`]s written tmp-then-rename (a kill mid-write
/// leaves the previous complete bundle, never a torn one).
#[derive(Debug)]
pub(crate) struct ChildPostmortem {
    path: PathBuf,
    p: usize,
    attempt: u32,
    rank: usize,
    recorder: Arc<FlightRecorder>,
    accum: Mutex<Accum>,
    capacity: usize,
}

impl ChildPostmortem {
    /// Creates the writer (and the directory). Returns `None` when the
    /// directory cannot be created — postmortems are best-effort and
    /// never fail a run.
    fn new(
        dir: &Path,
        rank: usize,
        p: usize,
        attempt: u32,
        fingerprint: u64,
        recorder: Arc<FlightRecorder>,
        capacity: usize,
    ) -> Option<ChildPostmortem> {
        std::fs::create_dir_all(dir).ok()?;
        let path = dir.join(format!(
            "pm-rank{rank}-{fingerprint:016x}-p{p}-attempt{attempt}.bsmlpm"
        ));
        Some(ChildPostmortem {
            path,
            p,
            attempt,
            rank,
            recorder,
            accum: Mutex::new(Accum::default()),
            capacity,
        })
    }

    /// Moves everything currently in the ring into the accumulator and
    /// returns (total dropped, accumulated events).
    fn snapshot(&self) -> (u64, Vec<TimedFlightEvent>) {
        let mut accum = lock(&self.accum);
        accum.events.extend(self.recorder.drain());
        if accum.events.len() > self.capacity {
            let overflow = accum.events.len() - self.capacity;
            accum.events.drain(..overflow);
            accum.evicted += overflow as u64;
        }
        (
            self.recorder.dropped() + accum.evicted,
            accum.events.clone(),
        )
    }

    /// Writes the current accumulated history as a one-rank bundle.
    /// Best-effort: I/O failures are swallowed (a rank must never die
    /// of its own black box).
    fn flush(&self, error: &str, error_rank: Option<u64>, error_superstep: Option<u64>) {
        let (dropped, events) = self.snapshot();
        let bundle = PostmortemBundle::new(
            self.p,
            self.attempt,
            error.to_string(),
            error_rank,
            error_superstep,
            FlightLog {
                ranks: vec![RankFlightLog {
                    rank: self.rank,
                    dropped,
                    events,
                }],
            },
        );
        let tmp = self.path.with_extension("tmp");
        if std::fs::write(&tmp, bundle.encode()).is_ok() {
            let _ = std::fs::rename(&tmp, &self.path);
        }
    }
}

/// State a barrier wait blocks on: releases observed so far and the
/// poison flag.
#[derive(Debug, Default)]
struct BarrierProgress {
    releases: u64,
    poisoned: bool,
}

/// Frames the per-link egress buffer retains for replay. 4096 frames
/// comfortably covers everything in flight across one sever (a
/// superstep's worth of deliveries plus control traffic) without
/// letting a long run grow without bound.
const EGRESS_CAPACITY: usize = 4096;

/// A bounded ring of encoded session frames already handed to one
/// link, indexed by cumulative send count. After a reconnect, the
/// peer's resume token (how many session frames *it* received) selects
/// the suffix to replay: exactly the frames that were in flight or
/// buffered when the socket died. Heartbeats and rejoin-handshake
/// messages bypass the ring (they are link-scoped, not session-scoped),
/// which keeps the two sides' counts in agreement.
#[derive(Debug, Default)]
struct EgressRing {
    /// Cumulative index of `frames[0]` (frames evicted so far).
    base: u64,
    frames: VecDeque<Vec<u8>>,
}

impl EgressRing {
    fn push(&mut self, bytes: Vec<u8>) {
        if self.frames.len() == EGRESS_CAPACITY {
            self.frames.pop_front();
            self.base += 1;
        }
        self.frames.push_back(bytes);
    }

    /// Cumulative count of frames ever pushed.
    fn sent(&self) -> u64 {
        self.base + self.frames.len() as u64
    }

    /// The frames the peer has not seen, oldest first — `None` when
    /// the token predates the ring (the missing frames are gone, the
    /// link cannot be healed) or claims more than was ever sent (a
    /// protocol violation).
    fn replay_from(&self, token: u64) -> Option<Vec<&Vec<u8>>> {
        if token < self.base || token > self.sent() {
            return None;
        }
        let skip = (token - self.base) as usize;
        Some(self.frames.iter().skip(skip).collect())
    }
}

/// A rank process's end of the parent's control stream: the writer
/// half plus everything the reader thread routes off the stream
/// (delivered frames, exchange totals, barrier releases, poison).
/// This is what [`crate::distributed::SyncBackend::Remote`] and
/// [`SocketTransport`] talk to.
#[derive(Debug)]
pub(crate) struct RemoteHub {
    writer: Mutex<RankStream>,
    /// Data frames the parent routed to this rank, in arrival order.
    inbound: Mutex<VecDeque<Vec<u8>>>,
    /// Machine-wide count of locally-completed exchanges (monotonic:
    /// updated with `fetch_max`, because parent reader threads may
    /// interleave their `ExchangeTotal` broadcasts).
    exchange_total: AtomicU64,
    barrier: Mutex<BarrierProgress>,
    barrier_cv: Condvar,
    /// The frame bytes [`RelayStore`] staged since the last barrier,
    /// shipped with the next `BarrierEnter`.
    staged: Mutex<Option<Vec<u8>>>,
    /// Flushed after every barrier release so a later SIGKILL still
    /// leaves an on-disk bundle.
    postmortem: Option<Arc<ChildPostmortem>>,
    /// Where to reconnect when the link dies. `None` (the in-crate
    /// test harness over a socketpair) disables healing: the first
    /// stream error poisons, as before link supervision.
    endpoint: Option<String>,
    rank: usize,
    fingerprint: u64,
    /// Welcomed heartbeat period: `ZERO` disables silence detection
    /// (the reader then blocks without a deadline).
    heartbeat: Duration,
    /// Welcomed grace window bounding both silence detection and the
    /// heal loop. `ZERO` disables healing.
    link_grace: Duration,
    /// Session frames already written to the parent, kept for replay.
    egress: Mutex<EgressRing>,
    /// Session frames received from the parent — the resume token this
    /// side offers in its `Rejoin`.
    recvd: AtomicU64,
    /// Supersteps this rank has entered the exit barrier of — the
    /// claim a `Rejoin` carries, validated against the parent's count.
    completed: AtomicU64,
    /// Bumped (under `link_generation`) each time the link is healed;
    /// senders parked on a dead writer wake on the bump and rely on
    /// the replay instead of re-writing.
    link_generation: Mutex<u64>,
    link_cv: Condvar,
    /// The rank's Lamport clock, shared with the driver so heartbeat
    /// and flight-recorder stamps interleave correctly with protocol
    /// events (DESIGN.md §12).
    pub(crate) lamport: Arc<AtomicU64>,
    /// Where `LinkDown`/`LinkUp` are recorded (the driver's ring).
    recorder: Mutex<Option<Arc<FlightRecorder>>>,
}

impl RemoteHub {
    #[cfg(test)]
    fn new(writer: RankStream, postmortem: Option<Arc<ChildPostmortem>>) -> Arc<RemoteHub> {
        RemoteHub::with_link(
            writer,
            postmortem,
            None,
            0,
            0,
            Duration::ZERO,
            Duration::ZERO,
        )
    }

    fn with_link(
        writer: RankStream,
        postmortem: Option<Arc<ChildPostmortem>>,
        endpoint: Option<String>,
        rank: usize,
        fingerprint: u64,
        heartbeat: Duration,
        link_grace: Duration,
    ) -> Arc<RemoteHub> {
        Arc::new(RemoteHub {
            writer: Mutex::new(writer),
            inbound: Mutex::new(VecDeque::new()),
            exchange_total: AtomicU64::new(0),
            barrier: Mutex::new(BarrierProgress::default()),
            barrier_cv: Condvar::new(),
            staged: Mutex::new(None),
            postmortem,
            endpoint,
            rank,
            fingerprint,
            heartbeat,
            link_grace,
            egress: Mutex::new(EgressRing::default()),
            recvd: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            link_generation: Mutex::new(0),
            link_cv: Condvar::new(),
            lamport: Arc::new(AtomicU64::new(0)),
            recorder: Mutex::new(None),
        })
    }

    fn set_recorder(&self, recorder: Option<Arc<FlightRecorder>>) {
        *lock(&self.recorder) = recorder;
    }

    /// Records a link event at a fresh Lamport stamp, if recording.
    fn flight(&self, event: FlightEvent) {
        if let Some(rec) = lock(&self.recorder).as_ref() {
            let stamp = self.lamport.fetch_add(1, Ordering::AcqRel) + 1;
            rec.record(stamp, event);
        }
    }

    /// Sends one *session* frame: pushed to the egress ring first (so
    /// a replay can resend it), then written. A write error does not
    /// fail the send outright — the frame is already in the ring, so
    /// the sender parks until the reader thread heals the link (the
    /// replay delivers the frame; re-writing here would duplicate it)
    /// and only errors when healing gives up.
    fn send(&self, msg: &CtlMsg) -> io::Result<()> {
        let bytes = msg.encode();
        let mut w = lock(&self.writer);
        lock(&self.egress).push(bytes.clone());
        let seen = *lock(&self.link_generation);
        match w.write_all(&bytes) {
            Ok(()) => Ok(()),
            Err(err) => {
                drop(w);
                self.await_heal(seen, err)
            }
        }
    }

    /// Writes one *link-scoped* frame (heartbeat replies): never
    /// buffered, never replayed, failures ignored — the read side
    /// notices a dead link soon enough.
    fn send_bypass(&self, msg: &CtlMsg) {
        let _ = write_ctl(&mut *lock(&self.writer), msg);
    }

    /// Parks a sender whose write failed until the reader thread heals
    /// the link (generation bump) or the run is poisoned. Bounded by
    /// twice the grace window as a backstop against a reader that can
    /// make no progress at all.
    fn await_heal(&self, seen: u64, err: io::Error) -> io::Result<()> {
        if self.endpoint.is_none() || self.link_grace.is_zero() {
            return Err(err);
        }
        let deadline = Instant::now() + self.link_grace * 2;
        let mut generation = lock(&self.link_generation);
        loop {
            if *generation > seen {
                return Ok(());
            }
            if self.is_poisoned() || Instant::now() >= deadline {
                return Err(err);
            }
            generation = self
                .link_cv
                .wait_timeout(generation, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Routes one data-plane frame toward `dst` through the parent. A
    /// dead stream (`EPIPE`, a closed parent) poisons the run locally;
    /// the frame is reported "accepted" because the run is about to
    /// unwind through the poison path anyway — never a panic.
    pub(crate) fn send_data(&self, dst: usize, bytes: &[u8]) {
        if self
            .send(&CtlMsg::Data {
                dst,
                frame: bytes.to_vec(),
            })
            .is_err()
        {
            self.poison_local();
        }
    }

    /// Pops the next parent-routed frame, if any.
    pub(crate) fn recv_data(&self) -> Option<Vec<u8>> {
        lock(&self.inbound).pop_front()
    }

    fn poison_local(&self) {
        lock(&self.barrier).poisoned = true;
        self.barrier_cv.notify_all();
    }

    /// Declares the run dead locally *and* tells the parent (which
    /// broadcasts to the peers).
    pub(crate) fn poison(&self) {
        self.poison_local();
        let _ = self.send(&CtlMsg::Poison);
    }

    /// Whether anyone — a peer, the parent, or a local stream failure
    /// — declared the run dead.
    pub(crate) fn is_poisoned(&self) -> bool {
        lock(&self.barrier).poisoned
    }

    /// Reports one locally-completed exchange to the parent.
    pub(crate) fn declare_exchange_done(&self) {
        if self.send(&CtlMsg::ExchangeDone).is_err() {
            self.poison_local();
        }
    }

    /// The parent's latest machine-wide exchange count.
    pub(crate) fn exchange_total(&self) -> u64 {
        self.exchange_total.load(Ordering::Acquire)
    }

    /// Stashes staged checkpoint-frame bytes for the next
    /// `BarrierEnter` (called by [`RelayStore::stage`]).
    fn stage(&self, bytes: Vec<u8>) {
        *lock(&self.staged) = Some(bytes);
    }

    /// The remote superstep exit barrier: announce arrival (shipping
    /// any staged frame) and wait for the parent's release.
    ///
    /// # Errors
    ///
    /// [`EvalError::PeerFailure`] when the run is poisoned (before or
    /// during the wait) or the stream dies;
    /// [`EvalError::BarrierTimeout`] when `timeout` elapses first —
    /// which also poisons the run, so peers unwind too.
    pub(crate) fn barrier_enter(
        &self,
        superstep: u64,
        timeout: Option<Duration>,
    ) -> Result<(), EvalError> {
        let staged = lock(&self.staged).take();
        let target = {
            let b = lock(&self.barrier);
            if b.poisoned {
                return Err(EvalError::PeerFailure);
            }
            b.releases + 1
        };
        // Flush *before* announcing arrival: the caller has already
        // recorded this round's `BarrierEnter` in the ring, and a
        // `KillSpec` SIGKILL can land any time after the parent sees
        // the announcement — flushing first makes the bundle durable
        // (events up to and including the fatal barrier entry) before
        // the parent can possibly react.
        if let Some(pm) = &self.postmortem {
            pm.flush("", None, None);
        }
        // Count *before* sending: the parent counts the superstep
        // completed the instant it reads the `BarrierEnter`, and the
        // reader thread may present a `Rejoin` claim in the window
        // between our send and our bookkeeping — counting first keeps
        // this side's claim at least as new as the parent's, so a
        // genuine rejoin is never rejected as stale.
        self.completed.fetch_max(superstep + 1, Ordering::AcqRel);
        if self
            .send(&CtlMsg::BarrierEnter { superstep, staged })
            .is_err()
        {
            self.poison_local();
            return Err(EvalError::PeerFailure);
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut b = lock(&self.barrier);
        loop {
            if b.poisoned {
                return Err(EvalError::PeerFailure);
            }
            if b.releases >= target {
                break;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        b.poisoned = true;
                        self.barrier_cv.notify_all();
                        drop(b);
                        let _ = self.send(&CtlMsg::Poison);
                        // The caller's `timed_barrier` retags the
                        // superstep; `waiting` is 1 because a rank
                        // process only knows about itself.
                        return Err(EvalError::BarrierTimeout {
                            superstep,
                            waiting: 1,
                        });
                    }
                    b = self
                        .barrier_cv
                        .wait_timeout(b, d - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                None => {
                    b = self
                        .barrier_cv
                        .wait(b)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
        drop(b);
        // A completed superstep is a durability point: flush the ring
        // so a SIGKILL anywhere in the *next* superstep still leaves
        // an analyzable bundle on disk.
        if let Some(pm) = &self.postmortem {
            pm.flush("", None, None);
        }
        Ok(())
    }

    /// Routes one parent→child message into the hub's state (the
    /// reader thread's dispatch).
    fn absorb(&self, msg: CtlMsg) {
        match msg {
            CtlMsg::Deliver { frame } => lock(&self.inbound).push_back(frame),
            CtlMsg::ExchangeTotal { total } => {
                self.exchange_total.fetch_max(total, Ordering::AcqRel);
            }
            CtlMsg::BarrierRelease { .. } => {
                lock(&self.barrier).releases += 1;
                self.barrier_cv.notify_all();
            }
            CtlMsg::Poison => self.poison_local(),
            // Child→parent shapes on a parent→child stream: a protocol
            // bug upstream; ignoring them is safe (the run's health is
            // carried by the messages above).
            _ => {}
        }
    }

    /// Tries to heal a dead link: reconnect to the parent's endpoint,
    /// re-handshake with `Rejoin`, replay our egress suffix from the
    /// parent's resume token, swap the writer, and wake parked
    /// senders. Returns the new reader half, or `None` when healing is
    /// off, the grace window expired, or the parent rejected us.
    ///
    /// The connect deadline resets on every *accepted* connection: a
    /// flap storm (the parent deliberately severing accepted rejoins)
    /// is bounded by the parent's rejoin budget, not by this window.
    fn heal_link(&self) -> Option<RankStream> {
        let endpoint = self.endpoint.as_deref()?;
        if self.link_grace.is_zero() {
            return None;
        }
        self.flight(FlightEvent::LinkDown {
            rank: self.rank as u64,
            superstep: self.completed.load(Ordering::Acquire),
        });
        let mut deadline = Instant::now() + self.link_grace;
        loop {
            if self.is_poisoned() || Instant::now() >= deadline {
                return None;
            }
            let Ok(mut stream) = RankStream::connect(endpoint) else {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            deadline = Instant::now() + self.link_grace;
            match self.rejoin_over(&mut stream) {
                RejoinResult::Healed => {
                    self.flight(FlightEvent::LinkUp {
                        rank: self.rank as u64,
                        superstep: self.completed.load(Ordering::Acquire),
                    });
                    return Some(stream);
                }
                RejoinResult::Rejected => return None,
                RejoinResult::Retry => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// One rejoin handshake over a fresh connection: offer our resume
    /// token, learn the parent's, replay our unseen suffix, swap the
    /// writer and bump the link generation.
    fn rejoin_over(&self, stream: &mut RankStream) -> RejoinResult {
        if stream.set_read_timeout(Some(self.link_grace)).is_err() {
            return RejoinResult::Retry;
        }
        let rejoin = CtlMsg::Rejoin {
            rank: self.rank,
            fingerprint: self.fingerprint,
            completed_superstep: self.completed.load(Ordering::Acquire),
            resume_token: self.recvd.load(Ordering::Acquire),
        };
        if write_ctl(stream, &rejoin).is_err() {
            return RejoinResult::Retry;
        }
        let token = match read_ctl(stream) {
            Ok(CtlMsg::RejoinOk { resume_token }) => resume_token,
            Ok(CtlMsg::Reject { .. }) => return RejoinResult::Rejected,
            // A severed accept (flap) or a torn reply: reconnect.
            Ok(_) | Err(_) => return RejoinResult::Retry,
        };
        if stream.set_read_timeout(None).is_err() {
            return RejoinResult::Retry;
        }
        let Ok(mut writer) = stream.try_clone() else {
            return RejoinResult::Retry;
        };
        {
            let mut w = lock(&self.writer);
            let egress = lock(&self.egress);
            // A token outside the ring cannot be honored; the link is
            // beyond healing (the parent will escalate to rank death).
            let frames = match egress.replay_from(token) {
                Some(frames) => frames,
                None => return RejoinResult::Rejected,
            };
            for frame in frames {
                if writer.write_all(frame).is_err() {
                    return RejoinResult::Retry;
                }
            }
            drop(egress);
            *w = writer;
        }
        let mut generation = lock(&self.link_generation);
        *generation += 1;
        drop(generation);
        self.link_cv.notify_all();
        RejoinResult::Healed
    }
}

enum RejoinResult {
    Healed,
    Rejected,
    Retry,
}

/// Reads one control frame with a silence deadline: short read
/// timeouts accumulate bytes, and a gap of more than `grace` since the
/// last traffic is reported as a timeout error (the heal trigger for
/// links that die silently, like a frozen parent writer). A frame
/// abandoned half-read is safe: the resume token only counts complete
/// frames, so the replay resends it whole.
fn read_ctl_deadline(
    stream: &mut RankStream,
    grace: Duration,
    last_traffic: &mut Instant,
) -> io::Result<CtlMsg> {
    let mut frame = vec![0u8; 4];
    let mut have = 0usize;
    loop {
        match stream.read(&mut frame[have..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "parent closed the control stream",
                ))
            }
            Ok(n) => {
                have += n;
                *last_traffic = Instant::now();
                if have == 4 && frame.len() == 4 {
                    let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
                    if len == 0 || len > MAX_CTL_FRAME {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("control frame of {len} byte(s) is outside the legal range"),
                        ));
                    }
                    frame.resize(4 + len, 0);
                }
                if have == frame.len() && frame.len() > 4 {
                    return CtlMsg::decode(&frame)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
            }
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                if last_traffic.elapsed() > grace {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("no link traffic within the {grace:?} grace window"),
                    ));
                }
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
}

/// The reader half of a rank process: routes every parent message into
/// the hub until the stream dies, then tries to *heal* the link
/// (reconnect + rejoin + replay) before giving up and poisoning the
/// run (a vanished parent must not leave the rank waiting forever).
/// Heartbeat pings are answered here, so the rank stays observably
/// alive even while its driver thread is parked at a barrier.
fn run_child_reader(hub: &RemoteHub, mut stream: RankStream) {
    // Silence detection needs both knobs: no heartbeats means silence
    // is normal, no grace means supervision is off.
    let silence = (!hub.heartbeat.is_zero() && !hub.link_grace.is_zero()).then_some(hub.link_grace);
    if silence.is_some()
        && stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
    {
        hub.poison_local();
        return;
    }
    let mut last_traffic = Instant::now();
    loop {
        let next = match silence {
            Some(grace) => read_ctl_deadline(&mut stream, grace, &mut last_traffic),
            None => read_ctl(&mut stream),
        };
        match next {
            Ok(CtlMsg::Ping { lamport }) => {
                hub.lamport.fetch_max(lamport, Ordering::AcqRel);
                let stamp = hub.lamport.fetch_add(1, Ordering::AcqRel) + 1;
                hub.send_bypass(&CtlMsg::Pong { lamport: stamp });
            }
            Ok(msg) => {
                hub.recvd.fetch_add(1, Ordering::AcqRel);
                hub.absorb(msg);
            }
            Err(_) => match hub.heal_link() {
                Some(healed) => {
                    if silence.is_some()
                        && healed
                            .set_read_timeout(Some(Duration::from_millis(50)))
                            .is_err()
                    {
                        hub.poison_local();
                        return;
                    }
                    stream = healed;
                    last_traffic = Instant::now();
                }
                None => {
                    hub.poison_local();
                    return;
                }
            },
        }
    }
}

/// The child-side [`CheckpointStore`]: staging hands the encoded frame
/// to the hub (shipped with the next `BarrierEnter`); committing,
/// loading and listing are the *parent's* job, so they are inert here.
#[derive(Debug)]
struct RelayStore {
    hub: Arc<RemoteHub>,
}

impl CheckpointStore for RelayStore {
    fn stage(&self, frame: &RankFrame) -> Result<u64, CheckpointError> {
        let bytes = frame.encode();
        let len = bytes.len() as u64;
        self.hub.stage(bytes);
        Ok(len)
    }

    fn commit(&self, _generation: u64, _p: usize) -> Result<u64, CheckpointError> {
        // Unreachable in practice: the remote sync backend never takes
        // the local commit path. Harmless if reached.
        Ok(0)
    }

    fn generations(&self) -> Vec<u64> {
        Vec::new()
    }

    fn load(
        &self,
        generation: u64,
        _p: usize,
        _fingerprint: u64,
    ) -> Result<Vec<RankFrame>, CheckpointError> {
        Err(CheckpointError::NotCommitted { generation })
    }

    fn clear(&self) {}
}

// ---------------------------------------------------------------------------
// Child side: the rank process entry point
// ---------------------------------------------------------------------------

fn env_string(name: &str) -> Result<String, String> {
    std::env::var(name).map_err(|_| format!("{name} is not set — am I running under the launcher?"))
}

fn env_u64(name: &str) -> Result<u64, String> {
    env_string(name)?
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("{name} does not parse: {e}"))
}

/// The `bsml-rank` binary's whole life: connect, handshake, run one
/// rank, report. Returns the process exit code (0 = rank finished, 1 =
/// rank failed and reported `Fatal`, 2 = could not even start).
/// Factored out of the binary so the protocol is testable in-crate.
#[must_use]
pub fn rank_main() -> i32 {
    match rank_process() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bsml-rank: {msg}");
            2
        }
    }
}

fn rank_process() -> Result<i32, String> {
    let socket = env_string(RANK_SOCKET_ENV)?;
    let rank = env_u64(RANK_ID_ENV)? as usize;
    let p = env_u64(RANK_P_ENV)? as usize;
    let fingerprint = env_u64(RANK_FINGERPRINT_ENV)?;
    let mut stream =
        RankStream::connect(&socket).map_err(|e| format!("connect to {socket}: {e}"))?;
    // The handshake deadline guards the child too: a parent that
    // accepts but never welcomes must not hang the process.
    stream
        .set_read_timeout(Some(handshake_timeout_from_env()))
        .map_err(|e| format!("socket timeout: {e}"))?;
    write_ctl(&mut stream, &CtlMsg::hello(fingerprint, rank, p))
        .map_err(|e| format!("send hello: {e}"))?;
    let CtlMsg::Welcome {
        program,
        fuel,
        barrier_timeout_ms,
        mailbox_capacity,
        retransmit_after,
        retransmit_budget,
        poll_sleep_us,
        checkpoint_interval,
        flight_capacity,
        heartbeat_ms,
        link_grace_ms,
        attempt,
        faults,
        resume_frame,
    } = read_ctl(&mut stream).map_err(|e| format!("read welcome: {e}"))?
    else {
        return Err("parent rejected the handshake or sent an unexpected message".to_string());
    };
    stream
        .set_read_timeout(None)
        .map_err(|e| format!("socket timeout: {e}"))?;

    let parsed = bsml_syntax::parse(&program).map_err(|e| format!("program re-parse: {e}"))?;
    let reparsed = program_fingerprint(&parsed, p);
    if reparsed != fingerprint {
        return Err(format!(
            "program fingerprint mismatch: spawned for {fingerprint:#018x}, \
             the welcomed program hashes to {reparsed:#018x}"
        ));
    }

    // Flight recording: the welcomed capacity, or — like the
    // supervisor — implied at the default capacity by a postmortem
    // directory in the environment.
    let postmortem_dir = bsml_obs::env::path_knob(POSTMORTEM_DIR_ENV);
    let capacity = if flight_capacity > 0 {
        flight_capacity as usize
    } else if postmortem_dir.is_some() {
        DEFAULT_FLIGHT_CAPACITY
    } else {
        0
    };
    let recorder = (capacity > 0).then(|| Arc::new(FlightRecorder::new(capacity)));
    let postmortem = match (&postmortem_dir, &recorder) {
        (Some(dir), Some(rec)) => ChildPostmortem::new(
            dir,
            rank,
            p,
            attempt,
            fingerprint,
            Arc::clone(rec),
            capacity,
        )
        .map(Arc::new),
        _ => None,
    };
    // An (empty) bundle exists before superstep 0 runs: even a rank
    // SIGKILLed immediately leaves an analyzable trace.
    if let Some(pm) = &postmortem {
        pm.flush("", None, None);
    }

    let hub = RemoteHub::with_link(
        stream
            .try_clone()
            .map_err(|e| format!("socket clone: {e}"))?,
        postmortem.clone(),
        Some(socket.clone()),
        rank,
        fingerprint,
        Duration::from_millis(heartbeat_ms),
        Duration::from_millis(link_grace_ms),
    );
    hub.set_recorder(recorder.clone());
    let reader_hub = Arc::clone(&hub);
    std::thread::spawn(move || run_child_reader(&reader_hub, stream));

    let transport: Arc<dyn Transport> = Arc::new(SocketTransport::new(Arc::clone(&hub)));
    let tuning = NetTuning {
        mailbox_capacity: mailbox_capacity as usize,
        retransmit_after: u32::try_from(retransmit_after).unwrap_or(u32::MAX),
        retransmit_budget: u32::try_from(retransmit_budget).unwrap_or(u32::MAX),
        poll_sleep: Duration::from_micros(poll_sleep_us),
    };
    let barrier_timeout =
        (barrier_timeout_ms > 0).then(|| Duration::from_millis(barrier_timeout_ms));
    let plan = (!faults.is_empty()).then(|| Arc::new(FaultPlan::from_faults(faults)));
    let checkpoint = (checkpoint_interval > 0).then(|| {
        (
            checkpoint_interval,
            Arc::new(RelayStore {
                hub: Arc::clone(&hub),
            }) as Arc<dyn CheckpointStore>,
            fingerprint,
        )
    });
    let replay = match resume_frame {
        Some(bytes) => Some(RankFrame::decode(&bytes).map_err(|e| format!("resume frame: {e}"))?),
        None => None,
    };

    let run_hub = Arc::clone(&hub);
    let run_recorder = recorder.clone();
    // The unwind guard mirrors `run_rank`: a panic (injected or real)
    // must still poison the peers and report `Fatal`, not kill the
    // process silently.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_remote_rank(
            rank,
            p,
            run_hub,
            transport,
            &parsed,
            fuel,
            tuning,
            barrier_timeout,
            plan,
            attempt,
            checkpoint,
            run_recorder,
            replay,
        )
    }));
    let (result, ledger) = match caught {
        Ok(pair) => pair,
        Err(_) => {
            hub.poison();
            (Err(EvalError::PeerFailure), CtlLedger::default())
        }
    };

    // Final black box + report. Flush before reporting so the on-disk
    // bundle exists even if the parent is already gone.
    let (flight_dropped, flight) = match (&postmortem, &recorder) {
        (Some(pm), _) => {
            match &result {
                Ok(_) => pm.flush("", None, None),
                Err(err) => {
                    let (error_rank, error_superstep) = error_coordinate(err);
                    pm.flush(&err.to_string(), error_rank, error_superstep);
                }
            }
            pm.snapshot()
        }
        (None, Some(rec)) => (rec.dropped(), rec.drain()),
        (None, None) => (0, Vec::new()),
    };
    match result {
        Ok((value, stats, work)) => {
            let _ = hub.send(&CtlMsg::Done {
                value,
                stats,
                work,
                ledger,
                flight_dropped,
                flight,
            });
            Ok(0)
        }
        Err(error) => {
            let _ = hub.send(&CtlMsg::Fatal {
                error,
                ledger,
                flight_dropped,
                flight,
            });
            Ok(1)
        }
    }
}

// ---------------------------------------------------------------------------
// Parent side: launcher, router, crash detection
// ---------------------------------------------------------------------------

/// Distinguishes concurrently-created socket directories of one parent
/// process (`std::process::id` distinguishes parents).
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

fn launch_failure(rank: usize, detail: String) -> EvalError {
    EvalError::TransportFailure {
        rank,
        superstep: 0,
        detail,
    }
}

/// Validates a claimed `Hello` against what the parent expects from
/// the fleet it spawned (`taken[r]` marks ranks that already
/// connected). Returns the authenticated rank id.
///
/// # Errors
///
/// A human-readable refusal (sent back as [`CtlMsg::Reject`]): wrong
/// magic, version skew, fingerprint mismatch, wrong `p`, out-of-range
/// or duplicate rank — and a non-`Hello` first message.
pub fn validate_hello(
    msg: &CtlMsg,
    fingerprint: u64,
    p: usize,
    taken: &[bool],
) -> Result<usize, String> {
    let CtlMsg::Hello {
        magic,
        version,
        fingerprint: theirs,
        rank,
        p: their_p,
    } = msg
    else {
        return Err("first message is not a Hello".to_string());
    };
    if *magic != CTL_MAGIC {
        return Err(format!(
            "not a BSML rank: magic {magic:#018x}, expected {CTL_MAGIC:#018x}"
        ));
    }
    if *version != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version skew: rank speaks v{version}, parent speaks v{PROTOCOL_VERSION}"
        ));
    }
    if *theirs != fingerprint {
        return Err(format!(
            "program fingerprint mismatch: rank was spawned for {theirs:#018x}, \
             parent is running {fingerprint:#018x}"
        ));
    }
    if *their_p != p {
        return Err(format!(
            "machine width mismatch: rank believes p = {their_p}, parent has p = {p}"
        ));
    }
    if *rank >= p {
        return Err(format!("rank {rank} out of range for p = {p}"));
    }
    if taken[*rank] {
        return Err(format!("duplicate connection for rank {rank}"));
    }
    Ok(*rank)
}

/// Validates a claimed `Rejoin` against the fleet the parent is
/// supervising: `completed[r]` is the parent's count of supersteps
/// rank `r` has entered the exit barrier of. The rejoining side's
/// claim may be *newer* (its `BarrierEnter` can be lost in flight —
/// the replay redelivers it) but never older: a stale claim means the
/// connecting process is not the rank the parent has been talking to.
/// Returns the authenticated rank id.
///
/// # Errors
///
/// A human-readable refusal (sent back as [`CtlMsg::Reject`]): wrong
/// fingerprint, out-of-range rank, a stale superstep claim — and a
/// non-`Rejoin` first message.
pub fn validate_rejoin(
    msg: &CtlMsg,
    fingerprint: u64,
    p: usize,
    completed: &[u64],
) -> Result<usize, String> {
    let CtlMsg::Rejoin {
        rank,
        fingerprint: theirs,
        completed_superstep,
        ..
    } = msg
    else {
        return Err("first message on a rejoin connection is not a Rejoin".to_string());
    };
    if *theirs != fingerprint {
        return Err(format!(
            "program fingerprint mismatch: rejoin claims {theirs:#018x}, \
             parent is running {fingerprint:#018x}"
        ));
    }
    if *rank >= p {
        return Err(format!("rank {rank} out of range for p = {p}"));
    }
    if *completed_superstep < completed[*rank] {
        return Err(format!(
            "stale rejoin: rank {rank} claims {completed_superstep} completed superstep(s), \
             the parent has seen {}",
            completed[*rank]
        ));
    }
    Ok(*rank)
}

/// Locates the rank-runner binary: explicit config, then
/// [`RANK_BIN_ENV`], then a `bsml-rank` sibling of the current
/// executable (covering both `target/<profile>/` and
/// `target/<profile>/deps/` callers).
fn discover_rank_binary(cfg: &ProcessConfig) -> Result<PathBuf, EvalError> {
    if let Some(bin) = &cfg.rank_binary {
        return Ok(bin.clone());
    }
    if let Some(bin) = std::env::var_os(RANK_BIN_ENV) {
        return Ok(PathBuf::from(bin));
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut candidates = Vec::new();
        if let Some(dir) = exe.parent() {
            candidates.push(dir.join("bsml-rank"));
            if let Some(up) = dir.parent() {
                candidates.push(up.join("bsml-rank"));
            }
        }
        for candidate in candidates {
            if candidate.is_file() {
                return Ok(candidate);
            }
        }
    }
    Err(launch_failure(
        0,
        format!(
            "cannot locate the bsml-rank binary: set ProcessConfig::rank_binary or {RANK_BIN_ENV}"
        ),
    ))
}

/// One spawned-and-welcomed fleet, ready to route.
struct Launch {
    dir: PathBuf,
    created_dir: bool,
    socket: PathBuf,
    /// The coordinator's listener, kept open for the whole attempt so
    /// severed ranks can reconnect and rejoin.
    listener: Box<dyn Listener>,
    /// Reader halves, by rank.
    streams: Vec<RankStream>,
    /// Writer halves, by rank.
    writers: Vec<RankStream>,
    children: Vec<Mutex<Child>>,
    heartbeat: Duration,
    link_grace: Duration,
}

fn abort_children(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

fn cleanup_socket(dir: &Path, socket: &Path, created_dir: bool) {
    let _ = std::fs::remove_file(socket);
    if created_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Binds, spawns `p` rank processes, handshakes every connection under
/// the deadline, and welcomes the fleet. Any failure kills and reaps
/// everything spawned so far and comes back as
/// [`EvalError::TransportFailure`] — a never-connecting rank included.
fn launch_ranks(
    machine: &DistMachine,
    cfg: &ProcessConfig,
    e: &Expr,
    attempt: u32,
    fingerprint: u64,
    resume: Option<&ResumePoint>,
) -> Result<Launch, EvalError> {
    let p = machine.p;
    let handshake = cfg
        .handshake_timeout
        .unwrap_or_else(handshake_timeout_from_env);
    let (dir, created_dir) = match &cfg.socket_dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!(
                "bsml-ranks-{}-{}",
                std::process::id(),
                SOCKET_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
            true,
        ),
    };
    std::fs::create_dir_all(&dir)
        .map_err(|err| launch_failure(0, format!("socket dir {}: {err}", dir.display())))?;
    let socket = dir.join("coord.sock");
    let bind = cfg
        .bind
        .clone()
        .unwrap_or_else(|| Bind::Unix(socket.clone()));
    let fail = |rank: usize, detail: String| {
        cleanup_socket(&dir, &socket, created_dir);
        launch_failure(rank, detail)
    };
    // `Bind::listen` probes apparently-stale Unix sockets before
    // reclaiming them: a path held by a *live* listener comes back as
    // a typed `AddrInUse` refusal here, never a hang or a hijack.
    let listener = match bind.listen() {
        Ok(l) => l,
        Err(err) => return Err(fail(0, format!("bind {bind:?}: {err}"))),
    };
    let endpoint = listener.endpoint();
    if let Err(err) = listener.set_nonblocking(true) {
        return Err(fail(0, format!("listener mode: {err}")));
    }
    let binary = discover_rank_binary(cfg)?;
    let heartbeat = cfg.heartbeat.unwrap_or_else(heartbeat_from_env);
    let link_grace = cfg.link_grace.unwrap_or_else(link_grace_from_env);

    let mut children: Vec<Child> = Vec::with_capacity(p);
    for rank in 0..p {
        let mut cmd = Command::new(&binary);
        cmd.env(RANK_SOCKET_ENV, &endpoint)
            .env(RANK_ID_ENV, rank.to_string())
            .env(RANK_P_ENV, p.to_string())
            .env(RANK_FINGERPRINT_ENV, fingerprint.to_string())
            .stdin(Stdio::null());
        if let Some(pm) = &cfg.postmortem_dir {
            cmd.env(POSTMORTEM_DIR_ENV, pm);
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(err) => {
                abort_children(&mut children);
                return Err(fail(
                    rank,
                    format!("spawn rank {rank} ({}): {err}", binary.display()),
                ));
            }
        }
    }

    // Accept + handshake under one deadline for the whole fleet.
    let deadline = Instant::now() + handshake;
    let mut slots: Vec<Option<(RankStream, RankStream)>> = (0..p).map(|_| None).collect();
    let mut connected = 0;
    while connected < p {
        match listener.accept() {
            Ok(mut stream) => {
                let taken: Vec<bool> = slots.iter().map(Option::is_some).collect();
                let step = (|| -> Result<usize, String> {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| format!("stream mode: {e}"))?;
                    let remaining = deadline
                        .saturating_duration_since(Instant::now())
                        .max(Duration::from_millis(1));
                    stream
                        .set_read_timeout(Some(remaining))
                        .map_err(|e| format!("stream timeout: {e}"))?;
                    let hello = read_ctl(&mut stream).map_err(|e| format!("read hello: {e}"))?;
                    validate_hello(&hello, fingerprint, p, &taken)
                })();
                match step {
                    Ok(rank) => {
                        if let Err(err) = stream.set_read_timeout(None) {
                            abort_children(&mut children);
                            return Err(fail(rank, format!("stream timeout: {err}")));
                        }
                        let writer = match stream.try_clone() {
                            Ok(w) => w,
                            Err(err) => {
                                abort_children(&mut children);
                                return Err(fail(rank, format!("stream clone: {err}")));
                            }
                        };
                        slots[rank] = Some((stream, writer));
                        connected += 1;
                    }
                    Err(reason) => {
                        let _ = write_ctl(
                            &mut stream,
                            &CtlMsg::Reject {
                                reason: reason.clone(),
                            },
                        );
                        abort_children(&mut children);
                        return Err(fail(0, format!("handshake rejected: {reason}")));
                    }
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    let missing = slots.iter().position(Option::is_none).unwrap_or(0);
                    abort_children(&mut children);
                    return Err(fail(
                        missing,
                        format!(
                            "handshake timeout: {connected}/{p} rank(s) connected within \
                             {handshake:?} (rank {missing} never arrived)"
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(err) => {
                abort_children(&mut children);
                return Err(fail(0, format!("accept: {err}")));
            }
        }
    }

    // Welcome the fleet: program + full execution configuration.
    let program = e.to_string();
    for (rank, slot) in slots.iter_mut().enumerate() {
        let (_, writer) = slot.as_mut().expect("all connected");
        let welcome = CtlMsg::Welcome {
            program: program.clone(),
            fuel: machine.fuel,
            barrier_timeout_ms: machine
                .barrier_timeout
                .map_or(0, |t| u64::try_from(t.as_millis()).unwrap_or(u64::MAX)),
            mailbox_capacity: machine.tuning.mailbox_capacity as u64,
            retransmit_after: u64::from(machine.tuning.retransmit_after),
            retransmit_budget: u64::from(machine.tuning.retransmit_budget),
            poll_sleep_us: u64::try_from(machine.tuning.poll_sleep.as_micros()).unwrap_or(u64::MAX),
            checkpoint_interval: machine
                .checkpoints
                .as_ref()
                .map_or(0, |(policy, _)| policy.interval()),
            flight_capacity: machine.flight.unwrap_or(0) as u64,
            heartbeat_ms: u64::try_from(heartbeat.as_millis()).unwrap_or(u64::MAX),
            link_grace_ms: u64::try_from(link_grace.as_millis()).unwrap_or(u64::MAX),
            attempt,
            faults: machine
                .faults
                .as_ref()
                .map_or_else(Vec::new, |plan| plan.faults().to_vec()),
            resume_frame: resume.map(|rp| rp.frames[rank].encode()),
        };
        if let Err(err) = write_ctl(writer, &welcome) {
            abort_children(&mut children);
            return Err(fail(rank, format!("welcome rank {rank}: {err}")));
        }
    }

    let mut streams = Vec::with_capacity(p);
    let mut writers = Vec::with_capacity(p);
    for slot in slots {
        let (reader, writer) = slot.expect("all connected");
        streams.push(reader);
        writers.push(writer);
    }
    Ok(Launch {
        dir,
        created_dir,
        socket,
        listener,
        streams,
        writers,
        children: children.into_iter().map(Mutex::new).collect(),
        heartbeat,
        link_grace,
    })
}

/// What one rank shipped home in its `Done` or `Fatal`.
struct RankReport {
    result: Result<(PortableValue, CtlStats, u64), EvalError>,
    ledger: CtlLedger,
    flight_dropped: u64,
    flight: Vec<TimedFlightEvent>,
}

/// The barrier round currently filling (BSP lockstep guarantees all
/// `p` arrivals of round `t` precede any arrival of round `t + 1`).
struct Round {
    arrived: Vec<bool>,
    count: usize,
    /// The generation the arrivals of this round staged, if any.
    staged_generation: Option<u64>,
}

/// One rank↔coordinator link's supervision state (DESIGN.md §16).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LinkState {
    /// Traffic within the heartbeat window.
    Healthy,
    /// Silent past two heartbeat periods, not yet past grace.
    Suspect,
    /// The socket errored; waiting for a reconnect within grace.
    Disconnected,
    /// A rejoin handshake is in progress.
    Rejoining,
}

/// Everything the parent supervises per rank link: the writer and its
/// replay ring, the state machine, and the handoff slot the rejoin
/// acceptor uses to give the reader thread its healed stream.
struct Link {
    writer: Mutex<RankStream>,
    /// Session frames written toward this rank, kept for replay.
    egress: Mutex<EgressRing>,
    /// Session frames received from this rank — the resume token the
    /// parent offers in its `RejoinOk`.
    recvd: AtomicU64,
    state: Mutex<LinkState>,
    /// Bumped per heal; readers parked on a dead stream wake on it.
    generation: Mutex<u64>,
    generation_cv: Condvar,
    /// The healed reader half, parked here by the acceptor until the
    /// rank's reader thread picks it up.
    pending_reader: Mutex<Option<RankStream>>,
    last_seen: Mutex<Instant>,
    /// A `Freeze` fault is in force: writes are withheld (buffered in
    /// the ring) until the rank rejoins.
    frozen: AtomicBool,
    /// Accepted rejoins the acceptor still severs before letting one
    /// through (the `Flap(n)` fault's storm counter).
    flap_remaining: AtomicU32,
    /// Valid rejoin attempts consumed against the budget.
    rejoin_attempts: AtomicU32,
}

impl Link {
    fn new(writer: RankStream) -> Link {
        Link {
            writer: Mutex::new(writer),
            egress: Mutex::new(EgressRing::default()),
            recvd: AtomicU64::new(0),
            state: Mutex::new(LinkState::Healthy),
            generation: Mutex::new(0),
            generation_cv: Condvar::new(),
            pending_reader: Mutex::new(None),
            last_seen: Mutex::new(Instant::now()),
            frozen: AtomicBool::new(false),
            flap_remaining: AtomicU32::new(0),
            rejoin_attempts: AtomicU32::new(0),
        }
    }
}

/// Link-supervision counters, flushed into the machine's telemetry as
/// `net.*` at the end of the attempt.
#[derive(Default)]
struct LinkCounters {
    heartbeats_sent: AtomicU64,
    heartbeats_missed: AtomicU64,
    /// Link-state transitions (any edge of the FSM).
    link_state: AtomicU64,
    /// Completed rejoins: `RejoinOk` sent *and* the replay finished.
    rejoins: AtomicU64,
    /// Frames replayed from parent-side egress rings.
    egress_replayed: AtomicU64,
}

/// Parent-side shared state: reader threads (one per rank) route
/// frames and synchronization through it.
struct ParentState {
    p: usize,
    attempt: u32,
    fingerprint: u64,
    links: Vec<Link>,
    children: Vec<Mutex<Child>>,
    /// Supersteps each rank has completed (its death coordinate).
    completed: Vec<AtomicU64>,
    round: Mutex<Round>,
    exchange_total: AtomicU64,
    reports: Mutex<Vec<Option<RankReport>>>,
    /// Death notes for ranks whose stream died before any report.
    deaths: Mutex<Vec<Option<String>>>,
    store: Option<Arc<dyn CheckpointStore>>,
    ckpt_written: AtomicU64,
    ckpt_bytes: AtomicU64,
    kills: Vec<KillSpec>,
    link_faults: Vec<LinkFault>,
    heartbeat: Duration,
    link_grace: Duration,
    rejoin_budget: u32,
    counters: LinkCounters,
    /// The parent's Lamport clock, stamping heartbeats.
    lamport: AtomicU64,
    /// Raised once every reader is home: stops the acceptor and the
    /// heartbeat monitor.
    shutdown: AtomicBool,
}

impl ParentState {
    /// Moves one link's FSM, counting the transition.
    fn set_state(&self, rank: usize, next: LinkState) {
        let mut state = lock(&self.links[rank].state);
        if *state != next {
            *state = next;
            self.counters.link_state.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn send_to(&self, rank: usize, msg: &CtlMsg) {
        // Ring first, then write, both under the writer lock: the
        // rejoin acceptor swaps the writer under the same lock, so a
        // frame is either written to the stream the resume token
        // describes or replayed from the ring — never duplicated,
        // never lost. A dead child's stream errors here (`EPIPE`);
        // that is fine — the death is detected and reported by its
        // reader thread. A frozen link buffers without writing.
        let link = &self.links[rank];
        let bytes = msg.encode();
        let mut w = lock(&link.writer);
        lock(&link.egress).push(bytes.clone());
        if !link.frozen.load(Ordering::Acquire) {
            let _ = w.write_all(&bytes);
        }
    }

    fn broadcast(&self, msg: &CtlMsg) {
        for rank in 0..self.p {
            self.send_to(rank, msg);
        }
    }

    /// SIGKILLs one rank process (the chaos grid's real crash).
    fn kill(&self, rank: usize) {
        let _ = lock(&self.children[rank]).kill();
    }

    fn killed_at(&self, rank: usize, superstep: u64) -> bool {
        self.kills
            .iter()
            .any(|k| k.rank == rank && k.superstep == superstep && k.attempt == self.attempt)
    }

    fn link_fault_at(&self, rank: usize, superstep: u64) -> Option<LinkFaultKind> {
        self.link_faults
            .iter()
            .find(|f| f.rank == rank && f.superstep == superstep && f.attempt == self.attempt)
            .map(|f| f.kind)
    }

    /// Applies one link fault: severs (or freezes) the real socket
    /// under the rank while its process lives.
    fn sever(&self, rank: usize, kind: LinkFaultKind) {
        let link = &self.links[rank];
        let w = lock(&link.writer);
        match kind {
            // Half-open: our writes die, the child reads EOF and
            // reconnects — the classic one-sided partition.
            LinkFaultKind::Drop => {
                let _ = w.shutdown(Shutdown::Write);
            }
            // Writes are silently withheld until the child notices
            // the heartbeat silence and rejoins.
            LinkFaultKind::Freeze => link.frozen.store(true, Ordering::Release),
            LinkFaultKind::Reset => {
                let _ = w.shutdown(Shutdown::Both);
            }
            // `n` total severs: this one plus `n - 1` accepted-then-
            // severed rejoin attempts.
            LinkFaultKind::Flap(n) => {
                link.flap_remaining
                    .store(n.saturating_sub(1), Ordering::Release);
                let _ = w.shutdown(Shutdown::Both);
            }
        }
        drop(w);
        self.set_state(rank, LinkState::Disconnected);
    }

    /// Blocks (grace-bounded) until the given link heals past
    /// `seen_generation`. Called at the fault-injection site so a
    /// deliberately severed rank rejoins *before* its peers are
    /// released into the next superstep — which is what makes the
    /// chaos grid's replay accounting exact. Returns whether the link
    /// healed.
    fn await_heal(&self, rank: usize, seen_generation: u64) -> bool {
        let link = &self.links[rank];
        let deadline = Instant::now() + self.link_grace * 2;
        let mut generation = lock(&link.generation);
        loop {
            if *generation > seen_generation {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            // Slices, not one long wait: the child can die mid-rejoin
            // (budget exhausted, or a kill racing the fault) and its
            // reader thread needs the poison broadcast to go out —
            // give up early once the child is gone.
            if lock(&self.children[rank])
                .try_wait()
                .is_ok_and(|s| s.is_some())
            {
                return false;
            }
            generation = self.links[rank]
                .generation_cv
                .wait_timeout(generation, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// One rank arrived at the exit barrier of `superstep`. The last
    /// arrival commits any staged generation (the consistent cut:
    /// every rank has arrived, none has been released) and broadcasts
    /// the release — SIGKILLing instead any rank whose kill spec names
    /// the superstep being entered.
    fn handle_barrier(&self, rank: usize, superstep: u64, staged: Option<Vec<u8>>) {
        self.completed[rank].fetch_max(superstep + 1, Ordering::Relaxed);
        let staged_generation = staged.and_then(|bytes| {
            let store = self.store.as_ref()?;
            let frame = RankFrame::decode(&bytes).ok()?;
            let generation = frame.superstep;
            // Staging is best-effort, exactly like in-process.
            store.stage(&frame).ok()?;
            Some(generation)
        });
        let complete = {
            let mut round = lock(&self.round);
            if let Some(generation) = staged_generation {
                round.staged_generation = Some(generation);
            }
            if !round.arrived[rank] {
                round.arrived[rank] = true;
                round.count += 1;
            }
            if round.count == self.p {
                let generation = round.staged_generation.take();
                round.arrived.iter_mut().for_each(|a| *a = false);
                round.count = 0;
                Some(generation)
            } else {
                None
            }
        };
        if let Some(generation) = complete {
            if let (Some(generation), Some(store)) = (generation, &self.store) {
                if let Ok(bytes) = store.commit(generation, self.p) {
                    self.ckpt_written.fetch_add(1, Ordering::Relaxed);
                    self.ckpt_bytes.fetch_add(bytes, Ordering::Relaxed);
                }
            }
            // Faulted links first, un-faulted releases second: a rank
            // released *before* a peer's link is severed could race
            // fresh deliveries into that peer's egress ring while it
            // rejoins, blurring the replay accounting.
            for r in 0..self.p {
                let Some(kind) = self.link_fault_at(r, superstep + 1) else {
                    continue;
                };
                // Sever first, then queue the release: the write
                // lands on the dead (or frozen) socket, so the
                // release is exactly the frame the rejoin replay
                // redelivers.
                let seen = *lock(&self.links[r].generation);
                self.sever(r, kind);
                if self.killed_at(r, superstep + 1) {
                    // A kill racing the fault: the rank dies
                    // mid-rejoin; the reader escalates as usual.
                    self.kill(r);
                    continue;
                }
                self.send_to(r, &CtlMsg::BarrierRelease { superstep });
                // Hold the fleet at the barrier until the severed
                // rank rejoins (everyone is parked anyway): peers
                // then cannot race fresh deliveries into the
                // replay window, keeping the accounting exact.
                self.await_heal(r, seen);
            }
            for r in 0..self.p {
                if self.link_fault_at(r, superstep + 1).is_some() {
                    continue;
                }
                if self.killed_at(r, superstep + 1) {
                    self.kill(r);
                } else {
                    self.send_to(r, &CtlMsg::BarrierRelease { superstep });
                }
            }
        }
    }
}

/// One rank's reader loop: routes its child→parent stream until EOF.
///
/// A stream error is no longer immediately fatal: if the child
/// *process* still lives, the reader parks (grace-bounded) waiting for
/// the rejoin acceptor to hand it a healed stream, and only escalates
/// to the rank-death path — reaped exit status, death note, poison
/// broadcast — when the process is gone or the grace window expires.
fn parent_reader(state: &ParentState, rank: usize, mut stream: RankStream) {
    loop {
        match read_ctl(&mut stream) {
            Ok(msg) => {
                *lock(&state.links[rank].last_seen) = Instant::now();
                // Heartbeat replies are link traffic, not session
                // traffic: they refresh liveness but stay out of the
                // resume-token accounting.
                if let CtlMsg::Pong { lamport } = &msg {
                    state.lamport.fetch_max(*lamport, Ordering::AcqRel);
                    state.lamport.fetch_add(1, Ordering::AcqRel);
                    continue;
                }
                state.links[rank].recvd.fetch_add(1, Ordering::AcqRel);
                match msg {
                    CtlMsg::Data { dst, frame } if dst < state.p => {
                        state.send_to(dst, &CtlMsg::Deliver { frame });
                    }
                    CtlMsg::ExchangeDone => {
                        let total = state.exchange_total.fetch_add(1, Ordering::AcqRel) + 1;
                        state.broadcast(&CtlMsg::ExchangeTotal { total });
                    }
                    CtlMsg::BarrierEnter { superstep, staged } => {
                        state.handle_barrier(rank, superstep, staged);
                    }
                    CtlMsg::Poison => state.broadcast(&CtlMsg::Poison),
                    CtlMsg::Fatal {
                        error,
                        ledger,
                        flight_dropped,
                        flight,
                    } => {
                        lock(&state.reports)[rank] = Some(RankReport {
                            result: Err(error),
                            ledger,
                            flight_dropped,
                            flight,
                        });
                        state.broadcast(&CtlMsg::Poison);
                    }
                    CtlMsg::Done {
                        value,
                        stats,
                        work,
                        ledger,
                        flight_dropped,
                        flight,
                    } => {
                        state.completed[rank].fetch_max(stats.supersteps, Ordering::Relaxed);
                        lock(&state.reports)[rank] = Some(RankReport {
                            result: Ok((value, stats, work)),
                            ledger,
                            flight_dropped,
                            flight,
                        });
                    }
                    // Parent→child shapes echoed back: protocol bug
                    // upstream; ignore.
                    _ => {}
                }
            }
            Err(err) => {
                if lock(&state.reports)[rank].is_some() {
                    // Clean EOF after `Done`/`Fatal`.
                    return;
                }
                match wait_for_rejoin(state, rank) {
                    Some(healed) => stream = healed,
                    None => {
                        // Rank death (or an unhealable link, which the
                        // grace expiry just converted into one by
                        // SIGKILL). Reap for the status (waitpid): the
                        // exit is what severed the socket for good.
                        let status = lock(&state.children[rank])
                            .wait()
                            .map_or_else(|e| format!("unreapable: {e}"), |s| s.to_string());
                        lock(&state.deaths)[rank] =
                            Some(format!("rank process died ({status}; stream: {err})"));
                        state.broadcast(&CtlMsg::Poison);
                        return;
                    }
                }
            }
        }
    }
}

/// The reader's side of partition healing: park (in slices, polling
/// for process death) until the rejoin acceptor bumps the link's
/// generation and parks a healed stream, or the grace window expires —
/// in which case the still-live child is SIGKILLed so the link failure
/// becomes an honest rank death.
fn wait_for_rejoin(state: &ParentState, rank: usize) -> Option<RankStream> {
    let link = &state.links[rank];
    if state.link_grace.is_zero() {
        return None;
    }
    state.set_state(rank, LinkState::Disconnected);
    let deadline = Instant::now() + state.link_grace * 2;
    loop {
        // The parked reader half *is* the heal signal (the generation
        // condvar is only a wakeup): checking it directly also covers
        // an acceptor that healed the link before this thread even
        // noticed the old stream was dead.
        if let Some(healed) = lock(&link.pending_reader).take() {
            return Some(healed);
        }
        // A dead process cannot rejoin; take the death path now.
        if lock(&state.children[rank])
            .try_wait()
            .is_ok_and(|s| s.is_some())
        {
            return None;
        }
        if Instant::now() >= deadline {
            state.kill(rank);
            return None;
        }
        let generation = lock(&link.generation);
        let _ = link
            .generation_cv
            .wait_timeout(generation, Duration::from_millis(10))
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// The rejoin acceptor: keeps the coordinator's listener open for the
/// whole attempt, validating every late connection as a `Rejoin` and
/// healing the named link — `RejoinOk` with the parent's resume token,
/// replay of the parent-side egress suffix, writer swap, reader
/// handoff. Invalid or over-budget claims are refused with `Reject`;
/// a pending `Flap` storm severs accepted rejoins until its count is
/// exhausted.
fn rejoin_acceptor(state: &ParentState, listener: &dyn Listener) {
    while !state.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(stream) => {
                let _ = handle_rejoin(state, stream);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_rejoin(state: &ParentState, mut stream: RankStream) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // A connection that never identifies itself must not wedge the
    // acceptor: one bounded read.
    stream.set_read_timeout(Some(state.link_grace.max(Duration::from_millis(100))))?;
    let claim = read_ctl(&mut stream)?;
    let completed: Vec<u64> = state
        .completed
        .iter()
        .map(|c| c.load(Ordering::Acquire))
        .collect();
    let rank = match validate_rejoin(&claim, state.fingerprint, state.p, &completed) {
        Ok(rank) => rank,
        Err(reason) => {
            let _ = write_ctl(&mut stream, &CtlMsg::Reject { reason });
            return Ok(());
        }
    };
    let link = &state.links[rank];
    let attempts = link.rejoin_attempts.fetch_add(1, Ordering::AcqRel) + 1;
    if attempts > state.rejoin_budget {
        let reason = format!(
            "rejoin budget exhausted: rank {rank} reconnected {attempts} time(s), \
             budget is {} — escalating to respawn",
            state.rejoin_budget
        );
        let _ = write_ctl(&mut stream, &CtlMsg::Reject { reason });
        return Ok(());
    }
    // A flap storm in force: accept, then slam the door. The child's
    // heal loop retries (resetting its deadline per connect), so the
    // storm consumes rejoin budget, not correctness.
    let flaps = lock(&link.writer);
    if link.flap_remaining.load(Ordering::Acquire) > 0 {
        link.flap_remaining.fetch_sub(1, Ordering::AcqRel);
        drop(flaps);
        let _ = stream.shutdown(Shutdown::Both);
        return Ok(());
    }
    drop(flaps);
    state.set_state(rank, LinkState::Rejoining);
    let CtlMsg::Rejoin { resume_token, .. } = claim else {
        unreachable!("validate_rejoin only accepts Rejoin");
    };
    let mut writer = stream.try_clone()?;
    write_ctl(
        &mut writer,
        &CtlMsg::RejoinOk {
            resume_token: link.recvd.load(Ordering::Acquire),
        },
    )?;
    {
        let mut w = lock(&link.writer);
        let egress = lock(&link.egress);
        let Some(frames) = egress.replay_from(resume_token) else {
            drop(egress);
            drop(w);
            let _ = write_ctl(
                &mut stream,
                &CtlMsg::Reject {
                    reason: format!(
                        "resume token {resume_token} predates the egress ring — \
                         the missing frames are gone"
                    ),
                },
            );
            return Ok(());
        };
        for frame in frames {
            writer.write_all(frame)?;
            state
                .counters
                .egress_replayed
                .fetch_add(1, Ordering::Relaxed);
        }
        drop(egress);
        *w = writer;
        link.frozen.store(false, Ordering::Release);
    }
    stream.set_read_timeout(None)?;
    *lock(&link.pending_reader) = Some(stream);
    // Every link gets a fresh liveness stamp, not just the healed one:
    // the barrier hold stalled the peers' reader threads, so their
    // stale `last_seen` says nothing about their ranks.
    for peer in &state.links {
        *lock(&peer.last_seen) = Instant::now();
    }
    state.set_state(rank, LinkState::Healthy);
    {
        let mut generation = lock(&link.generation);
        *generation += 1;
    }
    link.generation_cv.notify_all();
    state.counters.rejoins.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// The heartbeat monitor: every heartbeat period, pings every link
/// that is still in play (no report, no death note, not frozen, not
/// mid-heal) and grades its silence — two missed periods demote the
/// link to `Suspect`, a full grace window of silence on an
/// *apparently-connected* link SIGKILLs the rank (the reader's own
/// grace handles links that errored outright).
fn link_monitor(state: &ParentState) {
    let period = state.heartbeat;
    while !state.shutdown.load(Ordering::Acquire) {
        // Sleep in slices so shutdown is prompt even with long periods.
        let wake = Instant::now() + period;
        while Instant::now() < wake {
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20).min(period));
        }
        // While any link is mid-heal the fleet is deliberately parked:
        // the barrier hold can leave reader threads (and therefore
        // `last_seen` stamps) stalled through no fault of their ranks,
        // so silence is not evidence and grace-kills are suspended.
        let healing = (0..state.p).any(|r| {
            matches!(
                *lock(&state.links[r].state),
                LinkState::Disconnected | LinkState::Rejoining
            )
        });
        for rank in 0..state.p {
            let link = &state.links[rank];
            if lock(&state.reports)[rank].is_some()
                || lock(&state.deaths)[rank].is_some()
                || link.frozen.load(Ordering::Acquire)
            {
                continue;
            }
            let fsm = *lock(&link.state);
            if matches!(fsm, LinkState::Disconnected | LinkState::Rejoining) {
                // The reader's rejoin wait owns this link's fate.
                continue;
            }
            let stamp = state.lamport.fetch_add(1, Ordering::AcqRel) + 1;
            // Pings bypass the egress ring: they are link probes, not
            // session frames, and must not skew resume tokens.
            let _ = write_ctl(&mut *lock(&link.writer), &CtlMsg::Ping { lamport: stamp });
            state
                .counters
                .heartbeats_sent
                .fetch_add(1, Ordering::Relaxed);
            let silent = lock(&link.last_seen).elapsed();
            if !healing && !state.link_grace.is_zero() && silent > state.link_grace {
                // Connected but silent past grace: a wedged or
                // partitioned rank. Make it an honest death.
                state.kill(rank);
            } else if silent > period * 2 {
                state
                    .counters
                    .heartbeats_missed
                    .fetch_add(1, Ordering::Relaxed);
                state.set_state(rank, LinkState::Suspect);
            } else if fsm == LinkState::Suspect {
                state.set_state(rank, LinkState::Healthy);
            }
        }
    }
}

fn add_ledger(sum: &mut CtlLedger, one: &CtlLedger) {
    sum.faults_injected += one.faults_injected;
    sum.barrier_timeouts += one.barrier_timeouts;
    sum.frames_sent += one.frames_sent;
    sum.retransmits += one.retransmits;
    sum.dups_dropped += one.dups_dropped;
    sum.corrupt_frames += one.corrupt_frames;
    sum.backpressure_waits += one.backpressure_waits;
    sum.frames_lost += one.frames_lost;
}

/// Runs one attempt with every rank in its own OS process — the
/// [`crate::Execution::Processes`] body of
/// `DistMachine::run_attempt_with_resume`, with the same contract:
/// the result, the furthest completed superstep, and the flight log.
pub(crate) fn run_process_attempt(
    machine: &DistMachine,
    cfg: &ProcessConfig,
    e: &Expr,
    attempt: u32,
    resume: Option<ResumePoint>,
) -> (Result<DistOutcome, EvalError>, u64, Option<FlightLog>) {
    let p = machine.p;
    let fingerprint = program_fingerprint(e, p);
    let resumed_from = resume.as_ref().map(|rp| rp.superstep);
    let baseline = resumed_from.unwrap_or(0);
    let launch = match launch_ranks(machine, cfg, e, attempt, fingerprint, resume.as_ref()) {
        Ok(l) => l,
        Err(err) => return (Err(err), baseline, None),
    };
    let state = ParentState {
        p,
        attempt,
        fingerprint,
        links: launch.writers.into_iter().map(Link::new).collect(),
        children: launch.children,
        completed: (0..p).map(|_| AtomicU64::new(baseline)).collect(),
        round: Mutex::new(Round {
            arrived: vec![false; p],
            count: 0,
            staged_generation: None,
        }),
        exchange_total: AtomicU64::new(0),
        reports: Mutex::new((0..p).map(|_| None).collect()),
        deaths: Mutex::new(vec![None; p]),
        store: machine
            .checkpoints
            .as_ref()
            .map(|(_, store)| Arc::clone(store)),
        ckpt_written: AtomicU64::new(0),
        ckpt_bytes: AtomicU64::new(0),
        kills: cfg.kills.clone(),
        link_faults: cfg.link_faults.clone(),
        heartbeat: launch.heartbeat,
        link_grace: launch.link_grace,
        rejoin_budget: cfg.rejoin_budget.unwrap_or(DEFAULT_REJOIN_BUDGET),
        counters: LinkCounters::default(),
        lamport: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
    };

    // Superstep-0 kills: the rank never gets to run a superstep.
    for spec in &cfg.kills {
        if spec.attempt == attempt && spec.superstep == 0 && spec.rank < p {
            state.kill(spec.rank);
        }
    }
    // Superstep-0 link faults: severed right after the handshake, like
    // the kills above — the rank heals before (or while) running its
    // first superstep.
    for fault in &cfg.link_faults {
        if fault.attempt == attempt && fault.superstep == 0 && fault.rank < p {
            state.sever(fault.rank, fault.kind);
        }
    }

    // Route until every stream reaches EOF (clean completion or
    // death). Children bound their own waits with the shipped barrier
    // watchdog, and any death poisons the fleet, so the readers always
    // come home. The rejoin acceptor and the heartbeat monitor run
    // alongside the readers for the whole attempt and stand down once
    // every reader is home.
    let listener = launch.listener;
    std::thread::scope(|scope| {
        let supervision = !state.link_grace.is_zero();
        if supervision {
            let state = &state;
            let listener = &listener;
            scope.spawn(move || rejoin_acceptor(state, listener.as_ref()));
        }
        if !state.heartbeat.is_zero() {
            let state = &state;
            scope.spawn(move || link_monitor(state));
        }
        let readers: Vec<_> = launch
            .streams
            .into_iter()
            .enumerate()
            .map(|(rank, stream)| {
                let state = &state;
                scope.spawn(move || parent_reader(state, rank, stream))
            })
            .collect();
        for reader in readers {
            let _ = reader.join();
        }
        state.shutdown.store(true, Ordering::Release);
    });

    // Reap whatever the death path has not already reaped (waitpid;
    // kills leave zombies until here).
    for child in &state.children {
        let _ = lock(child).wait();
    }
    cleanup_socket(&launch.dir, &launch.socket, launch.created_dir);

    let furthest = state
        .completed
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .max()
        .unwrap_or(baseline);
    let reports = state
        .reports
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let deaths = state
        .deaths
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);

    // Account exactly like the in-process backend: the shipped
    // per-rank ledgers, plus the parent's own checkpoint commits.
    let mut ledger_sum = CtlLedger::default();
    for report in reports.iter().flatten() {
        add_ledger(&mut ledger_sum, &report.ledger);
    }
    flush_counters(
        &machine.telemetry,
        &ledger_sum,
        state.ckpt_written.load(Ordering::Relaxed),
        state.ckpt_bytes.load(Ordering::Relaxed),
        0,
    );
    if machine.telemetry.is_enabled() {
        let t = &machine.telemetry;
        let c = &state.counters;
        t.counter_add(
            "net.heartbeats_sent",
            c.heartbeats_sent.load(Ordering::Relaxed),
        );
        t.counter_add(
            "net.heartbeats_missed",
            c.heartbeats_missed.load(Ordering::Relaxed),
        );
        t.counter_add("net.link_state", c.link_state.load(Ordering::Relaxed));
        t.counter_add("net.rejoins", c.rejoins.load(Ordering::Relaxed));
        t.counter_add(
            "net.egress_replayed",
            c.egress_replayed.load(Ordering::Relaxed),
        );
    }
    let flight_log = machine.flight.map(|_| FlightLog {
        ranks: reports
            .iter()
            .enumerate()
            .map(|(rank, report)| match report {
                Some(r) => RankFlightLog {
                    rank,
                    dropped: r.flight_dropped,
                    events: r.flight.clone(),
                },
                // A dead rank ships nothing; its on-disk bundle (the
                // child's own periodic flush) is the surviving trace.
                None => RankFlightLog {
                    rank,
                    dropped: 0,
                    events: Vec::new(),
                },
            })
            .collect(),
    });

    // Death first: EOF-without-report maps to the failed
    // (rank, superstep) coordinate.
    if let Some((rank, detail)) = deaths
        .iter()
        .enumerate()
        .find_map(|(r, d)| d.as_ref().map(|d| (r, d.clone())))
    {
        let superstep = state.completed[rank].load(Ordering::Relaxed);
        return (
            Err(EvalError::TransportFailure {
                rank,
                superstep,
                detail,
            }),
            furthest,
            flight_log,
        );
    }

    // Then mirror `run_threads`: prefer a real error over the
    // `PeerFailure` echoes of poisoned bystanders.
    let results: Vec<Result<(PortableValue, CtlStats, u64), EvalError>> = reports
        .into_iter()
        .map(|r| r.map_or(Err(EvalError::PeerFailure), |report| report.result))
        .collect();
    if results.iter().any(Result::is_err) {
        let mut first_peer_failure = None;
        for r in &results {
            match r {
                Err(EvalError::PeerFailure) => {
                    first_peer_failure = Some(EvalError::PeerFailure);
                }
                Err(real) => return (Err(real.clone()), furthest, flight_log),
                Ok(_) => {}
            }
        }
        return (
            Err(first_peer_failure.expect("some error exists")),
            furthest,
            flight_log,
        );
    }
    let oks: Vec<(PortableValue, CtlStats, u64)> =
        results.into_iter().map(|r| r.expect("checked")).collect();
    let supersteps = oks[0].1.supersteps;
    assert!(
        oks.iter().all(|(_, s, _)| s.supersteps == supersteps),
        "ranks disagree on superstep count — SPMD replication broken"
    );
    let total_words_sent = oks.iter().map(|(_, s, _)| s.sent_words).sum();
    let work = oks.iter().map(|(_, _, w)| *w).collect();
    if machine.telemetry.is_enabled() {
        let s = oks[0].1;
        machine
            .telemetry
            .counter_add("bsp.supersteps", s.supersteps);
        machine.telemetry.counter_add("bsp.puts", s.puts);
        machine.telemetry.counter_add("bsp.ifats", s.ifats);
        machine
            .telemetry
            .counter_add("bsp.words_sent", total_words_sent);
    }
    let value = match assemble(oks.iter().map(|(v, _, _)| v)) {
        Ok(v) => v,
        Err(err) => return (Err(err), furthest, flight_log),
    };
    (
        Ok(DistOutcome {
            value,
            supersteps,
            total_words_sent,
            work,
            resumed_from,
        }),
        furthest,
        flight_log,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::SyncOutcome;
    use std::os::unix::net::UnixStream;

    #[test]
    fn handshake_timeout_env_knob() {
        std::env::set_var(HANDSHAKE_TIMEOUT_ENV, "45000");
        assert_eq!(handshake_timeout_from_env(), Duration::from_millis(45000));
        std::env::set_var(HANDSHAKE_TIMEOUT_ENV, " 250 ");
        assert_eq!(handshake_timeout_from_env(), Duration::from_millis(250));
        std::env::set_var(HANDSHAKE_TIMEOUT_ENV, "soon");
        assert_eq!(handshake_timeout_from_env(), DEFAULT_HANDSHAKE_TIMEOUT);
        std::env::remove_var(HANDSHAKE_TIMEOUT_ENV);
        assert_eq!(handshake_timeout_from_env(), DEFAULT_HANDSHAKE_TIMEOUT);
    }

    #[test]
    fn hello_validation_accepts_the_genuine_article() {
        let taken = vec![false, false, false];
        let hello = CtlMsg::hello(0xF00D, 2, 3);
        assert_eq!(validate_hello(&hello, 0xF00D, 3, &taken), Ok(2));
    }

    #[test]
    fn hello_validation_rejects_every_mismatch() {
        let taken = vec![true, false];
        let cases: Vec<(CtlMsg, &str)> = vec![
            (
                CtlMsg::Hello {
                    magic: 0,
                    version: PROTOCOL_VERSION,
                    fingerprint: 7,
                    rank: 1,
                    p: 2,
                },
                "magic",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION + 1,
                    fingerprint: 7,
                    rank: 1,
                    p: 2,
                },
                "version skew",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION,
                    fingerprint: 8,
                    rank: 1,
                    p: 2,
                },
                "fingerprint mismatch",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION,
                    fingerprint: 7,
                    rank: 1,
                    p: 4,
                },
                "width mismatch",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION,
                    fingerprint: 7,
                    rank: 5,
                    p: 2,
                },
                "out of range",
            ),
            (
                CtlMsg::Hello {
                    magic: CTL_MAGIC,
                    version: PROTOCOL_VERSION,
                    fingerprint: 7,
                    rank: 0,
                    p: 2,
                },
                "duplicate",
            ),
            (CtlMsg::Poison, "not a Hello"),
        ];
        for (msg, needle) in cases {
            let err = validate_hello(&msg, 7, 2, &taken).expect_err("must reject");
            assert!(
                err.contains(needle),
                "refusal {err:?} does not mention {needle:?}"
            );
        }
    }

    /// A hub over a socketpair: staged frames ride the next
    /// `BarrierEnter`, and the release lets the barrier through.
    #[test]
    fn relay_store_ships_staged_frames_with_barrier_enter() {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let hub = RemoteHub::new(RankStream::Unix(ours.try_clone().expect("clone")), None);
        let reader_hub = Arc::clone(&hub);
        std::thread::spawn(move || run_child_reader(&reader_hub, RankStream::Unix(ours)));

        let frame = RankFrame {
            fingerprint: 99,
            rank: 0,
            superstep: 4,
            fuel_left: 1000,
            sent_words: 3,
            received_words: 3,
            puts: 4,
            ifats: 0,
            outcomes: vec![SyncOutcome::IfAt { chosen: true }],
        };
        let store = RelayStore {
            hub: Arc::clone(&hub),
        };
        assert!(store.stage(&frame).expect("stage") > 0);

        // The "parent": expect BarrierEnter carrying the frame, then
        // release.
        let expected = frame.clone();
        let mut parent_end = theirs;
        let parent = std::thread::spawn(move || {
            let msg = read_ctl(&mut parent_end).expect("barrier enter");
            let CtlMsg::BarrierEnter { superstep, staged } = msg else {
                panic!("expected BarrierEnter, got {msg:?}");
            };
            assert_eq!(superstep, 3);
            let bytes = staged.expect("staged frame rides along");
            assert_eq!(RankFrame::decode(&bytes).expect("decodes"), expected);
            write_ctl(&mut parent_end, &CtlMsg::BarrierRelease { superstep }).expect("release");
            parent_end
        });
        hub.barrier_enter(3, Some(Duration::from_secs(5)))
            .expect("released");
        let _keep_alive = parent.join().expect("parent thread");
        // The stash is consumed: the next barrier ships nothing.
        assert!(lock(&hub.staged).is_none());
    }

    #[test]
    fn poisoned_hub_refuses_barrier_entry() {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let hub = RemoteHub::new(RankStream::Unix(ours), None);
        // Parent poison arrives (routed by the reader in production;
        // absorbed directly here).
        hub.absorb(CtlMsg::Poison);
        assert!(hub.is_poisoned());
        assert_eq!(
            hub.barrier_enter(0, Some(Duration::from_secs(5))),
            Err(EvalError::PeerFailure)
        );
        drop(theirs);
    }

    #[test]
    fn unreleased_barrier_times_out_instead_of_hanging() {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let hub = RemoteHub::new(RankStream::Unix(ours), None);
        let result = hub.barrier_enter(2, Some(Duration::from_millis(30)));
        assert_eq!(
            result,
            Err(EvalError::BarrierTimeout {
                superstep: 2,
                waiting: 1
            })
        );
        // The timeout poisoned the run — later waits fail fast.
        assert!(hub.is_poisoned());
        drop(theirs);
    }

    #[test]
    fn exchange_totals_are_monotonic_under_reordered_broadcasts() {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        let hub = RemoteHub::new(RankStream::Unix(ours), None);
        hub.absorb(CtlMsg::ExchangeTotal { total: 3 });
        hub.absorb(CtlMsg::ExchangeTotal { total: 2 });
        assert_eq!(hub.exchange_total(), 3);
        drop(theirs);
    }

    #[test]
    fn heartbeat_and_grace_env_knobs() {
        std::env::set_var(HEARTBEAT_MS_ENV, "125");
        assert_eq!(heartbeat_from_env(), Duration::from_millis(125));
        std::env::set_var(HEARTBEAT_MS_ENV, "pulse");
        assert_eq!(heartbeat_from_env(), DEFAULT_HEARTBEAT);
        std::env::remove_var(HEARTBEAT_MS_ENV);
        assert_eq!(heartbeat_from_env(), DEFAULT_HEARTBEAT);
        std::env::set_var(LINK_GRACE_MS_ENV, "2750");
        assert_eq!(link_grace_from_env(), Duration::from_millis(2750));
        std::env::remove_var(LINK_GRACE_MS_ENV);
        assert_eq!(link_grace_from_env(), DEFAULT_LINK_GRACE);
    }

    #[test]
    fn rejoin_validation_accepts_equal_and_newer_claims() {
        let completed = vec![3, 5];
        let equal = CtlMsg::Rejoin {
            rank: 1,
            fingerprint: 0xBEEF,
            completed_superstep: 5,
            resume_token: 40,
        };
        assert_eq!(validate_rejoin(&equal, 0xBEEF, 2, &completed), Ok(1));
        // Newer is legal: the rank's BarrierEnter can be lost in
        // flight — the replay redelivers it.
        let newer = CtlMsg::Rejoin {
            rank: 0,
            fingerprint: 0xBEEF,
            completed_superstep: 4,
            resume_token: 0,
        };
        assert_eq!(validate_rejoin(&newer, 0xBEEF, 2, &completed), Ok(0));
    }

    #[test]
    fn rejoin_validation_rejects_every_mismatch() {
        let completed = vec![3, 5];
        let cases: Vec<(CtlMsg, &str)> = vec![
            (
                CtlMsg::Rejoin {
                    rank: 0,
                    fingerprint: 0xDEAD,
                    completed_superstep: 3,
                    resume_token: 0,
                },
                "fingerprint mismatch",
            ),
            (
                CtlMsg::Rejoin {
                    rank: 2,
                    fingerprint: 0xBEEF,
                    completed_superstep: 0,
                    resume_token: 0,
                },
                "out of range",
            ),
            (
                CtlMsg::Rejoin {
                    rank: 1,
                    fingerprint: 0xBEEF,
                    completed_superstep: 4,
                    resume_token: 0,
                },
                "stale rejoin",
            ),
            (CtlMsg::Poison, "not a Rejoin"),
        ];
        for (msg, needle) in cases {
            let err =
                validate_rejoin(&msg, 0xBEEF, 2, &completed).expect_err("claim must be refused");
            assert!(
                err.contains(needle),
                "refusal {err:?} does not mention {needle:?}"
            );
        }
    }

    #[test]
    fn egress_ring_replays_exactly_the_unseen_suffix() {
        let mut ring = EgressRing::default();
        for i in 0..5u8 {
            ring.push(vec![i]);
        }
        assert_eq!(ring.sent(), 5);
        // The peer saw 3 of 5: the replay is frames 3 and 4.
        let frames = ring.replay_from(3).expect("in range");
        assert_eq!(frames, vec![&vec![3u8], &vec![4u8]]);
        // Everything seen: an empty replay, not a refusal.
        assert_eq!(ring.replay_from(5).expect("in range").len(), 0);
        // Claiming more than was ever sent is a protocol violation.
        assert!(ring.replay_from(6).is_none());
    }

    #[test]
    fn egress_ring_refuses_tokens_older_than_its_base() {
        let mut ring = EgressRing::default();
        for i in 0..(EGRESS_CAPACITY + 10) {
            ring.push(vec![u8::try_from(i % 251).expect("fits")]);
        }
        assert_eq!(ring.sent() as usize, EGRESS_CAPACITY + 10);
        // The first 10 frames were evicted: a peer that far behind
        // cannot be healed.
        assert!(ring.replay_from(9).is_none());
        let frames = ring.replay_from(10).expect("exactly the base");
        assert_eq!(frames.len(), EGRESS_CAPACITY);
    }
}
